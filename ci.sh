#!/bin/sh
# Offline CI gauntlet: format, lint, build, test.
#
# The workspace has zero external dependencies, so every step works
# without network access.
set -eu

cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo test --workspace -q =="
cargo test --workspace -q

echo "== sweep smoke (multi-threaded, deterministic) =="
cargo run --release -q -p parcache-bench --bin parcache-run -- \
    --sweep synth fixed-horizon,aggressive 1,2 --threads 2 > /dev/null

echo "== audited sweep smoke (invariants + report reconciliation) =="
cargo run --release -q -p parcache-bench --bin parcache-run -- \
    --sweep synth all 1,2 --audit --threads 2 > /dev/null

echo "== differential fuzz smoke (200 cases, every policy) =="
cargo run --release -q -p parcache-bench --bin parcache-run -- \
    --fuzz 200 --seed 1996 --threads 2 > /dev/null

echo "CI OK"
