#!/bin/sh
# Offline CI gauntlet: format, lint, build, test.
#
# The workspace has zero external dependencies, so every step works
# without network access.
set -eu

cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo test --workspace -q =="
cargo test --workspace -q

echo "== sweep smoke (multi-threaded, deterministic) =="
cargo run --release -q -p parcache-bench --bin parcache-run -- \
    --sweep synth fixed-horizon,aggressive 1,2 --threads 2 > /dev/null

echo "== audited sweep smoke (invariants + report reconciliation) =="
cargo run --release -q -p parcache-bench --bin parcache-run -- \
    --sweep synth all 1,2 --audit --threads 2 > /dev/null

echo "== differential fuzz smoke (500 cases, every policy) =="
cargo run --release -q -p parcache-bench --bin parcache-run -- \
    --fuzz 500 --seed 1996 --threads 2 > /dev/null

echo "== forestall differential fuzz (300 cases, incremental vs naive predictor) =="
cargo run --release -q -p parcache-bench --bin parcache-run -- \
    --fuzz 300 --differential --seed 1996 --threads 2 > /dev/null

echo "== fault-enabled fuzz smoke (500 cases; ~half run under a fault plan) =="
cargo run --release -q -p parcache-bench --bin parcache-run -- \
    --fuzz 500 --seed 2026 --threads 2 > /dev/null

echo "== faulted audited sweep smoke (retry/abandon/degraded invariants) =="
FAULTS='flaky:*:0.05,slow:0:0:2000:2,outage:1:100:600,seed:9'
cargo run --release -q -p parcache-bench --bin parcache-run -- \
    --sweep synth all 1,2 --audit --threads 2 --faults "$FAULTS" > /dev/null

echo "== faulted sweep is byte-identical across thread counts =="
tmp1=$(mktemp); tmp2=$(mktemp)
faildir=$(mktemp -d); killdir=$(mktemp -d)
trap 'rm -rf "$tmp1" "$tmp2" "$tmp2.folded" "$faildir" "$killdir"' EXIT
cargo run --release -q -p parcache-bench --bin parcache-run -- \
    --sweep synth all 1,2 --threads 1 --faults "$FAULTS" > "$tmp1"
cargo run --release -q -p parcache-bench --bin parcache-run -- \
    --sweep synth all 1,2 --threads 2 --faults "$FAULTS" > "$tmp2"
diff "$tmp1" "$tmp2"

echo "== predictor sweep smoke (hints axis, every policy, audited) =="
cargo run --release -q -p parcache-bench --bin parcache-run -- \
    --sweep synth all 1,2 --hints oracle,seq,markov,mithril --audit --threads 2 \
    > "$tmp1" 2> /dev/null
head -n 1 "$tmp1" | grep -q ',hints$'

echo "== predicted sweep is byte-identical across thread counts =="
cargo run --release -q -p parcache-bench --bin parcache-run -- \
    --sweep synth all 1,2 --hints seq,markov,mithril --threads 1 > "$tmp1"
cargo run --release -q -p parcache-bench --bin parcache-run -- \
    --sweep synth all 1,2 --hints seq,markov,mithril --threads 4 > "$tmp2"
diff "$tmp1" "$tmp2"

echo "== explain sweep smoke (per-cause stall columns, audited) =="
cargo run --release -q -p parcache-bench --bin parcache-run -- \
    --sweep synth all 1,2 --explain --audit --threads 2 > "$tmp1" 2> /dev/null
grep -q 'stall_late_prefetch_s,stall_no_prefetch_s,stall_congestion_s' "$tmp1"

echo "== profile smoke (folded stacks parse; span self-times sum <= wall) =="
cargo run --release -q -p parcache-bench --bin parcache-run -- \
    --sweep synth all 1,2 --threads 2 --profile "$tmp2" > /dev/null 2>&1
# Every folded line is "path sample_count"; self times must sum to no
# more than the profiled wall clock. Anchor on the document start: each
# worker object carries its own (smaller, per-thread) "wall_us" key.
wall=$(sed -n 's/^{"wall_us":\([0-9]*\).*/\1/p' "$tmp2")
awk -v wall="$wall" '
    NF != 2 || $2 !~ /^[0-9]+$/ { print "bad folded line: " $0; bad = 1 }
    { sum += $2 }
    END {
        if (bad) exit 1
        if (sum > wall) { print "span sum " sum " > wall " wall; exit 1 }
    }' "$tmp2.folded"
grep -q '"workers":\[{"items":' "$tmp2"

echo "== crash-injected sweep smoke (fail-soft isolation, manifest, resume) =="
# Uninterrupted baseline document, written atomically via --out.
./target/release/parcache-run --sweep synth all 1,2 --threads 2 \
    --out "$faildir/base.csv" 2> /dev/null
# Inject a panic into cell 3: the run must complete every other cell,
# publish the partial CSV plus a failure manifest, and exit nonzero.
if PARCACHE_FAIL_CELL=panic:3 RUST_BACKTRACE=0 ./target/release/parcache-run \
    --sweep synth all 1,2 --threads 2 --out "$faildir/part.csv" 2> /dev/null
then
    echo "crash-injected sweep should exit nonzero"; exit 1
fi
grep -q '"status":"panicked"' "$faildir/part.csv.manifest.json"
# Both artifacts were renamed into place; no write temporary lingers.
if ls "$faildir"/.*.tmp.* 2> /dev/null; then
    echo "leftover write temporaries after injected failure"; exit 1
fi
# Resume re-runs only the failed cell and reproduces the baseline
# byte for byte.
./target/release/parcache-run --sweep synth all 1,2 --threads 2 \
    --resume "$faildir/part.csv.manifest.json" --out "$faildir/resumed.csv" \
    2> /dev/null
diff "$faildir/base.csv" "$faildir/resumed.csv"
# A stale manifest (different grid) is rejected up front with exit 2.
status=0
./target/release/parcache-run --sweep synth all 1,4 --threads 2 \
    --resume "$faildir/part.csv.manifest.json" --out "$faildir/stale.csv" \
    > /dev/null 2>&1 || status=$?
if [ "$status" != "2" ]; then
    echo "stale --resume manifest should exit 2, got $status"; exit 1
fi

echo "== SIGKILL mid-sweep leaves no truncated artifacts =="
# The full-grid sweep runs for tens of seconds; killing it two seconds
# in lands long before anything is published. Invoke the binary
# directly (cargo run would leave the child alive when the wrapper
# dies).
./target/release/parcache-run --sweep --threads 2 --out "$killdir/kill.csv" \
    > /dev/null 2>&1 &
victim=$!
sleep 2
kill -9 "$victim" 2> /dev/null || true
wait "$victim" 2> /dev/null || true
for f in "$killdir/kill.csv" "$killdir/kill.csv.manifest.json"; do
    if [ -e "$f" ]; then
        echo "unexpected artifact $f after SIGKILL (should be absent, never truncated)"
        exit 1
    fi
done
if ls "$killdir"/.*.tmp.* 2> /dev/null; then
    echo "leftover write temporaries after SIGKILL"; exit 1
fi

echo "== golden appendix-A sweep digest =="
cargo test --release -q -p parcache-bench --test golden -- --ignored

echo "== golden digest via the CLI (default sweep CSV, hash pinned) =="
# The default (oracle-hint) 332-cell sweep CSV must hash to the committed
# fixture even through the CLI path: the CSV is everything before the
# blank line that separates it from the aggregate table.
cargo run --release -q -p parcache-bench --bin parcache-run -- \
    --sweep > "$tmp1" 2> /dev/null
cli_digest=$(awk '/^$/ { exit } { print }' "$tmp1" | sha256sum | cut -d' ' -f1)
golden=$(cat crates/bench/tests/fixtures/appendix_a_sweep.sha256)
if [ "$cli_digest" != "$golden" ]; then
    echo "default sweep CSV digest $cli_digest != committed $golden"
    exit 1
fi

# Benchmark smoke: replay the smoke sweep subset and fail on a >25%
# cells/sec drop against the committed BENCH_sweep.json. The tolerance
# (see REGRESSION_TOLERANCE in crates/bench/src/bench.rs) absorbs
# single-core/noisy-runner variance; real hot-path regressions are far
# larger. The same invocation applies the scaling-efficiency gate: on
# machines with >= 2 effective cores the smoke subset is re-run at 2
# threads and must reach 75% of linear scaling (SCALING_EFFICIENCY_FLOOR);
# effectively single-core machines skip that gate with a note, since
# multi-thread timing there would measure timeslicing, not the harness.
# Set PARCACHE_BENCH_SKIP=1 to skip on machines too noisy to measure
# anything.
if [ "${PARCACHE_BENCH_SKIP:-0}" = "1" ]; then
    echo "== bench smoke skipped (PARCACHE_BENCH_SKIP=1) =="
else
    echo "== bench smoke vs committed baseline (>25% regression or <0.75 scaling efficiency fails) =="
    cargo run --release -q -p parcache-bench --bin parcache-run -- \
        --bench-smoke --baseline BENCH_sweep.json > /dev/null

    # Per-policy engine throughput floors: each policy's single-threaded
    # events/sec must stay within 25% of the committed BENCH_engine.json,
    # steady-state allocations must stay under ENGINE_ALLOC_CEILING, and
    # forestall must stay within ENGINE_FORESTALL_DEMAND_RATIO of demand
    # in the same run (the stall predictor's hot-path budget).
    echo "== engine bench vs committed baseline (per-policy floors + alloc ceiling) =="
    cargo run --release -q -p parcache-bench --bin parcache-run -- \
        --bench-engine --baseline BENCH_engine.json > /dev/null
fi

echo "CI OK"
