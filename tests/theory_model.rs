//! Integration tests in the paper's theoretical model (§2.1): unit
//! compute time, uniform fetch time F, no driver overhead. The clean
//! model makes elapsed times exactly countable, so the algorithms'
//! §2 claims can be checked as arithmetic.

use parcache::core::theory::{elapsed_units, theory_config, unit_trace};
use parcache::prelude::*;

/// A hit costs one unit: an all-hits trace takes exactly n units after
/// the cold fetch.
#[test]
fn hits_cost_one_unit() {
    let t = unit_trace(&[5, 5, 5, 5, 5, 5], 4);
    let c = theory_config(1, 4, 3);
    let r = simulate(&t, PolicyKind::Demand, &c);
    // 6 references + one cold miss of F=3.
    assert_eq!(elapsed_units(&r), 9);
}

/// Demand fetching stalls F on every miss: elapsed = n + F * misses,
/// where the miss count is Belady-optimal (two cyclic passes over 8
/// blocks with a 4-block cache miss 8 cold + 4 capacity = 12 times).
#[test]
fn demand_elapsed_counts_misses_exactly() {
    let seq: Vec<u64> = (0..8).chain(0..8).collect();
    let t = unit_trace(&seq, 4);
    let c = theory_config(2, 4, 5);
    let r = simulate(&t, PolicyKind::Demand, &c);
    assert_eq!(r.fetches, 12);
    assert_eq!(elapsed_units(&r), 16 + 5 * 12);
}

/// §2.3: with enough parallelism, fixed horizon eliminates all stall
/// except the unavoidable cold start.
#[test]
fn fixed_horizon_near_optimal_with_ample_disks() {
    let seq: Vec<u64> = (0..24).collect();
    let t = unit_trace(&seq, 12);
    // 6 disks, F = 4 <= horizon: each fetch goes to an idle disk.
    let c = theory_config(6, 12, 4);
    let r = simulate(&t, PolicyKind::FixedHorizon, &c);
    // Lower bound: 24 compute + 4 cold stall. Allow a couple of units of
    // slack for the first-horizon ramp.
    assert!(elapsed_units(&r) <= 30, "{} units", elapsed_units(&r));
    assert_eq!(r.fetches, 24);
}

/// §2.3's caveat: fixed horizon never looks beyond H. When misses are
/// separated by runs of cached references, it lets the disk idle and
/// stalls; aggressive keeps the disk busy far ahead.
#[test]
fn fixed_horizon_stalls_where_aggressive_prefetches() {
    // Three hot (cached) references between each fresh block: misses are
    // 4 references apart, the fetch takes 6 units, and the horizon is
    // only 2 — fixed horizon starts each fetch 2 units early and stalls
    // 4; aggressive pipelines the whole miss stream.
    let mut seq: Vec<u64> = Vec::new();
    for i in 0..15u64 {
        seq.extend([100, 101, 102, i]);
    }
    let t = unit_trace(&seq, 8);
    let mut c = theory_config(1, 8, 6);
    c.horizon = 2;
    let fh = simulate(&t, PolicyKind::FixedHorizon, &c);
    let agg = simulate(&t, PolicyKind::Aggressive, &c);
    assert!(
        agg.elapsed < fh.elapsed,
        "aggressive {} !< fixed horizon {}",
        agg.elapsed,
        fh.elapsed
    );
    assert!(fh.stall > agg.stall);
}

/// §2.4, do no harm: on a cyclic re-reference pattern that fits the
/// cache, aggressive must not displace useful blocks — its fetch count
/// stays at the distinct count.
#[test]
fn aggressive_does_no_harm_on_cached_loop() {
    let seq: Vec<u64> = (0..6).cycle().take(60).collect();
    let t = unit_trace(&seq, 6);
    let c = theory_config(2, 6, 3);
    let r = simulate(&t, PolicyKind::Aggressive, &c);
    assert_eq!(r.fetches, 6, "refetched a cached loop");
}

/// §2.5: on the Figure 1 style unbalanced layout (one disk holds most of
/// the data), reverse aggressive's offline schedule is at least as good
/// as the online algorithms.
#[test]
fn reverse_aggressive_handles_unbalanced_layouts() {
    // Disk 0 holds the even blocks (heavily used), disk 1 the odd ones
    // (rarely used): sequential scan of evens with occasional odds.
    let mut seq: Vec<u64> = Vec::new();
    for i in 0..40u64 {
        seq.push(i * 2); // disk 0
        if i % 8 == 0 {
            seq.push(i * 2 + 1); // disk 1
        }
    }
    let t = unit_trace(&seq, 10);
    let c = theory_config(2, 10, 4);
    let rev = simulate(&t, PolicyKind::ReverseAggressive, &c);
    let agg = simulate(&t, PolicyKind::Aggressive, &c);
    let fh = simulate(&t, PolicyKind::FixedHorizon, &c);
    let best = agg.elapsed.min(fh.elapsed);
    assert!(
        rev.elapsed.as_nanos() as f64 <= best.as_nanos() as f64 * 1.15,
        "reverse {} vs best online {}",
        rev.elapsed,
        best
    );
}

/// Theorem 1 sanity: aggressive is never worse than d x demand (a very
/// loose corollary of its competitive bound).
#[test]
fn aggressive_within_theorem_bound_of_demand() {
    for disks in [1usize, 2, 3] {
        let seq: Vec<u64> = (0..50).map(|i| (i * 13) % 20).collect();
        let t = unit_trace(&seq, 8);
        let c = theory_config(disks, 8, 4);
        let agg = simulate(&t, PolicyKind::Aggressive, &c);
        let demand = simulate(&t, PolicyKind::Demand, &c);
        assert!(
            agg.elapsed <= demand.elapsed * disks as u64 + Nanos::from_millis(8),
            "disks {disks}"
        );
    }
}

/// Forestall in the theoretical model: matches aggressive when the fetch
/// time dwarfs compute, and fixed horizon's fetch count when compute
/// dwarfs the fetch time.
#[test]
fn forestall_interpolates_in_theory() {
    let seq: Vec<u64> = (0..40).collect();
    let t = unit_trace(&seq, 20);

    // I/O bound: F = 8.
    let c = theory_config(1, 20, 8);
    let agg = simulate(&t, PolicyKind::Aggressive, &c);
    let f = simulate(&t, PolicyKind::Forestall, &c);
    assert!(f.elapsed.as_nanos() as f64 <= agg.elapsed.as_nanos() as f64 * 1.1);

    // Compute bound: F = 1, plenty of disks.
    let c = theory_config(4, 20, 1);
    let fh = simulate(&t, PolicyKind::FixedHorizon, &c);
    let f = simulate(&t, PolicyKind::Forestall, &c);
    assert!(f.fetches <= fh.fetches + 2);
}
