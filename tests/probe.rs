//! Cross-policy invariants of the probe layer: the event stream must
//! agree with the report, and attaching a probe must not change the
//! simulation.

use parcache::core::config::DiskModelKind;
use parcache::core::metrics::MetricsProbe;
use parcache::prelude::*;
use parcache::trace::synth::synth_trace;

/// For every policy: elapsed decomposes exactly, the probe's
/// fetch-issued count equals the report's fetch count, every stall that
/// begins also ends, and the probed run reports exactly what the
/// unprobed run does.
#[test]
fn event_counts_match_reports_across_policies() {
    let trace = synth_trace(3, 400, 9);
    for kind in PolicyKind::ALL {
        let config = SimConfig::for_trace(3, &trace);
        let base = simulate(&trace, kind, &config);

        let (mut fetches, mut writes, mut begun, mut ended) = (0u64, 0u64, 0u64, 0u64);
        let mut stalled_total = Nanos::ZERO;
        let mut probe = |e: &Event| match *e {
            Event::FetchIssued { .. } => fetches += 1,
            Event::WriteIssued { .. } => writes += 1,
            Event::StallBegin { .. } => begun += 1,
            Event::StallEnd { stalled, .. } => {
                ended += 1;
                stalled_total += stalled;
            }
            _ => {}
        };
        let probed = simulate_probed(&trace, kind, &config, &mut probe);

        assert_eq!(probed, base, "{kind}: probe changed the simulation");
        assert_eq!(
            probed.elapsed,
            probed.compute + probed.driver + probed.stall,
            "{kind}"
        );
        assert_eq!(fetches, probed.fetches, "{kind}: fetch-issued events");
        assert_eq!(writes, probed.writes, "{kind}: write-issued events");
        assert_eq!(begun, ended, "{kind}: unbalanced stall events");
        // Stall intervals cover at least the accounted stall: driver work
        // issued during a wait is inside the interval but accounted to
        // driver time, never the reverse.
        assert!(
            stalled_total >= probed.stall,
            "{kind}: {stalled_total} < {}",
            probed.stall
        );
    }
}

/// The metrics probe sees every drive completion, and on a multi-disk
/// demand run (which must stall) the latency histograms are populated
/// with non-zero quantiles.
#[test]
fn metrics_probe_populates_histograms() {
    let trace = synth_trace(2, 300, 4);
    let disks = 4;
    let config = SimConfig::for_trace(disks, &trace);
    let mut probe = MetricsProbe::for_disks(disks);
    let report = simulate_probed(&trace, PolicyKind::Demand, &config, &mut probe);
    let m = probe.finish();

    assert_eq!(m.counters.fetches_issued, report.fetches);
    assert_eq!(
        m.counters.demand_fetches, report.fetches,
        "demand never prefetches"
    );
    assert_eq!(m.counters.services_completed, report.fetches);
    assert_eq!(m.fetch_service.count(), report.fetches);
    assert_eq!(m.counters.stalls_begun, m.counters.stalls_ended);
    assert!(m.counters.stalls_begun > 0, "demand fetching must stall");
    assert!(m.stall_duration.quantile(0.5) > 0);
    let per_disk_served: u64 = m.per_disk.iter().map(|d| d.service.count()).sum();
    assert_eq!(per_disk_served, report.fetches);
    for (i, d) in m.per_disk.iter().enumerate() {
        if d.service.count() > 0 {
            assert!(d.service.quantile(0.50) > 0, "disk {i} p50");
            assert!(d.service.quantile(0.99) > 0, "disk {i} p99");
        }
    }
    assert!(!m.timeline.is_empty());
    // The timeline's total busy time matches the report's per-disk stats.
    let timeline_busy: f64 = m
        .timeline
        .rows()
        .iter()
        .flat_map(|(_, util, _)| util.iter())
        .sum::<f64>()
        * m.timeline.slice_width().as_nanos() as f64;
    let stats_busy: f64 = report
        .per_disk
        .iter()
        .map(|d| d.busy.as_nanos() as f64)
        .sum();
    assert!(
        (timeline_busy - stats_busy).abs() < 1.0,
        "{timeline_busy} vs {stats_busy}"
    );
}

/// Write-behind flushes appear in the event stream as write events at
/// the drive level too.
#[test]
fn write_behind_events_are_tagged() {
    let trace = synth_trace(1, 100, 2);
    let mut config = SimConfig::for_trace(2, &trace);
    config.write_behind_period = Some(10);
    let (mut issued, mut completed_writes) = (0u64, 0u64);
    let mut probe = |e: &Event| match *e {
        Event::WriteIssued { .. } => issued += 1,
        Event::FetchCompleted { write: true, .. } => completed_writes += 1,
        _ => {}
    };
    let report = simulate_probed(&trace, PolicyKind::Aggressive, &config, &mut probe);
    assert_eq!(issued, report.writes);
    // Flushes still queued when the application finishes never complete:
    // the simulation ends at the last reference.
    assert!(completed_writes <= report.writes);
    assert!(report.writes > 0);
}

/// The JSONL event representation stays parseable in shape: one object
/// per line with the kind tag first.
#[test]
fn event_json_is_line_shaped() {
    let trace = synth_trace(1, 50, 3);
    let config = SimConfig::for_trace(2, &trace);
    let mut lines = Vec::new();
    let mut probe = |e: &Event| lines.push(e.to_json());
    simulate_probed(&trace, PolicyKind::Forestall, &config, &mut probe);
    assert!(!lines.is_empty());
    for l in &lines {
        assert!(l.starts_with(r#"{"event":""#), "{l}");
        assert!(l.ends_with('}'), "{l}");
        assert!(!l.contains('\n'), "{l}");
        assert!(l.contains(r#""t_ns":"#), "{l}");
    }
}

/// Probed simulation under the uniform model is still exact: the event
/// stream's completions all carry the configured fetch time.
#[test]
fn uniform_model_events_carry_exact_service_times() {
    let trace = synth_trace(1, 64, 5);
    let mut config = SimConfig::for_trace(2, &trace);
    let f = Nanos::from_millis(7);
    config.disk_model = DiskModelKind::Uniform(f);
    let mut services = Vec::new();
    let mut probe = |e: &Event| {
        if let Event::FetchCompleted { service, .. } = *e {
            services.push(service);
        }
    };
    simulate_probed(&trace, PolicyKind::FixedHorizon, &config, &mut probe);
    assert!(!services.is_empty());
    assert!(services.iter().all(|&s| s == f));
}
