//! Cross-crate integration tests: full paper traces driven through the
//! complete stack (generators -> oracle/cache -> policies -> disk array)
//! and checked against the paper's published behavior.

use parcache::prelude::*;
use parcache_bench::{paper_elapsed, trace, Algo, SEED};

/// Accounting identity on every trace and policy at a few array sizes.
#[test]
fn breakdown_identity_holds_everywhere() {
    for name in ["dinero", "ld", "postgres-select", "xds"] {
        let t = trace(name);
        for disks in [1usize, 3, 8] {
            for kind in PolicyKind::ALL {
                let r = simulate(&t, kind, &SimConfig::for_trace(disks, &t));
                assert_eq!(
                    r.elapsed,
                    r.compute + r.driver + r.stall,
                    "{name}/{kind}/{disks}"
                );
                assert_eq!(r.compute, t.stats().compute, "{name}/{kind}/{disks}");
            }
        }
    }
}

/// §4.1: all prefetching algorithms significantly outperform demand
/// fetching with optimal replacement on the I/O-bound traces.
#[test]
fn prefetchers_beat_optimal_demand_fetching() {
    for name in ["postgres-select", "ld", "cscope2"] {
        let t = trace(name);
        let cfg = SimConfig::for_trace(2, &t);
        let demand = simulate(&t, PolicyKind::Demand, &cfg);
        for kind in PolicyKind::PREFETCHING {
            let r = simulate(&t, kind, &cfg);
            assert!(
                r.elapsed.as_secs_f64() < demand.elapsed.as_secs_f64() * 0.9,
                "{name}/{kind}: {:.2}s not well under demand's {:.2}s",
                r.elapsed.as_secs_f64(),
                demand.elapsed.as_secs_f64()
            );
        }
    }
}

/// The headline reproduction check: measured elapsed times land near the
/// paper's published numbers for the compute-bound traces (tight bound)
/// and within the same shape for I/O-bound cells (loose bound).
#[test]
fn baseline_elapsed_times_track_the_paper() {
    // (trace, policy, disks, tolerance as fraction of paper value)
    let cells: &[(&str, Algo, usize, f64)] = &[
        // Compute-bound cells: dominated by the calibrated compute total.
        ("dinero", Algo::FixedHorizon, 2, 0.03),
        ("cscope1", Algo::FixedHorizon, 2, 0.03),
        ("postgres-join", Algo::FixedHorizon, 2, 0.03),
        // The fixed-horizon floor on large arrays.
        ("postgres-select", Algo::FixedHorizon, 8, 0.05),
        ("cscope2", Algo::FixedHorizon, 16, 0.05),
        ("cscope3", Algo::FixedHorizon, 12, 0.05),
        ("synth", Algo::FixedHorizon, 3, 0.05),
        ("synth", Algo::FixedHorizon, 4, 0.05),
        // I/O-bound cells: disk-model differences allowed, shape must hold.
        ("postgres-select", Algo::FixedHorizon, 1, 0.15),
        ("postgres-select", Algo::Aggressive, 1, 0.15),
        ("cscope2", Algo::FixedHorizon, 1, 0.15),
        ("cscope2", Algo::Aggressive, 1, 0.25),
        ("synth", Algo::FixedHorizon, 1, 0.15),
        ("synth", Algo::Aggressive, 1, 0.15),
        ("ld", Algo::Aggressive, 1, 0.40),
    ];
    for &(name, algo, disks, tol) in cells {
        let t = trace(name);
        let cfg = SimConfig::for_trace(disks, &t);
        let measured = algo.run(&t, &cfg).elapsed.as_secs_f64();
        let paper = paper_elapsed(name, algo.name(), disks).expect("published cell");
        let delta = (measured - paper).abs() / paper;
        assert!(
            delta <= tol,
            "{name}/{}/{disks}: measured {measured:.2}s vs paper {paper:.2}s (delta {:.1}%, tol {:.0}%)",
            algo.name(),
            delta * 100.0,
            tol * 100.0
        );
    }
}

/// §4.2 on synth: fixed horizon fetches exactly 38000 blocks (720 more
/// than the minimum 37280), and aggressive wastes fetches at three disks
/// driving its elapsed time *above* its two-disk result.
#[test]
fn synth_reproduces_the_fundamental_differences() {
    let t = trace("synth");
    let fh = |d: usize| simulate(&t, PolicyKind::FixedHorizon, &SimConfig::for_trace(d, &t));
    let agg = |d: usize| simulate(&t, PolicyKind::Aggressive, &SimConfig::for_trace(d, &t));

    // Fixed horizon's fetch count is the paper's exactly.
    assert_eq!(fh(1).fetches, 38_000);
    assert_eq!(fh(3).fetches, 38_000);
    // Demand-optimal minimum is 37,280 (9 cold loops' worth).
    let demand = simulate(&t, PolicyKind::Demand, &SimConfig::for_trace(1, &t));
    assert_eq!(demand.fetches, 37_280);

    // Aggressive at 1 disk beats fixed horizon (I/O-bound)...
    assert!(agg(1).elapsed < fh(1).elapsed);
    // ...but at 3 disks its wasted fetches push it above both its own
    // 2-disk time and fixed horizon.
    let a2 = agg(2);
    let a3 = agg(3);
    assert!(
        a3.fetches > a2.fetches + 20_000,
        "waste missing: {} vs {}",
        a3.fetches,
        a2.fetches
    );
    assert!(a3.elapsed > a2.elapsed);
    assert!(a3.elapsed > fh(3).elapsed);
}

/// §5: forestall tracks the better of fixed horizon and aggressive in
/// every configuration (within the paper's ~6% band).
#[test]
fn forestall_tracks_the_best_practical_algorithm() {
    for name in ["synth", "cscope2", "postgres-select", "ld", "glimpse"] {
        let t = trace(name);
        for disks in [1usize, 2, 4, 8] {
            let cfg = SimConfig::for_trace(disks, &t);
            let fh = simulate(&t, PolicyKind::FixedHorizon, &cfg).elapsed;
            let agg = simulate(&t, PolicyKind::Aggressive, &cfg).elapsed;
            let forestall = simulate(&t, PolicyKind::Forestall, &cfg).elapsed;
            let best = fh.min(agg);
            assert!(
                forestall.as_secs_f64() <= best.as_secs_f64() * 1.08,
                "{name}/{disks}: forestall {:.2}s vs best {:.2}s",
                forestall.as_secs_f64(),
                best.as_secs_f64()
            );
        }
    }
}

/// Fixed horizon places the least I/O load; aggressive the most (§1.4).
#[test]
fn load_ordering_fixed_horizon_least_aggressive_most() {
    let t = trace("postgres-select");
    for disks in [2usize, 4, 8] {
        let cfg = SimConfig::for_trace(disks, &t);
        let fh = simulate(&t, PolicyKind::FixedHorizon, &cfg);
        let agg = simulate(&t, PolicyKind::Aggressive, &cfg);
        assert!(
            fh.fetches <= agg.fetches,
            "disks {disks}: fh {} > agg {}",
            fh.fetches,
            agg.fetches
        );
    }
}

/// Traces regenerate identically from the standard seed: the whole
/// pipeline is deterministic end to end.
#[test]
fn end_to_end_determinism() {
    let t1 = parcache::trace::trace_by_name("cscope2", SEED).unwrap();
    let t2 = parcache::trace::trace_by_name("cscope2", SEED).unwrap();
    assert_eq!(t1, t2);
    let cfg = SimConfig::for_trace(3, &t1);
    let a = simulate(&t1, PolicyKind::Forestall, &cfg);
    let b = simulate(&t2, PolicyKind::Forestall, &cfg);
    assert_eq!(a, b);
}
