//! Integration tests for the write-behind extension (paper §6).

use parcache::prelude::*;
use parcache_bench::trace;

fn with_writes(disks: usize, t: &Trace, period: usize) -> SimConfig {
    SimConfig::for_trace(disks, t).with_write_behind(period)
}

/// Write counts follow the configured period exactly.
#[test]
fn write_counts_match_the_period() {
    let t = trace("postgres-select");
    let r = simulate(&t, PolicyKind::FixedHorizon, &with_writes(2, &t, 4));
    assert_eq!(r.writes, (t.len() / 4) as u64);
    let read_only = simulate(&t, PolicyKind::FixedHorizon, &SimConfig::for_trace(2, &t));
    assert_eq!(read_only.writes, 0);
}

/// The accounting identity still holds, and writes add driver time.
#[test]
fn writes_charge_driver_overhead() {
    let t = trace("ld");
    let base = simulate(&t, PolicyKind::Aggressive, &SimConfig::for_trace(2, &t));
    let w = simulate(&t, PolicyKind::Aggressive, &with_writes(2, &t, 4));
    assert_eq!(w.elapsed, w.compute + w.driver + w.stall);
    // Same number of fetches, plus one write per 4 reads of driver time.
    let expected_extra = Nanos::from_micros(500) * w.writes;
    assert!(w.driver >= base.driver + expected_extra - Nanos::from_millis(2));
}

/// Write-behind never stalls a compute-bound application: postgres-join
/// barely moves even under a heavy write load.
#[test]
fn compute_bound_workloads_absorb_writes() {
    let t = trace("postgres-join");
    let base = simulate(&t, PolicyKind::Forestall, &SimConfig::for_trace(2, &t));
    let w = simulate(&t, PolicyKind::Forestall, &with_writes(2, &t, 2));
    let slowdown = w.elapsed.as_secs_f64() / base.elapsed.as_secs_f64();
    // Driver overhead for ~4.4k writes adds ~2.2s on ~81s: under 6%.
    assert!(slowdown < 1.06, "slowdown {slowdown:.3}");
}

/// On an I/O-bound trace at one disk, writes steal real bandwidth.
#[test]
fn io_bound_workloads_pay_for_writes() {
    let t = trace("postgres-select");
    let base = simulate(&t, PolicyKind::Aggressive, &SimConfig::for_trace(1, &t));
    let w = simulate(&t, PolicyKind::Aggressive, &with_writes(1, &t, 2));
    assert!(
        w.elapsed.as_secs_f64() > base.elapsed.as_secs_f64() * 1.10,
        "writes stole no bandwidth: {} vs {}",
        w.elapsed,
        base.elapsed
    );
}

/// Writes never change cache contents: fetch counts match the read-only
/// run for the late-fetching policy.
#[test]
fn writes_do_not_perturb_the_cache() {
    let t = trace("cscope1");
    let base = simulate(&t, PolicyKind::FixedHorizon, &SimConfig::for_trace(2, &t));
    let w = simulate(&t, PolicyKind::FixedHorizon, &with_writes(2, &t, 8));
    assert_eq!(base.fetches, w.fetches);
}
