//! Property-based tests over randomly generated workloads: the engine's
//! accounting and caching invariants must hold for *any* trace, policy,
//! and configuration, not just the paper's workloads.

use parcache::core::config::DiskModelKind;
use parcache::prelude::*;
use parcache::trace::Request;
use proptest::prelude::*;

/// A random small workload: block ids bounded so re-references are
/// common, compute times in a realistic range.
fn arb_trace(max_len: usize, block_space: u64) -> impl Strategy<Value = Trace> {
    prop::collection::vec(
        (0..block_space, 100u64..20_000u64),
        1..max_len,
    )
    .prop_map(|pairs| {
        let requests = pairs
            .into_iter()
            .map(|(b, us)| Request {
                block: BlockId(b),
                compute: Nanos::from_micros(us),
            })
            .collect();
        Trace::new("prop", requests, 8)
    })
}

fn arb_policy() -> impl Strategy<Value = PolicyKind> {
    prop::sample::select(PolicyKind::ALL.to_vec())
}

fn arb_config() -> impl Strategy<Value = SimConfig> {
    (1usize..5, 2usize..16, 1u64..30, prop::bool::ANY).prop_map(
        |(disks, cache, fetch_ms, detailed)| {
            let mut c = SimConfig::new(disks, cache);
            if detailed {
                c.disk_model = DiskModelKind::Hp97560;
            } else {
                c.disk_model = DiskModelKind::Uniform(Nanos::from_millis(fetch_ms));
            }
            c.horizon = 8;
            c.batch_size = 4;
            c.reverse_fetch_estimate = fetch_ms.max(2);
            c.reverse_batch_size = 4;
            c
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// elapsed = compute + driver + stall, for every policy on every
    /// workload and configuration.
    #[test]
    fn breakdown_identity(
        trace in arb_trace(120, 40),
        kind in arb_policy(),
        config in arb_config(),
    ) {
        let r = simulate(&trace, kind, &config);
        prop_assert_eq!(r.elapsed, r.compute + r.driver + r.stall);
        prop_assert_eq!(r.compute, trace.stats().compute);
    }

    /// Fetch-count bounds: at least the number of distinct blocks (cold
    /// cache), and driver time is exactly overhead x fetches.
    #[test]
    fn fetch_count_bounds(
        trace in arb_trace(100, 30),
        kind in arb_policy(),
        config in arb_config(),
    ) {
        let r = simulate(&trace, kind, &config);
        let distinct = trace.stats().distinct_blocks as u64;
        prop_assert!(r.fetches >= distinct, "{} < {}", r.fetches, distinct);
        prop_assert_eq!(r.driver, config.driver_overhead * r.fetches);
    }

    /// Demand fetching never prefetches: its fetch count equals the miss
    /// count of an independently computed Belady (OPT) replacement
    /// simulation.
    #[test]
    fn demand_fetches_match_independent_belady(
        trace in arb_trace(150, 25),
        cache in 2usize..12,
    ) {
        let mut config = SimConfig::new(2, cache);
        config.disk_model = DiskModelKind::Uniform(Nanos::from_millis(3));
        let r = simulate(&trace, PolicyKind::Demand, &config);
        prop_assert_eq!(r.fetches, belady_misses(&trace, cache));
    }

    /// In the uniform model with no driver overhead, demand fetching's
    /// elapsed time is exactly compute + misses x fetch_time: every miss
    /// stalls for one full fetch.
    #[test]
    fn demand_elapsed_is_exact_in_uniform_model(
        trace in arb_trace(100, 20),
        cache in 2usize..10,
        fetch_ms in 1u64..20,
    ) {
        let mut config = SimConfig::new(3, cache);
        config.disk_model = DiskModelKind::Uniform(Nanos::from_millis(fetch_ms));
        config.driver_overhead = Nanos::ZERO;
        let r = simulate(&trace, PolicyKind::Demand, &config);
        let expected = trace.stats().compute
            + Nanos::from_millis(fetch_ms) * belady_misses(&trace, cache);
        prop_assert_eq!(r.elapsed, expected);
    }

    /// Belady is monotone in cache size, so demand's fetch count never
    /// increases when the cache grows.
    #[test]
    fn demand_fetches_monotone_in_cache_size(
        trace in arb_trace(120, 25),
        cache in 2usize..10,
    ) {
        let run = |k: usize| {
            let mut config = SimConfig::new(1, k);
            config.disk_model = DiskModelKind::Uniform(Nanos::from_millis(2));
            simulate(&trace, PolicyKind::Demand, &config).fetches
        };
        prop_assert!(run(cache * 2) <= run(cache));
    }

    /// Simulation is a pure function of (trace, policy, config).
    #[test]
    fn simulation_is_deterministic(
        trace in arb_trace(80, 20),
        kind in arb_policy(),
        config in arb_config(),
    ) {
        let a = simulate(&trace, kind, &config);
        let b = simulate(&trace, kind, &config);
        prop_assert_eq!(a, b);
    }

    /// Per-disk utilization is a valid fraction and the average matches
    /// the per-disk stats.
    #[test]
    fn utilization_is_consistent(
        trace in arb_trace(100, 30),
        kind in arb_policy(),
        config in arb_config(),
    ) {
        let r = simulate(&trace, kind, &config);
        prop_assert!(r.avg_disk_utilization >= 0.0);
        prop_assert!(r.avg_disk_utilization <= 1.0 + 1e-9);
        if r.elapsed > Nanos::ZERO {
            let mean = r
                .per_disk
                .iter()
                .map(|d| d.busy.as_nanos() as f64 / r.elapsed.as_nanos() as f64)
                .sum::<f64>()
                / r.per_disk.len() as f64;
            prop_assert!((mean - r.avg_disk_utilization).abs() < 1e-9);
        }
    }

    /// Total fetches reported equal the sum of per-disk served counts.
    #[test]
    fn per_disk_stats_sum_to_totals(
        trace in arb_trace(100, 30),
        kind in arb_policy(),
        config in arb_config(),
    ) {
        let r = simulate(&trace, kind, &config);
        let served: u64 = r.per_disk.iter().map(|d| d.served).sum();
        prop_assert_eq!(served, r.fetches);
    }
}

/// Independent Belady (OPT) miss counter: no prefetching, evict the
/// resident block whose next use is furthest away.
fn belady_misses(trace: &Trace, cache: usize) -> u64 {
    use std::collections::{HashMap, HashSet};
    let seq: Vec<BlockId> = trace.requests.iter().map(|r| r.block).collect();
    // Next-use index for each position.
    let mut next_use = vec![usize::MAX; seq.len()];
    let mut last: HashMap<BlockId, usize> = HashMap::new();
    for (i, &b) in seq.iter().enumerate().rev() {
        next_use[i] = last.get(&b).copied().unwrap_or(usize::MAX);
        last.insert(b, i);
    }
    let mut resident: HashSet<BlockId> = HashSet::new();
    let mut misses = 0u64;
    for (i, &b) in seq.iter().enumerate() {
        if resident.contains(&b) {
            continue;
        }
        misses += 1;
        if resident.len() == cache {
            // Evict the resident block with the furthest next use.
            let victim = *resident
                .iter()
                .max_by_key(|&&r| {
                    // Next use of r strictly after i.
                    seq[i..]
                        .iter()
                        .position(|&x| x == r)
                        .map(|p| p + i)
                        .unwrap_or(usize::MAX)
                })
                .expect("cache non-empty");
            resident.remove(&victim);
        }
        resident.insert(b);
    }
    misses
}
