//! Property-style tests over randomly generated workloads: the engine's
//! accounting and caching invariants must hold for *any* trace, policy,
//! and configuration, not just the paper's workloads.
//!
//! Each property runs against a few dozen seeded random cases drawn from
//! the workspace's own deterministic [`Rng`], so failures reproduce
//! exactly and the suite needs no external property-testing framework.

use parcache::core::config::DiskModelKind;
use parcache::prelude::*;
use parcache::trace::Request;
use parcache::types::rng::Rng;

const CASES: u64 = 64;

/// A random small workload: block ids bounded so re-references are
/// common, compute times in a realistic range.
fn arb_trace(rng: &mut Rng, max_len: usize, block_space: u64) -> Trace {
    let len = rng.gen_range(1..max_len);
    let requests = (0..len)
        .map(|_| Request {
            block: BlockId(rng.gen_range(0..block_space)),
            compute: Nanos::from_micros(rng.gen_range(100u64..20_000)),
        })
        .collect();
    Trace::new("prop", requests, 8)
}

fn arb_policy(rng: &mut Rng) -> PolicyKind {
    *rng.choose(&PolicyKind::ALL).unwrap()
}

fn arb_config(rng: &mut Rng) -> SimConfig {
    let disks = rng.gen_range(1usize..5);
    let cache = rng.gen_range(2usize..16);
    let fetch_ms = rng.gen_range(1u64..30);
    let mut c = SimConfig::new(disks, cache);
    if rng.gen_bool(0.5) {
        c.disk_model = DiskModelKind::Hp97560;
    } else {
        c.disk_model = DiskModelKind::Uniform(Nanos::from_millis(fetch_ms));
    }
    c.horizon = 8;
    c.batch_size = 4;
    c.reverse_fetch_estimate = fetch_ms.max(2);
    c.reverse_batch_size = 4;
    c
}

/// elapsed = compute + driver + stall, for every policy on every workload
/// and configuration.
#[test]
fn breakdown_identity() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let trace = arb_trace(&mut rng, 120, 40);
        let kind = arb_policy(&mut rng);
        let config = arb_config(&mut rng);
        let r = simulate(&trace, kind, &config);
        assert_eq!(r.elapsed, r.compute + r.driver + r.stall, "seed {seed}");
        assert_eq!(r.compute, trace.stats().compute, "seed {seed}");
    }
}

/// Fetch-count bounds: at least the number of distinct blocks (cold
/// cache), and driver time is exactly overhead x fetches.
#[test]
fn fetch_count_bounds() {
    for seed in 100..100 + CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let trace = arb_trace(&mut rng, 100, 30);
        let kind = arb_policy(&mut rng);
        let config = arb_config(&mut rng);
        let r = simulate(&trace, kind, &config);
        let distinct = trace.stats().distinct_blocks as u64;
        assert!(
            r.fetches >= distinct,
            "seed {seed}: {} < {distinct}",
            r.fetches
        );
        assert_eq!(r.driver, config.driver_overhead * r.fetches, "seed {seed}");
    }
}

/// Demand fetching never prefetches: its fetch count equals the miss
/// count of an independently computed Belady (OPT) replacement
/// simulation.
#[test]
fn demand_fetches_match_independent_belady() {
    for seed in 200..200 + CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let trace = arb_trace(&mut rng, 150, 25);
        let cache = rng.gen_range(2usize..12);
        let mut config = SimConfig::new(2, cache);
        config.disk_model = DiskModelKind::Uniform(Nanos::from_millis(3));
        let r = simulate(&trace, PolicyKind::Demand, &config);
        assert_eq!(r.fetches, belady_misses(&trace, cache), "seed {seed}");
    }
}

/// In the uniform model with no driver overhead, demand fetching's
/// elapsed time is exactly compute + misses x fetch_time: every miss
/// stalls for one full fetch.
#[test]
fn demand_elapsed_is_exact_in_uniform_model() {
    for seed in 300..300 + CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let trace = arb_trace(&mut rng, 100, 20);
        let cache = rng.gen_range(2usize..10);
        let fetch_ms = rng.gen_range(1u64..20);
        let mut config = SimConfig::new(3, cache);
        config.disk_model = DiskModelKind::Uniform(Nanos::from_millis(fetch_ms));
        config.driver_overhead = Nanos::ZERO;
        let r = simulate(&trace, PolicyKind::Demand, &config);
        let expected =
            trace.stats().compute + Nanos::from_millis(fetch_ms) * belady_misses(&trace, cache);
        assert_eq!(r.elapsed, expected, "seed {seed}");
    }
}

/// Belady is monotone in cache size, so demand's fetch count never
/// increases when the cache grows.
#[test]
fn demand_fetches_monotone_in_cache_size() {
    for seed in 400..400 + CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let trace = arb_trace(&mut rng, 120, 25);
        let cache = rng.gen_range(2usize..10);
        let run = |k: usize| {
            let mut config = SimConfig::new(1, k);
            config.disk_model = DiskModelKind::Uniform(Nanos::from_millis(2));
            simulate(&trace, PolicyKind::Demand, &config).fetches
        };
        assert!(run(cache * 2) <= run(cache), "seed {seed}");
    }
}

/// Simulation is a pure function of (trace, policy, config).
#[test]
fn simulation_is_deterministic() {
    for seed in 500..500 + CASES / 2 {
        let mut rng = Rng::seed_from_u64(seed);
        let trace = arb_trace(&mut rng, 80, 20);
        let kind = arb_policy(&mut rng);
        let config = arb_config(&mut rng);
        let a = simulate(&trace, kind, &config);
        let b = simulate(&trace, kind, &config);
        assert_eq!(a, b, "seed {seed}");
    }
}

/// Per-disk utilization is a valid fraction and the average matches the
/// per-disk stats.
#[test]
fn utilization_is_consistent() {
    for seed in 600..600 + CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let trace = arb_trace(&mut rng, 100, 30);
        let kind = arb_policy(&mut rng);
        let config = arb_config(&mut rng);
        let r = simulate(&trace, kind, &config);
        assert!(r.avg_disk_utilization >= 0.0, "seed {seed}");
        assert!(r.avg_disk_utilization <= 1.0 + 1e-9, "seed {seed}");
        if r.elapsed > Nanos::ZERO {
            let mean = r
                .per_disk
                .iter()
                .map(|d| d.busy.as_nanos() as f64 / r.elapsed.as_nanos() as f64)
                .sum::<f64>()
                / r.per_disk.len() as f64;
            assert!((mean - r.avg_disk_utilization).abs() < 1e-9, "seed {seed}");
        }
    }
}

/// Total fetches reported equal the sum of per-disk served counts.
#[test]
fn per_disk_stats_sum_to_totals() {
    for seed in 700..700 + CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let trace = arb_trace(&mut rng, 100, 30);
        let kind = arb_policy(&mut rng);
        let config = arb_config(&mut rng);
        let r = simulate(&trace, kind, &config);
        let served: u64 = r.per_disk.iter().map(|d| d.served).sum();
        assert_eq!(served, r.fetches, "seed {seed}");
    }
}

/// Independent Belady (OPT) miss counter: no prefetching, evict the
/// resident block whose next use is furthest away.
fn belady_misses(trace: &Trace, cache: usize) -> u64 {
    use std::collections::{HashMap, HashSet};
    let seq: Vec<BlockId> = trace.requests.iter().map(|r| r.block).collect();
    // Next-use index for each position.
    let mut next_use = vec![usize::MAX; seq.len()];
    let mut last: HashMap<BlockId, usize> = HashMap::new();
    for (i, &b) in seq.iter().enumerate().rev() {
        next_use[i] = last.get(&b).copied().unwrap_or(usize::MAX);
        last.insert(b, i);
    }
    let mut resident: HashSet<BlockId> = HashSet::new();
    let mut misses = 0u64;
    for (i, &b) in seq.iter().enumerate() {
        if resident.contains(&b) {
            continue;
        }
        misses += 1;
        if resident.len() == cache {
            // Evict the resident block with the furthest next use.
            let victim = *resident
                .iter()
                .max_by_key(|&&r| {
                    // Next use of r strictly after i.
                    seq[i..]
                        .iter()
                        .position(|&x| x == r)
                        .map(|p| p + i)
                        .unwrap_or(usize::MAX)
                })
                .expect("cache non-empty");
            resident.remove(&victim);
        }
        resident.insert(b);
    }
    misses
}
