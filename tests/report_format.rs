//! Round-trip checks of the machine-readable report formats: the CSV
//! row must line up column-for-column with the header, and the JSON
//! document must carry the same numbers the report does.

use parcache::prelude::*;
use parcache::trace::synth::synth_trace;

fn sample_report() -> Report {
    let trace = synth_trace(2, 150, 11);
    let config = SimConfig::for_trace(3, &trace);
    simulate(&trace, PolicyKind::Forestall, &config)
}

/// Every header column has exactly one value in the row, in the same
/// order, and the values parse back to the report's fields.
#[test]
fn csv_row_round_trips_against_header() {
    let r = sample_report();
    let header: Vec<&str> = Report::csv_header().split(',').collect();
    let row: Vec<String> = r.to_csv_row().split(',').map(str::to_string).collect();
    assert_eq!(header.len(), row.len(), "column count mismatch");

    let field = |name: &str| -> &str {
        let i = header
            .iter()
            .position(|&h| h == name)
            .unwrap_or_else(|| panic!("missing column {name}"));
        &row[i]
    };

    assert_eq!(field("trace"), r.trace);
    assert_eq!(field("policy"), r.policy);
    assert_eq!(field("disks").parse::<usize>().unwrap(), r.disks);
    assert_eq!(field("fetches").parse::<u64>().unwrap(), r.fetches);
    assert_eq!(field("writes").parse::<u64>().unwrap(), r.writes);
    let close = |s: &str, v: f64, tol: f64| {
        let got: f64 = s.parse().unwrap();
        assert!((got - v).abs() <= tol, "{got} vs {v}");
    };
    close(field("elapsed_s"), r.elapsed.as_secs_f64(), 1e-6);
    close(field("compute_s"), r.compute.as_secs_f64(), 1e-6);
    close(field("driver_s"), r.driver.as_secs_f64(), 1e-6);
    close(field("stall_s"), r.stall.as_secs_f64(), 1e-6);
    close(
        field("avg_fetch_ms"),
        r.avg_fetch_time.as_millis_f64(),
        1e-4,
    );
    close(field("avg_disk_utilization"), r.avg_disk_utilization, 1e-4);

    // The breakdown identity survives the round trip within print
    // precision.
    let elapsed: f64 = field("elapsed_s").parse().unwrap();
    let parts: f64 = ["compute_s", "driver_s", "stall_s"]
        .iter()
        .map(|c| field(c).parse::<f64>().unwrap())
        .sum();
    assert!((elapsed - parts).abs() < 1e-5);
}

/// The JSON report carries the header's fields under the same names and
/// one per-disk object per drive.
#[test]
fn json_report_mirrors_csv_fields() {
    let r = sample_report();
    let json = r.to_json();
    for name in Report::csv_header().split(',') {
        assert!(
            json.contains(&format!(r#""{name}":"#)),
            "missing {name} in {json}"
        );
    }
    assert_eq!(json.matches(r#""served":"#).count(), r.disks);
    assert!(json.starts_with('{') && json.ends_with('}'));
    // Balanced braces and quotes: a cheap structural sanity check that
    // catches broken hand-rolled JSON.
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('"').count() % 2, 0);
}
