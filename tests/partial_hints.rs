//! Integration tests for the incomplete-hints extension (paper §6).
//!
//! Two disclosure models behave very differently, and both behaviors are
//! asserted here:
//!
//! * **Segment disclosure** (realistic — apps hint whole files or phases)
//!   degrades smoothly: elapsed time interpolates between the fully
//!   hinted and unhinted runs.
//! * **Per-reference random disclosure** (adversarial) can be *worse
//!   than no hints at all*: nearly every block keeps some disclosed
//!   future reference while losing others, so informed replacement makes
//!   confidently wrong evictions and aggressive prefetching churns.
//!   This is exactly why TIP2 pairs hints with cost-benefit buffer
//!   control; the paper's conjecture that fixed horizon degrades most
//!   gracefully holds in both models.

use parcache::core::hints::HintSpec;
use parcache::prelude::*;
use parcache_bench::trace;

fn segments(disks: usize, t: &Trace, f: f64) -> SimConfig {
    SimConfig::for_trace(disks, t).with_hints(HintSpec::Segments {
        fraction: f,
        mean_run: 200,
        seed: 11,
    })
}

fn bernoulli(disks: usize, t: &Trace, f: f64) -> SimConfig {
    SimConfig::for_trace(disks, t).with_hints(HintSpec::Fraction {
        fraction: f,
        seed: 11,
    })
}

/// Everything still works with no hints at all: the prefetchers
/// degenerate to demand fetching with LRU-style replacement.
#[test]
fn unhinted_run_completes_and_never_prefetches() {
    let t = trace("postgres-select");
    let cfg = SimConfig::for_trace(2, &t).with_hints(HintSpec::None);
    let demand = simulate(&t, PolicyKind::Demand, &cfg);
    for kind in PolicyKind::ALL {
        let r = simulate(&t, kind, &cfg);
        assert_eq!(r.elapsed, r.compute + r.driver + r.stall, "{kind}");
        assert!(r.stall > Nanos::ZERO, "{kind}");
        // With nothing disclosed every policy is demand fetching.
        assert_eq!(r.fetches, demand.fetches, "{kind}");
        assert_eq!(r.elapsed, demand.elapsed, "{kind}");
    }
}

/// Segment disclosure interpolates for the conservative fixed horizon:
/// more hints, less elapsed time. (The deeper-prefetching policies do
/// *not* interpolate — see the poisoned-hints test below — which is the
/// point of TIP2's cost-benefit control.)
#[test]
fn segment_hints_degrade_smoothly_for_fixed_horizon() {
    let t = trace("cscope2");
    let kind = PolicyKind::FixedHorizon;
    let full = simulate(&t, kind, &SimConfig::for_trace(2, &t));
    let half = simulate(&t, kind, &segments(2, &t, 0.5));
    let none = simulate(
        &t,
        kind,
        &SimConfig::for_trace(2, &t).with_hints(HintSpec::None),
    );
    assert!(
        full.elapsed < none.elapsed,
        "full {} !< none {}",
        full.elapsed,
        none.elapsed
    );
    // Half disclosure lands between the extremes, with slack for
    // boundary effects at segment edges.
    assert!(
        half.elapsed.as_secs_f64() <= none.elapsed.as_secs_f64() * 1.10,
        "half {} vs none {}",
        half.elapsed,
        none.elapsed
    );
    assert!(
        half.elapsed.as_secs_f64() >= full.elapsed.as_secs_f64() * 0.98,
        "half {} vs full {}",
        half.elapsed,
        full.elapsed
    );
}

/// The adversarial per-reference model really is poisonous: for the
/// trusting aggressive policy, half-random hints are *worse* than no
/// hints — the finding that motivates cost-benefit hint control.
#[test]
fn random_partial_hints_can_be_worse_than_none() {
    let t = trace("cscope2");
    let half = simulate(&t, PolicyKind::Aggressive, &bernoulli(2, &t, 0.5));
    let none = simulate(
        &t,
        PolicyKind::Aggressive,
        &SimConfig::for_trace(2, &t).with_hints(HintSpec::None),
    );
    assert!(
        half.elapsed > none.elapsed,
        "expected poisoned hints to hurt: half {} vs none {}",
        half.elapsed,
        none.elapsed
    );
}

/// A fully-hinted `Fraction` mask is identical to `Full`.
#[test]
fn fraction_one_equals_full() {
    let t = trace("ld");
    let full = simulate(&t, PolicyKind::Forestall, &SimConfig::for_trace(2, &t));
    let frac = simulate(&t, PolicyKind::Forestall, &bernoulli(2, &t, 1.0));
    assert_eq!(full.elapsed, frac.elapsed);
    assert_eq!(full.fetches, frac.fetches);
}

/// Hinted runs are deterministic in the hint seed.
#[test]
fn hint_sampling_is_deterministic() {
    let t = trace("ld");
    let a = simulate(&t, PolicyKind::Aggressive, &bernoulli(2, &t, 0.5));
    let b = simulate(&t, PolicyKind::Aggressive, &bernoulli(2, &t, 0.5));
    assert_eq!(a, b);
    let c = simulate(&t, PolicyKind::Aggressive, &segments(2, &t, 0.5));
    let d = simulate(&t, PolicyKind::Aggressive, &segments(2, &t, 0.5));
    assert_eq!(c, d);
}

/// The paper's conjecture: fixed horizon is least affected by missing
/// hints — its relative slowdown under adversarial half-disclosure is no
/// worse than aggressive's.
#[test]
fn fixed_horizon_degrades_most_gracefully() {
    let t = trace("cscope2");
    let slowdown = |kind: PolicyKind| {
        let full = simulate(&t, kind, &SimConfig::for_trace(2, &t))
            .elapsed
            .as_secs_f64();
        let half = simulate(&t, kind, &bernoulli(2, &t, 0.5))
            .elapsed
            .as_secs_f64();
        half / full
    };
    let fh = slowdown(PolicyKind::FixedHorizon);
    let agg = slowdown(PolicyKind::Aggressive);
    assert!(
        fh < agg,
        "fixed horizon slowdown {fh:.2}x vs aggressive {agg:.2}x"
    );
}
