//! Database scenario: bring your own workload.
//!
//! ```sh
//! cargo run --release --example database_scan
//! ```
//!
//! Builds a custom index-scan workload directly against the public API (a
//! trace is just a sequence of block references with compute times),
//! then asks the question an I/O architect would: *which prefetching
//! policy should this database use, and how many disks does it need?*

use parcache::prelude::*;
use parcache::trace::Request;

/// An index-nested-loop scan: a hot root/branch region probed between
/// scattered leaf reads, like a B-tree range query over an unclustered
/// relation.
fn index_scan_workload(relation_blocks: u64, probes: usize) -> Trace {
    let hot_region = 64u64; // root + branch blocks, re-read constantly
    let mut requests = Vec::with_capacity(probes * 2);
    // Key order is uncorrelated with physical placement: hash the probe
    // index. (A regular stride would create artificial rotational and
    // striping correlations no real B-tree scan has.)
    let scatter = |i: u64| {
        let mut x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 29;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 32;
        x % relation_blocks
    };
    for i in 0..probes as u64 {
        // Deterministic +/-25% jitter: real inter-request CPU times are
        // never constant, and constant times phase-lock against the
        // platter rotation.
        let jitter = |base: u64| base * (75 + (i * 7919) % 50) / 100;
        // Branch probe: hot, cached after the first touches.
        requests.push(Request {
            block: BlockId(i % hot_region),
            compute: Nanos::from_micros(jitter(800)),
        });
        // Leaf/data read: scattered across the relation.
        requests.push(Request {
            block: BlockId(hot_region + scatter(i)),
            compute: Nanos::from_micros(jitter(1_500)),
        });
    }
    Trace::new("index-scan", requests, 1280)
}

fn main() {
    let trace = index_scan_workload(12_000, 6_000);
    let stats = trace.stats();
    println!(
        "workload: {} reads, {} distinct blocks, {:.1}s compute\n",
        stats.reads,
        stats.distinct_blocks,
        stats.compute.as_secs_f64()
    );

    println!(
        "{:<6} {:>14} {:>14} {:>14} {:>14}",
        "disks", "demand", "fixed-horizon", "aggressive", "forestall"
    );
    let mut chosen: Option<(usize, f64)> = None;
    for disks in [1usize, 2, 4, 8] {
        let config = SimConfig::for_trace(disks, &trace);
        let elapsed = |kind: PolicyKind| simulate(&trace, kind, &config).elapsed.as_secs_f64();
        let forestall = elapsed(PolicyKind::Forestall);
        println!(
            "{:<6} {:>13.2}s {:>13.2}s {:>13.2}s {:>13.2}s",
            disks,
            elapsed(PolicyKind::Demand),
            elapsed(PolicyKind::FixedHorizon),
            elapsed(PolicyKind::Aggressive),
            forestall,
        );
        // Pick the smallest array within 10% of compute-bound.
        let compute = stats.compute.as_secs_f64();
        if chosen.is_none() && forestall < compute * 1.10 {
            chosen = Some((disks, forestall));
        }
    }

    println!();
    match chosen {
        Some((d, t)) => println!(
            "recommendation: forestall on {d} disk(s) — {t:.2}s, within 10% of \
             the {:.2}s compute-bound floor",
            stats.compute.as_secs_f64()
        ),
        None => println!("even 8 disks leave this workload I/O-bound; add spindles"),
    }
}
