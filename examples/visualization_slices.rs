//! Visualization scenario: scaling a 3-D slice viewer.
//!
//! ```sh
//! cargo run --release --example visualization_slices
//! ```
//!
//! Uses the paper's xds workload (XDataSlice cutting planes through a
//! 64 MB volume) to show two effects the paper highlights: near-linear
//! stall reduction with added disks until the application turns
//! compute-bound, and how a 2x faster CPU pushes that crossover out —
//! faster processors need more spindles.

use parcache::prelude::*;

fn speedup_curve(trace: &Trace, horizon: usize) {
    println!(
        "{:<6} {:>10} {:>10} {:>10} {:>8}",
        "disks", "elapsed", "stall", "speedup", "util"
    );
    let base = {
        let config = SimConfig::for_trace(1, trace).with_horizon(horizon);
        simulate(trace, PolicyKind::Forestall, &config)
    };
    for disks in [1usize, 2, 3, 4, 6, 8] {
        let config = SimConfig::for_trace(disks, trace).with_horizon(horizon);
        let r = simulate(trace, PolicyKind::Forestall, &config);
        println!(
            "{:<6} {:>9.2}s {:>9.2}s {:>9.2}x {:>8.2}",
            disks,
            r.elapsed.as_secs_f64(),
            r.stall.as_secs_f64(),
            base.elapsed.as_secs_f64() / r.elapsed.as_secs_f64(),
            r.avg_disk_utilization,
        );
    }
}

fn main() {
    let trace = parcache::trace::trace_by_name("xds", 1996).expect("known trace");
    println!("== xds under forestall ==");
    speedup_curve(&trace, 62);

    println!();
    println!("== same application on a 2x faster CPU (H doubled to 124) ==");
    let fast = trace.with_double_speed_cpu();
    speedup_curve(&fast, 124);

    println!();
    println!("note how the faster CPU deepens the I/O-bound region: the");
    println!("elapsed-time floor halves but more disks are needed to reach it.");
}
