//! Extending the simulator: plug in your own prefetching policy.
//!
//! ```sh
//! cargo run --release --example custom_policy
//! ```
//!
//! Implements a naive "readahead-N" policy — on every consumption,
//! prefetch the next N *sequential* block numbers, LRU-free, the way a
//! classic file system readahead works — and races it against the
//! paper's hint-based policies. The point of the exercise: sequential
//! readahead only wins on sequential traces, which is exactly the
//! limitation (§1.5) that motivated hint-based prefetching.

use parcache::core::engine::{simulate_with, Ctx};
use parcache::core::policy::{demand_fetch, Policy};
use parcache::prelude::*;

/// Prefetch the next `depth` sequential blocks after every reference.
struct ReadaheadN {
    depth: u64,
    last_consumed: Option<BlockId>,
}

impl ReadaheadN {
    fn new(depth: u64) -> ReadaheadN {
        ReadaheadN {
            depth,
            last_consumed: None,
        }
    }
}

impl Policy for ReadaheadN {
    fn name(&self) -> &'static str {
        "readahead-n"
    }

    fn decide(&mut self, ctx: &mut Ctx<'_>) {
        // Observe what was just consumed (the reference before the cursor).
        if ctx.cursor == 0 {
            return;
        }
        let current = ctx.oracle.block_at(ctx.cursor - 1);
        if self.last_consumed == Some(current) {
            return;
        }
        self.last_consumed = Some(current);
        // Prefetch sequentially following blocks, while frames are free or
        // an eviction is available.
        for step in 1..=self.depth {
            let candidate = BlockId(current.raw() + step);
            // Only blocks the trace ever references have cache frames;
            // readahead of anything else would be pure waste anyway.
            let Some(idx) = ctx.oracle.index_of(candidate) else {
                continue;
            };
            if ctx.cache.resident(idx) || ctx.cache.inflight(idx) {
                continue;
            }
            if ctx.cache.has_free_frame() {
                ctx.issue_fetch_idx(idx, None);
            } else {
                let cursor = ctx.cursor;
                match ctx.cache.furthest_resident(cursor, ctx.oracle) {
                    Some((victim, _)) => ctx.issue_fetch_idx(idx, Some(victim)),
                    None => break,
                }
            }
        }
    }

    fn on_miss(&mut self, ctx: &mut Ctx<'_>, block: BlockId) {
        demand_fetch(ctx, block);
    }
}

fn race(trace: &Trace) {
    let config = SimConfig::for_trace(2, trace);
    let mut readahead = ReadaheadN::new(8);
    let custom = simulate_with(trace, &mut readahead, &config);
    let fh = simulate(trace, PolicyKind::FixedHorizon, &config);
    let forestall = simulate(trace, PolicyKind::Forestall, &config);
    println!(
        "{:<18} {:>12} {:>12} {:>12}",
        trace.name, "readahead-8", "fixed-horizon", "forestall"
    );
    println!(
        "{:<18} {:>11.2}s {:>11.2}s {:>11.2}s   ({} vs {} vs {} fetches)",
        "",
        custom.elapsed.as_secs_f64(),
        fh.elapsed.as_secs_f64(),
        forestall.elapsed.as_secs_f64(),
        custom.fetches,
        fh.fetches,
        forestall.fetches,
    );
    println!();
}

fn main() {
    // Sequential workload: readahead's home turf.
    race(&parcache::trace::synth::synth_trace(10, 2000, 7));
    // Scattered index-order reads: readahead prefetches garbage.
    race(&parcache::trace::trace_by_name("postgres-select", 1996).expect("known"));
}
