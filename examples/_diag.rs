use parcache::core::hints::HintSpec;
use parcache::prelude::*;
fn main() {
    let t = parcache::trace::trace_by_name("cscope2", 1996).unwrap();
    for frac in [1.0f64, 0.75, 0.5, 0.25, 0.0] {
        let cfg = SimConfig::for_trace(2, &t).with_hints(HintSpec::Fraction {
            fraction: frac,
            seed: 11,
        });
        for kind in [
            PolicyKind::Demand,
            PolicyKind::FixedHorizon,
            PolicyKind::Aggressive,
        ] {
            let r = simulate(&t, kind, &cfg);
            println!("frac {frac:.2} {:<14} elapsed {:7.2}s stall {:7.2}s fetches {:6} avgfetch {:5.2}ms",
                kind.name(), r.elapsed.as_secs_f64(), r.stall.as_secs_f64(), r.fetches, r.avg_fetch_time.as_millis_f64());
        }
    }
}
