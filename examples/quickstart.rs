//! Quickstart: simulate the paper's algorithms on one trace.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Generates the postgres-select trace (the workload of the paper's
//! Figure 2), runs all five policies across a few array sizes, and prints
//! the elapsed-time breakdown the paper's figures plot.

use parcache::prelude::*;

fn main() {
    let trace = parcache::trace::trace_by_name("postgres-select", 1996).expect("known trace");
    let stats = trace.stats();
    println!(
        "trace {}: {} reads, {} distinct blocks, {:.1}s compute\n",
        trace.name,
        stats.reads,
        stats.distinct_blocks,
        stats.compute.as_secs_f64()
    );

    println!(
        "{:<6} {:<20} {:>10} {:>10} {:>10} {:>10} {:>8} {:>6}",
        "disks", "policy", "elapsed", "compute", "driver", "stall", "fetches", "util"
    );
    for disks in [1usize, 2, 4, 8] {
        let config = SimConfig::for_trace(disks, &trace);
        for kind in PolicyKind::ALL {
            let r = simulate(&trace, kind, &config);
            println!(
                "{:<6} {:<20} {:>9.3}s {:>9.3}s {:>9.3}s {:>9.3}s {:>8} {:>6.2}",
                disks,
                kind.name(),
                r.elapsed.as_secs_f64(),
                r.compute.as_secs_f64(),
                r.driver.as_secs_f64(),
                r.stall.as_secs_f64(),
                r.fetches,
                r.avg_disk_utilization,
            );
        }
        println!();
    }
}
