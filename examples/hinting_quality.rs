//! How much disclosure does prefetching need?
//!
//! ```sh
//! cargo run --release --example hinting_quality
//! ```
//!
//! The paper assumes the application discloses its entire access
//! sequence. Real applications hint what they can — whole files, phases,
//! or nothing. This example sweeps disclosure under the realistic
//! segment model and the adversarial random model, and prints a CSV you
//! can pipe into any plotting tool:
//!
//! ```sh
//! cargo run --release --example hinting_quality > hints.csv
//! ```

use parcache::core::engine::Report;
use parcache::core::hints::HintSpec;
use parcache::prelude::*;

fn main() {
    let trace = parcache::trace::trace_by_name("cscope2", 1996).expect("known trace");
    println!("{},hint_model,hint_fraction", Report::csv_header());

    for kind in [
        PolicyKind::Demand,
        PolicyKind::FixedHorizon,
        PolicyKind::Aggressive,
        PolicyKind::Forestall,
    ] {
        for percent in [0u32, 25, 50, 75, 100] {
            let fraction = f64::from(percent) / 100.0;
            for model in ["segments", "random"] {
                let hints = match (percent, model) {
                    (0, _) => HintSpec::None,
                    (100, _) => HintSpec::Full,
                    (_, "segments") => HintSpec::Segments {
                        fraction,
                        mean_run: 200,
                        seed: 42,
                    },
                    _ => HintSpec::Fraction { fraction, seed: 42 },
                };
                let config = SimConfig::for_trace(2, &trace).with_hints(hints);
                let report = simulate(&trace, kind, &config);
                println!("{},{model},{fraction:.2}", report.to_csv_row());
            }
        }
    }

    eprintln!();
    eprintln!("reading the output: under *segment* disclosure (how apps");
    eprintln!("actually hint), elapsed time falls steadily as disclosure");
    eprintln!("grows. Under *random* disclosure, the aggressive policies");
    eprintln!("can do worse than no hints at all — partial knowledge");
    eprintln!("misidentifies eviction victims. Fixed horizon, which trusts");
    eprintln!("hints the least, degrades the most gracefully either way.");
}
