//! Property-style tests of the trace substrate: placement, calibration,
//! compute-time generation, and the generators themselves, over seeded
//! random inputs from the workspace's own deterministic [`Rng`].

use parcache_trace::calibrate::calibrate_counts;
use parcache_trace::compute::{calibrate_total, ComputeDist, ComputeSampler};
use parcache_trace::placement::{GroupPlacer, GROUPS, GROUP_BLOCKS};
use parcache_trace::{trace_by_name, TRACE_NAMES};
use parcache_types::rng::Rng;
use parcache_types::{BlockId, Nanos};
use std::collections::HashSet;

const CASES: u64 = 64;

/// Placement never aliases two file blocks, for any mix of sizes and
/// strides, and never escapes the placement area.
#[test]
fn placement_is_always_injective() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(case);
        let seed = rng.next_u64();
        let n_files = rng.gen_range(1usize..40);
        let files: Vec<(u64, u64)> = (0..n_files)
            .map(|_| (rng.gen_range(1u64..200), rng.gen_range(1u64..3)))
            .collect();
        let mut placer = GroupPlacer::new(seed);
        let mut seen: HashSet<BlockId> = HashSet::new();
        for (len, stride) in files {
            let f = placer.place_strided(len, stride);
            for off in 0..len {
                let b = f.block(off);
                assert!(seen.insert(b), "case {case}: aliased {b}");
                assert!(b.raw() < GROUPS * GROUP_BLOCKS, "case {case}");
            }
        }
    }
}

/// Scattered placement has the same guarantees.
#[test]
fn scattered_placement_is_injective() {
    for case in 100..100 + CASES {
        let mut rng = Rng::seed_from_u64(case);
        let seed = rng.next_u64();
        let n = rng.gen_range(1usize..60);
        let sizes: Vec<u64> = (0..n).map(|_| rng.gen_range(1u64..50)).collect();
        let mut placer = GroupPlacer::new(seed);
        let files = placer.place_all_scattered(&sizes, 2);
        let mut seen: HashSet<BlockId> = HashSet::new();
        for f in &files {
            for off in 0..f.len {
                assert!(seen.insert(f.block(off)), "case {case}");
            }
        }
    }
}

/// Count calibration always hits its targets exactly when they are
/// reachable (at least as many reads as distinct blocks, no more distinct
/// than requested).
#[test]
fn calibration_hits_targets() {
    for case in 200..200 + CASES {
        let mut rng = Rng::seed_from_u64(case);
        let n = rng.gen_range(1usize..120);
        let base: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..30)).collect();
        let extra_distinct = rng.gen_range(0usize..10);
        let extra_reads = rng.gen_range(0usize..60);
        let mut blocks: Vec<BlockId> = base.iter().map(|&b| BlockId(b)).collect();
        let current_distinct = base.iter().collect::<HashSet<_>>().len();
        let target_distinct = current_distinct + extra_distinct;
        // Reachable: enough room for the fresh blocks plus the padding.
        let target_reads = blocks.len() + extra_distinct + extra_reads;
        let mut next = 1000u64;
        calibrate_counts(&mut blocks, target_reads, target_distinct, || {
            next += 1;
            BlockId(next)
        });
        assert_eq!(blocks.len(), target_reads, "case {case}");
        let distinct = blocks.iter().collect::<HashSet<_>>().len();
        assert_eq!(distinct, target_distinct, "case {case}");
    }
}

/// Total-compute calibration is exact for any distribution.
#[test]
fn compute_calibration_is_exact() {
    for case in 300..300 + CASES {
        let mut rng = Rng::seed_from_u64(case);
        let n = rng.gen_range(1usize..500);
        let target_ms = rng.gen_range(1u64..100_000);
        let mut sampler = ComputeSampler::new(ComputeDist::Exponential { mean_ms: 2.0 });
        let mut xs: Vec<Nanos> = (0..n).map(|_| sampler.sample(&mut rng)).collect();
        let target = Nanos::from_millis(target_ms);
        calibrate_total(&mut xs, target);
        let total: Nanos = xs.iter().copied().sum();
        assert_eq!(total, target, "case {case}");
    }
}

/// Every registered trace is deterministic in its seed and fits the
/// single-disk HP 97560.
#[test]
fn traces_fit_and_are_deterministic() {
    for seed in 0u64..12 {
        for name in TRACE_NAMES {
            let t = trace_by_name(name, seed).unwrap();
            assert!(t.max_block().unwrap().raw() < 167_751, "{name} seed {seed}");
            assert!(t.requests.iter().all(|r| r.compute >= Nanos::ZERO));
        }
    }
}

/// Trace statistics are invariant across seeds (placement moves, counts
/// do not).
#[test]
fn stats_are_seed_invariant() {
    for name in TRACE_NAMES {
        let a = trace_by_name(name, 1).unwrap().stats();
        let b = trace_by_name(name, 99).unwrap().stats();
        assert_eq!(a.reads, b.reads, "{name}");
        assert_eq!(a.distinct_blocks, b.distinct_blocks, "{name}");
        assert_eq!(a.compute, b.compute, "{name}");
    }
}
