//! Trace model and synthetic application-trace generators.
//!
//! The paper drives its simulations with file-access traces of ten
//! applications collected on a DECstation 5000/200 (§3.1, Table 3). Those
//! traces are not publicly available, so this crate *synthesizes* them:
//! each generator reproduces the published per-trace statistics exactly
//! (read count, distinct block count, total compute time) and the access
//! structure §3.1 describes qualitatively — sequential re-reads for dinero
//! and cscope, hot index blocks over cold data for glimpse and
//! postgres-join, an indexed sparse selection for postgres-select, strided
//! planar slices for xds, bursty inter-reference compute for cscope3, and
//! Poisson compute for synth.
//!
//! All generators are deterministic given their seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod calibrate;
pub mod compute;
pub mod io;
pub mod placement;
pub mod registry;
pub mod synth;

pub use io::{load, save};
pub use registry::{standard_traces, trace_by_name, TRACE_NAMES};

use parcache_types::{BlockId, Nanos};
use std::collections::HashSet;

/// One traced file-block read: the application computes for `compute`,
/// then references `block`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// The logical block referenced.
    pub block: BlockId,
    /// CPU time the application spends *before* this reference (includes
    /// the cost of consuming the previous block's data).
    pub compute: Nanos,
}

/// A read-request trace of a single execution thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Trace name (paper's naming, e.g. `"postgres-select"`).
    pub name: String,
    /// The request sequence.
    pub requests: Vec<Request>,
    /// The cache size (in 8 KB blocks) the paper uses for this trace:
    /// 512 for dinero and cscope1, 1280 for all others.
    pub cache_blocks: usize,
}

/// Summary statistics in the shape of the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStats {
    /// Number of read requests.
    pub reads: usize,
    /// Number of distinct blocks referenced.
    pub distinct_blocks: usize,
    /// Total application compute time.
    pub compute: Nanos,
}

impl Trace {
    /// Creates a trace from parts.
    pub fn new(name: impl Into<String>, requests: Vec<Request>, cache_blocks: usize) -> Trace {
        Trace {
            name: name.into(),
            requests,
            cache_blocks,
        }
    }

    /// Number of read requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when the trace has no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Computes Table 3-style summary statistics.
    pub fn stats(&self) -> TraceStats {
        let distinct: HashSet<BlockId> = self.requests.iter().map(|r| r.block).collect();
        TraceStats {
            reads: self.requests.len(),
            distinct_blocks: distinct.len(),
            compute: self.requests.iter().map(|r| r.compute).sum(),
        }
    }

    /// The largest block number referenced, or `None` for an empty trace.
    pub fn max_block(&self) -> Option<BlockId> {
        self.requests.iter().map(|r| r.block).max()
    }

    /// Returns a copy with every compute time halved — the paper's
    /// "processor twice as fast" experiment (§4.4, appendix C).
    pub fn with_double_speed_cpu(&self) -> Trace {
        let requests = self
            .requests
            .iter()
            .map(|r| Request {
                block: r.block,
                compute: Nanos(r.compute.as_nanos() / 2),
            })
            .collect();
        Trace {
            name: format!("{}-2xcpu", self.name),
            requests,
            cache_blocks: self.cache_blocks,
        }
    }

    /// Returns the mean inter-reference compute time.
    pub fn mean_compute(&self) -> Nanos {
        if self.requests.is_empty() {
            return Nanos::ZERO;
        }
        let total: Nanos = self.requests.iter().map(|r| r.compute).sum();
        total / self.requests.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Trace {
        Trace::new(
            "tiny",
            vec![
                Request {
                    block: BlockId(1),
                    compute: Nanos::from_millis(2),
                },
                Request {
                    block: BlockId(2),
                    compute: Nanos::from_millis(4),
                },
                Request {
                    block: BlockId(1),
                    compute: Nanos::from_millis(6),
                },
            ],
            512,
        )
    }

    #[test]
    fn traces_are_shareable_across_threads() {
        // Sweep workers share one generated trace through `Arc<Trace>`
        // instead of regenerating hundreds of thousands of requests per
        // worker; that only works while Trace stays Send + Sync.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Trace>();
        assert_send_sync::<Request>();
        assert_send_sync::<std::sync::Arc<Trace>>();
    }

    #[test]
    fn stats_count_reads_distinct_and_compute() {
        let s = tiny().stats();
        assert_eq!(s.reads, 3);
        assert_eq!(s.distinct_blocks, 2);
        assert_eq!(s.compute, Nanos::from_millis(12));
    }

    #[test]
    fn double_speed_halves_compute() {
        let t = tiny().with_double_speed_cpu();
        assert_eq!(t.stats().compute, Nanos::from_millis(6));
        assert_eq!(t.name, "tiny-2xcpu");
        assert_eq!(t.stats().reads, 3);
    }

    #[test]
    fn mean_compute() {
        assert_eq!(tiny().mean_compute(), Nanos::from_millis(4));
        let empty = Trace::new("e", vec![], 512);
        assert_eq!(empty.mean_compute(), Nanos::ZERO);
        assert!(empty.is_empty());
    }

    #[test]
    fn max_block() {
        assert_eq!(tiny().max_block(), Some(BlockId(2)));
        assert_eq!(Trace::new("e", vec![], 1).max_block(), None);
    }
}
