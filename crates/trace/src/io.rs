//! Reading and writing traces as plain text.
//!
//! The original study replayed traces collected with kernel
//! instrumentation; anyone adopting this simulator will want to feed it
//! their own. The format is deliberately trivial — one header line, then
//! one `block compute_ns` pair per read request, `#` comments ignored —
//! so any collector can emit it with a printf:
//!
//! ```text
//! parcache-trace v1 name=myapp cache_blocks=1280
//! # block  compute_ns
//! 17 1500000
//! 18 900000
//! ```

use crate::{Request, Trace};
use parcache_types::{BlockId, Nanos};
use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors from parsing a trace file.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed content, with a line number and message.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceIoError::Parse { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> TraceIoError {
        TraceIoError::Io(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> TraceIoError {
    TraceIoError::Parse {
        line,
        message: message.into(),
    }
}

/// Writes `trace` in the text format to `w`.
pub fn write_trace(trace: &Trace, w: impl Write) -> Result<(), TraceIoError> {
    let mut w = BufWriter::new(w);
    writeln!(
        w,
        "parcache-trace v1 name={} cache_blocks={}",
        trace.name, trace.cache_blocks
    )?;
    writeln!(w, "# block compute_ns")?;
    for r in &trace.requests {
        writeln!(w, "{} {}", r.block.raw(), r.compute.as_nanos())?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a trace in the text format from `r`.
pub fn read_trace(r: impl Read) -> Result<Trace, TraceIoError> {
    let mut lines = BufReader::new(r).lines().enumerate();

    // Header.
    let (idx, header) = lines
        .next()
        .ok_or_else(|| parse_err(1, "empty input"))
        .and_then(|(i, l)| Ok((i, l?)))?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some("parcache-trace") || parts.next() != Some("v1") {
        return Err(parse_err(idx + 1, "missing `parcache-trace v1` header"));
    }
    let mut name = String::from("unnamed");
    let mut cache_blocks: usize = 1280;
    for field in parts {
        match field.split_once('=') {
            Some(("name", v)) => name = v.to_string(),
            Some(("cache_blocks", v)) => {
                cache_blocks = v
                    .parse()
                    .map_err(|_| parse_err(idx + 1, format!("bad cache_blocks `{v}`")))?;
            }
            _ => {
                return Err(parse_err(
                    idx + 1,
                    format!("unknown header field `{field}`"),
                ))
            }
        }
    }
    if cache_blocks == 0 {
        return Err(parse_err(idx + 1, "cache_blocks must be positive"));
    }

    // Body.
    let mut requests = Vec::new();
    for (i, line) in lines {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut cols = line.split_whitespace();
        // A trimmed non-empty line always yields a first column, but a
        // malformed file must never be able to panic the loader.
        let block: u64 = cols
            .next()
            .ok_or_else(|| parse_err(i + 1, "missing block column"))?
            .parse()
            .map_err(|_| parse_err(i + 1, "bad block number"))?;
        let compute: u64 = cols
            .next()
            .ok_or_else(|| parse_err(i + 1, "missing compute_ns column"))?
            .parse()
            .map_err(|_| parse_err(i + 1, "bad compute_ns"))?;
        if cols.next().is_some() {
            return Err(parse_err(i + 1, "trailing columns"));
        }
        requests.push(Request {
            block: BlockId(block),
            compute: Nanos(compute),
        });
    }
    Ok(Trace::new(name, requests, cache_blocks))
}

/// Saves `trace` to `path`.
pub fn save(trace: &Trace, path: impl AsRef<Path>) -> Result<(), TraceIoError> {
    write_trace(trace, std::fs::File::create(path)?)
}

/// Loads a trace from `path`.
pub fn load(path: impl AsRef<Path>) -> Result<Trace, TraceIoError> {
    read_trace(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::synth_trace;

    fn round_trip(t: &Trace) -> Trace {
        let mut buf = Vec::new();
        write_trace(t, &mut buf).expect("write");
        read_trace(&buf[..]).expect("read")
    }

    #[test]
    fn round_trips_exactly() {
        let t = synth_trace(3, 50, 7);
        assert_eq!(round_trip(&t), t);
    }

    #[test]
    fn round_trips_paper_trace() {
        let t = crate::trace_by_name("ld", 1).expect("known");
        let back = round_trip(&t);
        assert_eq!(back, t);
        assert_eq!(back.stats(), t.stats());
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "parcache-trace v1 name=x cache_blocks=8\n\n# c\n1 1000\n\n2 2000\n";
        let t = read_trace(text.as_bytes()).expect("parse");
        assert_eq!(t.name, "x");
        assert_eq!(t.cache_blocks, 8);
        assert_eq!(t.len(), 2);
        assert_eq!(t.requests[1].block, BlockId(2));
        assert_eq!(t.requests[1].compute, Nanos(2000));
    }

    #[test]
    fn header_defaults_apply() {
        let t = read_trace("parcache-trace v1\n5 1\n".as_bytes()).expect("parse");
        assert_eq!(t.name, "unnamed");
        assert_eq!(t.cache_blocks, 1280);
    }

    #[test]
    fn rejects_bad_input() {
        let cases: &[(&str, &str)] = &[
            ("", "empty input"),
            ("nope v1\n", "header"),
            ("parcache-trace\n", "header"),
            ("parcache-trace v2\n", "header"),
            ("parcache-trace v1 bogus=1\n", "unknown header field"),
            ("parcache-trace v1 cache_blocks=0\n", "positive"),
            ("parcache-trace v1 cache_blocks=many\n", "bad cache_blocks"),
            ("parcache-trace v1\nx 1\n", "bad block"),
            ("parcache-trace v1\n-1 1\n", "bad block"),
            ("parcache-trace v1\n1\n", "missing compute_ns"),
            ("parcache-trace v1\n1 soon\n", "bad compute_ns"),
            ("parcache-trace v1\n1 -5\n", "bad compute_ns"),
            ("parcache-trace v1\n1 2 3\n", "trailing"),
        ];
        for (text, needle) in cases {
            let err = read_trace(text.as_bytes()).expect_err(text);
            let msg = err.to_string();
            assert!(msg.contains(needle), "{text:?}: {msg}");
        }
    }

    #[test]
    fn save_and_load_files() {
        let dir = std::env::temp_dir().join("parcache-io-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("t.trace");
        let t = synth_trace(2, 25, 3);
        save(&t, &path).expect("save");
        let back = load(&path).expect("load");
        assert_eq!(back, t);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn error_display_is_informative() {
        let err = read_trace("parcache-trace v1\nx 1\n".as_bytes()).unwrap_err();
        let s = err.to_string();
        assert!(s.contains("line 2"), "{s}");
    }
}
