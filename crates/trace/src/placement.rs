//! File placement into cylinder groups.
//!
//! §3.2 of the paper: traces that name blocks by (file, offset) have each
//! file placed at a random starting point within a group of 8550 8 KB
//! blocks (100 cylinders on the HP 97560), "corresponding to typical file
//! system clustering mechanisms". Placement here is injective — two file
//! blocks never alias to the same logical block — which the paper's real
//! filesystem guarantees implicitly.

use parcache_types::rng::Rng;
use parcache_types::BlockId;

/// Blocks per cylinder group: 100 cylinders of the HP 97560.
///
/// Kept numerically in sync with the disk crate's geometry by a test there
/// (`hundred_cylinder_group_is_8550_blocks`).
pub const GROUP_BLOCKS: u64 = 8550;

/// Number of groups used for placement. 19 groups of 8550 blocks fit
/// within a single HP 97560 (167,751 blocks), the binding case (one disk).
pub const GROUPS: u64 = 19;

/// Assigns files to starting logical blocks within cylinder groups.
#[derive(Debug)]
pub struct GroupPlacer {
    rng: Rng,
    /// Next free offset within each group.
    free: Vec<u64>,
    /// Next group to try, for round-robin spreading.
    cursor: usize,
}

/// A placed file: a (possibly strided) run of logical blocks.
///
/// A stride of 1 is a contiguous extent. A stride of 2 models mid-90s
/// FFS "rotdelay" allocation, where logically consecutive file blocks are
/// physically separated by a gap so the CPU of the era could keep up with
/// the rotation — the reason per-block access to a file cost close to a
/// full rotation rather than streaming at media rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileExtent {
    /// First logical block of the file.
    pub start: BlockId,
    /// Length in blocks.
    pub len: u64,
    /// Spacing between consecutive file blocks.
    pub stride: u64,
}

impl FileExtent {
    /// The logical block at `offset` within the file.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= len` — an out-of-range file offset is a bug in
    /// the trace generator.
    pub fn block(&self, offset: u64) -> BlockId {
        assert!(
            offset < self.len,
            "offset {offset} beyond file of {} blocks",
            self.len
        );
        BlockId(self.start.raw() + offset * self.stride)
    }
}

impl GroupPlacer {
    /// Creates a placer with a deterministic seed.
    pub fn new(seed: u64) -> GroupPlacer {
        GroupPlacer {
            rng: Rng::seed_from_u64(seed),
            free: vec![0; GROUPS as usize],
            cursor: 0,
        }
    }

    /// Places a file of `len` blocks: picks the next group (round-robin)
    /// with room, at a small random gap past the group's previous file —
    /// random placement within the group, clustered like a real FFS.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot fit in any group (trace generators stay
    /// far below this limit).
    pub fn place(&mut self, len: u64) -> FileExtent {
        self.place_strided(len, 1)
    }

    /// Like [`place`](GroupPlacer::place), with a block stride: a stride
    /// of 2 interleaves the file with a one-block gap, modeling FFS
    /// rotdelay allocation.
    ///
    /// # Panics
    ///
    /// Panics if the (strided) file cannot fit in any group.
    pub fn place_strided(&mut self, len: u64, stride: u64) -> FileExtent {
        assert!(stride >= 1, "stride must be at least 1");
        let span = (len - 1) * stride + 1;
        assert!(
            len > 0 && span <= GROUP_BLOCKS,
            "file of {len} blocks (stride {stride}) cannot be placed"
        );
        for _ in 0..self.free.len() {
            let g = self.cursor;
            self.cursor = (self.cursor + 1) % self.free.len();
            let used = self.free[g];
            let remaining = GROUP_BLOCKS - used;
            if remaining < span {
                continue;
            }
            // Random gap before the file, bounded so the file still fits.
            let slack = remaining - span;
            let gap = if slack == 0 {
                0
            } else {
                self.rng.gen_range(0..=slack.min(64))
            };
            let start = g as u64 * GROUP_BLOCKS + used + gap;
            self.free[g] = used + gap + span;
            return FileExtent {
                start: BlockId(start),
                len,
                stride,
            };
        }
        panic!("no group has room for a file of {len} blocks (stride {stride})");
    }

    /// Places a run of files of the given sizes.
    pub fn place_all(&mut self, sizes: &[u64]) -> Vec<FileExtent> {
        sizes.iter().map(|&s| self.place(s)).collect()
    }

    /// Like [`place_strided`](GroupPlacer::place_strided), but into a
    /// *random* group instead of the round-robin next one — models a
    /// package of files accreted over time and scattered across the
    /// filesystem's cylinder groups (used by the small-file app traces).
    pub fn place_scattered(&mut self, len: u64, stride: u64) -> FileExtent {
        // Jump the round-robin cursor to a random group, then reuse the
        // ordinary placement path (which scans forward on overflow).
        self.cursor = self.rng.gen_range(0..self.free.len());
        self.place_strided(len, stride)
    }

    /// Places a run of files of the given sizes into random groups, with
    /// the given block stride.
    pub fn place_all_scattered(&mut self, sizes: &[u64], stride: u64) -> Vec<FileExtent> {
        sizes
            .iter()
            .map(|&s| self.place_scattered(s, stride))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn placement_is_injective() {
        let mut p = GroupPlacer::new(1);
        let files = p.place_all(&[100, 200, 50, 400, 8000, 300]);
        let mut seen = HashSet::new();
        for f in &files {
            for off in 0..f.len {
                assert!(seen.insert(f.block(off)), "aliased block in {f:?}");
            }
        }
    }

    #[test]
    fn placement_is_deterministic() {
        let a = GroupPlacer::new(7).place_all(&[10, 20, 30]);
        let b = GroupPlacer::new(7).place_all(&[10, 20, 30]);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = GroupPlacer::new(1).place(100);
        let b = GroupPlacer::new(2).place(100);
        // Starts may coincide by chance for one file, but gaps are random;
        // placing several files should diverge.
        let mut pa = GroupPlacer::new(1);
        let mut pb = GroupPlacer::new(2);
        let fa = pa.place_all(&[100, 100, 100, 100]);
        let fb = pb.place_all(&[100, 100, 100, 100]);
        assert!(a == a && b == b);
        assert_ne!(fa, fb);
    }

    #[test]
    fn files_stay_within_their_group() {
        let mut p = GroupPlacer::new(3);
        for _ in 0..30 {
            let f = p.place(500);
            let g_start = f.start.raw() / GROUP_BLOCKS;
            let g_end = (f.start.raw() + f.len - 1) / GROUP_BLOCKS;
            assert_eq!(g_start, g_end, "file crosses a group boundary");
        }
    }

    #[test]
    fn placement_fits_one_disk() {
        let mut p = GroupPlacer::new(4);
        let files = p.place_all(&vec![100; 200]);
        let max = files.iter().map(|f| f.start.raw() + f.len).max().unwrap();
        assert!(max <= GROUPS * GROUP_BLOCKS);
        // 19 groups of 8550 fit in the HP 97560's 167,751 blocks.
        const { assert!(GROUPS * GROUP_BLOCKS <= 167_751) };
    }

    #[test]
    #[should_panic(expected = "cannot be placed")]
    fn oversized_file_rejected() {
        GroupPlacer::new(0).place(GROUP_BLOCKS + 1);
    }

    #[test]
    #[should_panic(expected = "beyond file")]
    fn out_of_range_offset_panics() {
        let mut p = GroupPlacer::new(0);
        let f = p.place(10);
        f.block(10);
    }
}
