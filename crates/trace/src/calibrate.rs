//! Exact calibration of generated reference streams to Table 3.
//!
//! Generators build a structurally faithful reference stream first, then
//! this pass pins the stream to the paper's exact read count and distinct
//! block count: appending fresh never-seen blocks to raise the distinct
//! count, appending re-references to raise the read count, or trimming
//! re-references from the tail to lower it — always preserving every
//! block's first appearance so the distinct count is never disturbed.

use parcache_types::BlockId;
use std::collections::HashSet;

/// Adjusts `blocks` to exactly `target_reads` references over exactly
/// `target_distinct` distinct blocks.
///
/// `fresh` must yield blocks that have never appeared in the stream (e.g.
/// from a reserved file extent); it is called once per missing distinct
/// block.
///
/// # Panics
///
/// Panics if the stream already has more than `target_distinct` distinct
/// blocks, if a "fresh" block was actually seen before, or if the stream
/// cannot be trimmed to `target_reads` without dropping a first appearance.
/// All three indicate a bug in the calling generator.
pub fn calibrate_counts(
    blocks: &mut Vec<BlockId>,
    target_reads: usize,
    target_distinct: usize,
    mut fresh: impl FnMut() -> BlockId,
) {
    let mut seen: HashSet<BlockId> = blocks.iter().copied().collect();
    assert!(
        seen.len() <= target_distinct,
        "generator produced {} distinct blocks, target {}",
        seen.len(),
        target_distinct
    );

    // Raise the distinct count with fresh blocks.
    while seen.len() < target_distinct {
        let b = fresh();
        assert!(seen.insert(b), "fresh() returned an already-seen block {b}");
        blocks.push(b);
    }

    match blocks.len().cmp(&target_reads) {
        std::cmp::Ordering::Less => {
            // Append re-references, cycling deterministically over the
            // distinct blocks in first-appearance order.
            let order: Vec<BlockId> = first_appearances(blocks);
            let mut i = 0;
            while blocks.len() < target_reads {
                blocks.push(order[i % order.len()]);
                i += 1;
            }
        }
        std::cmp::Ordering::Greater => {
            // Trim re-references from the tail backwards.
            let mut counts = std::collections::HashMap::new();
            for b in blocks.iter() {
                *counts.entry(*b).or_insert(0u32) += 1;
            }
            let mut excess = blocks.len() - target_reads;
            let mut keep = vec![true; blocks.len()];
            for (i, b) in blocks.iter().enumerate().rev() {
                if excess == 0 {
                    break;
                }
                let c = counts.get_mut(b).expect("counted above");
                if *c > 1 {
                    *c -= 1;
                    keep[i] = false;
                    excess -= 1;
                }
            }
            assert_eq!(
                excess, 0,
                "cannot trim to {target_reads} reads without losing distinct blocks"
            );
            let mut it = keep.iter();
            blocks.retain(|_| *it.next().expect("keep mask matches length"));
        }
        std::cmp::Ordering::Equal => {}
    }

    debug_assert_eq!(blocks.len(), target_reads);
    debug_assert_eq!(
        blocks.iter().copied().collect::<HashSet<_>>().len(),
        target_distinct
    );
}

/// The distinct blocks of `blocks`, in order of first appearance.
fn first_appearances(blocks: &[BlockId]) -> Vec<BlockId> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for &b in blocks {
        if seen.insert(b) {
            out.push(b);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(xs: &[u64]) -> Vec<BlockId> {
        xs.iter().map(|&x| BlockId(x)).collect()
    }

    fn distinct(blocks: &[BlockId]) -> usize {
        blocks.iter().copied().collect::<HashSet<_>>().len()
    }

    #[test]
    fn already_exact_is_untouched() {
        let mut b = ids(&[1, 2, 1, 3]);
        let orig = b.clone();
        calibrate_counts(&mut b, 4, 3, || unreachable!());
        assert_eq!(b, orig);
    }

    #[test]
    fn appends_fresh_blocks_for_distinct() {
        let mut b = ids(&[1, 2]);
        let mut next = 100;
        calibrate_counts(&mut b, 5, 4, || {
            next += 1;
            BlockId(next)
        });
        assert_eq!(b.len(), 5);
        assert_eq!(distinct(&b), 4);
    }

    #[test]
    fn pads_reads_with_rereferences() {
        let mut b = ids(&[1, 2, 3]);
        calibrate_counts(&mut b, 7, 3, || unreachable!());
        assert_eq!(b.len(), 7);
        assert_eq!(distinct(&b), 3);
        // Padding cycles first appearances: 1, 2, 3, 1.
        assert_eq!(&b[3..], &ids(&[1, 2, 3, 1])[..]);
    }

    #[test]
    fn trims_rereferences_from_tail() {
        let mut b = ids(&[1, 2, 1, 3, 2, 1]);
        calibrate_counts(&mut b, 4, 3, || unreachable!());
        assert_eq!(b.len(), 4);
        assert_eq!(distinct(&b), 3);
        // First appearances survive.
        assert_eq!(b[0], BlockId(1));
        assert_eq!(b[1], BlockId(2));
        assert_eq!(b[3], BlockId(3));
    }

    #[test]
    #[should_panic(expected = "distinct blocks")]
    fn too_many_distinct_panics() {
        let mut b = ids(&[1, 2, 3, 4]);
        calibrate_counts(&mut b, 4, 2, || unreachable!());
    }

    #[test]
    #[should_panic(expected = "cannot trim")]
    fn untrimmable_stream_panics() {
        let mut b = ids(&[1, 2, 3]);
        calibrate_counts(&mut b, 2, 3, || unreachable!());
    }

    #[test]
    fn trim_keeps_order_of_survivors() {
        let mut b = ids(&[5, 6, 5, 6, 5, 6, 7]);
        calibrate_counts(&mut b, 4, 3, || unreachable!());
        assert_eq!(b, ids(&[5, 6, 5, 7]));
    }
}
