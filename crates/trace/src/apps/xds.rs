//! The `xds` trace: 3-D visualization slices.
//!
//! §3.1: "a 3-D data visualization program, XDataSlice, generating 25
//! planar slice images at random orientations from a 64 MB data file."
//! Table 3: 10,435 reads, 5392 distinct blocks, 30.8 s compute.
//!
//! Model: the 64 MB file (8192 blocks) is a 32 x 16 x 16 grid of blocks.
//! Each slice selects the blocks a plane passes through and reads them in
//! file order — producing the strided access patterns that make xds's
//! per-disk load unusually irregular. An interactive user rotates and
//! pans gradually, so successive slice orientations form a random walk:
//! consecutive slices overlap heavily, and those re-reads hit the cache
//! (the paper's fixed-horizon run fetches 5900 blocks over 10,435 reads
//! of 5392 distinct — nearly every block is fetched only once).

use super::assemble;
use crate::calibrate::calibrate_counts;
use crate::compute::ComputeDist;
use crate::placement::GroupPlacer;
use crate::Trace;
use parcache_types::rng::Rng;
use parcache_types::Nanos;
use std::collections::HashSet;

/// Table 3 targets.
pub const READS: usize = 10_435;
/// Distinct blocks.
pub const DISTINCT: usize = 5_392;
/// Total compute: 30.8 s.
pub const COMPUTE: Nanos = Nanos(30_800_000_000);

/// Block-grid dimensions of the visualized volume. Deliberately not
/// powers of two: with a 32 x 16 x 16 grid every axis-aligned slice
/// strides by a multiple of the array size and lands on a single disk of
/// an even-sized array — a striping-aliasing pathology the paper's xds
/// (random orientations over real data) does not exhibit.
const NX: i64 = 31;
const NY: i64 = 17;
const NZ: i64 = 15;
/// Total blocks in the 64 MB data file (the grid occupies the front
/// 31 * 17 * 15 = 7905 blocks; the remainder is header/colormap data).
const FILE_BLOCKS: u64 = 8192;

/// Generates the xds trace.
pub fn xds(seed: u64) -> Trace {
    let mut rng = Rng::seed_from_u64(seed);
    // A large dataset written in one pass is laid out contiguously (no
    // rotdelay stride: a global stride would alias against even array
    // sizes under one-block striping and starve half the disks, which
    // the paper's xds does not exhibit).
    let mut placer = GroupPlacer::new(seed ^ 0x5EED);
    let file = placer.place(FILE_BLOCKS);

    let mut blocks = Vec::with_capacity(READS + 1024);
    let mut seen: HashSet<u64> = HashSet::new();
    let mut walk = SliceWalk::new(&mut rng);
    // Keep slicing until we have enough reads; never exceed the distinct
    // target (extra-new blocks within a slice are skipped once reached).
    while blocks.len() < READS {
        for off in walk.next_slice(&mut rng) {
            let is_new = !seen.contains(&off);
            if is_new && seen.len() >= DISTINCT {
                continue;
            }
            seen.insert(off);
            blocks.push(off);
        }
    }
    let mut blocks: Vec<_> = blocks.into_iter().map(|off| file.block(off)).collect();
    let mut unused = (0..FILE_BLOCKS).filter(move |o| !seen.contains(o));
    calibrate_counts(&mut blocks, READS, DISTINCT, || {
        file.block(unused.next().expect("file larger than distinct target"))
    });

    assemble(
        "xds",
        blocks,
        ComputeDist::Jittered {
            mean_ms: COMPUTE.as_millis_f64() / READS as f64,
            jitter_frac: 0.4,
        },
        COMPUTE,
        1280,
        seed,
    )
}

/// A gradually-evolving slice orientation: normal and anchor point walk
/// randomly, so consecutive slices overlap like an interactive session.
struct SliceWalk {
    normal: (f64, f64, f64),
    point: (f64, f64, f64),
}

impl SliceWalk {
    fn new(rng: &mut Rng) -> SliceWalk {
        SliceWalk {
            normal: random_unit(rng),
            point: (
                rng.gen_range(4.0..NX as f64 - 4.0),
                rng.gen_range(2.0..NY as f64 - 2.0),
                rng.gen_range(2.0..NZ as f64 - 2.0),
            ),
        }
    }

    /// Perturbs the orientation slightly and returns the new slice's
    /// block offsets, in file order.
    fn next_slice(&mut self, rng: &mut Rng) -> Vec<u64> {
        let (mut a, mut b, mut c) = self.normal;
        a += rng.gen_range(-0.15..=0.15);
        b += rng.gen_range(-0.15..=0.15);
        c += rng.gen_range(-0.15..=0.15);
        let n = (a * a + b * b + c * c).sqrt();
        if n > 0.1 {
            self.normal = (a / n, b / n, c / n);
        } else {
            self.normal = random_unit(rng);
        }
        let (px, py, pz) = &mut self.point;
        *px = (*px + rng.gen_range(-1.5..=1.5)).clamp(2.0, NX as f64 - 2.0);
        *py = (*py + rng.gen_range(-1.0..=1.0)).clamp(1.0, NY as f64 - 1.0);
        *pz = (*pz + rng.gen_range(-1.0..=1.0)).clamp(1.0, NZ as f64 - 1.0);
        plane_slice(self.normal, self.point)
    }
}

/// A random unit vector (rejection-free, renormalized).
fn random_unit(rng: &mut Rng) -> (f64, f64, f64) {
    loop {
        let a: f64 = rng.gen_range(-1.0..=1.0);
        let b: f64 = rng.gen_range(-1.0..=1.0);
        let c: f64 = rng.gen_range(-1.0..=1.0);
        let n = (a * a + b * b + c * c).sqrt();
        if n > 0.1 {
            return (a / n, b / n, c / n);
        }
    }
}

/// Block offsets the plane through `point` with `normal` passes through,
/// in file order.
fn plane_slice(normal: (f64, f64, f64), point: (f64, f64, f64)) -> Vec<u64> {
    let (a, b, c) = normal;
    let (px, py, pz) = point;
    let d = a * px + b * py + c * pz;
    // One-block-thick slab: |distance| < half the block diagonal reach.
    let half = 0.5 * (a.abs() + b.abs() + c.abs());

    let mut out = Vec::new();
    for z in 0..NZ {
        for y in 0..NY {
            for x in 0..NX {
                let dist = a * x as f64 + b * y as f64 + c * z as f64 - d;
                if dist.abs() <= half {
                    out.push((x + NX * (y + NY * z)) as u64);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table_3() {
        let s = xds(1).stats();
        assert_eq!(
            (s.reads, s.distinct_blocks, s.compute),
            (READS, DISTINCT, COMPUTE)
        );
    }

    #[test]
    fn slices_mix_sequential_and_strided_access() {
        let t = xds(1);
        // Slices perpendicular to the file's fast axis read contiguous
        // runs; other orientations produce strides. Both regimes must be
        // present in quantity — that mix is what makes xds's disk loads
        // irregular.
        let adjacent = t
            .requests
            .windows(2)
            .filter(|w| w[1].block.raw() == w[0].block.raw() + 1)
            .count();
        // (File stride is 1, so in-slice runs step by exactly one block.)
        let strided = t.len() - 1 - adjacent;
        assert!(
            adjacent * 10 > t.len(),
            "{adjacent}/{} adjacent steps — no sequential slices",
            t.len()
        );
        assert!(
            strided * 10 > t.len(),
            "{strided}/{} strided steps — too sequential for xds",
            t.len()
        );
    }

    #[test]
    fn plane_slices_have_reasonable_size() {
        // Individual slices vary a lot (a plane can clip a corner), but
        // every slice is non-trivial and the average is a real
        // cross-section of the 32 x 16 x 16 volume.
        let mut rng = Rng::seed_from_u64(4);
        let mut walk = SliceWalk::new(&mut rng);
        let sizes: Vec<usize> = (0..50).map(|_| walk.next_slice(&mut rng).len()).collect();
        for &s in &sizes {
            assert!((8..4100).contains(&s), "slice of {s} blocks");
        }
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        assert!((150.0..1500.0).contains(&mean), "mean slice {mean}");
    }

    #[test]
    fn consecutive_slices_overlap() {
        // The interactive random walk means adjacent slices share many
        // blocks — that is what keeps re-reads cache-resident.
        let mut rng = Rng::seed_from_u64(9);
        let mut walk = SliceWalk::new(&mut rng);
        let mut prev: Option<std::collections::HashSet<u64>> = None;
        let mut overlaps = Vec::new();
        for _ in 0..20 {
            let s: std::collections::HashSet<u64> = walk.next_slice(&mut rng).into_iter().collect();
            if let Some(p) = &prev {
                let inter = s.intersection(p).count();
                overlaps.push(inter as f64 / s.len().max(1) as f64);
            }
            prev = Some(s);
        }
        let mean = overlaps.iter().sum::<f64>() / overlaps.len() as f64;
        assert!(mean > 0.25, "mean consecutive overlap {mean}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(xds(2), xds(2));
    }
}
