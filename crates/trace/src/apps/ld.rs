//! The `ld` trace: the Ultrix link-editor building a kernel.
//!
//! §3.1: "the Ultrix link-editor, building the Ultrix 4.3 kernel from
//! about 25 MB of object files." Table 3: 5881 reads, 2882 distinct
//! blocks, 8.2 s compute — a strongly I/O-bound workload (1.4 ms mean
//! compute).
//!
//! Model: ~170 object files, processed one at a time with strong per-file
//! locality — the linker reads a file's header, then its full contents,
//! then re-reads most of it while relocating, before moving on. The
//! paper's fixed-horizon fetch count (2904 ≈ the 2882 distinct blocks)
//! shows that virtually every re-read hits the cache, which only
//! per-file locality can achieve given a working set twice the cache.

use super::{assemble, file_sizes};
use crate::calibrate::calibrate_counts;
use crate::compute::ComputeDist;
use crate::placement::GroupPlacer;
use crate::Trace;
use parcache_types::rng::Rng;
use parcache_types::Nanos;

/// Table 3 targets.
pub const READS: usize = 5_881;
/// Distinct blocks (~25 MB of object files).
pub const DISTINCT: usize = 2_882;
/// Total compute: 8.2 s.
pub const COMPUTE: Nanos = Nanos(8_200_000_000);

/// Generates the ld trace.
pub fn ld(seed: u64) -> Trace {
    let mut rng = Rng::seed_from_u64(seed);
    let mut placer = GroupPlacer::new(seed ^ 0x5EED);
    // Several hundred small object files (a mid-90s kernel build tree),
    // scattered across cylinder groups with FFS rotdelay interleaving.
    let sizes = file_sizes(&mut rng, DISTINCT as u64, 2, 16);
    let files = placer.place_all_scattered(&sizes, 2);

    let mut blocks = Vec::with_capacity(READS + 512);
    // Per-file processing: header, full contents, then a relocation
    // re-read of most of the file — all before the next file.
    for f in &files {
        blocks.push(f.block(0)); // symbol table / header
        for off in 0..f.len {
            blocks.push(f.block(off));
        }
        let reread = (f.len as f64 * 0.98).round() as u64;
        for off in 0..reread.min(f.len) {
            blocks.push(f.block(off));
        }
    }
    calibrate_counts(&mut blocks, READS, DISTINCT, || {
        unreachable!("the full pass covers every block")
    });

    assemble(
        "ld",
        blocks,
        ComputeDist::Jittered {
            mean_ms: COMPUTE.as_millis_f64() / READS as f64,
            jitter_frac: 0.3,
        },
        COMPUTE,
        1280,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table_3() {
        let s = ld(1).stats();
        assert_eq!(
            (s.reads, s.distinct_blocks, s.compute),
            (READS, DISTINCT, COMPUTE)
        );
    }

    #[test]
    fn is_io_bound() {
        // 8.2s compute over 5881 reads: ~1.4 ms mean, far below a disk
        // access time — the paper's I/O-bound end of the spectrum.
        let mean = ld(1).mean_compute().as_millis_f64();
        assert!((1.0..2.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn headers_are_reread() {
        let t = ld(1);
        let mut counts = std::collections::HashMap::new();
        for r in &t.requests {
            *counts.entry(r.block).or_insert(0usize) += 1;
        }
        // Header blocks (read in passes 1, 2, and 3) appear at least 3x.
        let multi = counts.values().filter(|&&c| c >= 3).count();
        assert!(multi >= 100, "only {multi} blocks read 3+ times");
    }

    #[test]
    fn deterministic() {
        assert_eq!(ld(2), ld(2));
    }
}
