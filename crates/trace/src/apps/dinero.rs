//! The `dinero` trace: a cache simulator re-reading one input file.
//!
//! §3.1: "a cache simulator written by Mark Hill. This application reads
//! one file sequentially multiple times." Table 3: 8867 reads, 986
//! distinct blocks, 103.5 s of compute. That is eight full sequential
//! passes plus a ninth partial pass, with long (~11.7 ms) per-reference
//! compute times — a compute-bound workload.

use super::assemble;
use crate::compute::ComputeDist;
use crate::placement::GroupPlacer;
use crate::Trace;
use parcache_types::Nanos;

/// Table 3 targets.
pub const READS: usize = 8_867;
/// Distinct blocks (the input file's size).
pub const DISTINCT: usize = 986;
/// Total compute time: 103.5 s.
pub const COMPUTE: Nanos = Nanos(103_500_000_000);

/// Generates the dinero trace.
pub fn dinero(seed: u64) -> Trace {
    let mut placer = GroupPlacer::new(seed);
    let file = placer.place(DISTINCT as u64);

    let mut blocks = Vec::with_capacity(READS);
    while blocks.len() < READS {
        let remaining = READS - blocks.len();
        for off in 0..(DISTINCT.min(remaining) as u64) {
            blocks.push(file.block(off));
        }
    }
    debug_assert_eq!(blocks.len(), READS);

    assemble(
        "dinero",
        blocks,
        ComputeDist::Jittered {
            mean_ms: COMPUTE.as_millis_f64() / READS as f64,
            jitter_frac: 0.15,
        },
        COMPUTE,
        512,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table_3() {
        let t = dinero(1);
        let s = t.stats();
        assert_eq!(s.reads, READS);
        assert_eq!(s.distinct_blocks, DISTINCT);
        assert_eq!(s.compute, COMPUTE);
        assert_eq!(t.cache_blocks, 512);
    }

    #[test]
    fn access_is_repeated_sequential() {
        let t = dinero(1);
        let first = t.requests[0].block;
        // The pass restarts at the file start every DISTINCT reads.
        assert_eq!(t.requests[DISTINCT].block, first);
        assert_eq!(t.requests[2 * DISTINCT].block, first);
        // Within a pass, blocks ascend by one.
        assert_eq!(t.requests[1].block.raw(), first.raw() + 1);
    }

    #[test]
    fn deterministic() {
        assert_eq!(dinero(9), dinero(9));
    }
}
