//! Synthetic generators for the paper's nine application traces.
//!
//! Each generator reproduces the exact Table 3 statistics (reads, distinct
//! blocks, total compute time) and the qualitative access structure §3.1
//! describes. See each submodule for the per-application model.

pub mod cscope;
pub mod dinero;
pub mod glimpse;
pub mod ld;
pub mod postgres;
pub mod xds;

use crate::compute::{calibrate_total, ComputeDist, ComputeSampler};
use crate::{Request, Trace};
use parcache_types::rng::Rng;
use parcache_types::{BlockId, Nanos};

/// Draws per-reference compute times from `dist`, calibrates their total
/// to exactly `total_compute`, and zips them with `blocks` into a trace.
pub(crate) fn assemble(
    name: &str,
    blocks: Vec<BlockId>,
    dist: ComputeDist,
    total_compute: Nanos,
    cache_blocks: usize,
    seed: u64,
) -> Trace {
    let mut rng = Rng::seed_from_u64(seed ^ 0xC0FFEE);
    let mut sampler = ComputeSampler::new(dist);
    let mut computes: Vec<Nanos> = blocks.iter().map(|_| sampler.sample(&mut rng)).collect();
    calibrate_total(&mut computes, total_compute);
    let requests = blocks
        .into_iter()
        .zip(computes)
        .map(|(block, compute)| Request { block, compute })
        .collect();
    Trace::new(name, requests, cache_blocks)
}

/// Random file sizes (in blocks) in `[min, max]` summing exactly to
/// `total`. The final file takes the remainder.
pub(crate) fn file_sizes(rng: &mut Rng, total: u64, min: u64, max: u64) -> Vec<u64> {
    assert!(min >= 1 && min <= max && total >= 1);
    let mut sizes = Vec::new();
    let mut left = total;
    while left > 0 {
        let s = if left <= max {
            left
        } else {
            let s = rng.gen_range(min..=max);
            // Never strand a remainder smaller than `min`.
            if left - s < min {
                left
            } else {
                s
            }
        };
        sizes.push(s);
        left -= s;
    }
    sizes
}

/// Appends a full sequential read of every file in `files` to `out`.
pub(crate) fn sequential_pass(out: &mut Vec<BlockId>, files: &[crate::placement::FileExtent]) {
    for f in files {
        for off in 0..f.len {
            out.push(f.block(off));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_sizes_sum_exactly() {
        let mut rng = Rng::seed_from_u64(5);
        for total in [10u64, 137, 1073, 4947] {
            let sizes = file_sizes(&mut rng, total, 4, 80);
            assert_eq!(sizes.iter().sum::<u64>(), total);
            // All but possibly the last respect the minimum.
            for &s in &sizes {
                assert!(s >= 1);
            }
        }
    }

    #[test]
    fn assemble_produces_exact_compute_total() {
        let blocks = vec![BlockId(1), BlockId(2), BlockId(3)];
        let t = assemble(
            "x",
            blocks,
            ComputeDist::Jittered {
                mean_ms: 2.0,
                jitter_frac: 0.1,
            },
            Nanos::from_millis(100),
            512,
            1,
        );
        assert_eq!(t.stats().compute, Nanos::from_millis(100));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn sequential_pass_lists_every_block_in_order() {
        let mut p = crate::placement::GroupPlacer::new(1);
        let files = p.place_all(&[3, 2]);
        let mut out = Vec::new();
        sequential_pass(&mut out, &files);
        assert_eq!(out.len(), 5);
        assert_eq!(out[0], files[0].block(0));
        assert_eq!(out[2], files[0].block(2));
        assert_eq!(out[3], files[1].block(0));
    }
}
