//! The `postgres-join` and `postgres-select` traces: relational queries.
//!
//! §3.1, from the Wisconsin Benchmark:
//!
//! * postgres-join — an index nested-loop join of an indexed 32 MB
//!   relation with a non-indexed 3.2 MB relation; "the index blocks are
//!   accessed much more frequently than the data blocks." 8896 reads,
//!   3793 distinct, 79.2 s compute (8.9 ms mean — compute-bound).
//! * postgres-select — an indexed selection of 2% of the tuples of the
//!   32 MB relation, reading qualifying blocks in index-key order, which
//!   is physically scattered. 5044 reads, 3085 distinct, 11.5 s compute
//!   (2.3 ms mean — I/O-bound).
//!
//! **Paper erratum.** Table 3 lists the compute totals the other way
//! around (join 11.5 s, select 79.2 s), but the paper's own appendix
//! tables and figures are unambiguous: postgres-join's elapsed time is
//! ~85 s with negligible stall (compute ≈ 79.2 s) and postgres-select's
//! is ~45 s at one disk with ~32 s of stall (compute ≈ 11.5 s); Figure 2
//! and Tables 4/8 show postgres-select as I/O-bound. We follow the
//! appendix, since those are the behaviors the reproduction targets.

use super::assemble;
use crate::calibrate::calibrate_counts;
use crate::compute::ComputeDist;
use crate::placement::GroupPlacer;
use crate::Trace;
use parcache_types::rng::Rng;
use parcache_types::Nanos;

/// postgres-join Table 3 targets.
pub const JOIN_READS: usize = 8_896;
/// Distinct blocks of postgres-join.
pub const JOIN_DISTINCT: usize = 3_793;
/// postgres-join total compute: 79.2 s (see the module-level erratum).
pub const JOIN_COMPUTE: Nanos = Nanos(79_200_000_000);

/// postgres-select Table 3 targets.
pub const SELECT_READS: usize = 5_044;
/// Distinct blocks of postgres-select.
pub const SELECT_DISTINCT: usize = 3_085;
/// postgres-select total compute: 11.5 s (see the module-level erratum).
pub const SELECT_COMPUTE: Nanos = Nanos(11_500_000_000);

/// Generates the postgres-join trace.
///
/// Layout: a B-tree index file (100 blocks, hot), the outer relation's
/// data file (3283 blocks), and the inner 3.2 MB relation (410 blocks).
/// The query scans the inner relation sequentially; after each inner
/// block it performs a run of index probes, each probe reading one index
/// block (root-heavy) and one outer data block.
pub fn postgres_join(seed: u64) -> Trace {
    const INDEX: u64 = 100;
    const INNER: u64 = 410;
    let outer: u64 = JOIN_DISTINCT as u64 - INDEX - INNER; // 3283

    let mut rng = Rng::seed_from_u64(seed);
    let mut placer = GroupPlacer::new(seed ^ 0x5EED);
    let index_file = placer.place(INDEX);
    let outer_file = placer.place(outer);
    let inner_file = placer.place(INNER);

    // Probe targets: every outer block once (shuffled), with extra
    // re-probes of *recently touched* blocks interleaved — duplicate join
    // keys land near each other in the index scan, so re-probes are
    // temporally local and hit the cache (the paper's join fetches barely
    // exceed its distinct count).
    let probes = (JOIN_READS - INNER as usize - INDEX as usize) / 2; // 4193
    let mut fresh: Vec<u64> = (0..outer).collect();
    rng.shuffle(&mut fresh);
    let extras = probes - fresh.len();
    let step = fresh.len() / extras + 1;
    let mut outer_targets: Vec<u64> = Vec::with_capacity(probes);
    for (i, &t) in fresh.iter().enumerate() {
        outer_targets.push(t);
        if i % step == step - 1 {
            // Re-probe one of the last few targets.
            let back = rng.gen_range(1..=8.min(outer_targets.len()));
            outer_targets.push(outer_targets[outer_targets.len() - back]);
        }
    }
    while outer_targets.len() < probes {
        let back = rng.gen_range(1..=32.min(outer_targets.len()));
        outer_targets.push(outer_targets[outer_targets.len() - back]);
    }
    outer_targets.truncate(probes);

    let mut blocks = Vec::with_capacity(JOIN_READS);
    // Initial index scan (covers all index blocks).
    for off in 0..INDEX {
        blocks.push(index_file.block(off));
    }
    // Interleave the inner scan with probe runs.
    let mut probe_iter = outer_targets.into_iter();
    let per_inner = probes / INNER as usize;
    let mut extra = probes % INNER as usize;
    for inner_off in 0..INNER {
        blocks.push(inner_file.block(inner_off));
        let mut run = per_inner;
        if extra > 0 {
            run += 1;
            extra -= 1;
        }
        for _ in 0..run {
            let target = probe_iter.next().expect("probe budget matches");
            // Root-heavy index access: low offsets are much hotter.
            let u: f64 = rng.gen_range(0.0..1.0);
            let idx = ((u * u * u) * INDEX as f64) as u64;
            blocks.push(index_file.block(idx.min(INDEX - 1)));
            blocks.push(outer_file.block(target));
        }
    }
    calibrate_counts(&mut blocks, JOIN_READS, JOIN_DISTINCT, || {
        unreachable!("index scan + probe cover everything")
    });

    assemble(
        "postgres-join",
        blocks,
        ComputeDist::Jittered {
            mean_ms: JOIN_COMPUTE.as_millis_f64() / JOIN_READS as f64,
            jitter_frac: 0.3,
        },
        JOIN_COMPUTE,
        1280,
        seed,
    )
}

/// Generates the postgres-select trace.
///
/// Layout: an 85-block index and the full 32 MB relation (4096 blocks).
/// The indexed selection walks the index leaves in key order, reading
/// each qualifying tuple's data block; keys are uncorrelated with
/// physical placement, so the 3000 distinct data blocks touched arrive
/// in scattered order — which is what gives the trace its ~15 ms average
/// fetch times on one disk.
pub fn postgres_select(seed: u64) -> Trace {
    const INDEX: u64 = 85;
    const RELATION: u64 = 4096; // 32 MB of 8 KB blocks
    let data: u64 = SELECT_DISTINCT as u64 - INDEX; // 3000 touched

    let mut rng = Rng::seed_from_u64(seed);
    let mut placer = GroupPlacer::new(seed ^ 0x5EED);
    let index_file = placer.place(INDEX);
    // The relation spans an entire cylinder-group-sized region.
    let data_file = placer.place(RELATION);

    // The selection touches 3000 of the 4096 blocks, in key (random)
    // order.
    let mut touched: Vec<u64> = (0..RELATION).collect();
    rng.shuffle(&mut touched);
    touched.truncate(data as usize);

    let mut blocks = Vec::with_capacity(SELECT_READS);
    let index_rereads = SELECT_READS - INDEX as usize - data as usize; // 1959
    let mut leaf_budget = index_rereads;
    // Initial root-to-leaf descent: read the whole index once.
    for off in 0..INDEX {
        blocks.push(index_file.block(off));
    }
    let mut leaf = 0u64;
    for (d, &target) in touched.iter().enumerate() {
        // Periodically advance to the next index leaf.
        if leaf_budget > 0 && (d as u64).is_multiple_of((data / index_rereads as u64 + 1).max(1)) {
            blocks.push(index_file.block(leaf % INDEX));
            leaf += 1;
            leaf_budget -= 1;
        }
        blocks.push(data_file.block(target));
    }
    // Any remaining leaf budget: trailing index re-reads.
    for _ in 0..leaf_budget {
        blocks.push(index_file.block(leaf % INDEX));
        leaf += 1;
    }
    calibrate_counts(&mut blocks, SELECT_READS, SELECT_DISTINCT, || {
        unreachable!("index + data scans cover everything")
    });

    assemble(
        "postgres-select",
        blocks,
        ComputeDist::Jittered {
            mean_ms: SELECT_COMPUTE.as_millis_f64() / SELECT_READS as f64,
            jitter_frac: 0.3,
        },
        SELECT_COMPUTE,
        1280,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcache_types::BlockId;
    use std::collections::HashMap;

    #[test]
    fn join_matches_table_3() {
        let s = postgres_join(1).stats();
        assert_eq!(
            (s.reads, s.distinct_blocks, s.compute),
            (JOIN_READS, JOIN_DISTINCT, JOIN_COMPUTE)
        );
    }

    #[test]
    fn select_matches_table_3() {
        let s = postgres_select(1).stats();
        assert_eq!(
            (s.reads, s.distinct_blocks, s.compute),
            (SELECT_READS, SELECT_DISTINCT, SELECT_COMPUTE)
        );
    }

    #[test]
    fn join_index_blocks_are_much_hotter_than_data() {
        let t = postgres_join(1);
        let mut counts: HashMap<BlockId, usize> = HashMap::new();
        for r in &t.requests {
            *counts.entry(r.block).or_default() += 1;
        }
        let mut freqs: Vec<usize> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        // The hottest blocks (index root region) dwarf the median.
        assert!(freqs[0] >= 50, "hottest block only {}", freqs[0]);
        assert!(freqs[freqs.len() / 2] <= 2);
    }

    #[test]
    fn select_is_io_bound_join_is_compute_bound() {
        // Per the appendix tables (see the module-level erratum): select
        // averages ~2.3 ms of compute per read, join ~8.9 ms.
        let select = postgres_select(1).mean_compute().as_millis_f64();
        let join = postgres_join(1).mean_compute().as_millis_f64();
        assert!((2.0..2.6).contains(&select), "select mean {select}");
        assert!((8.0..9.8).contains(&join), "join mean {join}");
    }

    #[test]
    fn select_data_reads_are_scattered() {
        let t = postgres_select(1);
        // Data blocks are each read exactly once (the index blocks are the
        // repeated ones). The selection follows key order, which is
        // uncorrelated with physical placement: once-read blocks must NOT
        // arrive in anything close to ascending order.
        let mut counts: HashMap<BlockId, usize> = HashMap::new();
        for r in &t.requests {
            *counts.entry(r.block).or_default() += 1;
        }
        let singles: Vec<u64> = t
            .requests
            .iter()
            .map(|r| r.block)
            .filter(|b| counts[b] == 1)
            .map(|b| b.raw())
            .collect();
        assert!(
            singles.len() >= 2_900,
            "{} single-read blocks",
            singles.len()
        );
        let ascending = singles.windows(2).filter(|w| w[1] > w[0]).count();
        let frac = ascending as f64 / (singles.len() - 1) as f64;
        assert!(
            (0.4..0.6).contains(&frac),
            "ascending fraction {frac} — not scattered"
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(postgres_join(7), postgres_join(7));
        assert_eq!(postgres_select(7), postgres_select(7));
    }
}
