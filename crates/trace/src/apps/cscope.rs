//! The `cscope[1-3]` traces: source-code searches over a package of files.
//!
//! §3.1: cscope is an interactive C-source examination tool; with multiple
//! queries it "will read multiple files sequentially multiple times".
//!
//! * cscope1 — eight symbol searches over an 18 MB package: 8673 reads of
//!   1073 distinct blocks, 24.9 s compute.
//! * cscope2 — four text searches over the same package: 20,206 reads of
//!   2462 distinct blocks, 37.1 s compute.
//! * cscope3 — four text searches over a 10 MB package: 30,200 reads of
//!   3910 distinct blocks, 74.1 s compute with *bursty* inter-reference
//!   times (runs near 1 ms interleaved with runs near 7 ms, §4.3).
//!
//! Workload structure, pinned down by the paper's appendix fetch counts:
//!
//! * cscope1's fixed-horizon run fetches 4953 blocks ≈ the Belady minimum
//!   for eight cyclic passes over 1073 blocks with a 512-block cache —
//!   symbol search reads the cscope index files once per query.
//! * cscope2's fetches 5966 ≈ the Belady minimum for *four* cyclic passes
//!   over 2462 blocks (cache 1280) even though the trace holds ~8.2
//!   passes' worth of reads — text search touches each source file twice
//!   in quick succession per query (scan + match display), and the
//!   immediate re-read always hits the cache. cscope3 likewise (11739 ≈
//!   four-pass Belady over 3910 blocks).
//! * cscope2/3's ~9.5 ms single-disk fetch times come from a package of
//!   many small source files scattered across cylinder groups, versus
//!   cscope1's few large index files read at near-media rate.

use super::{assemble, file_sizes};
use crate::calibrate::calibrate_counts;
use crate::compute::ComputeDist;
use crate::placement::{FileExtent, GroupPlacer};
use crate::Trace;
use parcache_types::rng::Rng;
use parcache_types::Nanos;

/// Builds a cscope-style trace: `queries` passes over the package's
/// files, each file read `reads_per_file` times in succession.
#[allow(clippy::too_many_arguments)]
fn cscope(
    name: &str,
    reads: usize,
    distinct: usize,
    queries: usize,
    reads_per_file: usize,
    files: Vec<FileExtent>,
    compute: Nanos,
    dist: ComputeDist,
    cache_blocks: usize,
    seed: u64,
) -> Trace {
    let mut blocks = Vec::with_capacity(reads + 4096);
    'outer: loop {
        for _ in 0..queries.max(1) {
            for f in &files {
                for _ in 0..reads_per_file {
                    for off in 0..f.len {
                        blocks.push(f.block(off));
                    }
                }
            }
            if blocks.len() >= reads {
                break 'outer;
            }
        }
    }
    calibrate_counts(&mut blocks, reads, distinct, || {
        unreachable!("full passes cover every distinct block")
    });

    assemble(name, blocks, dist, compute, cache_blocks, seed)
}

/// cscope1: eight symbol searches over the package's index files
/// (compute-bound; large sequential files, one read per query).
pub fn cscope1(seed: u64) -> Trace {
    let mut rng = Rng::seed_from_u64(seed);
    let mut placer = GroupPlacer::new(seed ^ 0x5EED);
    let sizes = file_sizes(&mut rng, 1_073, 30, 160);
    let files = placer.place_all(&sizes);
    cscope(
        "cscope1",
        8_673,
        1_073,
        8,
        1,
        files,
        Nanos(24_900_000_000),
        ComputeDist::Jittered {
            mean_ms: 24_900.0 / 8_673.0,
            jitter_frac: 0.3,
        },
        512,
        seed,
    )
}

/// cscope2: four text searches over the package's source files — many
/// small scattered files, each read twice per query.
pub fn cscope2(seed: u64) -> Trace {
    let mut rng = Rng::seed_from_u64(seed);
    let mut placer = GroupPlacer::new(seed ^ 0x5EED);
    let sizes = file_sizes(&mut rng, 2_462, 1, 9);
    let files = placer.place_all_scattered(&sizes, 2);
    cscope(
        "cscope2",
        20_206,
        2_462,
        4,
        2,
        files,
        Nanos(37_100_000_000),
        ComputeDist::Jittered {
            mean_ms: 37_100.0 / 20_206.0,
            jitter_frac: 0.3,
        },
        1280,
        seed,
    )
}

/// cscope3: four text searches over a 10 MB package, bursty compute
/// times.
///
/// The short/long mix is chosen so ~1 ms and ~7 ms runs average to the
/// Table 3 mean (74.1 s / 30,200 = 2.45 ms): with levels 1 and 7,
/// the short fraction must be (7 - 2.45)/(7 - 1) ≈ 0.758.
pub fn cscope3(seed: u64) -> Trace {
    let mut rng = Rng::seed_from_u64(seed);
    let mut placer = GroupPlacer::new(seed ^ 0x5EED);
    let sizes = file_sizes(&mut rng, 3_910, 1, 9);
    let files = placer.place_all_scattered(&sizes, 2);
    cscope(
        "cscope3",
        30_200,
        3_910,
        4,
        2,
        files,
        Nanos(74_100_000_000),
        ComputeDist::Bursty {
            short_ms: 1.0,
            long_ms: 7.0,
            mean_run_short: 47.0,
            mean_run_long: 15.0,
        },
        1280,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cscope1_matches_table_3() {
        let s = cscope1(1).stats();
        assert_eq!(
            (s.reads, s.distinct_blocks, s.compute),
            (8_673, 1_073, Nanos(24_900_000_000))
        );
    }

    #[test]
    fn cscope2_matches_table_3() {
        let s = cscope2(1).stats();
        assert_eq!(
            (s.reads, s.distinct_blocks, s.compute),
            (20_206, 2_462, Nanos(37_100_000_000))
        );
    }

    #[test]
    fn cscope3_matches_table_3() {
        let s = cscope3(1).stats();
        assert_eq!(
            (s.reads, s.distinct_blocks, s.compute),
            (30_200, 3_910, Nanos(74_100_000_000))
        );
    }

    #[test]
    fn cscope3_compute_is_bursty() {
        let t = cscope3(1);
        // The paper: the fetch/compute ratio varies ~1..8 because compute
        // alternates between ~1ms and ~7ms runs. Verify both levels exist
        // in quantity and that values cluster at the levels.
        let short = t
            .requests
            .iter()
            .filter(|r| r.compute.as_millis_f64() < 2.0)
            .count();
        let long = t
            .requests
            .iter()
            .filter(|r| r.compute.as_millis_f64() > 5.0)
            .count();
        assert!(short > 15_000, "short runs missing: {short}");
        assert!(long > 4_000, "long runs missing: {long}");
        assert!(short + long > 29_000, "levels not crisp");
    }

    #[test]
    fn passes_are_sequential_per_file() {
        let t = cscope1(1);
        // Most consecutive pairs within a pass ascend by exactly one block
        // (file-internal sequentiality).
        let ascending = t
            .requests
            .windows(2)
            .filter(|w| w[1].block.raw() == w[0].block.raw() + 1)
            .count();
        assert!(
            ascending * 10 > t.len() * 8,
            "only {ascending}/{} ascending steps",
            t.len()
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(cscope2(4), cscope2(4));
    }
}
