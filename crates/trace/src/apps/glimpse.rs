//! The `glimpse` trace: index-assisted text retrieval.
//!
//! §3.1: glimpse searches a 40 MB snapshot of news articles for four
//! keywords using approximate indexes; "the index files are accessed
//! repeatedly, whereas the data files are accessed infrequently."
//! Table 3: 27,981 reads, 5247 distinct blocks, 38.7 s compute.
//!
//! Model: a handful of hot index files and several hundred small, cold
//! article files. Each of the four keyword queries makes many passes over
//! the index (approximate indexes require rescanning per candidate set),
//! then reads its quarter of the candidate article files once. The
//! paper's fixed-horizon fetch count (6493 over 27981 reads) pins this
//! down: nearly every block is fetched once — the index passes hit the
//! cache and the articles are never re-read.

use super::{assemble, file_sizes, sequential_pass};
use crate::calibrate::calibrate_counts;
use crate::compute::ComputeDist;
use crate::placement::GroupPlacer;
use crate::Trace;
use parcache_types::rng::Rng;
use parcache_types::Nanos;

/// Table 3 targets.
pub const READS: usize = 27_981;
/// Distinct blocks.
pub const DISTINCT: usize = 5_247;
/// Total compute: 38.7 s.
pub const COMPUTE: Nanos = Nanos(38_700_000_000);

/// Index blocks (6 files x 50 blocks); the remaining blocks are data.
const INDEX_BLOCKS: u64 = 300;
const QUERIES: usize = 4;
/// Index passes per query, sized so index re-reads plus one pass over the
/// articles lands just under the Table 3 read count.
const INDEX_PASSES_PER_QUERY: usize = 19;

/// Generates the glimpse trace.
pub fn glimpse(seed: u64) -> Trace {
    let mut rng = Rng::seed_from_u64(seed);
    let mut placer = GroupPlacer::new(seed ^ 0x5EED);

    let index_files = placer.place_all(&[50; (INDEX_BLOCKS / 50) as usize]);
    // Small scattered article files (news articles are a few KB to a few
    // tens of KB).
    let data_sizes = file_sizes(&mut rng, DISTINCT as u64 - INDEX_BLOCKS, 1, 9);
    let mut data_files = placer.place_all_scattered(&data_sizes, 2);
    rng.shuffle(&mut data_files);
    let quarter = data_files.len().div_ceil(QUERIES);

    let mut blocks = Vec::with_capacity(READS + 4096);
    for query in 0..QUERIES {
        // This query's quarter of the article files, read in chunks
        // *interleaved* with index passes — glimpse alternates between
        // consulting its approximate index and reading candidate
        // articles, so index re-reads and article reads mix throughout
        // the query rather than forming one long index phase.
        let lo = query * quarter;
        let hi = ((query + 1) * quarter).min(data_files.len());
        let chunk_files = &data_files[lo..hi];
        let interleaved = INDEX_PASSES_PER_QUERY - 3;
        let chunk = chunk_files.len().div_ceil(interleaved).max(1);
        // Up-front index scans.
        for _ in 0..3 {
            sequential_pass(&mut blocks, &index_files);
        }
        for (i, files) in chunk_files.chunks(chunk).enumerate() {
            sequential_pass(&mut blocks, files);
            if i < interleaved {
                sequential_pass(&mut blocks, &index_files);
            }
        }
    }
    calibrate_counts(&mut blocks, READS, DISTINCT, || {
        unreachable!("the four quarters cover every block")
    });

    assemble(
        "glimpse",
        blocks,
        ComputeDist::Jittered {
            mean_ms: COMPUTE.as_millis_f64() / READS as f64,
            jitter_frac: 0.3,
        },
        COMPUTE,
        1280,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn matches_table_3() {
        let s = glimpse(1).stats();
        assert_eq!(
            (s.reads, s.distinct_blocks, s.compute),
            (READS, DISTINCT, COMPUTE)
        );
    }

    #[test]
    fn index_blocks_are_hot_data_blocks_cold() {
        let t = glimpse(1);
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for r in &t.requests {
            *counts.entry(r.block.raw()).or_default() += 1;
        }
        let mut freqs: Vec<usize> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        // The hottest ~300 blocks (the indexes) are read many times; the
        // median block (data) is read only a handful of times.
        let hot = freqs[..INDEX_BLOCKS as usize].iter().sum::<usize>() as f64 / INDEX_BLOCKS as f64;
        let cold_median = freqs[freqs.len() / 2];
        assert!(hot >= 8.0, "hot mean {hot}");
        assert!(cold_median <= 4, "cold median {cold_median}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(glimpse(3), glimpse(3));
    }

    #[test]
    fn seeds_change_placement() {
        let a = glimpse(1);
        let b = glimpse(2);
        assert_ne!(a.requests[0].block, b.requests[0].block);
    }
}
