//! The `synth` trace: repeated sequential passes over a block loop.
//!
//! §3.1: "a synthetic trace synth containing 50 passes through a loop of
//! 2000 sequential blocks. Compute times between read requests were
//! generated according to a Poisson distribution with a 1 ms mean." The
//! trace names blocks by logical filesystem block number, so the loop sits
//! at the start of the logical block space.

use crate::compute::{calibrate_total, ComputeDist, ComputeSampler};
use crate::{Request, Trace};
use parcache_types::rng::Rng;
use parcache_types::{BlockId, Nanos};

/// Total compute time of the full-size trace (Table 3: 99.9 s).
const TABLE3_COMPUTE: Nanos = Nanos(99_900_000_000);

/// Builds a synth-style trace of `passes` passes over `loop_blocks`
/// sequential blocks, with exponential ~1 ms compute times.
///
/// `synth_trace(50, 2000, seed)` is the paper's trace; smaller values make
/// convenient test workloads.
pub fn synth_trace(passes: usize, loop_blocks: usize, seed: u64) -> Trace {
    assert!(passes > 0 && loop_blocks > 0);
    let mut rng = Rng::seed_from_u64(seed);
    let mut sampler = ComputeSampler::new(ComputeDist::Exponential { mean_ms: 1.0 });
    let n = passes * loop_blocks;
    let mut computes: Vec<Nanos> = (0..n).map(|_| sampler.sample(&mut rng)).collect();
    // Scale the total so the full-size trace matches Table 3 exactly; the
    // per-reference mean stays ~1 ms at any size.
    let target = Nanos(TABLE3_COMPUTE.as_nanos() * n as u64 / 100_000);
    calibrate_total(&mut computes, target);

    let requests = computes
        .into_iter()
        .enumerate()
        .map(|(i, compute)| Request {
            block: BlockId((i % loop_blocks) as u64),
            compute,
        })
        .collect();
    Trace::new("synth", requests, 1280)
}

/// The paper's synth trace: 50 passes over 2000 blocks.
pub fn paper_synth(seed: u64) -> Trace {
    synth_trace(50, 2000, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table_3() {
        let t = paper_synth(42);
        let s = t.stats();
        assert_eq!(s.reads, 100_000);
        assert_eq!(s.distinct_blocks, 2_000);
        assert_eq!(s.compute, TABLE3_COMPUTE);
    }

    #[test]
    fn blocks_cycle_sequentially() {
        let t = synth_trace(3, 5, 1);
        let blocks: Vec<u64> = t.requests.iter().map(|r| r.block.raw()).collect();
        assert_eq!(blocks, vec![0, 1, 2, 3, 4, 0, 1, 2, 3, 4, 0, 1, 2, 3, 4]);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(synth_trace(2, 10, 9), synth_trace(2, 10, 9));
        assert_ne!(
            synth_trace(2, 10, 9).requests[0].compute,
            synth_trace(2, 10, 10).requests[0].compute
        );
    }

    #[test]
    fn mean_compute_is_about_one_ms() {
        let t = synth_trace(5, 1000, 3);
        let mean = t.mean_compute().as_millis_f64();
        assert!((0.9..1.1).contains(&mean), "mean {mean}");
    }
}
