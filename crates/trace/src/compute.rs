//! Inter-reference compute-time generators.
//!
//! Traces record the measured CPU time between consecutive reads. The
//! generators here reproduce the distributions §3.1 and §4.3 describe —
//! roughly constant times with jitter, exponential (Poisson-process) times
//! for synth, and cscope3's bursty alternation between ~1 ms and ~7 ms runs
//! — and a calibration pass pins each trace's *total* compute time to the
//! paper's Table 3 value exactly.

use parcache_types::rng::Rng;
use parcache_types::Nanos;

/// A compute-time distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ComputeDist {
    /// Uniform jitter of +/- `jitter_frac` around `mean_ms`.
    Jittered {
        /// Mean compute time, milliseconds.
        mean_ms: f64,
        /// Fractional half-width of the uniform jitter (0.2 = +/-20%).
        jitter_frac: f64,
    },
    /// Exponentially distributed with the given mean (a Poisson process).
    Exponential {
        /// Mean compute time, milliseconds.
        mean_ms: f64,
    },
    /// Alternating runs of short and long compute times; run lengths are
    /// geometric with the given means. Models cscope3's burstiness ("runs
    /// of compute times near 1ms are interspersed with runs of times
    /// around 7ms", §4.3). Asymmetric run lengths set the short/long mix.
    Bursty {
        /// Compute time during short runs, milliseconds.
        short_ms: f64,
        /// Compute time during long runs, milliseconds.
        long_ms: f64,
        /// Mean length of short runs, in references.
        mean_run_short: f64,
        /// Mean length of long runs, in references.
        mean_run_long: f64,
    },
}

/// Stateful sampler for a [`ComputeDist`].
#[derive(Debug)]
pub struct ComputeSampler {
    dist: ComputeDist,
    /// For `Bursty`: whether the current run is the long phase, and how
    /// many samples remain in it.
    burst_long: bool,
    burst_left: u64,
}

impl ComputeSampler {
    /// Creates a sampler.
    pub fn new(dist: ComputeDist) -> ComputeSampler {
        ComputeSampler {
            dist,
            burst_long: false,
            burst_left: 0,
        }
    }

    /// Draws the next compute time.
    pub fn sample(&mut self, rng: &mut Rng) -> Nanos {
        match self.dist {
            ComputeDist::Jittered {
                mean_ms,
                jitter_frac,
            } => {
                let f = 1.0 + rng.gen_range(-jitter_frac..=jitter_frac);
                Nanos::from_millis_f64(mean_ms * f)
            }
            ComputeDist::Exponential { mean_ms } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                Nanos::from_millis_f64(-mean_ms * u.ln())
            }
            ComputeDist::Bursty {
                short_ms,
                long_ms,
                mean_run_short,
                mean_run_long,
            } => {
                if self.burst_left == 0 {
                    self.burst_long = !self.burst_long;
                    let mean_run = if self.burst_long {
                        mean_run_long
                    } else {
                        mean_run_short
                    };
                    // Geometric run length with the given mean, at least 1.
                    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                    self.burst_left = (-mean_run * u.ln()).ceil().max(1.0) as u64;
                }
                self.burst_left -= 1;
                let ms = if self.burst_long { long_ms } else { short_ms };
                // Small jitter keeps event times from colliding exactly.
                let f = 1.0 + rng.gen_range(-0.05..=0.05);
                Nanos::from_millis_f64(ms * f)
            }
        }
    }
}

/// Rescales `times` so they sum to exactly `target`.
///
/// Multiplies every entry by `target / current_total`, then corrects
/// rounding residue on the final entry, so the total is *exact*. This is
/// how each generated trace pins its total compute to Table 3.
pub fn calibrate_total(times: &mut [Nanos], target: Nanos) {
    if times.is_empty() {
        return;
    }
    let current: u128 = times.iter().map(|t| t.as_nanos() as u128).sum();
    match std::num::NonZeroU128::new(current) {
        None => {
            // Degenerate: spread evenly.
            let per = target.as_nanos() / times.len() as u64;
            for t in times.iter_mut() {
                *t = Nanos(per);
            }
        }
        Some(current) => {
            let target_n = target.as_nanos() as u128;
            for t in times.iter_mut() {
                *t = Nanos((t.as_nanos() as u128 * target_n / current) as u64);
            }
        }
    }
    let sum: u128 = times.iter().map(|t| t.as_nanos() as u128).sum();
    let diff = target.as_nanos() as i128 - sum as i128;
    let last = times.last_mut().expect("non-empty checked above");
    let fixed = last.as_nanos() as i128 + diff;
    assert!(fixed >= 0, "calibration residue exceeded the final entry");
    *last = Nanos(fixed as u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn draw(dist: ComputeDist, n: usize, seed: u64) -> Vec<Nanos> {
        let mut rng = Rng::seed_from_u64(seed);
        let mut s = ComputeSampler::new(dist);
        (0..n).map(|_| s.sample(&mut rng)).collect()
    }

    #[test]
    fn jittered_stays_in_band() {
        let xs = draw(
            ComputeDist::Jittered {
                mean_ms: 10.0,
                jitter_frac: 0.2,
            },
            1000,
            1,
        );
        for x in &xs {
            let ms = x.as_millis_f64();
            assert!((8.0..=12.0).contains(&ms), "{ms}");
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let xs = draw(ComputeDist::Exponential { mean_ms: 1.0 }, 20_000, 2);
        let mean = xs.iter().map(|x| x.as_millis_f64()).sum::<f64>() / xs.len() as f64;
        assert!((0.95..1.05).contains(&mean), "mean {mean}");
    }

    #[test]
    fn bursty_alternates_levels() {
        let xs = draw(
            ComputeDist::Bursty {
                short_ms: 1.0,
                long_ms: 7.0,
                mean_run_short: 30.0,
                mean_run_long: 30.0,
            },
            5000,
            3,
        );
        let short = xs.iter().filter(|x| x.as_millis_f64() < 2.0).count();
        let long = xs.iter().filter(|x| x.as_millis_f64() > 6.0).count();
        assert_eq!(short + long, xs.len(), "values fell between levels");
        assert!(short > 1000 && long > 1000, "short={short} long={long}");
        // And it must actually be bursty: adjacent values usually equal-level.
        let mut switches = 0;
        for w in xs.windows(2) {
            let a = w[0].as_millis_f64() > 4.0;
            let b = w[1].as_millis_f64() > 4.0;
            if a != b {
                switches += 1;
            }
        }
        assert!(
            switches < xs.len() / 10,
            "{switches} switches in {}",
            xs.len()
        );
    }

    #[test]
    fn calibrate_hits_target_exactly() {
        let mut xs = draw(ComputeDist::Exponential { mean_ms: 2.0 }, 997, 4);
        let target = Nanos::from_secs(5);
        calibrate_total(&mut xs, target);
        let total: Nanos = xs.iter().copied().sum();
        assert_eq!(total, target);
    }

    #[test]
    fn calibrate_handles_all_zero_input() {
        let mut xs = vec![Nanos::ZERO; 10];
        calibrate_total(&mut xs, Nanos::from_millis(10));
        let total: Nanos = xs.iter().copied().sum();
        assert_eq!(total, Nanos::from_millis(10));
    }

    #[test]
    fn calibrate_empty_is_noop() {
        let mut xs: Vec<Nanos> = vec![];
        calibrate_total(&mut xs, Nanos::from_secs(1));
        assert!(xs.is_empty());
    }

    #[test]
    fn sampling_is_deterministic() {
        let a = draw(ComputeDist::Exponential { mean_ms: 1.0 }, 100, 9);
        let b = draw(ComputeDist::Exponential { mean_ms: 1.0 }, 100, 9);
        assert_eq!(a, b);
    }
}
