//! Registry of the paper's ten traces.

use crate::apps::{cscope, dinero, glimpse, ld, postgres, xds};
use crate::synth;
use crate::Trace;

/// Names of the ten traces, in the paper's Table 3 order.
pub const TRACE_NAMES: [&str; 10] = [
    "dinero",
    "cscope1",
    "cscope2",
    "cscope3",
    "glimpse",
    "ld",
    "postgres-join",
    "postgres-select",
    "xds",
    "synth",
];

/// Generates the trace with the given name, or `None` for unknown names.
///
/// The same `seed` always yields the same trace; different traces use the
/// seed independently.
pub fn trace_by_name(name: &str, seed: u64) -> Option<Trace> {
    let t = match name {
        "dinero" => dinero::dinero(seed),
        "cscope1" => cscope::cscope1(seed),
        "cscope2" => cscope::cscope2(seed),
        "cscope3" => cscope::cscope3(seed),
        "glimpse" => glimpse::glimpse(seed),
        "ld" => ld::ld(seed),
        "postgres-join" => postgres::postgres_join(seed),
        "postgres-select" => postgres::postgres_select(seed),
        "xds" => xds::xds(seed),
        "synth" => synth::paper_synth(seed),
        _ => return None,
    };
    Some(t)
}

/// Generates all ten traces with the given seed, in Table 3 order.
pub fn standard_traces(seed: u64) -> Vec<Trace> {
    TRACE_NAMES
        .iter()
        .map(|n| trace_by_name(n, seed).expect("registry names are valid"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_names_resolve() {
        for n in TRACE_NAMES {
            let t = trace_by_name(n, 1).unwrap_or_else(|| panic!("{n} missing"));
            assert_eq!(t.name, n);
            assert!(!t.is_empty());
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(trace_by_name("nope", 1).is_none());
    }

    #[test]
    fn standard_traces_match_table_3() {
        // Table 3 of the paper, with one correction: the compute totals of
        // postgres-join and postgres-select are swapped relative to the
        // published table, following the paper's own appendix tables and
        // figures (see the erratum note in `apps::postgres`).
        let expected: [(&str, usize, usize, f64); 10] = [
            ("dinero", 8867, 986, 103.5),
            ("cscope1", 8673, 1073, 24.9),
            ("cscope2", 20206, 2462, 37.1),
            ("cscope3", 30200, 3910, 74.1),
            ("glimpse", 27981, 5247, 38.7),
            ("ld", 5881, 2882, 8.2),
            ("postgres-join", 8896, 3793, 79.2),
            ("postgres-select", 5044, 3085, 11.5),
            ("xds", 10435, 5392, 30.8),
            ("synth", 100_000, 2000, 99.9),
        ];
        for (t, (name, reads, distinct, secs)) in standard_traces(1).iter().zip(expected) {
            let s = t.stats();
            assert_eq!(t.name, name);
            assert_eq!(s.reads, reads, "{name} reads");
            assert_eq!(s.distinct_blocks, distinct, "{name} distinct");
            assert!(
                (s.compute.as_secs_f64() - secs).abs() < 1e-9,
                "{name} compute {} vs {secs}",
                s.compute.as_secs_f64()
            );
        }
    }

    #[test]
    fn cache_sizes_follow_the_paper() {
        for t in standard_traces(1) {
            let expected = if t.name == "dinero" || t.name == "cscope1" {
                512
            } else {
                1280
            };
            assert_eq!(t.cache_blocks, expected, "{}", t.name);
        }
    }

    #[test]
    fn traces_fit_one_hp97560() {
        // The single-disk configuration must hold every referenced block.
        for t in standard_traces(1) {
            let max = t.max_block().expect("non-empty").raw();
            assert!(max < 167_751, "{} references block {max}", t.name);
        }
    }
}
