//! A fast, deterministic hasher for the simulator's internal maps.
//!
//! The standard library's default hasher (SipHash) is keyed per process
//! and hardened against collision attacks — properties the simulator does
//! not need for maps keyed by its own block identifiers, and pays for on
//! every oracle build and index lookup. [`FastHasher`] is an FxHash-style
//! multiply-rotate mix: a few cycles per word, the same result in every
//! process (nothing observable depends on hash order — the maps are only
//! ever probed, never iterated), and no dependencies.

use std::hash::{BuildHasherDefault, Hasher};

/// `BuildHasher` for [`FastHasher`]; plug into `HashMap::with_hasher` or
/// the `HashMap<K, V, FastBuildHasher>` type position.
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` using [`FastHasher`].
pub type FastMap<K, V> = std::collections::HashMap<K, V, FastBuildHasher>;

/// Multiply-rotate hasher (the FxHash construction rustc itself uses).
#[derive(Debug, Default, Clone)]
pub struct FastHasher {
    state: u64,
}

/// The golden-ratio multiplier FxHash uses for 64-bit words.
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Word-at-a-time over the tail-padded input; keys here are small
        // (block ids, trace names), so simplicity beats cleverness.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(buf));
            self.mix(rest.len() as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(u64::from(n));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FastHasher::default();
        let mut b = FastHasher::default();
        a.write_u64(12345);
        b.write_u64(12345);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let hash = |n: u64| {
            let mut h = FastHasher::default();
            h.write_u64(n);
            h.finish()
        };
        let hashes: std::collections::HashSet<u64> = (0..10_000).map(hash).collect();
        assert_eq!(hashes.len(), 10_000);
    }

    #[test]
    fn byte_slices_hash_consistently() {
        let hash = |b: &[u8]| {
            let mut h = FastHasher::default();
            h.write(b);
            h.finish()
        };
        assert_eq!(hash(b"hello"), hash(b"hello"));
        assert_ne!(hash(b"hello"), hash(b"hellp"));
        // Length is mixed in, so a zero-padded prefix differs from the
        // padded form of a shorter key.
        assert_ne!(hash(b"ab"), hash(b"ab\0\0\0\0\0\0"));
    }

    #[test]
    fn fast_map_works_as_a_map() {
        let mut m: FastMap<crate::BlockId, u32> = FastMap::default();
        for i in 0..1000 {
            m.insert(crate::BlockId(i), i as u32);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&crate::BlockId(7)), Some(&7));
        assert_eq!(m.get(&crate::BlockId(1000)), None);
    }
}
