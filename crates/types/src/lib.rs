//! Shared primitive types for the `parcache` simulator.
//!
//! This crate holds the handful of vocabulary types every other crate speaks:
//! simulated time ([`Nanos`]), logical data blocks ([`BlockId`]), and the
//! block-size constants the paper fixes (8 KB blocks of sixteen 512-byte
//! sectors).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod hash;
pub mod posset;
pub mod rng;
mod time;

pub use bitset::BitSet;
pub use hash::{FastBuildHasher, FastMap};
pub use posset::PosSet;
pub use time::Nanos;

/// Size of one data block in bytes (the paper uses 8 KB file blocks).
pub const BLOCK_SIZE: u64 = 8 * 1024;

/// Size of one disk sector in bytes (HP 97560: 512 bytes).
pub const SECTOR_SIZE: u64 = 512;

/// Number of sectors occupied by one data block.
pub const SECTORS_PER_BLOCK: u64 = BLOCK_SIZE / SECTOR_SIZE;

/// Identifier of a logical data block.
///
/// Logical blocks are the unit of caching, prefetching, and striping. The
/// mapping from a logical block to a physical position on a particular disk
/// is the job of `parcache-disk`'s layout module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u64);

impl BlockId {
    /// Returns the raw block number.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Identifier of a disk within an array (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DiskId(pub usize);

impl DiskId {
    /// Returns the raw disk index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for DiskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "d{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_constants_are_consistent() {
        assert_eq!(SECTORS_PER_BLOCK, 16);
        assert_eq!(SECTORS_PER_BLOCK * SECTOR_SIZE, BLOCK_SIZE);
    }

    #[test]
    fn block_id_display_and_order() {
        assert_eq!(BlockId(7).to_string(), "b7");
        assert!(BlockId(1) < BlockId(2));
        assert_eq!(BlockId(3).raw(), 3);
    }

    #[test]
    fn disk_id_display_and_index() {
        assert_eq!(DiskId(2).to_string(), "d2");
        assert_eq!(DiskId(5).index(), 5);
    }
}
