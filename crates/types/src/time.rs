//! Simulated time.
//!
//! All simulation in `parcache` runs on an integer nanosecond clock so that
//! results are exactly reproducible across platforms. [`Nanos`] is both a
//! point in time and a duration; arithmetic saturates on underflow rather
//! than panicking so stall computations (`arrival - ready`) are safe to
//! write directly.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, or a duration, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(pub u64);

impl Nanos {
    /// The zero time.
    pub const ZERO: Nanos = Nanos(0);

    /// The largest representable time; useful as an "infinitely far" sentinel.
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Creates a time from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Nanos {
        Nanos(us * 1_000)
    }

    /// Creates a time from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Nanos {
        Nanos(ms * 1_000_000)
    }

    /// Creates a time from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Nanos {
        Nanos(s * 1_000_000_000)
    }

    /// Creates a time from fractional milliseconds, rounding to the nearest
    /// nanosecond.
    ///
    /// Negative and non-finite inputs are clamped to zero: all simulated
    /// durations are non-negative by construction.
    #[inline]
    pub fn from_millis_f64(ms: f64) -> Nanos {
        if !ms.is_finite() || ms <= 0.0 {
            return Nanos::ZERO;
        }
        Nanos((ms * 1_000_000.0).round() as u64)
    }

    /// Returns this time as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns this time as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Returns the raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Saturating subtraction: returns zero instead of wrapping.
    #[inline]
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition, `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: Nanos) -> Option<Nanos> {
        self.0.checked_add(rhs.0).map(Nanos)
    }

    /// Checked subtraction, `None` on underflow. Unlike `-`, which
    /// saturates to zero, this lets accounting code detect an identity
    /// violation (a component exceeding its total) instead of silently
    /// clamping it away.
    #[inline]
    pub fn checked_sub(self, rhs: Nanos) -> Option<Nanos> {
        self.0.checked_sub(rhs.0).map(Nanos)
    }

    /// Checked multiplication by a scalar, `None` on overflow.
    #[inline]
    pub fn checked_mul(self, rhs: u64) -> Option<Nanos> {
        self.0.checked_mul(rhs).map(Nanos)
    }

    /// Returns the larger of two times.
    #[inline]
    pub fn max(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.max(rhs.0))
    }

    /// Returns the smaller of two times.
    #[inline]
    pub fn min(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.min(rhs.0))
    }

    /// Division rounded to the nearest nanosecond (ties away from zero),
    /// unlike `/` which truncates toward zero. Returns zero when `rhs`
    /// is zero, so averages over empty sets are safe to write directly.
    #[inline]
    pub fn div_rounded(self, rhs: u64) -> Nanos {
        if rhs == 0 {
            return Nanos::ZERO;
        }
        // Work in u128 so the half-divisor correction cannot overflow.
        Nanos(((self.0 as u128 + rhs as u128 / 2) / rhs as u128) as u64)
    }
}

impl Add for Nanos {
    type Output = Nanos;
    #[inline]
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    #[inline]
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    /// Saturating: simulation code frequently computes `later - earlier`
    /// where the operands may coincide; going below zero is never meaningful.
    #[inline]
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Nanos {
    #[inline]
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    #[inline]
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    #[inline]
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, Add::add)
    }
}

impl fmt::Display for Nanos {
    /// Formats as milliseconds with three decimal places, the natural unit
    /// of the paper's disk-time discussion.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Nanos::from_millis(3).as_millis_f64(), 3.0);
        assert_eq!(Nanos::from_secs(2), Nanos(2_000_000_000));
        assert_eq!(Nanos::from_micros(5), Nanos(5_000));
        assert_eq!(Nanos::from_millis_f64(1.5), Nanos(1_500_000));
    }

    #[test]
    fn from_millis_f64_clamps_bad_inputs() {
        assert_eq!(Nanos::from_millis_f64(-1.0), Nanos::ZERO);
        assert_eq!(Nanos::from_millis_f64(f64::NAN), Nanos::ZERO);
        assert_eq!(Nanos::from_millis_f64(f64::INFINITY), Nanos::ZERO);
    }

    #[test]
    fn subtraction_saturates() {
        assert_eq!(Nanos(5) - Nanos(10), Nanos::ZERO);
        assert_eq!(Nanos(10) - Nanos(4), Nanos(6));
        let mut t = Nanos(3);
        t -= Nanos(9);
        assert_eq!(t, Nanos::ZERO);
    }

    #[test]
    fn checked_ops_detect_over_and_underflow() {
        assert_eq!(Nanos(10).checked_sub(Nanos(4)), Some(Nanos(6)));
        assert_eq!(Nanos(4).checked_sub(Nanos(10)), None);
        assert_eq!(Nanos(7).checked_sub(Nanos(7)), Some(Nanos::ZERO));
        assert_eq!(Nanos(3).checked_add(Nanos(4)), Some(Nanos(7)));
        assert_eq!(Nanos::MAX.checked_add(Nanos(1)), None);
        assert_eq!(Nanos(3).checked_mul(4), Some(Nanos(12)));
        assert_eq!(Nanos::MAX.checked_mul(2), None);
    }

    #[test]
    fn min_max_and_sum() {
        assert_eq!(Nanos(3).max(Nanos(7)), Nanos(7));
        assert_eq!(Nanos(3).min(Nanos(7)), Nanos(3));
        let total: Nanos = [Nanos(1), Nanos(2), Nanos(3)].into_iter().sum();
        assert_eq!(total, Nanos(6));
    }

    #[test]
    fn div_rounded_rounds_to_nearest() {
        // Truncating `/` drops the remainder; `div_rounded` keeps the
        // nearest nanosecond.
        assert_eq!(Nanos(10) / 3, Nanos(3));
        assert_eq!(Nanos(10).div_rounded(3), Nanos(3));
        assert_eq!(Nanos(11).div_rounded(3), Nanos(4));
        assert_eq!(Nanos(11).div_rounded(2), Nanos(6)); // ties round up
        assert_eq!(Nanos(5).div_rounded(0), Nanos::ZERO);
        assert_eq!(Nanos::MAX.div_rounded(1), Nanos::MAX); // no overflow
    }

    #[test]
    fn display_is_milliseconds() {
        assert_eq!(Nanos::from_millis(15).to_string(), "15.000ms");
        assert_eq!(Nanos(1_500_000).to_string(), "1.500ms");
    }
}
