//! A fixed-capacity bitset over dense `u32` indices.
//!
//! The simulator's hot paths key cache residency and in-flight state by a
//! compact block index assigned by the oracle. A bitset answers
//! membership in one load + mask instead of a hash probe, and its
//! capacity is fixed at construction (the universe of distinct blocks is
//! known before a run starts).

/// A fixed-capacity set of `u32` indices backed by a word array.
#[derive(Debug, Clone, Default)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates an empty set able to hold indices `0..capacity`.
    pub fn with_capacity(capacity: usize) -> BitSet {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            len: 0,
        }
    }

    /// Number of indices the set can hold (a multiple of 64).
    pub fn capacity(&self) -> usize {
        self.words.len() * 64
    }

    /// Number of indices currently in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no index is set.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when `i` is in the set.
    #[inline]
    pub fn contains(&self, i: u32) -> bool {
        let (w, b) = (i as usize / 64, i % 64);
        self.words[w] & (1 << b) != 0
    }

    /// Inserts `i`; returns true when it was not already present.
    #[inline]
    pub fn insert(&mut self, i: u32) -> bool {
        let (w, b) = (i as usize / 64, i % 64);
        let mask = 1u64 << b;
        let fresh = self.words[w] & mask == 0;
        self.words[w] |= mask;
        self.len += usize::from(fresh);
        fresh
    }

    /// Removes `i`; returns true when it was present.
    #[inline]
    pub fn remove(&mut self, i: u32) -> bool {
        let (w, b) = (i as usize / 64, i % 64);
        let mask = 1u64 << b;
        let present = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        self.len -= usize::from(present);
        present
    }

    /// Removes every index.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Iterates over the set indices in ascending order.
    pub fn ones(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            let mut rest = word;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let b = rest.trailing_zeros();
                rest &= rest - 1;
                Some(w as u32 * 64 + b)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::with_capacity(130);
        assert!(!s.contains(0));
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "double insert reports already-present");
        assert_eq!(s.len(), 4);
        assert!(s.contains(129) && s.contains(0));
        assert!(s.remove(63));
        assert!(!s.remove(63), "double remove reports absent");
        assert_eq!(s.len(), 3);
        assert!(!s.contains(63));
    }

    #[test]
    fn ones_are_ascending_and_complete() {
        let mut s = BitSet::with_capacity(256);
        for &i in &[7u32, 0, 255, 64, 128, 63] {
            s.insert(i);
        }
        let got: Vec<u32> = s.ones().collect();
        assert_eq!(got, vec![0, 7, 63, 64, 128, 255]);
    }

    #[test]
    fn clear_empties() {
        let mut s = BitSet::with_capacity(10);
        s.insert(3);
        s.insert(9);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.ones().count(), 0);
        assert_eq!(s.capacity(), 64);
    }

    #[test]
    fn zero_capacity_is_usable() {
        let s = BitSet::with_capacity(0);
        assert_eq!(s.capacity(), 0);
        assert!(s.is_empty());
    }
}
