//! A two-level bitset over a bounded range of positions, with fast
//! successor queries.
//!
//! [`PosSet`] stores a set of `usize` positions below a fixed capacity as
//! a flat bit array plus a summary bitmap with one bit per 64-position
//! word. Membership updates are O(1); [`PosSet::next_at_or_after`] — the
//! "first missing block at or after the cursor" query every prefetching
//! policy runs at every decision point — touches at most one data word
//! plus a short scan of the summary (1/4096th the size of the range),
//! instead of the pointer-chasing of an ordered tree. Results are
//! identical to a sorted set; only the constant factor changes.

/// A set of positions in `[0, capacity)` with O(1) updates and fast
/// ascending successor queries.
#[derive(Debug, Clone, Default)]
pub struct PosSet {
    /// One bit per position.
    words: Vec<u64>,
    /// One bit per word of `words`: set when that word is non-zero.
    summary: Vec<u64>,
    /// Number of positions the set may hold (exclusive upper bound).
    cap: usize,
    /// Number of positions currently present.
    len: usize,
}

impl PosSet {
    /// Creates an empty set over positions `0..capacity`.
    pub fn new(capacity: usize) -> PosSet {
        let words = capacity.div_ceil(64);
        PosSet {
            words: vec![0; words],
            summary: vec![0; words.div_ceil(64)],
            cap: capacity,
            len: 0,
        }
    }

    /// The exclusive upper bound on member positions.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of positions in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the set holds no positions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when `pos` is in the set.
    #[inline]
    pub fn contains(&self, pos: usize) -> bool {
        debug_assert!(pos < self.cap, "position {pos} out of range {}", self.cap);
        self.words[pos >> 6] & (1u64 << (pos & 63)) != 0
    }

    /// Adds `pos`; returns whether it was newly inserted.
    #[inline]
    pub fn insert(&mut self, pos: usize) -> bool {
        debug_assert!(pos < self.cap, "position {pos} out of range {}", self.cap);
        let w = pos >> 6;
        let bit = 1u64 << (pos & 63);
        let newly = self.words[w] & bit == 0;
        if newly {
            self.words[w] |= bit;
            self.summary[w >> 6] |= 1u64 << (w & 63);
            self.len += 1;
        }
        newly
    }

    /// Removes `pos`; returns whether it was present.
    #[inline]
    pub fn remove(&mut self, pos: usize) -> bool {
        debug_assert!(pos < self.cap, "position {pos} out of range {}", self.cap);
        let w = pos >> 6;
        let bit = 1u64 << (pos & 63);
        let present = self.words[w] & bit != 0;
        if present {
            self.words[w] &= !bit;
            if self.words[w] == 0 {
                self.summary[w >> 6] &= !(1u64 << (w & 63));
            }
            self.len -= 1;
        }
        present
    }

    /// The smallest member `>= from`, or `None`.
    #[inline]
    pub fn next_at_or_after(&self, from: usize) -> Option<usize> {
        if from >= self.cap {
            return None;
        }
        let w = from >> 6;
        let word = self.words[w] & (!0u64 << (from & 63));
        if word != 0 {
            return Some((w << 6) + word.trailing_zeros() as usize);
        }
        // Find the next non-empty word via the summary.
        let next = w + 1;
        if next >= self.words.len() {
            return None;
        }
        let mut sw = next >> 6;
        let mut s = self.summary[sw] & (!0u64 << (next & 63));
        loop {
            if s != 0 {
                let w2 = (sw << 6) + s.trailing_zeros() as usize;
                let word = self.words[w2];
                return Some((w2 << 6) + word.trailing_zeros() as usize);
            }
            sw += 1;
            if sw >= self.summary.len() {
                return None;
            }
            s = self.summary[sw];
        }
    }

    /// Members at or after `from`, ascending.
    ///
    /// The iterator caches the current data word and strips one set bit
    /// per step, so long scans cost a few instructions per member
    /// instead of a fresh successor query each time.
    pub fn iter_from(&self, from: usize) -> Iter<'_> {
        if from >= self.cap {
            return Iter {
                set: self,
                word_idx: self.words.len(),
                bits: 0,
            };
        }
        let w = from >> 6;
        Iter {
            set: self,
            word_idx: w,
            bits: self.words[w] & (!0u64 << (from & 63)),
        }
    }
}

/// Ascending iterator over a [`PosSet`], returned by [`PosSet::iter_from`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    set: &'a PosSet,
    /// Index into `set.words` of the word `bits` was taken from.
    word_idx: usize,
    /// Unconsumed bits of the current word.
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    /// Skips `n` members and returns the one after, without visiting the
    /// skipped members one by one: whole words are consumed with a single
    /// `count_ones` each, so skipping a long run costs one popcount per
    /// 64 positions instead of one bit-strip per member. Rank-jumping
    /// scans (forestall's stall predictor) rely on this being cheap.
    fn nth(&mut self, mut n: usize) -> Option<usize> {
        loop {
            let in_word = self.bits.count_ones() as usize;
            if n < in_word {
                break;
            }
            n -= in_word;
            // Hop to the next non-empty word via the summary bitmap.
            let next = self.word_idx + 1;
            if next >= self.set.words.len() {
                self.bits = 0;
                self.word_idx = self.set.words.len();
                return None;
            }
            let mut sw = next >> 6;
            let mut s = self.set.summary[sw] & (!0u64 << (next & 63));
            loop {
                if s != 0 {
                    self.word_idx = (sw << 6) + s.trailing_zeros() as usize;
                    self.bits = self.set.words[self.word_idx];
                    break;
                }
                sw += 1;
                if sw >= self.set.summary.len() {
                    self.bits = 0;
                    self.word_idx = self.set.words.len();
                    return None;
                }
                s = self.set.summary[sw];
            }
        }
        // The target is the n-th set bit of the current word.
        for _ in 0..n {
            self.bits &= self.bits - 1;
        }
        let b = self.bits.trailing_zeros() as usize;
        self.bits &= self.bits - 1;
        Some((self.word_idx << 6) + b)
    }

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.bits == 0 {
            // Hop to the next non-empty word via the summary bitmap.
            let next = self.word_idx + 1;
            if next >= self.set.words.len() {
                return None;
            }
            let mut sw = next >> 6;
            let mut s = self.set.summary[sw] & (!0u64 << (next & 63));
            loop {
                if s != 0 {
                    self.word_idx = (sw << 6) + s.trailing_zeros() as usize;
                    self.bits = self.set.words[self.word_idx];
                    break;
                }
                sw += 1;
                if sw >= self.set.summary.len() {
                    return None;
                }
                s = self.set.summary[sw];
            }
        }
        let b = self.bits.trailing_zeros() as usize;
        self.bits &= self.bits - 1;
        Some((self.word_idx << 6) + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = PosSet::new(200);
        assert!(s.is_empty());
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.insert(130));
        assert_eq!(s.len(), 2);
        assert!(s.contains(5));
        assert!(!s.contains(6));
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert_eq!(s.len(), 1);
        assert_eq!(s.capacity(), 200);
    }

    #[test]
    fn successor_queries() {
        let mut s = PosSet::new(10_000);
        for p in [0, 63, 64, 127, 4096, 9999] {
            s.insert(p);
        }
        assert_eq!(s.next_at_or_after(0), Some(0));
        assert_eq!(s.next_at_or_after(1), Some(63));
        assert_eq!(s.next_at_or_after(64), Some(64));
        assert_eq!(s.next_at_or_after(65), Some(127));
        assert_eq!(s.next_at_or_after(128), Some(4096));
        assert_eq!(s.next_at_or_after(4097), Some(9999));
        assert_eq!(s.next_at_or_after(10_000), None);
        s.remove(9999);
        assert_eq!(s.next_at_or_after(4097), None);
    }

    #[test]
    fn iter_from_is_ascending() {
        let mut s = PosSet::new(500);
        for p in [3, 77, 78, 300, 499] {
            s.insert(p);
        }
        let got: Vec<usize> = s.iter_from(4).collect();
        assert_eq!(got, vec![77, 78, 300, 499]);
        assert_eq!(s.iter_from(0).count(), 5);
    }

    #[test]
    fn matches_btreeset_on_random_workload() {
        use crate::rng::Rng;
        let mut rng = Rng::seed_from_u64(77);
        let cap = 3000;
        let mut s = PosSet::new(cap);
        let mut reference = std::collections::BTreeSet::new();
        for _ in 0..20_000 {
            let p = rng.gen_range(0usize..cap);
            match rng.gen_range(0u64..3) {
                0 => {
                    assert_eq!(s.insert(p), reference.insert(p));
                }
                1 => {
                    assert_eq!(s.remove(p), reference.remove(&p));
                }
                _ => {
                    let from = rng.gen_range(0usize..=cap);
                    assert_eq!(
                        s.next_at_or_after(from),
                        reference.range(from..).next().copied()
                    );
                    // The word-caching iterator must agree with the tree
                    // over a bounded window.
                    let got: Vec<usize> = s.iter_from(from).take(8).collect();
                    let want: Vec<usize> = reference.range(from..).take(8).copied().collect();
                    assert_eq!(got, want, "iter_from({from})");
                }
            }
            assert_eq!(s.len(), reference.len());
        }
    }

    #[test]
    fn nth_matches_step_by_step_iteration() {
        use crate::rng::Rng;
        let mut rng = Rng::seed_from_u64(2026);
        let cap = 5000;
        let mut s = PosSet::new(cap);
        for _ in 0..800 {
            s.insert(rng.gen_range(0usize..cap));
        }
        for _ in 0..500 {
            let from = rng.gen_range(0usize..=cap);
            let n = rng.gen_range(0usize..40);
            let via_nth = s.iter_from(from).nth(n);
            let via_next = {
                let mut it = s.iter_from(from);
                let mut last = None;
                for _ in 0..=n {
                    last = it.next();
                    if last.is_none() {
                        break;
                    }
                }
                last
            };
            assert_eq!(via_nth, via_next, "nth({n}) from {from}");
            // And the iterator keeps working after an nth call.
            let mut a = s.iter_from(from);
            let mut b = s.iter_from(from);
            let _ = a.nth(n);
            for _ in 0..=n {
                if b.next().is_none() {
                    break;
                }
            }
            assert_eq!(a.next(), b.next(), "continuation after nth({n})");
        }
        // Dense edge: every position set, skipping across word boundaries.
        let mut d = PosSet::new(300);
        for p in 0..300 {
            d.insert(p);
        }
        assert_eq!(d.iter_from(0).nth(63), Some(63));
        assert_eq!(d.iter_from(0).nth(64), Some(64));
        assert_eq!(d.iter_from(5).nth(200), Some(205));
        assert_eq!(d.iter_from(0).nth(299), Some(299));
        assert_eq!(d.iter_from(0).nth(300), None);
    }

    #[test]
    fn empty_and_zero_capacity() {
        let s = PosSet::new(0);
        assert_eq!(s.next_at_or_after(0), None);
        assert!(s.is_empty());
        let s = PosSet::new(64);
        assert_eq!(s.next_at_or_after(63), None);
    }
}
