//! A small, deterministic pseudo-random number generator.
//!
//! The simulator needs reproducible randomness for trace generation and
//! randomized tests, not cryptographic quality. This module provides a
//! self-contained xoshiro256** generator (Blackman & Vigna) seeded via
//! SplitMix64, so the workspace builds with no external dependencies —
//! important for hermetic/offline builds. The API mirrors the subset of
//! the `rand` crate the codebase historically used (`seed_from_u64`,
//! `gen_range`, `shuffle`), keeping call sites unchanged in shape.
//!
//! Streams are stable: the sequence produced for a given seed is part of
//! the crate's compatibility surface, because every generated trace (and
//! therefore every published experiment) derives from it.

use std::ops::{Range, RangeInclusive};

/// A deterministic xoshiro256** PRNG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

/// The SplitMix64 step, used to expand a 64-bit seed into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed. Every seed yields a
    /// distinct, fully reproducible stream.
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)` using Lemire's multiply-shift
    /// reduction (no modulo bias worth caring about at simulation scale).
    #[inline]
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniform draw from `range`, like `rand`'s `gen_range`. Supports
    /// `Range` and `RangeInclusive` over `u64`, `usize`, `i64`, and `f64`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of `xs` in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// A uniformly chosen element of `xs`, or `None` when empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.below(xs.len() as u64) as usize])
        }
    }
}

/// A range type [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

impl SampleRange for Range<u64> {
    type Output = u64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> u64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.below(self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<u64> {
    type Output = u64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return rng.next_u64();
        }
        lo + rng.below(span + 1)
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;
    #[inline]
    fn sample(self, rng: &mut Rng) -> usize {
        rng.gen_range(self.start as u64..self.end as u64) as usize
    }
}

impl SampleRange for RangeInclusive<usize> {
    type Output = usize;
    #[inline]
    fn sample(self, rng: &mut Rng) -> usize {
        rng.gen_range(*self.start() as u64..=*self.end() as u64) as usize
    }
}

impl SampleRange for Range<i64> {
    type Output = i64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> i64 {
        assert!(self.start < self.end, "empty range");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(rng.below(span) as i64)
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        // The closed upper end is approximated by the half-open draw; for
        // continuous simulation inputs the distinction is immaterial.
        lo + rng.next_f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_draws_are_unit_interval() {
        let mut r = Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn integer_ranges_stay_in_bounds() {
        let mut r = Rng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x), "{x}");
            let y = r.gen_range(5usize..=7);
            assert!((5..=7).contains(&y), "{y}");
            let z = r.gen_range(-3i64..3);
            assert!((-3..3).contains(&z), "{z}");
        }
    }

    #[test]
    fn integer_range_covers_all_values() {
        let mut r = Rng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut r = Rng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = r.gen_range(-0.5..=0.5);
            assert!((-0.5..=0.5).contains(&x), "{x}");
        }
    }

    #[test]
    fn mean_of_unit_draws_is_centered() {
        let mut r = Rng::seed_from_u64(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::seed_from_u64(6);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        // And it actually moved something (probability of identity ~ 0).
        assert_ne!(xs, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn choose_covers_the_slice() {
        let mut r = Rng::seed_from_u64(7);
        assert_eq!(r.choose::<u32>(&[]), None);
        let xs = [1, 2, 3];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*r.choose(&xs).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = Rng::seed_from_u64(8);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
        assert!(!Rng::seed_from_u64(0).gen_bool(0.0));
        assert!(Rng::seed_from_u64(0).gen_bool(1.1));
    }
}
