//! Golden-output regression test.
//!
//! The full appendix-A sweep CSV — 332 cells, every trace × algorithm ×
//! array size — must stay byte-for-byte identical across refactors: the
//! simulator is deterministic, so *any* CSV change means either an
//! intentional model change or an accidental behavioral regression.
//! This test hashes the CSV with the workspace's own SHA-256 and
//! compares against the committed fixture.
//!
//! The sweep takes tens of seconds, so the test is `#[ignore]`d by
//! default; CI runs it explicitly with `-- --ignored`.
//!
//! **Updating the fixture** (only after an intentional model change —
//! see DESIGN.md "Golden outputs"): regenerate with
//!
//! ```sh
//! cargo run --release --bin parcache-run -- --sweep | sha256sum
//! ```
//!
//! and replace the digest in `tests/fixtures/appendix_a_sweep.sha256`,
//! noting the model change in the commit message.

use parcache_bench::sweep::{self, SweepSpec};
use parcache_disk::FaultPlan;

/// Committed digest of the appendix-A sweep CSV.
const GOLDEN: &str = include_str!("fixtures/appendix_a_sweep.sha256");

#[test]
#[ignore = "full 332-cell sweep; run with -- --ignored (CI does)"]
fn appendix_a_sweep_csv_matches_committed_digest() {
    let threads = sweep::default_threads();
    let spec = SweepSpec::appendix_a(threads);
    let cells = spec.cells();
    assert_eq!(cells.len(), 332, "appendix-A grid changed size");
    let outcomes = sweep::run_sweep_cells(&cells, threads, false, &FaultPlan::default());
    let csv = sweep::sweep_csv(&outcomes);
    let digest = parcache_bench::sha256_hex(csv.as_bytes());
    assert_eq!(
        digest,
        GOLDEN.trim(),
        "appendix-A sweep CSV diverged from the committed golden digest; \
         if this is an intentional model change, follow the fixture \
         update procedure in DESIGN.md (\"Golden outputs\")"
    );
}
