//! The sweep's shared-trace contract. Cells carry `Arc<Trace>` handles
//! resolved when the grid is built, so worker threads never take the
//! process-wide trace-cache lock — the serialization point behind the
//! sweep's old negative thread scaling. Two invariants pin that:
//!
//! 1. running a pre-generated grid causes **zero** trace-cache traffic
//!    (no hits, no misses — workers simply never get there), and
//! 2. the CSV is byte-identical at 1, 2, and 4 threads, compared by
//!    SHA-256 digest on a real paper trace.

use parcache_bench::sweep::{run_sweep_cells, sweep_csv, SweepSpec};
use parcache_bench::{sha256_hex, trace_cache_stats, Algo};
use parcache_disk::FaultPlan;

#[test]
fn shared_trace_sweep_is_digest_identical_and_cache_silent() {
    // Building the spec resolves "ld" (the suite's smallest trace)
    // through the cache once, up front.
    let spec = SweepSpec::named(&["ld"], &Algo::APPENDIX_A, None, 2);
    let cells = spec.cells();
    assert!(!cells.is_empty());

    let before = trace_cache_stats();
    let digests: Vec<String> = [1usize, 2, 4]
        .iter()
        .map(|&threads| {
            let outcomes = run_sweep_cells(&cells, threads, false, &FaultPlan::default());
            sha256_hex(sweep_csv(&outcomes).as_bytes())
        })
        .collect();
    let after = trace_cache_stats();

    assert_eq!(digests[0], digests[1], "2-thread CSV diverged");
    assert_eq!(digests[0], digests[2], "4-thread CSV diverged");
    assert_eq!(
        before, after,
        "sweep workers touched the trace cache after pre-generation"
    );
}
