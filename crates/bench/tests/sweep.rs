//! Determinism contract of the multi-threaded sweep engine: the same
//! specification produces byte-identical output at every thread count,
//! and every cell matches what the serial runner computes on its own.

use parcache_bench::sweep::{
    run_sweep, run_sweep_probed, sweep_csv, sweep_json, SweepEntry, SweepSpec,
};
use parcache_bench::Algo;
use parcache_core::SimConfig;
use std::sync::Arc;

/// A small grid — two tiny traces, three array sizes, three algorithms
/// (including the tuned reverse search) — that still exercises every
/// sweep code path.
fn small_spec() -> SweepSpec {
    let a = Arc::new(parcache_trace::synth::synth_trace(2, 150, 11));
    let b = Arc::new(parcache_trace::synth::synth_trace(3, 90, 5));
    SweepSpec {
        entries: vec![
            SweepEntry {
                trace: a,
                disks: vec![1, 3],
            },
            SweepEntry {
                trace: b,
                disks: vec![2],
            },
        ],
        algos: vec![Algo::Demand, Algo::Aggressive, Algo::TunedReverse],
        hints: Vec::new(),
    }
}

#[test]
fn sweep_output_is_byte_identical_across_thread_counts() {
    let spec = small_spec();
    let serial = run_sweep(&spec, 1);
    for threads in [2, 4] {
        let threaded = run_sweep(&spec, threads);
        assert_eq!(
            sweep_csv(&serial),
            sweep_csv(&threaded),
            "{threads} threads"
        );
        assert_eq!(
            sweep_json(&serial),
            sweep_json(&threaded),
            "{threads} threads"
        );
    }
}

#[test]
fn probed_sweep_output_is_byte_identical_across_thread_counts() {
    let spec = small_spec();
    let serial = run_sweep_probed(&spec, 1);
    let threaded = run_sweep_probed(&spec, 4);
    // The probed JSON covers counters, histograms, and per-disk
    // timelines, so this pins the full metrics pipeline, not just the
    // headline report.
    assert_eq!(sweep_json(&serial), sweep_json(&threaded));
}

#[test]
fn sweep_cells_match_serial_runs_exactly() {
    let spec = small_spec();
    let outcomes = run_sweep(&spec, 4);
    assert_eq!(outcomes.len(), 9);
    for o in &outcomes {
        let cfg = SimConfig::for_trace(o.cell.disks, &o.cell.trace);
        let expected = o.cell.algo.run(&o.cell.trace, &cfg);
        assert_eq!(
            o.report,
            expected,
            "{} on {} disks",
            o.cell.algo.name(),
            o.cell.disks
        );
    }
}

#[test]
fn probed_sweep_reports_match_unprobed_and_carry_metrics() {
    let spec = small_spec();
    let plain = run_sweep(&spec, 2);
    let probed = run_sweep_probed(&spec, 2);
    assert_eq!(plain.len(), probed.len());
    for (a, b) in plain.iter().zip(&probed) {
        // Attaching a probe must not change the simulation.
        assert_eq!(a.report, b.report);
        assert!(a.metrics.is_none());
        let m = b.metrics.as_ref().expect("probed cells carry metrics");
        assert_eq!(m.counters.fetches_issued, b.report.fetches);
        assert_eq!(m.per_disk.len(), b.cell.disks);
    }
}
