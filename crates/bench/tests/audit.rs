//! The audit layer's contract, end to end: every policy × discipline ×
//! disk-model combination runs clean under the audit probe, the audited
//! sweep is a pure observer (byte-identical output), and the differential
//! fuzzer is a deterministic function of its seed.

use parcache_bench::fuzz::fuzz;
use parcache_bench::sweep::{
    run_sweep, run_sweep_audited, run_sweep_cells, run_sweep_cells_audited, sweep_csv, sweep_json,
    SweepEntry, SweepSpec,
};
use parcache_bench::Algo;
use parcache_core::audit::simulate_audited;
use parcache_core::config::DiskModelKind;
use parcache_core::theory::unit_trace;
use parcache_core::{simulate, PolicyKind, SimConfig};
use parcache_disk::sched::Discipline;
use parcache_disk::FaultPlan;
use parcache_types::Nanos;
use std::sync::Arc;

const DISCIPLINES: [Discipline; 4] = [
    Discipline::Fcfs,
    Discipline::Cscan,
    Discipline::Scan { ascending: true },
    Discipline::Sstf,
];

const MODELS: [DiskModelKind; 4] = [
    DiskModelKind::Uniform(Nanos::from_millis(2)),
    DiskModelKind::Coarse,
    DiskModelKind::Hp97560,
    DiskModelKind::Hp97560NoReadahead,
];

#[test]
fn audit_is_clean_across_the_full_feature_matrix() {
    // A reference string with reuse, eviction pressure (cache 3 over 6
    // distinct blocks), and a tail that leaves write-behind work pending.
    let t = unit_trace(&[0, 1, 2, 3, 0, 4, 1, 5, 2, 0, 3, 5], 3);
    for discipline in DISCIPLINES {
        for model in MODELS {
            for kind in PolicyKind::ALL {
                let cfg = SimConfig::for_trace(2, &t)
                    .with_discipline(discipline)
                    .with_disk_model(model)
                    .with_write_behind(3);
                let (report, outcome) = simulate_audited(&t, kind, &cfg);
                assert!(
                    outcome.is_clean(),
                    "{kind} / {discipline:?} / {model:?}: {:?}",
                    outcome.violations
                );
                // The audit probe must not perturb the simulation.
                assert_eq!(report, simulate(&t, kind, &cfg), "{kind} / {discipline:?}");
            }
        }
    }
}

#[test]
fn audited_sweep_is_byte_identical_to_unaudited() {
    let spec = SweepSpec {
        entries: vec![SweepEntry {
            trace: Arc::new(parcache_trace::synth::synth_trace(2, 120, 9)),
            disks: vec![1, 3],
        }],
        algos: vec![Algo::Demand, Algo::Aggressive, Algo::TunedReverse],
        hints: Vec::new(),
    };
    let plain = run_sweep(&spec, 2);
    let (audited, audits) = run_sweep_audited(&spec, 2);
    assert_eq!(sweep_csv(&plain), sweep_csv(&audited));
    assert_eq!(sweep_json(&plain), sweep_json(&audited));
    assert_eq!(audits.len(), plain.len());
    for (outcome, audit) in audited.iter().zip(&audits) {
        assert!(
            audit.is_clean(),
            "{} on {} disks: {:?}",
            outcome.report.policy,
            outcome.report.disks,
            audit.violations
        );
        assert!(audit.events > 0, "the audit probe saw the event stream");
    }
}

#[test]
fn audit_is_clean_across_the_feature_matrix_under_faults() {
    // The full discipline × model matrix again, this time with media
    // errors, a fail-slow window, and an outage active. Every
    // conservation law — including the fault identities — must hold, and
    // the audited rerun must still be a pure observer.
    let t = unit_trace(&[0, 1, 2, 3, 0, 4, 1, 5, 2, 0, 3, 5], 3);
    let plan = FaultPlan::parse("flaky:*:0.2,slow:0:1:30:2,outage:1:2:20,seed:5")
        .expect("fault spec parses");
    for discipline in DISCIPLINES {
        for model in MODELS {
            for kind in PolicyKind::ALL {
                let cfg = SimConfig::for_trace(2, &t)
                    .with_discipline(discipline)
                    .with_disk_model(model)
                    .with_write_behind(3)
                    .with_faults(plan.clone());
                let (report, outcome) = simulate_audited(&t, kind, &cfg);
                assert!(
                    outcome.is_clean(),
                    "{kind} / {discipline:?} / {model:?}: {:?}",
                    outcome.violations
                );
                let f = report.fault.as_ref().expect("faulted run carries summary");
                assert_eq!(
                    f.faults_injected,
                    f.retries + f.abandoned,
                    "{kind} / {discipline:?} / {model:?}"
                );
                assert_eq!(report, simulate(&t, kind, &cfg), "{kind} / {discipline:?}");
            }
        }
    }
}

fn faulted_spec() -> (SweepSpec, FaultPlan) {
    let spec = SweepSpec {
        entries: vec![SweepEntry {
            trace: Arc::new(parcache_trace::synth::synth_trace(2, 120, 9)),
            disks: vec![1, 3],
        }],
        algos: vec![Algo::Demand, Algo::Aggressive, Algo::TunedReverse],
        hints: Vec::new(),
    };
    let plan =
        FaultPlan::parse("flaky:*:0.05,slow:0:0:200:2,outage:0:50:120,seed:3").expect("parses");
    (spec, plan)
}

#[test]
fn faulted_sweep_is_deterministic_and_audits_clean() {
    let (spec, plan) = faulted_spec();
    let cells = spec.cells();
    let serial = run_sweep_cells(&cells, 1, false, &plan);
    let threaded = run_sweep_cells(&cells, 4, false, &plan);
    // Byte-identity at any thread count, with fault columns present.
    assert_eq!(sweep_csv(&serial), sweep_csv(&threaded));
    assert_eq!(sweep_json(&serial), sweep_json(&threaded));
    assert!(sweep_csv(&serial).starts_with(parcache_core::Report::csv_header_faulted()));
    let (audited, audits) = run_sweep_cells_audited(&cells, 2, false, &plan);
    assert_eq!(sweep_csv(&serial), sweep_csv(&audited));
    for (outcome, audit) in audited.iter().zip(&audits) {
        assert!(
            audit.is_clean(),
            "{} on {} disks: {:?}",
            outcome.report.policy,
            outcome.report.disks,
            audit.violations
        );
    }
}

#[test]
fn empty_fault_plan_is_byte_identical_to_the_plain_path() {
    // `--faults` with an empty plan must not change a single output byte
    // relative to the pre-fault code path.
    let (spec, _) = faulted_spec();
    let cells = spec.cells();
    let plain = run_sweep(&spec, 2);
    let empty = run_sweep_cells(&cells, 2, false, &FaultPlan::default());
    assert_eq!(sweep_csv(&plain), sweep_csv(&empty));
    assert_eq!(sweep_json(&plain), sweep_json(&empty));
    assert!(sweep_csv(&empty).starts_with(parcache_core::Report::csv_header()));
    assert!(!sweep_json(&empty).contains("\"fault\""));
}

#[test]
fn fuzzer_is_a_pure_function_of_its_seed() {
    let a = fuzz(1996, 10, 1);
    let b = fuzz(1996, 10, 3);
    assert_eq!(a, b, "thread count must not change the verdicts");
    assert!(a.is_clean(), "{:#?}", a.failures.first());
    assert_ne!(a.fingerprint, fuzz(1997, 10, 1).fingerprint);
}
