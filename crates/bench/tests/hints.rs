//! End-to-end contract of the online hint predictors: predicted-hint
//! sweeps stay byte-identical at every thread count, every predictor ×
//! policy × discipline combination runs clean under the audit probe,
//! the hint columns appear in the CSV only when a predicted source is
//! in the grid, and on a sequential trace the sequential predictor
//! actually closes part of the demand ↔ forestall-on-perfect-hints
//! stall gap.

use parcache_bench::sweep::{
    run_sweep, sweep_csv, sweep_csv_explain, sweep_json, SweepEntry, SweepSpec,
};
use parcache_bench::Algo;
use parcache_core::audit::simulate_audited;
use parcache_core::predict::{HintMode, PredictorKind};
use parcache_core::theory::unit_trace;
use parcache_core::{simulate, PolicyKind, SimConfig};
use parcache_disk::sched::Discipline;
use std::sync::Arc;

/// A small grid over every hint source and every appendix-A policy —
/// big enough to exercise eviction pressure and the predictors' warm-up,
/// small enough to run at three thread counts.
fn predicted_spec() -> SweepSpec {
    SweepSpec {
        entries: vec![
            SweepEntry {
                trace: Arc::new(parcache_trace::synth::synth_trace(2, 150, 11)),
                disks: vec![1, 3],
            },
            SweepEntry {
                trace: Arc::new(parcache_trace::synth::synth_trace(3, 90, 5)),
                disks: vec![2],
            },
        ],
        algos: Algo::APPENDIX_A.to_vec(),
        hints: HintMode::ALL.to_vec(),
    }
}

#[test]
fn predicted_sweeps_are_byte_identical_across_thread_counts() {
    let spec = predicted_spec();
    let serial = run_sweep(&spec, 1);
    for threads in [2, 4] {
        let threaded = run_sweep(&spec, threads);
        assert_eq!(
            sweep_csv(&serial),
            sweep_csv(&threaded),
            "{threads} threads"
        );
        assert_eq!(
            sweep_csv_explain(&serial),
            sweep_csv_explain(&threaded),
            "{threads} threads"
        );
        assert_eq!(
            sweep_json(&serial),
            sweep_json(&threaded),
            "{threads} threads"
        );
    }
}

#[test]
fn every_predictor_is_audit_clean_across_the_policy_discipline_matrix() {
    // The audit matrix trace from the audit suite: reuse, eviction
    // pressure, and a write-behind tail — now driven by each online
    // predictor instead of the disclosing oracle.
    let t = unit_trace(&[0, 1, 2, 3, 0, 4, 1, 5, 2, 0, 3, 5], 3);
    let disciplines = [
        Discipline::Fcfs,
        Discipline::Cscan,
        Discipline::Scan { ascending: true },
        Discipline::Sstf,
    ];
    for predictor in PredictorKind::ALL {
        for discipline in disciplines {
            for kind in PolicyKind::ALL {
                let cfg = SimConfig::for_trace(2, &t)
                    .with_hint_mode(HintMode::Predicted(predictor))
                    .with_discipline(discipline)
                    .with_write_behind(3);
                let (report, outcome) = simulate_audited(&t, kind, &cfg);
                assert!(
                    outcome.is_clean(),
                    "{kind} / {} / {discipline:?}: {:?}",
                    predictor.name(),
                    outcome.violations
                );
                let stats = report.hints.as_ref().expect("predicted run carries stats");
                assert_eq!(stats.source, predictor.name());
                assert_eq!(stats.references, t.requests.len() as u64);
                // The audit probe must not perturb the simulation.
                assert_eq!(
                    report,
                    simulate(&t, kind, &cfg),
                    "{kind} / {} / {discipline:?}",
                    predictor.name()
                );
            }
        }
    }
}

#[test]
fn hint_columns_appear_only_when_a_predicted_source_is_in_the_grid() {
    let mut oracle_only = predicted_spec();
    oracle_only.hints = Vec::new();
    let plain = run_sweep(&oracle_only, 2);
    let csv = sweep_csv(&plain);
    assert!(
        !csv.lines().next().unwrap().contains("hints"),
        "oracle-only sweep CSV must keep the historical column set"
    );

    let predicted = run_sweep(&predicted_spec(), 2);
    let csv = sweep_csv(&predicted);
    assert!(csv.lines().next().unwrap().ends_with(",hints"));
    for mode in HintMode::ALL {
        assert!(
            csv.lines()
                .any(|l| l.ends_with(&format!(",{}", mode.name()))),
            "CSV carries rows for {}",
            mode.name()
        );
    }
    let explain = sweep_csv_explain(&predicted);
    assert!(explain
        .lines()
        .next()
        .unwrap()
        .ends_with(",hints,hint_precision,hint_recall"));
    assert!(
        explain.lines().any(|l| l.contains(",oracle,1.0000,1.0000")),
        "oracle rows render as perfect precision/recall"
    );
}

#[test]
fn sequential_predictor_closes_part_of_the_stall_gap_on_a_sequential_trace() {
    // The synthetic trace is sequential loop passes — the sequential
    // predictor's ideal input. Forestall on its predictions must beat
    // plain demand fetching, and perfect (oracle) hints must bound it
    // from below.
    // Long enough that the predictor's cold first epoch (no observations
    // yet, so nothing to extrapolate) is amortized away.
    let t = Arc::new(parcache_trace::synth::synth_trace(4, 1500, 7));
    let cfg = SimConfig::for_trace(4, &t);
    let demand = simulate(&t, PolicyKind::Demand, &cfg);
    let oracle = simulate(&t, PolicyKind::Forestall, &cfg);
    let predicted = simulate(
        &t,
        PolicyKind::Forestall,
        &cfg.clone()
            .with_hint_mode(HintMode::Predicted(PredictorKind::Sequential)),
    );
    let stats = predicted.hints.as_ref().expect("stats are reported");
    assert!(
        stats.precision() > 0.8 && stats.recall() > 0.8,
        "sequential predictor should be accurate on loop passes, got \
         precision {:.4} recall {:.4}",
        stats.precision(),
        stats.recall()
    );
    assert!(
        oracle.stall <= predicted.stall,
        "perfect hints bound the predictor from below: {:?} vs {:?}",
        oracle.stall,
        predicted.stall
    );
    assert!(
        predicted.stall < demand.stall,
        "predicted prefetching must reduce stall below demand fetching: \
         {:?} vs {:?}",
        predicted.stall,
        demand.stall
    );
    // The stall identity survives the predicted-hint path.
    assert_eq!(
        predicted.elapsed,
        predicted.compute + predicted.driver + predicted.stall
    );
}
