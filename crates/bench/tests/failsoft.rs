//! The fail-soft executor's contract, end to end: a clean run is
//! byte-identical to the plain sweep, an injected failure costs exactly
//! its own cell at every thread count, and a manifest-driven resume
//! reproduces the uninterrupted document byte for byte (pinned by
//! SHA-256). Also pins the manifest's reject paths — malformed JSON,
//! schema drift, and stale grids all fail typed, never panic.

use parcache_bench::manifest::{
    grid_hash, plan_resume, ManifestCell, ManifestError, ManifestStatus, SweepManifest,
};
use parcache_bench::sweep::{
    run_cells_failsoft, run_sweep_cells, sweep_csv, sweep_csv_gated, CellOutcome, CsvGates,
    FailSoft, FailSoftRun, Injection, InjectionKind, SweepCell, SweepEntry, SweepSpec,
};
use parcache_bench::{sha256_hex, Algo};
use parcache_disk::FaultPlan;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// A small grid — two tiny traces, three array sizes, three algorithms —
/// quick enough to run many times per test.
fn small_cells() -> Vec<SweepCell> {
    let a = Arc::new(parcache_trace::synth::synth_trace(2, 150, 11));
    let b = Arc::new(parcache_trace::synth::synth_trace(3, 90, 5));
    SweepSpec {
        entries: vec![
            SweepEntry {
                trace: a,
                disks: vec![1, 3],
            },
            SweepEntry {
                trace: b,
                disks: vec![2],
            },
        ],
        algos: vec![Algo::Demand, Algo::Aggressive, Algo::TunedReverse],
        hints: Vec::new(),
    }
    .cells()
}

fn panic_in(cell: usize) -> FailSoft {
    FailSoft {
        inject: Some(Injection {
            cell,
            kind: InjectionKind::Panic,
            times: u32::MAX,
        }),
        ..FailSoft::default()
    }
}

/// The CLI's splice: fresh rows where this run produced them, stored
/// rows where a manifest carried them forward, nothing for failures.
fn splice(
    cells: &[SweepCell],
    gates: CsvGates,
    stored: &HashMap<usize, ManifestCell>,
    run: &FailSoftRun,
) -> String {
    let fresh: HashMap<usize, String> = run
        .executions
        .iter()
        .filter_map(|e| e.outcome.row().map(|r| (e.index, gates.row(r))))
        .collect();
    let mut doc = gates.header();
    for i in 0..cells.len() {
        if let Some(row) = fresh.get(&i) {
            doc.push_str(row);
        } else if let Some(row) = stored.get(&i).and_then(|m| m.status.row()) {
            doc.push_str(row);
            doc.push('\n');
        }
    }
    doc
}

#[test]
fn clean_failsoft_run_matches_the_plain_sweep() {
    let cells = small_cells();
    let faults = FaultPlan::default();
    let gates = CsvGates::for_grid(&cells, &faults, false);
    let plain = sweep_csv(&run_sweep_cells(&cells, 2, false, &faults));
    let run = run_cells_failsoft(&cells, 2, false, false, &faults, &FailSoft::default(), None);
    assert_eq!(run.failures(), 0);
    assert!(run
        .executions
        .iter()
        .all(|e| e.attempts == 1 && matches!(e.outcome, CellOutcome::Ok(_))));
    let rows: Vec<_> = run.rows().cloned().collect();
    assert_eq!(sweep_csv_gated(gates, &rows), plain);

    // And the zero-failure manifest says so, round-tripping exactly.
    let man = SweepManifest::from_run(
        &run.executions,
        gates,
        grid_hash(&cells, &faults),
        cells.len(),
        false,
    );
    assert_eq!(man.completed(), cells.len());
    assert_eq!(SweepManifest::parse(&man.to_json()).unwrap(), man);
}

#[test]
fn injected_panic_costs_exactly_its_own_cell_at_every_thread_count() {
    let cells = small_cells();
    let faults = FaultPlan::default();
    let gates = CsvGates::for_grid(&cells, &faults, false);
    let victim = 3;
    let clean = run_sweep_cells(&cells, 1, false, &faults);
    let surviving: String = clean
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != victim)
        .map(|(_, row)| gates.row(row))
        .collect();
    for threads in [1, 2, 4] {
        let run = run_cells_failsoft(
            &cells,
            threads,
            false,
            false,
            &faults,
            &panic_in(victim),
            None,
        );
        assert_eq!(run.failures(), 1, "{threads} threads");
        match &run.executions[victim].outcome {
            CellOutcome::Panicked { msg } => {
                assert!(msg.contains("injected failure in cell 3"), "{msg}")
            }
            other => panic!("expected a panic at cell {victim}, got {other:?}"),
        }
        // The other cells' rows are byte-identical to the clean run's.
        let rows: String = run.rows().map(|r| gates.row(r)).collect();
        assert_eq!(rows, surviving, "{threads} threads");
        // The failure is attributed to exactly one worker.
        assert_eq!(
            run.workers.iter().map(|w| w.failed).sum::<u64>(),
            1,
            "{threads} threads"
        );
    }
}

#[test]
fn resume_reproduces_the_uninterrupted_document_byte_for_byte() {
    let cells = small_cells();
    let faults = FaultPlan::default();
    let gates = CsvGates::for_grid(&cells, &faults, false);
    let hash = grid_hash(&cells, &faults);
    let uninterrupted = sweep_csv_gated(gates, &run_sweep_cells(&cells, 1, false, &faults));
    let digest = sha256_hex(uninterrupted.as_bytes());

    for threads in [1, 2, 4] {
        // First invocation: cell 5 poisons itself; the rest finish.
        let first = run_cells_failsoft(&cells, threads, false, false, &faults, &panic_in(5), None);
        let man =
            SweepManifest::from_run(&first.executions, gates, hash.clone(), cells.len(), false);
        // Second invocation: resume from the (parsed) manifest.
        let man = SweepManifest::parse(&man.to_json()).unwrap();
        let plan = plan_resume(&man, cells.len(), &hash, gates, false).unwrap();
        assert_eq!(plan.to_run, vec![5], "{threads} threads");
        let rerun_cells: Vec<SweepCell> = plan.to_run.iter().map(|&i| cells[i].clone()).collect();
        let second = run_cells_failsoft(
            &rerun_cells,
            threads,
            false,
            false,
            &faults,
            &FailSoft::default(),
            None,
        );
        let spliced = splice(&cells, gates, &plan.stored, &second);
        assert_eq!(
            sha256_hex(spliced.as_bytes()),
            digest,
            "{threads} threads: resumed document diverged"
        );
    }
}

#[test]
fn bounded_retry_recovers_a_cell_that_fails_once() {
    let cells = small_cells();
    let faults = FaultPlan::default();
    let policy = FailSoft {
        max_retries: 1,
        inject: Some(Injection {
            cell: 2,
            kind: InjectionKind::Panic,
            times: 1,
        }),
        ..FailSoft::default()
    };
    let run = run_cells_failsoft(&cells, 1, false, false, &faults, &policy, None);
    assert_eq!(run.failures(), 0);
    assert_eq!(run.executions[2].attempts, 2);
    assert!(matches!(run.executions[2].outcome, CellOutcome::Ok(_)));
    assert_eq!(run.workers.iter().map(|w| w.retries).sum::<u64>(), 1);
    // Without the retry budget the same injection is a recorded failure.
    let no_retry = FailSoft {
        max_retries: 0,
        ..policy
    };
    let run = run_cells_failsoft(&cells, 1, false, false, &faults, &no_retry, None);
    assert_eq!(run.failures(), 1);
    assert!(matches!(
        run.executions[2].outcome,
        CellOutcome::Panicked { .. }
    ));
}

#[test]
fn watchdog_times_out_a_hung_cell_and_spares_the_rest() {
    let cells = small_cells();
    let faults = FaultPlan::default();
    let limit = Duration::from_millis(30);
    let policy = FailSoft {
        cell_timeout: Some(limit),
        inject: Some(Injection {
            cell: 1,
            kind: InjectionKind::Hang(Duration::from_millis(400)),
            times: u32::MAX,
        }),
        ..FailSoft::default()
    };
    let run = run_cells_failsoft(&cells, 2, false, false, &faults, &policy, None);
    assert_eq!(run.failures(), 1);
    assert!(
        matches!(run.executions[1].outcome, CellOutcome::TimedOut { limit: l } if l == limit),
        "{:?}",
        run.executions[1].outcome
    );
    // Every other cell still produced its row under the watchdog.
    assert_eq!(run.rows().count(), cells.len() - 1);
}

#[test]
fn fail_fast_skips_undispatched_cells_and_resume_picks_them_up() {
    let cells = small_cells();
    let faults = FaultPlan::default();
    let gates = CsvGates::for_grid(&cells, &faults, false);
    let policy = FailSoft {
        fail_fast: true,
        ..panic_in(0)
    };
    // One thread makes the halt cut deterministic: cell 0 fails, nothing
    // after it is dispatched.
    let run = run_cells_failsoft(&cells, 1, false, false, &faults, &policy, None);
    assert!(matches!(
        run.executions[0].outcome,
        CellOutcome::Panicked { .. }
    ));
    for e in &run.executions[1..] {
        assert!(
            matches!(e.outcome, CellOutcome::Skipped),
            "cell {} should be skipped, got {:?}",
            e.index,
            e.outcome
        );
        assert_eq!(e.attempts, 0);
    }
    assert_eq!(
        run.workers.iter().map(|w| w.skipped).sum::<u64>(),
        (cells.len() - 1) as u64
    );
    // Every skipped (and the failed) cell is in the resume plan.
    let hash = grid_hash(&cells, &faults);
    let man = SweepManifest::from_run(&run.executions, gates, hash.clone(), cells.len(), false);
    let plan = plan_resume(&man, cells.len(), &hash, gates, false).unwrap();
    assert_eq!(plan.to_run, (0..cells.len()).collect::<Vec<_>>());
}

#[test]
fn audited_failsoft_run_records_verdicts_in_the_manifest() {
    let cells = small_cells();
    let faults = FaultPlan::default();
    let gates = CsvGates::for_grid(&cells, &faults, false);
    let run = run_cells_failsoft(&cells, 2, false, true, &faults, &FailSoft::default(), None);
    assert_eq!(run.failures(), 0);
    assert!(run
        .executions
        .iter()
        .all(|e| e.audit.as_ref().is_some_and(|a| a.is_clean())));
    let hash = grid_hash(&cells, &faults);
    let man = SweepManifest::from_run(&run.executions, gates, hash.clone(), cells.len(), true);
    assert!(man.outcomes.iter().all(|o| matches!(
        o.status,
        ManifestStatus::Ok {
            audit_clean: Some(true),
            ..
        }
    )));
    // An audited manifest does not resume an unaudited sweep (or vice
    // versa): the verdicts would silently vanish.
    let err = plan_resume(&man, cells.len(), &hash, gates, false).unwrap_err();
    assert!(matches!(err, ManifestError::Stale(_)), "{err}");
}

#[test]
fn malformed_and_stale_manifests_are_rejected_with_typed_errors() {
    let cells = small_cells();
    let faults = FaultPlan::default();
    let gates = CsvGates::for_grid(&cells, &faults, false);
    let hash = grid_hash(&cells, &faults);
    let run = run_cells_failsoft(&cells, 1, false, false, &faults, &FailSoft::default(), None);
    let man = SweepManifest::from_run(&run.executions, gates, hash.clone(), cells.len(), false);
    let json = man.to_json();

    // Truncation is a parse error carrying the line it died on.
    let truncated = &json[..json.len() / 2];
    match SweepManifest::parse(truncated).unwrap_err() {
        ManifestError::Parse { line, .. } => assert!(line > 1),
        other => panic!("truncated manifest should be a parse error, got {other}"),
    }
    // Well-formed JSON with the wrong shape is a schema error naming
    // the field.
    let err = SweepManifest::parse(r#"{"schema":"parcache-sweep-manifest-v1"}"#).unwrap_err();
    assert!(matches!(err, ManifestError::Schema(_)), "{err}");
    assert!(err.to_string().contains("grid_hash"), "{err}");
    let err = SweepManifest::parse(r#"{"schema":"something-else"}"#).unwrap_err();
    assert!(matches!(err, ManifestError::Schema(_)), "{err}");

    // A manifest from a different grid is stale, not spliceable.
    let err = plan_resume(&man, cells.len(), "0000beef", gates, false).unwrap_err();
    assert!(err.to_string().contains("grid_hash"), "{err}");
    let err = plan_resume(&man, cells.len() + 1, &hash, gates, false).unwrap_err();
    assert!(matches!(err, ManifestError::Stale(_)), "{err}");
    let other_gates = CsvGates::for_grid(&cells, &faults, true);
    let err = plan_resume(&man, cells.len(), &hash, other_gates, false).unwrap_err();
    assert!(matches!(err, ManifestError::Stale(_)), "{err}");

    // Duplicate and out-of-range indices are stale too.
    let mut dup = man.clone();
    dup.outcomes[1].index = 0;
    let err = plan_resume(&dup, cells.len(), &hash, gates, false).unwrap_err();
    assert!(err.to_string().contains("twice"), "{err}");
    let mut oob = man.clone();
    oob.outcomes[0].index = cells.len();
    let err = plan_resume(&oob, cells.len(), &hash, gates, false).unwrap_err();
    assert!(err.to_string().contains("outside"), "{err}");
}

#[test]
fn grid_hash_tracks_grid_content() {
    let cells = small_cells();
    let faults = FaultPlan::default();
    let base = grid_hash(&cells, &faults);
    // Stable across calls…
    assert_eq!(base, grid_hash(&cells, &faults));
    // …but sensitive to the grid: drop a cell, change an array size,
    // or add a fault plan and the hash moves.
    assert_ne!(base, grid_hash(&cells[1..], &faults));
    let mut resized = cells.clone();
    resized[0].disks += 1;
    assert_ne!(base, grid_hash(&resized, &faults));
    let faulty = FaultPlan::parse("flaky:*:0.01,seed:7").unwrap();
    assert_ne!(base, grid_hash(&cells, &faulty));
}
