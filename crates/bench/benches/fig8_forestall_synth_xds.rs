//! Figure 8: fixed horizon / aggressive / forestall on synth (left,
//! 1-4 disks) and xds (right, 1-6 disks).
//!
//! Paper's finding: forestall "behaves exactly as expected" — as
//! aggressive when I/O-bound, as fixed horizon when compute-bound.

use parcache_bench::{comparison, Algo};

fn main() {
    print!(
        "{}",
        comparison(
            "Figure 8 (left): synth with forestall",
            "synth",
            &Algo::PRACTICAL,
            &[1, 2, 3, 4],
            |c| c,
        )
    );
    println!();
    print!(
        "{}",
        comparison(
            "Figure 8 (right): xds with forestall",
            "xds",
            &Algo::PRACTICAL,
            &[1, 2, 3, 4, 5, 6],
            |c| c,
        )
    );
}
