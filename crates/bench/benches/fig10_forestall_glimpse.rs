//! Figure 10: fixed horizon / aggressive / forestall on glimpse,
//! 1-16 disks.

use parcache_bench::{comparison, Algo, DISK_COUNTS};

fn main() {
    print!(
        "{}",
        comparison(
            "Figure 10: glimpse with forestall",
            "glimpse",
            &Algo::PRACTICAL,
            &DISK_COUNTS,
            |c| c,
        )
    );
}
