//! Figure 2: elapsed-time breakdown on postgres-select, demand fetching
//! vs fixed horizon vs aggressive vs reverse aggressive, 1-16 disks.
//!
//! Headline findings reproduced here: all prefetchers significantly beat
//! optimal demand fetching, and I/O overhead drops near-linearly with
//! disks until the application becomes compute-bound.

use parcache_bench::{comparison, Algo, DISK_COUNTS};

fn main() {
    print!(
        "{}",
        comparison(
            "Figure 2: postgres-select, demand vs prefetchers",
            "postgres-select",
            &Algo::FIGURE_2,
            &DISK_COUNTS,
            |c| c,
        )
    );
}
