//! Table 7: elapsed time of fixed horizon relative to aggressive
//! (percentage difference) as a function of cache size and array size, on
//! glimpse.
//!
//! Paper's finding: in I/O-bound cases a larger cache helps aggressive
//! more (it prefetches deeper); in compute-bound cases aggressive's
//! driver overhead grows with cache size, slightly favoring fixed
//! horizon.

use parcache_bench::{percent, trace, Algo};
use parcache_core::SimConfig;

/// Paper Table 7: FH vs aggressive (%) by cache size x disks.
#[rustfmt::skip]
const PAPER: [(usize, [f64; 5]); 3] = [
    (640,  [ 6.0, 14.7, 24.8, 7.3, -2.6]),
    (1280, [11.3, 20.2, 24.5, 5.7, -3.8]),
    (1920, [13.8, 25.0, 21.7, 5.7, -3.8]),
];

const DISKS: [usize; 5] = [1, 2, 4, 8, 16];

fn main() {
    println!("== Table 7: fixed horizon vs aggressive (%) on glimpse ==");
    print!("{:<8}", "cache");
    for d in DISKS {
        print!(" {d:>8}");
    }
    println!("   | paper");
    let t = trace("glimpse");
    for (cache, paper_row) in PAPER {
        print!("{cache:<8}");
        for d in DISKS {
            let mut cfg = SimConfig::for_trace(d, &t);
            cfg.cache_blocks = cache;
            let fh = Algo::FixedHorizon.run(&t, &cfg);
            let agg = Algo::Aggressive.run(&t, &cfg);
            print!(" {:>8.1}", percent(fh.elapsed, agg.elapsed));
        }
        print!("   |");
        for p in paper_row {
            print!(" {p:>6.1}");
        }
        println!();
    }
}
