//! Micro-benchmarks for the simulator's building blocks: drive-model
//! service computation, oracle queries, cache operations, and end-to-end
//! engine throughput.
//!
//! Uses a minimal self-contained timing harness (median of several timed
//! repetitions) so the workspace carries no external bench dependencies
//! and builds offline. Run with `cargo bench --bench micro`.

use parcache_core::cache::Cache;
use parcache_core::oracle::Oracle;
use parcache_core::policy::PolicyKind;
use parcache_core::{simulate, SimConfig};
use parcache_disk::geometry::SectorSpan;
use parcache_disk::model::DiskModel;
use parcache_disk::{Hp97560, Layout};
use parcache_trace::synth::synth_trace;
use parcache_types::rng::Rng;
use parcache_types::{BlockId, Nanos};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Times `f` repeatedly and prints the median per-iteration cost.
fn bench(name: &str, mut f: impl FnMut()) {
    // Warm up, then collect enough samples for a stable median.
    for _ in 0..3 {
        f();
    }
    let mut samples: Vec<Duration> = Vec::with_capacity(15);
    for _ in 0..15 {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed());
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    println!(
        "{name:<44} {median:>12.2?} / iter (median of {})",
        samples.len()
    );
}

fn bench_disk_model() {
    let mut rng = Rng::seed_from_u64(1);
    let blocks: Vec<u64> = (0..1024).map(|_| rng.gen_range(0..160_000u64)).collect();
    bench("hp97560_random_service (1024 accesses)", || {
        let mut disk = Hp97560::new();
        let mut now = Nanos::ZERO;
        for &blk in &blocks {
            now = disk.service(now, &SectorSpan::for_block(blk));
        }
        black_box(now);
    });
}

fn bench_oracle() {
    let t = synth_trace(10, 2000, 3);
    let oracle = Oracle::new(&t, Layout::striped(4));
    let mut rng = Rng::seed_from_u64(2);
    let queries: Vec<(BlockId, usize)> = (0..4096)
        .map(|_| {
            (
                BlockId(rng.gen_range(0..2000u64)),
                rng.gen_range(0..20_000usize),
            )
        })
        .collect();
    bench("oracle_next_occurrence (4096 queries)", || {
        for &(blk, at) in &queries {
            black_box(oracle.next_occurrence(blk, at));
        }
    });
}

fn bench_cache() {
    let t = synth_trace(10, 2000, 3);
    let oracle = Oracle::new(&t, Layout::striped(1));
    let universe = oracle.num_blocks();
    assert!(universe >= 1024, "need at least 1024 distinct blocks");
    bench("cache_fetch_evict_cycle (512 evictions)", || {
        let mut cache = Cache::new(512, universe);
        for idx in 0..512u32 {
            cache.start_fetch(idx, None);
            cache.complete_fetch(idx, 0, &oracle);
        }
        for idx in 512..1024u32 {
            let (victim, _) = cache.furthest_resident(0, &oracle).expect("resident");
            cache.start_fetch(idx, Some(victim));
            cache.complete_fetch(idx, 0, &oracle);
        }
        black_box(cache.resident_count());
    });
}

fn bench_engine() {
    let t = synth_trace(5, 1000, 4);
    let cfg = SimConfig::for_trace(2, &t);
    bench("engine_aggressive_5k_refs", || {
        black_box(simulate(&t, PolicyKind::Aggressive, &cfg));
    });
    bench("engine_reverse_build_and_run_5k_refs", || {
        black_box(simulate(&t, PolicyKind::ReverseAggressive, &cfg));
    });
}

fn main() {
    bench_disk_model();
    bench_oracle();
    bench_cache();
    bench_engine();
}
