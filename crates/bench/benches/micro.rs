//! Criterion micro-benchmarks for the simulator's building blocks:
//! drive-model service computation, oracle queries, cache operations, and
//! end-to-end engine throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use parcache_core::cache::Cache;
use parcache_core::oracle::Oracle;
use parcache_core::policy::PolicyKind;
use parcache_core::{simulate, SimConfig};
use parcache_disk::geometry::SectorSpan;
use parcache_disk::model::DiskModel;
use parcache_disk::{Hp97560, Layout};
use parcache_trace::synth::synth_trace;
use parcache_types::{BlockId, Nanos};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_disk_model(c: &mut Criterion) {
    c.bench_function("hp97560_random_service", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        let blocks: Vec<u64> = (0..1024).map(|_| rng.gen_range(0..160_000)).collect();
        b.iter_batched(
            Hp97560::new,
            |mut disk| {
                let mut now = Nanos::ZERO;
                for &blk in &blocks {
                    now = disk.service(now, &SectorSpan::for_block(blk));
                }
                black_box(now)
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_oracle(c: &mut Criterion) {
    let t = synth_trace(10, 2000, 3);
    let oracle = Oracle::new(&t, Layout::striped(4));
    c.bench_function("oracle_next_occurrence", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            let blk = BlockId(rng.gen_range(0..2000));
            let at = rng.gen_range(0..20_000);
            black_box(oracle.next_occurrence(blk, at))
        });
    });
}

fn bench_cache(c: &mut Criterion) {
    let t = synth_trace(10, 2000, 3);
    let oracle = Oracle::new(&t, Layout::striped(1));
    c.bench_function("cache_fetch_evict_cycle", |b| {
        b.iter_batched(
            || {
                let mut cache = Cache::new(512);
                for blk in 0..512u64 {
                    cache.start_fetch(BlockId(blk), None);
                    cache.complete_fetch(BlockId(blk), 0, &oracle);
                }
                cache
            },
            |mut cache| {
                for blk in 512..1024u64 {
                    let (victim, _) = cache.furthest_resident(0, &oracle).expect("resident");
                    cache.start_fetch(BlockId(blk), Some(victim));
                    cache.complete_fetch(BlockId(blk), 0, &oracle);
                }
                black_box(cache.resident_count())
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_engine(c: &mut Criterion) {
    let t = synth_trace(5, 1000, 4);
    c.bench_function("engine_aggressive_5k_refs", |b| {
        let cfg = SimConfig::for_trace(2, &t);
        b.iter(|| black_box(simulate(&t, PolicyKind::Aggressive, &cfg)));
    });
    c.bench_function("engine_reverse_build_and_run_5k_refs", |b| {
        let cfg = SimConfig::for_trace(2, &t);
        b.iter(|| black_box(simulate(&t, PolicyKind::ReverseAggressive, &cfg)));
    });
}

criterion_group!(
    benches,
    bench_disk_model,
    bench_oracle,
    bench_cache,
    bench_engine
);
criterion_main!(benches);
