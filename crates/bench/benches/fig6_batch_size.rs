//! Figure 6: aggressive's elapsed time on cscope2 as a function of batch
//! size, for 1-5 disks.
//!
//! Paper's finding: performance first improves with batch size (better
//! head scheduling), then degrades (out-of-order fetching and early
//! replacement); the best batch size shrinks as disks are added.

use parcache_bench::trace;
use parcache_core::policy::PolicyKind;
use parcache_core::{simulate, SimConfig};

const BATCHES: [usize; 9] = [4, 8, 16, 40, 80, 160, 320, 640, 1280];

fn main() {
    println!("== Figure 6: aggressive vs batch size on cscope2 (elapsed, s) ==");
    print!("{:<6}", "disks");
    for b in BATCHES {
        print!(" {b:>8}");
    }
    println!();
    let t = trace("cscope2");
    for disks in 1..=5usize {
        print!("{disks:<6}");
        for b in BATCHES {
            let cfg = SimConfig::for_trace(disks, &t).with_batch_size(b);
            let r = simulate(&t, PolicyKind::Aggressive, &cfg);
            print!(" {:>8.2}", r.elapsed.as_secs_f64());
        }
        println!();
    }
    println!();
    println!("paper (Figure 6): 1-disk elapsed falls from ~70s (batch 4) to");
    println!("~56s (batch 160) then rises again by batch 1280; variation");
    println!("shrinks and the optimum moves to smaller batches as disks grow.");
}
