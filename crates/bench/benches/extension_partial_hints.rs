//! Extension (paper §6): incomplete hints.
//!
//! The paper's study is fully hinted; its conclusions conjecture how the
//! algorithms degrade as disclosure shrinks: "Since fixed horizon places
//! the least load on the disks and the cache, it is likely to be least
//! affected by unhinted accesses." This bench sweeps the disclosed
//! fraction under two disclosure models:
//!
//! * **segments** — applications hint whole files/phases at a time; the
//!   realistic model;
//! * **random** — each reference independently disclosed; adversarial,
//!   because almost every block keeps *some* disclosed future reference
//!   while losing others, so informed replacement makes confidently
//!   wrong evictions.
//!
//! Measured findings: fixed horizon interpolates smoothly between the
//! hinted and unhinted extremes; the deeper-prefetching policies can be
//! *worse than no hints at all* under random disclosure — the behavior
//! that motivates TIP2-style cost-benefit control of hint usage.

use parcache_bench::trace;
use parcache_core::hints::HintSpec;
use parcache_core::policy::PolicyKind;
use parcache_core::{simulate, SimConfig};

const FRACTIONS: [f64; 3] = [0.25, 0.5, 0.75];
const POLICIES: [PolicyKind; 4] = [
    PolicyKind::Demand,
    PolicyKind::FixedHorizon,
    PolicyKind::Aggressive,
    PolicyKind::Forestall,
];

fn sweep(name: &str, disks: usize, model: &str) {
    let t = trace(name);
    println!("-- {name}, {disks} disk(s), {model} disclosure --");
    print!("{:<16} {:>9}", "hinted", "none");
    for f in FRACTIONS {
        print!(" {:>8.0}%", f * 100.0);
    }
    println!(" {:>9}", "full");
    for kind in POLICIES {
        print!("{:<16}", kind.name());
        let none = SimConfig::for_trace(disks, &t).with_hints(HintSpec::None);
        print!(" {:>9.2}", simulate(&t, kind, &none).elapsed.as_secs_f64());
        for f in FRACTIONS {
            let hints = match model {
                "segments" => HintSpec::Segments {
                    fraction: f,
                    mean_run: 200,
                    seed: 7,
                },
                _ => HintSpec::Fraction {
                    fraction: f,
                    seed: 7,
                },
            };
            let cfg = SimConfig::for_trace(disks, &t).with_hints(hints);
            print!(" {:>9.2}", simulate(&t, kind, &cfg).elapsed.as_secs_f64());
        }
        let full = SimConfig::for_trace(disks, &t);
        println!(" {:>9.2}", simulate(&t, kind, &full).elapsed.as_secs_f64());
    }
    println!();
}

fn main() {
    println!("== Extension: incomplete hints (elapsed, s) ==");
    for name in ["postgres-select", "cscope2", "ld"] {
        for model in ["segments", "random"] {
            sweep(name, 2, model);
        }
    }
}
