//! Ablations of the simulator's design choices (see DESIGN.md).
//!
//! The paper asserts that "batching of prefetch requests and disk head
//! scheduling are crucial" (§1.4); Figure 6 and Table 5 quantify
//! batching and CSCAN-vs-FCFS. This bench ablates the remaining load-
//! bearing pieces of the substrate:
//!
//! 1. The drive's 128 KB readahead cache — how much of the sequential
//!    traces' performance it provides.
//! 2. The head-scheduling discipline, across all four implemented
//!    disciplines (the paper compares only FCFS and CSCAN).
//! 3. Fixed horizon's derivation of H — the paper picks H = 62 from the
//!    ratio of a 15 ms disk access to a 243 us buffer consume; sweep the
//!    neighborhood to show the choice is flat near the derived value.

use parcache_bench::trace;
use parcache_core::config::DiskModelKind;
use parcache_core::policy::PolicyKind;
use parcache_core::{simulate, SimConfig};
use parcache_disk::sched::Discipline;

fn readahead_ablation() {
    println!("-- readahead cache on/off (elapsed, s; aggressive) --");
    println!(
        "{:<18} {:>6} {:>12} {:>12} {:>8}",
        "trace", "disks", "readahead", "disabled", "cost"
    );
    for name in ["dinero", "synth", "cscope2", "postgres-select"] {
        let t = trace(name);
        for disks in [1usize, 4] {
            let on = simulate(&t, PolicyKind::Aggressive, &SimConfig::for_trace(disks, &t));
            let cfg_off =
                SimConfig::for_trace(disks, &t).with_disk_model(DiskModelKind::Hp97560NoReadahead);
            let off = simulate(&t, PolicyKind::Aggressive, &cfg_off);
            println!(
                "{:<18} {:>6} {:>11.2}s {:>11.2}s {:>7.2}x",
                name,
                disks,
                on.elapsed.as_secs_f64(),
                off.elapsed.as_secs_f64(),
                off.elapsed.as_secs_f64() / on.elapsed.as_secs_f64(),
            );
        }
    }
    println!();
}

fn scheduler_ablation() {
    println!("-- head-scheduling discipline (elapsed, s; fixed horizon) --");
    println!(
        "{:<18} {:>6} {:>9} {:>9} {:>9} {:>9}",
        "trace", "disks", "fcfs", "cscan", "scan", "sstf"
    );
    let disciplines = [
        Discipline::Fcfs,
        Discipline::Cscan,
        Discipline::Scan { ascending: true },
        Discipline::Sstf,
    ];
    for name in ["cscope2", "postgres-select", "glimpse"] {
        let t = trace(name);
        for disks in [1usize, 2, 4] {
            print!("{name:<18} {disks:>6}");
            for d in disciplines {
                let cfg = SimConfig::for_trace(disks, &t).with_discipline(d);
                let r = simulate(&t, PolicyKind::FixedHorizon, &cfg);
                print!(" {:>9.2}", r.elapsed.as_secs_f64());
            }
            println!();
        }
    }
    println!();
}

fn horizon_derivation() {
    println!("-- fixed horizon H near the paper's derived 62 (elapsed, s) --");
    let horizons = [31usize, 47, 62, 93, 124];
    print!("{:<18} {:>6}", "trace", "disks");
    for h in horizons {
        print!(" {h:>9}");
    }
    println!();
    for name in ["postgres-select", "cscope2"] {
        let t = trace(name);
        for disks in [1usize, 4] {
            print!("{name:<18} {disks:>6}");
            for h in horizons {
                let cfg = SimConfig::for_trace(disks, &t).with_horizon(h);
                let r = simulate(&t, PolicyKind::FixedHorizon, &cfg);
                print!(" {:>9.2}", r.elapsed.as_secs_f64());
            }
            println!();
        }
    }
    println!();
}

fn main() {
    println!("== Ablations: substrate design choices ==");
    readahead_ablation();
    scheduler_ablation();
    horizon_derivation();
}
