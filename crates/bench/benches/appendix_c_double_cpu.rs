//! Appendix C: a processor twice as fast (all compute times halved,
//! fixed horizon's H doubled to 124), on the xds trace.
//!
//! Paper's finding: "faster processors are more dependent on I/O
//! performance", so prefetching and parallel disks pay off more, and the
//! fixed-horizon-vs-aggressive crossover moves to a larger number of
//! disks. Paper reference (Table 29, elapsed): fixed horizon 63.7s at
//! one disk falling to ~19-22s at 4-8 disks; aggressive 63.3s falling to
//! ~17-18s.

use parcache_bench::{comparison_on, trace, Algo, DISK_COUNTS};

fn main() {
    let t = trace("xds").with_double_speed_cpu();
    print!(
        "{}",
        comparison_on(
            "Appendix C: xds, double-speed CPU, H = 124",
            &t,
            &Algo::THREE,
            &DISK_COUNTS,
            |c| c.with_horizon(124),
            false,
        )
    );
}
