//! Appendix G: fixed horizon's performance as a function of the prefetch
//! horizon H, on the traces the paper varies: dinero, cscope1, cscope2,
//! and postgres-select.

use parcache_bench::trace;
use parcache_core::policy::PolicyKind;
use parcache_core::{simulate, SimConfig};

const TRACES: [&str; 4] = ["dinero", "cscope1", "cscope2", "postgres-select"];
const HORIZONS: [usize; 8] = [16, 32, 64, 128, 256, 512, 1024, 2048];
const DISKS: [usize; 4] = [1, 2, 4, 6];

fn main() {
    println!("== Appendix G: fixed horizon vs H (elapsed, s) ==");
    for name in TRACES {
        println!("-- {name} --");
        print!("{:<6}", "disks");
        for h in HORIZONS {
            print!(" {h:>8}");
        }
        println!();
        let t = trace(name);
        for d in DISKS {
            print!("{d:<6}");
            for h in HORIZONS {
                let cfg = SimConfig::for_trace(d, &t).with_horizon(h);
                let r = simulate(&t, PolicyKind::FixedHorizon, &cfg);
                print!(" {:>8.2}", r.elapsed.as_secs_f64());
            }
            println!();
        }
        println!();
    }
    println!("paper (appendix G): dinero/cscope1 degrade with large H (early");
    println!("replacement doubles dinero's fetches by H=512); cscope2 and");
    println!("postgres-select first improve substantially with H.");
}
