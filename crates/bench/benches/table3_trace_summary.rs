//! Table 3: trace summary data — reads, distinct blocks, compute time.
//!
//! Generated traces match the paper's statistics exactly, with one
//! documented erratum: the postgres-join / postgres-select compute totals
//! follow the paper's appendix (which its Table 3 contradicts).

use parcache_bench::trace;
use parcache_trace::TRACE_NAMES;

fn main() {
    println!("== Table 3: trace summary data ==");
    println!(
        "{:<16} {:>8} {:>16} {:>14}",
        "trace", "reads", "distinct blocks", "compute (sec)"
    );
    for name in TRACE_NAMES {
        let t = trace(name);
        let s = t.stats();
        println!(
            "{:<16} {:>8} {:>16} {:>14.1}",
            name,
            s.reads,
            s.distinct_blocks,
            s.compute.as_secs_f64()
        );
    }
    println!();
    println!("paper: identical by construction (generators are calibrated");
    println!("to these exact statistics); postgres compute totals follow");
    println!("the appendix tables (paper Table 3 erratum).");
}
