//! Figure 4: detailed breakdown on the I/O-bound ld trace, 1-16 disks.
//!
//! The paper's crossover narrative: from two to eight disks the more
//! aggressive prefetchers out-stall fixed horizon; at ten disks fixed
//! horizon catches aggressive, and beyond that its lower driver overhead
//! wins.

use parcache_bench::{comparison, Algo, DISK_COUNTS};

fn main() {
    print!(
        "{}",
        comparison("Figure 4: ld", "ld", &Algo::THREE, &DISK_COUNTS, |c| c)
    );
}
