//! Table 2: cross-simulator validation.
//!
//! The paper validated its results across two independently-written
//! simulators (UW's detailed HP 97560 model and CMU's RaidSim with IBM
//! Lightning drives) on the xds and synth traces, for fixed horizon and
//! aggressive at 1-4 disks, and found "remaining differences between the
//! simulators are consistent with the differences in the disk models".
//! This bench reproduces the methodology with the detailed and coarse
//! drive models.

use parcache_bench::{run, trace, Algo};
use parcache_core::config::{DiskModelKind, SimConfig};

fn main() {
    println!("== Table 2: cross-simulator (cross-model) validation ==");
    println!(
        "{:<8} {:<6} {:<15} {:>14} {:>14} {:>8}",
        "trace", "disks", "policy", "detailed(s)", "coarse(s)", "ratio"
    );
    for trace_name in ["xds", "synth"] {
        let t = trace(trace_name);
        for disks in 1..=4usize {
            for algo in [Algo::FixedHorizon, Algo::Aggressive] {
                let detailed_cfg = SimConfig::for_trace(disks, &t);
                let coarse_cfg =
                    SimConfig::for_trace(disks, &t).with_disk_model(DiskModelKind::Coarse);
                let a = algo.run(&t, &detailed_cfg).elapsed.as_secs_f64();
                let b = run(
                    &t,
                    match algo {
                        Algo::FixedHorizon => parcache_core::PolicyKind::FixedHorizon,
                        _ => parcache_core::PolicyKind::Aggressive,
                    },
                    &coarse_cfg,
                )
                .elapsed
                .as_secs_f64();
                println!(
                    "{:<8} {:<6} {:<15} {:>14.3} {:>14.3} {:>8.3}",
                    trace_name,
                    disks,
                    algo.name(),
                    a,
                    b,
                    b / a
                );
            }
        }
    }
    println!();
    println!("paper (Table 2): agreement within the disk models' differences;");
    println!("e.g. synth 1-disk FH: CMU 213.0s vs UW 201.4s (ratio 1.06).");
}
