//! Appendix H: forestall with a static fetch-time overestimate F'
//! instead of the dynamic 1x/4x rule, compared against the dynamic
//! estimator.
//!
//! Paper's finding: the best static multiplier varies per trace (1 for
//! dinero up to 60 for glimpse), but a single value of 30-60 is within
//! ~7% of the dynamic estimator everywhere — "choosing the right
//! parameters between workloads is more important than within one".

use parcache_bench::trace;
use parcache_core::policy::PolicyKind;
use parcache_core::{simulate, SimConfig};
use parcache_trace::TRACE_NAMES;

const MULTIPLIERS: [f64; 6] = [2.0, 4.0, 8.0, 15.0, 30.0, 60.0];
const DISKS: [usize; 3] = [1, 2, 4];

fn main() {
    println!("== Appendix H: forestall with static F' (elapsed, s) ==");
    for name in TRACE_NAMES {
        println!("-- {name} --");
        print!("{:<6} {:>9}", "disks", "dynamic");
        for m in MULTIPLIERS {
            print!(" {:>9}", format!("F'={m}"));
        }
        println!();
        let t = trace(name);
        for d in DISKS {
            let dynamic = simulate(&t, PolicyKind::Forestall, &SimConfig::for_trace(d, &t));
            print!("{:<6} {:>9.2}", d, dynamic.elapsed.as_secs_f64());
            for m in MULTIPLIERS {
                let cfg = SimConfig::for_trace(d, &t).with_forestall_static_f(m);
                let r = simulate(&t, PolicyKind::Forestall, &cfg);
                print!(" {:>9.2}", r.elapsed.as_secs_f64());
            }
            println!();
        }
        println!();
    }
}
