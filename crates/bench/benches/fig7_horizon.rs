//! Figure 7: fixed horizon's elapsed time as a function of the prefetch
//! horizon H, on cscope1 (left, compute-bound) and cscope2 (right, more
//! I/O-bound), 1-3 disks.
//!
//! Paper's finding: on cscope1 performance deteriorates with H beyond 64
//! (early replacement); on cscope2 larger H first helps substantially
//! (deeper prefetching removes stall) before declining at very large H.

use parcache_bench::trace;
use parcache_core::policy::PolicyKind;
use parcache_core::{simulate, SimConfig};

const HORIZONS: [usize; 8] = [16, 32, 64, 128, 256, 512, 1024, 2048];

fn sweep(trace_name: &str) {
    println!("-- {trace_name} --");
    print!("{:<6}", "disks");
    for h in HORIZONS {
        print!(" {h:>8}");
    }
    println!();
    let t = trace(trace_name);
    for disks in 1..=3usize {
        print!("{disks:<6}");
        for h in HORIZONS {
            let cfg = SimConfig::for_trace(disks, &t).with_horizon(h);
            let r = simulate(&t, PolicyKind::FixedHorizon, &cfg);
            print!(" {:>8.2}", r.elapsed.as_secs_f64());
        }
        println!();
    }
}

fn main() {
    println!("== Figure 7: fixed horizon vs H (elapsed, s) ==");
    sweep("cscope1");
    println!();
    sweep("cscope2");
    println!();
    println!("paper (appendix G): cscope1 1-disk worsens 30.5 -> 34.3 from");
    println!("H=16 to H=2048; cscope2 1-disk improves 77.8 -> 59.3 from");
    println!("H=16 to H=512 before rising again.");
}
