//! Appendix A: baseline measurements — the full data behind the paper's
//! evaluation. Every trace, every published array size, the four
//! prefetching algorithms with the paper's default parameters (H = 62,
//! Table 6 batch sizes, reverse aggressive tuned per configuration),
//! side by side with the paper's elapsed times.

use parcache_bench::{comparison, paper_cells, Algo};
use parcache_trace::TRACE_NAMES;

fn main() {
    for name in TRACE_NAMES {
        let disks = paper_cells(name).expect("every trace has paper cells");
        print!(
            "{}",
            comparison(
                &format!("Appendix A: {name}"),
                name,
                &Algo::APPENDIX_A,
                disks,
                |c| c,
            )
        );
        println!();
    }
}
