//! Extension (paper §6): the treatment of writes.
//!
//! The paper ignores writes, arguing write-behind masks update latency
//! (§3); §6 names writes as future work. This bench adds a write-behind
//! load — one flush of the just-updated block per N reads — and measures
//! how the shared disk bandwidth squeezes each prefetching algorithm.
//! The application never waits for a write, so compute-bound workloads
//! should be untouched while I/O-bound ones pay for the stolen
//! bandwidth — and the algorithms that keep disks busiest (aggressive)
//! should feel it most.

use parcache_bench::trace;
use parcache_core::policy::PolicyKind;
use parcache_core::{simulate, SimConfig};

/// One write per N reads; `None` is the paper's read-only baseline.
const PERIODS: [Option<usize>; 4] = [None, Some(8), Some(4), Some(2)];

const POLICIES: [PolicyKind; 3] = [
    PolicyKind::FixedHorizon,
    PolicyKind::Aggressive,
    PolicyKind::Forestall,
];

fn main() {
    println!("== Extension: write-behind load (elapsed, s) ==");
    for name in ["postgres-select", "cscope2", "postgres-join"] {
        let t = trace(name);
        for disks in [1usize, 4] {
            println!("-- {name}, {disks} disk(s) --");
            print!("{:<16}", "write period");
            for p in PERIODS {
                match p {
                    None => print!(" {:>10}", "read-only"),
                    Some(n) => print!(" {:>10}", format!("1/{n}")),
                }
            }
            println!();
            for kind in POLICIES {
                print!("{:<16}", kind.name());
                for p in PERIODS {
                    let mut cfg = SimConfig::for_trace(disks, &t);
                    cfg.write_behind_period = p;
                    let r = simulate(&t, kind, &cfg);
                    print!(" {:>10.2}", r.elapsed.as_secs_f64());
                }
                println!();
            }
            println!();
        }
    }
    println!("expectation: the compute-bound postgres-join barely moves;");
    println!("the I/O-bound traces slow as writes steal bandwidth, most at");
    println!("one disk, and write-behind never adds synchronous stall.");
}
