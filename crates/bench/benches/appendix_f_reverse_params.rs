//! Appendix F: reverse aggressive's elapsed time as a function of its
//! fetch-time estimate F̂ and batch size.
//!
//! Paper's finding: a smaller F̂ (more aggressive schedule) and larger
//! batch benefit I/O-bound configurations; a larger F̂ and smaller batch
//! benefit compute-bound ones.

use parcache_bench::trace;
use parcache_core::policy::PolicyKind;
use parcache_core::{simulate, SimConfig};

const TRACES: [&str; 3] = ["cscope2", "postgres-select", "xds"];
const FETCH_ESTIMATES: [u64; 6] = [4, 8, 16, 32, 64, 128];
const BATCHES: [usize; 4] = [4, 16, 40, 160];
const DISKS: [usize; 3] = [1, 2, 4];

fn main() {
    println!("== Appendix F: reverse aggressive vs (F-hat, batch) (elapsed, s) ==");
    for name in TRACES {
        let t = trace(name);
        for d in DISKS {
            println!("-- {name}, {d} disk(s) --");
            print!("{:<8}", "F-hat");
            for b in BATCHES {
                print!(" {:>9}", format!("batch {b}"));
            }
            println!();
            for f in FETCH_ESTIMATES {
                print!("{f:<8}");
                for b in BATCHES {
                    let cfg = SimConfig::for_trace(d, &t).with_reverse_params(f, b);
                    let r = simulate(&t, PolicyKind::ReverseAggressive, &cfg);
                    print!(" {:>9.2}", r.elapsed.as_secs_f64());
                }
                println!();
            }
            println!();
        }
    }
}
