//! Table 5: percentage improvement of CSCAN over FCFS head scheduling on
//! postgres-select, for the three prefetching algorithms, 1-16 disks.
//!
//! Paper's finding: CSCAN helps reverse aggressive most (up to 24%),
//! fixed horizon least (up to 15%), and the benefit vanishes (or turns
//! slightly negative, due to out-of-order fetching) once compute-bound.

use parcache_bench::{trace, Algo, DISK_COUNTS};
use parcache_core::SimConfig;
use parcache_disk::sched::Discipline;

/// Paper Table 5 (% improvement of CSCAN over FCFS).
#[rustfmt::skip]
const PAPER: [(usize, f64, f64, f64); 11] = [
    (1,  14.9,  19.2,  24.0),
    (2,   4.85, 11.3,  22.1),
    (3,   2.59,  8.36, 19.9),
    (4,   0.53,  3.59,  6.71),
    (5,  -0.62, -0.77,  0.0),
    (6,  -0.68, -0.31,  0.0),
    (7,  -2.15, -0.45,  0.0),
    (8,  -0.42, -0.17,  0.0),
    (10, -0.05,  0.09,  0.0),
    (12,  0.0,   0.11,  0.0),
    (16,  0.0,   0.0,   0.0),
];

fn main() {
    println!("== Table 5: CSCAN improvement over FCFS on postgres-select (%) ==");
    println!(
        "{:<6} {:>8} {:>8} {:>8}   | paper: {:>7} {:>7} {:>7}",
        "disks", "fh", "agg", "revagg", "fh", "agg", "revagg"
    );
    let t = trace("postgres-select");
    for (i, &d) in DISK_COUNTS.iter().enumerate() {
        let improvement = |a: Algo| {
            let cscan = SimConfig::for_trace(d, &t);
            let fcfs = SimConfig::for_trace(d, &t).with_discipline(Discipline::Fcfs);
            let c = a.run(&t, &cscan).elapsed.as_secs_f64();
            let f = a.run(&t, &fcfs).elapsed.as_secs_f64();
            (f - c) / f * 100.0
        };
        let p = PAPER[i];
        assert_eq!(p.0, d);
        println!(
            "{:<6} {:>8.2} {:>8.2} {:>8.2}   |        {:>7.2} {:>7.2} {:>7.2}",
            d,
            improvement(Algo::FixedHorizon),
            improvement(Algo::Aggressive),
            improvement(Algo::TunedReverse),
            p.1,
            p.2,
            p.3,
        );
    }
}
