//! Table 8: forestall's disk utilization on postgres-select — between
//! aggressive's and fixed horizon's: aggressive-like when I/O-bound,
//! fixed-horizon-like when compute-bound.

use parcache_bench::{trace, Algo, DISK_COUNTS};
use parcache_core::SimConfig;

/// Paper Table 8.
const PAPER: [f64; 11] = [
    0.99, 0.92, 0.87, 0.81, 0.68, 0.63, 0.62, 0.54, 0.39, 0.30, 0.32,
];

fn main() {
    println!("== Table 8: forestall disk utilization on postgres-select ==");
    println!("{:<6} {:>10} {:>10}", "disks", "measured", "paper");
    let t = trace("postgres-select");
    for (i, &d) in DISK_COUNTS.iter().enumerate() {
        let cfg = SimConfig::for_trace(d, &t);
        let r = Algo::Forestall.run(&t, &cfg);
        println!(
            "{:<6} {:>10.2} {:>10.2}",
            d, r.avg_disk_utilization, PAPER[i]
        );
    }
}
