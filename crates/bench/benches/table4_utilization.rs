//! Table 4: average disk utilization on postgres-select for demand
//! fetching and the three prefetching algorithms, 1-16 disks.
//!
//! Paper's finding: aggressive loads the disks most, then reverse
//! aggressive, then fixed horizon; demand least — and at very high
//! parallelism reverse aggressive's offline schedule loads them even
//! less than fixed horizon.

use parcache_bench::{trace, Algo, DISK_COUNTS};
use parcache_core::SimConfig;

/// Paper Table 4 (utilization by disks x algorithm).
#[rustfmt::skip]
const PAPER: [(usize, f64, f64, f64, f64); 11] = [
    (1,  0.81, 0.99, 0.99, 0.98),
    (2,  0.55, 0.90, 0.92, 0.92),
    (3,  0.27, 0.82, 0.87, 0.85),
    (4,  0.20, 0.72, 0.81, 0.80),
    (5,  0.16, 0.66, 0.70, 0.69),
    (6,  0.13, 0.58, 0.63, 0.60),
    (7,  0.12, 0.50, 0.62, 0.50),
    (8,  0.10, 0.45, 0.56, 0.42),
    (10, 0.08, 0.36, 0.43, 0.35),
    (12, 0.07, 0.30, 0.36, 0.30),
    (16, 0.05, 0.22, 0.28, 0.18),
];

fn main() {
    println!("== Table 4: disk utilization on postgres-select ==");
    println!(
        "{:<6} {:>9} {:>9} {:>9} {:>9}   | paper: {:>6} {:>6} {:>6} {:>6}",
        "disks", "demand", "fh", "agg", "revagg", "demand", "fh", "agg", "revagg"
    );
    let t = trace("postgres-select");
    for (i, &d) in DISK_COUNTS.iter().enumerate() {
        let cfg = SimConfig::for_trace(d, &t);
        let util = |a: Algo| a.run(&t, &cfg).avg_disk_utilization;
        let (pd, de, fh, ag, rv) = {
            let p = PAPER[i];
            (p.0, p.1, p.2, p.3, p.4)
        };
        assert_eq!(pd, d);
        println!(
            "{:<6} {:>9.2} {:>9.2} {:>9.2} {:>9.2}   |        {:>6.2} {:>6.2} {:>6.2} {:>6.2}",
            d,
            util(Algo::Demand),
            util(Algo::FixedHorizon),
            util(Algo::Aggressive),
            util(Algo::TunedReverse),
            de,
            fh,
            ag,
            rv,
        );
    }
}
