//! Figure 5: cscope3, 1-8 disks — the reverse aggressive anomaly.
//!
//! cscope3's inter-reference compute times are bursty (runs near 1 ms
//! interleaved with runs near 7 ms), so no single fetch-time estimate F̂
//! suits the whole trace: reverse aggressive's offline schedule is much
//! worse than aggressive at one disk (§4.3).

use parcache_bench::{comparison, Algo};

fn main() {
    print!(
        "{}",
        comparison(
            "Figure 5: cscope3 (bursty compute)",
            "cscope3",
            &Algo::THREE,
            &[1, 2, 3, 4, 5, 6, 7, 8],
            |c| c,
        )
    );
}
