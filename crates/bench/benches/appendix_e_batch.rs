//! Appendix E: aggressive's performance as a function of its batch size,
//! across traces and array sizes.
//!
//! Paper's finding: larger batches first help (head scheduling) then
//! hurt (out-of-order fetching, early replacement); the optimum shrinks
//! with the number of disks and varies across traces.

use parcache_bench::trace;
use parcache_core::policy::PolicyKind;
use parcache_core::{simulate, SimConfig};
use parcache_trace::TRACE_NAMES;

const BATCHES: [usize; 6] = [4, 8, 16, 40, 80, 160];
const DISKS: [usize; 4] = [1, 2, 4, 6];

fn main() {
    println!("== Appendix E: aggressive vs batch size (elapsed, s) ==");
    for name in TRACE_NAMES {
        println!("-- {name} --");
        print!("{:<6}", "disks");
        for b in BATCHES {
            print!(" {b:>8}");
        }
        println!();
        let t = trace(name);
        for d in DISKS {
            print!("{d:<6}");
            for b in BATCHES {
                let cfg = SimConfig::for_trace(d, &t).with_batch_size(b);
                let r = simulate(&t, PolicyKind::Aggressive, &cfg);
                print!(" {:>8.2}", r.elapsed.as_secs_f64());
            }
            println!();
        }
        println!();
    }
}
