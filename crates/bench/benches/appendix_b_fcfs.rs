//! Appendix B: baseline parameters with FCFS head scheduling instead of
//! CSCAN.
//!
//! Paper highlights to compare against: with FCFS, cscope2's fixed
//! horizon 1-disk elapsed rises from 72.9s to 75.4s and aggressive's
//! from 56.1s to 58.2s; compute-bound cells are unchanged.

use parcache_bench::{comparison_with, paper_cells, Algo};
use parcache_disk::sched::Discipline;
use parcache_trace::TRACE_NAMES;

fn main() {
    for name in TRACE_NAMES {
        let disks = paper_cells(name).expect("every trace has paper cells");
        print!(
            "{}",
            comparison_with(
                &format!("Appendix B (FCFS): {name}"),
                name,
                &Algo::APPENDIX_A,
                disks,
                |c| c.with_discipline(Discipline::Fcfs),
                false,
            )
        );
        println!();
    }
}
