//! Figure 3: fixed horizon / aggressive / reverse aggressive on the
//! synth (left) and cscope1 (right) traces, 1-4 disks.
//!
//! The synthetic trace shows the algorithms' fundamental differences in
//! exaggerated form (§4.2): aggressive eliminates stall at 1 disk but
//! wastes fetches at 3+ disks; fixed horizon is best once compute-bound.

use parcache_bench::{comparison, Algo};

fn main() {
    print!(
        "{}",
        comparison(
            "Figure 3 (left): synth",
            "synth",
            &Algo::THREE,
            &[1, 2, 3, 4],
            |c| c,
        )
    );
    println!();
    print!(
        "{}",
        comparison(
            "Figure 3 (right): cscope1",
            "cscope1",
            &Algo::THREE,
            &[1, 2, 3, 4],
            |c| c,
        )
    );
}
