//! Appendix D: varying the cache size — 640 and 1920 blocks (5 MB and
//! 15 MB) against the baseline 1280, on the traces the paper varies:
//! glimpse, postgres-join, postgres-select, and xds.
//!
//! Paper's finding: a larger cache helps everyone; in I/O-bound cases it
//! helps aggressive and reverse aggressive more (deeper prefetching), in
//! compute-bound cases it slightly favors fixed horizon (aggressive's
//! driver overhead grows). Paper reference (glimpse, fixed horizon, one
//! disk): 122.9s at 640 blocks vs 100.3s at 1920.

use parcache_bench::{comparison_with, Algo};

const TRACES: [&str; 4] = ["glimpse", "postgres-join", "postgres-select", "xds"];
const DISKS: [usize; 6] = [1, 2, 3, 4, 5, 6];

fn main() {
    for name in TRACES {
        for cache in [640usize, 1920] {
            print!(
                "{}",
                comparison_with(
                    &format!("Appendix D: {name}, cache {cache} blocks"),
                    name,
                    &Algo::APPENDIX_A,
                    &DISKS,
                    |mut c| {
                        c.cache_blocks = cache;
                        c
                    },
                    false,
                )
            );
            println!();
        }
    }
}
