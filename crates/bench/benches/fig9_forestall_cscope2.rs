//! Figure 9: fixed horizon / aggressive / forestall on cscope2,
//! 1-16 disks — forestall tracks the best of the other two across the
//! whole range.

use parcache_bench::{comparison, Algo, DISK_COUNTS};

fn main() {
    print!(
        "{}",
        comparison(
            "Figure 9: cscope2 with forestall",
            "cscope2",
            &Algo::PRACTICAL,
            &DISK_COUNTS,
            |c| c,
        )
    );
}
