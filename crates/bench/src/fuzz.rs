//! A differential trace fuzzer for the simulator and its audit layer.
//!
//! The fuzzer generates small random traces and configurations covering
//! the whole feature matrix — every policy, every head-scheduling
//! discipline, every disk model, write-behind, partial hints — then runs
//! each combination twice: once plain and once under the
//! [`AuditProbe`](parcache_core::audit::AuditProbe). A case fails when
//! the audit finds an invariant violation, or when the audited rerun's
//! [`Report`] differs from the plain run's (the audit must be a pure
//! observer). On top of the per-case differential check, a fold of every
//! report into a single order-sensitive fingerprint lets tests assert
//! end-to-end determinism: same seed ⇒ same [`FuzzReport`], at any
//! worker-thread count.
//!
//! Everything is seeded through the workspace's own xoshiro generator
//! ([`parcache_types::rng::Rng`]); case generation happens serially up
//! front so the case list — and therefore the whole fuzz run — is a pure
//! function of the seed, while execution fans out through the sweep
//! engine's deterministic [`run_indexed`] scheduler.

use crate::sweep::run_indexed;
use parcache_core::audit::simulate_audited;
use parcache_core::config::{DiskModelKind, RetryPolicy};
use parcache_core::engine::Report;
use parcache_core::hints::HintSpec;
use parcache_core::policy::PolicyKind;
use parcache_core::predict::{HintMode, PredictorKind};
use parcache_core::{simulate, SimConfig};
use parcache_disk::sched::Discipline;
use parcache_disk::FaultPlan;
use parcache_trace::{Request, Trace};
use parcache_types::rng::Rng;
use parcache_types::{BlockId, Nanos};

/// One generated case: a trace plus the configuration to run it under.
/// Every [`PolicyKind`] is exercised against each case.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// Case number within the run (also the trace name suffix).
    pub index: usize,
    /// The generated reference string.
    pub trace: Trace,
    /// The generated run parameters.
    pub config: SimConfig,
}

/// One failed policy-run within a case.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzFailure {
    /// Index of the failing [`FuzzCase`].
    pub case: usize,
    /// The policy that failed on it.
    pub policy: PolicyKind,
    /// What went wrong: each line is either an audit violation or a
    /// description of an audited/unaudited report divergence.
    pub details: Vec<String>,
}

/// The outcome of a fuzz run. Two runs with the same seed and case count
/// compare equal regardless of the thread count used to execute them.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzReport {
    /// The seed the run was generated from.
    pub seed: u64,
    /// Number of cases generated (each runs all policies).
    pub cases: usize,
    /// Total policy-runs executed (`cases * PolicyKind::ALL.len()`).
    pub runs: usize,
    /// Every failing policy-run, in case order.
    pub failures: Vec<FuzzFailure>,
    /// An order-sensitive FNV-style fold of every report produced, for
    /// cheap determinism assertions across seeds and thread counts.
    pub fingerprint: u64,
}

impl FuzzReport {
    /// True when no case produced an audit violation or a divergence.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

impl std::fmt::Display for FuzzReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fuzz seed {}: {} cases, {} runs, {} failures, fingerprint {:016x}",
            self.seed,
            self.cases,
            self.runs,
            self.failures.len(),
            self.fingerprint
        )
    }
}

/// The scheduling disciplines the fuzzer cycles through. `Scan`'s
/// direction bit is run-time state, so starting ascending covers both
/// directions on any trace that crosses the head.
const DISCIPLINES: [Discipline; 4] = [
    Discipline::Fcfs,
    Discipline::Cscan,
    Discipline::Scan { ascending: true },
    Discipline::Sstf,
];

/// Generates the case for `index`, consuming `rng` deterministically.
/// Discipline and disk model cycle with the index (guaranteed coverage
/// even for tiny runs); everything else is drawn at random.
fn gen_case(rng: &mut Rng, index: usize) -> FuzzCase {
    let blocks = rng.gen_range(1u64..=12);
    let refs = rng.gen_range(1usize..=40);
    let requests: Vec<Request> = (0..refs)
        .map(|_| Request {
            block: BlockId(rng.gen_range(0..blocks)),
            compute: Nanos::from_micros(rng.gen_range(0u64..=2000)),
        })
        .collect();
    let trace = Trace::new(format!("fuzz-{index}"), requests, rng.gen_range(2usize..=8));

    let disks = rng.gen_range(1usize..=4);
    let mut config =
        SimConfig::for_trace(disks, &trace).with_discipline(DISCIPLINES[index % DISCIPLINES.len()]);
    config.disk_model = match index % 3 {
        0 => DiskModelKind::Uniform(Nanos::from_micros(rng.gen_range(100u64..=5000))),
        1 => DiskModelKind::Coarse,
        _ => DiskModelKind::Hp97560,
    };
    config.driver_overhead = if rng.gen_bool(0.5) {
        Nanos::from_micros(500)
    } else {
        Nanos::ZERO
    };
    config.write_behind_period = if rng.gen_bool(0.4) {
        Some(rng.gen_range(1usize..=4))
    } else {
        None
    };
    config.hints = match rng.gen_range(0usize..3) {
        0 => HintSpec::Full,
        1 => HintSpec::Fraction {
            fraction: 0.5,
            seed: rng.next_u64(),
        },
        _ => HintSpec::None,
    };
    // Hint sources cycle by index with period 7 rather than drawing from
    // the rng: inserting a draw here would shift every later draw and
    // invalidate the pinned (seed, index) reproducer cases below. Four
    // of seven cases stay on the oracle source (including all current
    // pinned indices, which fall on residues 1, 4, and 6); the other
    // three cover each online predictor, deliberately combined with
    // whatever `hints` spec was drawn above — Predicted mode must ignore
    // it, and the audit verifies the combination stays lawful.
    config.hint_mode = match index % 7 {
        0 => HintMode::Predicted(PredictorKind::Sequential),
        2 => HintMode::Predicted(PredictorKind::Markov),
        3 => HintMode::Predicted(PredictorKind::Mithril),
        _ => HintMode::Oracle,
    };
    // Small batches/horizons exercise the policies' do-no-harm edges on
    // traces this short; the paper's defaults would reduce every case to
    // one batch.
    config.horizon = rng.gen_range(1usize..=8);
    config.batch_size = rng.gen_range(1usize..=4);
    config.reverse_fetch_estimate = rng.gen_range(1u64..=8);
    config.reverse_batch_size = rng.gen_range(1usize..=4);

    // Fault dimension: roughly half the cases run under a non-empty
    // deterministic fault plan (transient media errors, a fail-slow
    // window, an outage — in any combination), with the driver's retry
    // policy randomized alongside it.
    if rng.gen_bool(0.5) {
        let mut parts: Vec<String> = Vec::new();
        if rng.gen_bool(0.6) {
            let p = rng.gen_range(1u64..=30) as f64 / 100.0;
            parts.push(format!("flaky:*:{p}"));
        }
        if rng.gen_bool(0.5) {
            let d = rng.gen_range(0usize..disks);
            let from = rng.gen_range(0u64..=50);
            let until = from + rng.gen_range(1u64..=50);
            let factor = rng.gen_range(2u64..=4);
            parts.push(format!("slow:{d}:{from}:{until}:{factor}"));
        }
        if rng.gen_bool(0.5) {
            let d = rng.gen_range(0usize..disks);
            let from = rng.gen_range(0u64..=50);
            let until = from + rng.gen_range(1u64..=30);
            parts.push(format!("outage:{d}:{from}:{until}"));
        }
        if parts.is_empty() {
            parts.push("flaky:*:0.1".to_string());
        }
        parts.push(format!("seed:{}", rng.next_u64()));
        let plan = FaultPlan::parse(&parts.join(",")).expect("generated fault spec is valid");
        config = config.with_faults(plan).with_retry(RetryPolicy {
            max_retries: rng.gen_range(1u64..=6) as u32,
            backoff: Nanos::from_micros(rng.gen_range(100u64..=2000)),
            backoff_cap: Nanos::from_millis(rng.gen_range(4u64..=64)),
            timeout: if rng.gen_bool(0.3) {
                Some(Nanos::from_millis(rng.gen_range(1u64..=50)))
            } else {
                None
            },
        });
    }

    FuzzCase {
        index,
        trace,
        config,
    }
}

/// Generates the full deterministic case list for a seed.
pub fn gen_cases(seed: u64, cases: usize) -> Vec<FuzzCase> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..cases).map(|i| gen_case(&mut rng, i)).collect()
}

/// One FNV-1a-style mixing step.
fn mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x0000_0100_0000_01b3)
}

/// Folds a report into the running fingerprint, field by field.
fn fingerprint_report(mut h: u64, r: &Report) -> u64 {
    for b in r.trace.bytes().chain(r.policy.bytes()) {
        h = mix(h, b as u64);
    }
    h = mix(h, r.disks as u64);
    h = mix(h, r.elapsed.as_nanos());
    h = mix(h, r.compute.as_nanos());
    h = mix(h, r.driver.as_nanos());
    h = mix(h, r.stall.as_nanos());
    for &cause in &parcache_core::probe::StallCause::ALL {
        h = mix(h, r.stall_by_cause.get(cause).as_nanos());
    }
    h = mix(h, r.fetches);
    h = mix(h, r.writes);
    h = mix(h, r.avg_fetch_time.as_nanos());
    h = mix(h, r.avg_disk_utilization.to_bits());
    for d in &r.per_disk {
        h = mix(h, d.served);
        h = mix(h, d.busy.as_nanos());
        h = mix(h, d.failed);
    }
    if let Some(f) = &r.fault {
        h = mix(h, f.faults_injected);
        h = mix(h, f.retries);
        h = mix(h, f.abandoned);
        for &d in &f.per_disk_degraded {
            h = mix(h, d.as_nanos());
        }
        h = mix(h, f.availability.to_bits());
    }
    if let Some(s) = &r.hints {
        for b in s.source.bytes() {
            h = mix(h, b as u64);
        }
        h = mix(h, s.predicted);
        h = mix(h, s.correct);
        h = mix(h, s.references);
    }
    h
}

/// Runs one case under one policy: the plain run, the audited rerun, and
/// the differential checks. Returns what went wrong (empty when clean)
/// plus the plain report for fingerprinting.
///
/// With `differential`, forestall cases run a third time on the naive
/// full-rescan stall predictor (`SimConfig::forestall_naive_scan`) and
/// any report divergence from the incremental predictor is a failure.
/// The extra run consumes no rng draws (case generation is untouched)
/// and is excluded from the fingerprint, so a differential campaign
/// reproduces the exact cases — and fingerprint — of a plain one.
fn run_policy(case: &FuzzCase, kind: PolicyKind, differential: bool) -> (Vec<String>, Report) {
    let plain = simulate(&case.trace, kind, &case.config);
    let (audited, outcome) = simulate_audited(&case.trace, kind, &case.config);
    let mut details: Vec<String> = outcome.violations.iter().map(|v| v.to_string()).collect();
    if outcome.suppressed > 0 {
        details.push(format!("... and {} suppressed", outcome.suppressed));
    }
    if audited != plain {
        details.push(format!(
            "audited report diverged: elapsed {} vs {}, fetches {} vs {}",
            audited.elapsed, plain.elapsed, audited.fetches, plain.fetches
        ));
    }
    if differential && kind == PolicyKind::Forestall {
        let mut naive_config = case.config.clone();
        naive_config.forestall_naive_scan = true;
        let naive = simulate(&case.trace, kind, &naive_config);
        if naive != plain {
            details.push(format!(
                "naive stall predictor diverged from incremental: \
                 elapsed {} vs {}, fetches {} vs {}, stall {} vs {}",
                naive.elapsed,
                plain.elapsed,
                naive.fetches,
                plain.fetches,
                naive.stall,
                plain.stall
            ));
        }
    }
    // Stall provenance conservation, checked directly on the plain
    // (unprobed) report too: the audit enforces it against the event
    // stream, but the property must hold with no probe attached.
    let attributed = plain.stall_by_cause.total();
    if attributed != plain.stall {
        details.push(format!(
            "per-cause stall {attributed} != report stall {} on the unprobed run",
            plain.stall
        ));
    }
    (details, plain)
}

/// Runs one case under every policy; returns the failures plus the
/// case's report fingerprint contribution (seeded with `FNV_OFFSET` so
/// per-case hashes can be folded associatively by the caller in index
/// order).
///
/// Each policy-run sits behind its own `catch_unwind`: a panicking
/// simulation becomes a recorded [`FuzzFailure`] (with the panic payload
/// folded into the fingerprint, deterministically), and the remaining
/// policies and cases keep running — a 10,000-case campaign reports one
/// poisoned combination instead of dying on it.
fn run_case(case: &FuzzCase, differential: bool) -> (Vec<FuzzFailure>, u64) {
    let mut failures = Vec::new();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for kind in PolicyKind::ALL {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_policy(case, kind, differential)
        }));
        match result {
            Ok((details, plain)) => {
                if !details.is_empty() {
                    failures.push(FuzzFailure {
                        case: case.index,
                        policy: kind,
                        details,
                    });
                }
                h = fingerprint_report(h, &plain);
            }
            Err(payload) => {
                let msg = crate::runner::panic_message(payload.as_ref());
                for b in msg.bytes() {
                    h = mix(h, b as u64);
                }
                failures.push(FuzzFailure {
                    case: case.index,
                    policy: kind,
                    details: vec![format!("policy run panicked: {msg}")],
                });
            }
        }
    }
    (failures, h)
}

/// Runs the differential fuzzer: `cases` generated cases × every policy,
/// executed across `threads` workers. The result is a pure function of
/// `(seed, cases)` — the thread count only changes wall-clock time.
pub fn fuzz(seed: u64, cases: usize, threads: usize) -> FuzzReport {
    fuzz_impl(seed, cases, threads, false)
}

/// [`fuzz`], additionally replaying every forestall case on the naive
/// full-rescan stall predictor and failing on any divergence from the
/// incremental one. Cases, runs accounting, and the fingerprint are
/// identical to a plain [`fuzz`] with the same arguments.
pub fn fuzz_differential(seed: u64, cases: usize, threads: usize) -> FuzzReport {
    fuzz_impl(seed, cases, threads, true)
}

fn fuzz_impl(seed: u64, cases: usize, threads: usize, differential: bool) -> FuzzReport {
    let case_list = gen_cases(seed, cases);
    let results = run_indexed(case_list.len(), threads, |i| {
        run_case(&case_list[i], differential)
    });
    let mut failures = Vec::new();
    let mut fingerprint = 0xcbf2_9ce4_8422_2325u64;
    for (fails, h) in results {
        failures.extend(fails);
        fingerprint = mix(fingerprint, h);
    }
    FuzzReport {
        seed,
        cases,
        runs: cases * PolicyKind::ALL.len(),
        failures,
        fingerprint,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_generation_is_deterministic() {
        let a = gen_cases(7, 12);
        let b = gen_cases(7, 12);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.trace.requests, y.trace.requests);
            assert_eq!(x.config, y.config);
        }
        // A different seed actually changes the cases.
        let c = gen_cases(8, 12);
        assert!(a
            .iter()
            .zip(&c)
            .any(|(x, y)| x.trace.requests != y.trace.requests || x.config != y.config));
    }

    #[test]
    fn coverage_cycles_span_the_matrix() {
        let cases = gen_cases(3, 12);
        for d in DISCIPLINES {
            assert!(cases.iter().any(|c| c.config.discipline == d), "{d:?}");
        }
        assert!(cases
            .iter()
            .any(|c| matches!(c.config.disk_model, DiskModelKind::Uniform(_))));
        assert!(cases
            .iter()
            .any(|c| c.config.disk_model == DiskModelKind::Coarse));
        assert!(cases
            .iter()
            .any(|c| c.config.disk_model == DiskModelKind::Hp97560));
        // The fault dimension is drawn at ~p=0.5, so a dozen cases cover
        // both faulted and healthy configurations.
        assert!(cases.iter().any(|c| !c.config.faults.is_empty()));
        assert!(cases.iter().any(|c| c.config.faults.is_empty()));
        // The hint-source cycle (period 7) covers the oracle and every
        // online predictor within any 7 consecutive cases.
        for mode in HintMode::ALL {
            assert!(
                cases.iter().any(|c| c.config.hint_mode == mode),
                "{} not covered",
                mode.name()
            );
        }
    }

    #[test]
    fn hint_source_cycle_leaves_pinned_reproducers_on_the_oracle() {
        // The pinned (seed, index) regression cases below predate the
        // hint-source dimension; the period-7 cycle was chosen so their
        // indices all keep the oracle source, preserving those cases
        // byte for byte (and adding no rng draws keeps every other field
        // identical too).
        for index in [648usize, 3235, 4689] {
            assert_eq!(
                match index % 7 {
                    0 | 2 | 3 => "predicted",
                    _ => "oracle",
                },
                "oracle",
                "index {index}"
            );
        }
    }

    #[test]
    fn short_fuzz_run_is_clean() {
        let report = fuzz(1996, 16, 2);
        assert!(
            report.is_clean(),
            "{report}\n{:#?}",
            report.failures.first()
        );
        assert_eq!(report.runs, 16 * PolicyKind::ALL.len());
    }

    #[test]
    fn stale_reverse_pair_cases_stay_clean() {
        // Regression: at 10,000-case scale the fuzzer caught
        // reverse-aggressive issuing a scheduled fetch/eviction pair
        // after the block's last disclosed use had already been served
        // (schedule deviations — demand consumption of an earlier pair,
        // eviction repair, an abandoned faulted fetch — left the later
        // pair pending). The orphaned fetch wasted bandwidth and sat
        // unfinished at end of run, tripping the audit's
        // fetch-completion law. These (seed, index) pairs are the
        // smallest reproducers from the failing seeds; `issue_pair` now
        // skips a pair whose block has no remaining disclosed use.
        for (seed, index) in [(424242u64, 648usize), (2, 3235), (31337, 4689)] {
            let case = gen_cases(seed, index + 1).pop().expect("case exists");
            let (failures, _) = run_case(&case, false);
            assert!(
                failures.is_empty(),
                "seed {seed} case {index}: {failures:?}"
            );
        }
    }

    #[test]
    fn differential_mode_is_clean_and_fingerprint_neutral() {
        // The naive-vs-incremental replay must neither fail nor perturb
        // anything a plain run records: same cases (no rng draws added),
        // same fingerprint (the extra run is excluded from the fold).
        let plain = fuzz(1996, 16, 2);
        let diff = fuzz_differential(1996, 16, 2);
        assert!(diff.is_clean(), "{diff}\n{:#?}", diff.failures.first());
        assert_eq!(plain, diff);
    }

    #[test]
    fn differential_replay_agrees_on_a_pinned_reproducer() {
        // The pinned stale-pair reproducer seeds double as predictor
        // fixtures: run one directly through run_policy with the
        // differential replay on and require byte-agreement.
        let case = gen_cases(424242, 5).pop().expect("case exists");
        let (details, _) = run_policy(&case, PolicyKind::Forestall, true);
        assert!(details.is_empty(), "{details:?}");
    }

    #[test]
    fn fuzz_is_deterministic_across_thread_counts() {
        let serial = fuzz(42, 8, 1);
        let parallel = fuzz(42, 8, 4);
        assert_eq!(serial, parallel);
        // And actually sensitive to the seed.
        assert_ne!(serial.fingerprint, fuzz(43, 8, 1).fingerprint);
    }
}
