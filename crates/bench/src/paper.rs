//! The paper's published results (appendix A, Tables 9-18): elapsed
//! times in seconds for the four prefetching algorithms on every trace
//! and array size. Benches print these next to measured values so the
//! reproduction's fidelity is visible in every report, and
//! `EXPERIMENTS.md` is generated from the same numbers.

/// Disk counts for the 11-column appendix tables.
const DISKS_11: [usize; 11] = [1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16];
/// Disk counts for the 6-column appendix tables.
const DISKS_6: [usize; 6] = [1, 2, 3, 4, 5, 6];
/// Disk counts for the synth table.
const DISKS_4: [usize; 4] = [1, 2, 3, 4];

struct PaperTable {
    trace: &'static str,
    disks: &'static [usize],
    fixed_horizon: &'static [f64],
    aggressive: &'static [f64],
    reverse: &'static [f64],
    forestall: &'static [f64],
}

#[rustfmt::skip]
const TABLES: [PaperTable; 10] = [
    PaperTable {
        trace: "dinero", disks: &DISKS_6,
        fixed_horizon: &[105.951, 105.933, 105.933, 105.933, 105.933, 105.933],
        aggressive: &[108.089, 107.944, 107.950, 107.946, 107.944, 107.947],
        reverse: &[105.927, 105.941, 105.972, 105.970, 106.010, 106.060],
        forestall: &[106.060, 105.915, 105.915, 105.915, 105.915, 105.916],
    },
    PaperTable {
        trace: "cscope1", disks: &DISKS_6,
        fixed_horizon: &[30.542, 27.424, 27.424, 27.424, 27.424, 27.424],
        aggressive: &[29.311, 29.219, 29.270, 29.273, 29.245, 29.223],
        reverse: &[28.921, 27.453, 27.465, 27.498, 27.515, 27.515],
        forestall: &[28.805, 27.419, 27.411, 27.411, 27.411, 27.412],
    },
    PaperTable {
        trace: "cscope2", disks: &DISKS_11,
        fixed_horizon: &[72.894, 62.353, 54.708, 49.132, 46.013, 43.997, 42.580, 41.439, 41.108, 40.463, 40.225],
        aggressive: &[56.126, 46.002, 43.011, 41.587, 42.259, 42.617, 42.903, 42.977, 42.924, 42.661, 42.440],
        reverse: &[58.255, 46.826, 41.506, 40.254, 40.176, 40.158, 40.163, 40.176, 40.180, 40.214, 40.236],
        forestall: &[56.126, 46.020, 42.516, 40.729, 40.967, 40.804, 40.787, 40.712, 40.657, 40.537, 40.347],
    },
    PaperTable {
        trace: "cscope3", disks: &DISKS_11,
        fixed_horizon: &[108.429, 92.876, 87.016, 82.931, 81.639, 80.732, 80.191, 80.134, 80.122, 79.984, 79.984],
        aggressive: &[94.090, 83.749, 82.710, 82.523, 82.957, 83.142, 83.048, 82.898, 82.564, 82.373, 82.258],
        reverse: &[104.065, 84.039, 81.011, 80.524, 80.047, 80.032, 80.038, 80.051, 80.065, 80.094, 80.111],
        forestall: &[94.401, 83.521, 81.849, 81.137, 81.163, 81.041, 81.024, 80.904, 80.767, 80.626, 80.369],
    },
    PaperTable {
        trace: "glimpse", disks: &DISKS_11,
        fixed_horizon: &[107.582, 73.009, 62.017, 55.992, 52.344, 49.849, 47.665, 46.732, 44.772, 43.367, 42.685],
        aggressive: &[96.641, 60.740, 48.744, 44.987, 43.996, 43.439, 43.928, 44.221, 44.726, 44.482, 44.374],
        reverse: &[94.083, 58.234, 47.502, 43.282, 42.526, 42.118, 42.055, 42.080, 42.096, 42.133, 42.205],
        forestall: &[96.907, 60.858, 48.769, 45.075, 43.630, 42.284, 42.273, 42.272, 42.284, 42.262, 42.187],
    },
    PaperTable {
        trace: "ld", disks: &DISKS_11,
        fixed_horizon: &[24.898, 16.914, 14.313, 12.660, 11.703, 11.182, 10.829, 10.658, 10.216, 10.033, 9.886],
        aggressive: &[24.900, 15.985, 13.166, 11.768, 10.399, 10.182, 10.055, 10.063, 10.215, 10.308, 10.490],
        reverse: &[24.347, 15.921, 12.999, 11.525, 10.624, 10.301, 9.927, 9.816, 9.676, 9.683, 9.677],
        forestall: &[24.900, 15.985, 13.166, 11.768, 10.399, 10.182, 10.055, 10.077, 10.118, 10.065, 9.738],
    },
    PaperTable {
        trace: "postgres-join", disks: &DISKS_6,
        fixed_horizon: &[85.867, 81.184, 81.161, 81.161, 81.161, 81.161],
        aggressive: &[85.559, 82.286, 82.586, 82.294, 82.239, 82.176],
        reverse: &[84.984, 81.163, 81.164, 81.169, 81.170, 81.175],
        forestall: &[85.557, 81.472, 81.438, 81.144, 81.143, 81.145],
    },
    PaperTable {
        trace: "postgres-select", disks: &DISKS_11,
        fixed_horizon: &[45.390, 25.667, 18.963, 16.174, 14.422, 13.601, 13.496, 13.093, 13.054, 13.038, 13.038],
        aggressive: &[43.711, 23.792, 16.537, 13.864, 13.121, 13.137, 13.391, 13.455, 13.434, 13.405, 13.343],
        reverse: &[41.987, 21.492, 15.797, 13.158, 13.032, 13.033, 13.034, 13.039, 13.036, 13.039, 13.042],
        forestall: &[43.711, 23.811, 16.537, 13.864, 13.020, 13.131, 13.376, 13.384, 13.182, 13.021, 13.020],
    },
    PaperTable {
        trace: "xds", disks: &DISKS_6,
        fixed_horizon: &[65.611, 37.993, 36.248, 34.167, 33.503, 33.123],
        aggressive: &[63.708, 34.305, 33.716, 35.123, 34.368, 35.241],
        reverse: &[64.180, 33.348, 33.570, 33.125, 33.042, 33.105],
        forestall: &[63.708, 33.880, 33.711, 33.933, 34.153, 33.650],
    },
    PaperTable {
        trace: "synth", disks: &DISKS_4,
        fixed_horizon: &[201.439, 130.900, 118.856, 118.856],
        aggressive: &[155.846, 121.740, 150.368, 150.145],
        reverse: &[161.088, 123.621, 118.824, 118.945],
        forestall: &[155.846, 120.538, 119.791, 118.856],
    },
];

/// The paper's elapsed time (seconds) for `policy` on `trace` with
/// `disks` drives, if the appendix reports that cell.
pub fn paper_elapsed(trace: &str, policy: &str, disks: usize) -> Option<f64> {
    let table = TABLES.iter().find(|t| t.trace == trace)?;
    let col = table.disks.iter().position(|&d| d == disks)?;
    let series = match policy {
        "fixed-horizon" => table.fixed_horizon,
        "aggressive" => table.aggressive,
        "reverse-aggressive" => table.reverse,
        "forestall" => table.forestall,
        _ => return None,
    };
    series.get(col).copied()
}

/// All (trace, disks) cells the paper reports, for sweep drivers.
pub fn paper_cells(trace: &str) -> Option<&'static [usize]> {
    TABLES.iter().find(|t| t.trace == trace).map(|t| t.disks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_known_cells() {
        assert_eq!(paper_elapsed("synth", "fixed-horizon", 1), Some(201.439));
        assert_eq!(paper_elapsed("cscope2", "forestall", 16), Some(40.347));
        assert_eq!(paper_elapsed("ld", "reverse-aggressive", 10), Some(9.676));
    }

    #[test]
    fn missing_cells_are_none() {
        assert_eq!(paper_elapsed("synth", "fixed-horizon", 16), None);
        assert_eq!(paper_elapsed("nope", "aggressive", 1), None);
        assert_eq!(paper_elapsed("synth", "demand", 1), None);
    }

    #[test]
    fn every_table_is_rectangular() {
        for t in &TABLES {
            let n = t.disks.len();
            assert_eq!(t.fixed_horizon.len(), n, "{}", t.trace);
            assert_eq!(t.aggressive.len(), n, "{}", t.trace);
            assert_eq!(t.reverse.len(), n, "{}", t.trace);
            assert_eq!(t.forestall.len(), n, "{}", t.trace);
        }
    }

    #[test]
    fn covers_all_ten_traces() {
        for name in parcache_trace::TRACE_NAMES {
            assert!(paper_cells(name).is_some(), "{name} missing");
        }
    }
}
