//! Shared experiment runner: trace cache, disk-count grid, reverse
//! aggressive parameter search.

use parcache_core::engine::{simulate, Report};
use parcache_core::policy::PolicyKind;
use parcache_core::SimConfig;
use parcache_trace::Trace;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Process-wide trace-cache hit count (lookups served an already
/// generated trace). Profiling telemetry only — never consulted by the
/// harness's control flow.
static TRACE_CACHE_HITS: AtomicU64 = AtomicU64::new(0);
/// Process-wide trace-cache miss count (lookups that generated).
static TRACE_CACHE_MISSES: AtomicU64 = AtomicU64::new(0);

/// `(hits, misses)` of the process-wide trace cache so far.
pub fn trace_cache_stats() -> (u64, u64) {
    (
        TRACE_CACHE_HITS.load(Ordering::Relaxed),
        TRACE_CACHE_MISSES.load(Ordering::Relaxed),
    )
}

/// The seed used for every published experiment, so all tables and
/// figures run against identical traces.
pub const SEED: u64 = 1996;

/// The paper's array sizes: 1-8, 10, 12, 16.
pub const DISK_COUNTS: [usize; 11] = [1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16];

/// The paper's array sizes (function form for iterator chains).
pub fn paper_disk_counts() -> impl Iterator<Item = usize> {
    DISK_COUNTS.into_iter()
}

/// Why a trace lookup failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The name is not in the registry.
    Unknown(String),
    /// Generation itself panicked (e.g. a malformed registry entry). The
    /// panic is caught and cached, so later lookups of the same name get
    /// this error instead of a poisoned lock.
    Generation {
        /// The trace whose generator panicked.
        name: String,
        /// The panic payload, when it was a string.
        panic: String,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Unknown(name) => write!(f, "unknown trace {name}"),
            TraceError::Generation { name, panic } => {
                write!(f, "generating trace {name} panicked: {panic}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// Returns the named trace, generated once per process and cached.
///
/// The cache hands out [`Arc`] clones, so repeated lookups share one
/// generated trace instead of deep-copying hundreds of thousands of
/// requests per call. Each entry is its own [`OnceLock`], so the map's
/// mutex is held only to find the entry: callers resolving *different*
/// traces generate them concurrently, while callers racing on the *same*
/// trace generate it exactly once. (Sweep workers never get here at all:
/// the grid pre-generates its traces before workers spawn, and cells
/// carry `Arc<Trace>` — see `SweepSpec::named`.)
///
/// The slot caches a `Result`: an unknown name or a panicking generator
/// is stored as a typed [`TraceError`], so later lookups of the same
/// name see the same error instead of hanging on a lock the failed
/// initialization poisoned.
pub fn try_trace(name: &str) -> Result<Arc<Trace>, TraceError> {
    type Slot = Arc<OnceLock<Result<Arc<Trace>, TraceError>>>;
    static CACHE: OnceLock<Mutex<HashMap<String, Slot>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let slot = {
        // The critical section only finds the entry; recover the map
        // rather than propagating a poison that nothing here can cause.
        let mut map = cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Arc::clone(map.entry(name.to_string()).or_default())
    };
    let mut generated = false;
    let result = slot
        .get_or_init(|| {
            generated = true;
            // Catch generation panics so they cannot poison the slot:
            // the error is cached and typed, never a wedged lock.
            match std::panic::catch_unwind(|| parcache_trace::trace_by_name(name, SEED)) {
                Ok(Some(t)) => Ok(Arc::new(t)),
                Ok(None) => Err(TraceError::Unknown(name.to_string())),
                Err(payload) => Err(TraceError::Generation {
                    name: name.to_string(),
                    panic: panic_message(&payload),
                }),
            }
        })
        .clone();
    if generated {
        TRACE_CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
    } else {
        TRACE_CACHE_HITS.fetch_add(1, Ordering::Relaxed);
    }
    result
}

/// Best-effort text of a caught panic payload. Shared with the sweep's
/// fail-soft executor and the fuzzer's per-case isolation.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// [`try_trace`], panicking on failure — the convenience entry point for
/// experiment code where every name is a registry constant.
pub fn trace(name: &str) -> Arc<Trace> {
    try_trace(name).unwrap_or_else(|e| panic!("{e}"))
}

/// Runs one simulation.
pub fn run(trace: &Trace, kind: PolicyKind, config: &SimConfig) -> Report {
    simulate(trace, kind, config)
}

/// Reverse aggressive with per-configuration tuning, as the paper does:
/// "reverse aggressive's fetch time estimate F̂ and batch size are chosen
/// to minimize its elapsed time" (appendix A). Searches a small grid and
/// returns the best run.
pub fn best_reverse(trace: &Trace, base: &SimConfig) -> Report {
    best_reverse_search(trace, base, crate::sweep::default_threads()).0
}

/// [`best_reverse`], returning the winning configuration as well and
/// running the grid's eight simulations on up to `threads` workers via
/// [`run_indexed`](crate::sweep::run_indexed).
///
/// The winner is chosen by folding the reports *in grid order* with a
/// strictly-smaller-elapsed rule — exactly the serial loop's
/// first-wins tie-break — so the result does not depend on `threads`.
pub fn best_reverse_search(trace: &Trace, base: &SimConfig, threads: usize) -> (Report, SimConfig) {
    let fetch_estimates = [1u64, 4, 16, 64];
    let batches = [4usize, 40];
    let grid: Vec<SimConfig> = fetch_estimates
        .iter()
        .flat_map(|&f| {
            batches
                .iter()
                .map(move |&b| base.clone().with_reverse_params(f, b))
        })
        .collect();
    let reports = crate::sweep::run_indexed(grid.len(), threads, |i| {
        simulate(trace, PolicyKind::ReverseAggressive, &grid[i])
    });
    let mut best: Option<(usize, Report)> = None;
    for (i, r) in reports.into_iter().enumerate() {
        if best.as_ref().is_none_or(|(_, cur)| r.elapsed < cur.elapsed) {
            best = Some((i, r));
        }
    }
    let (i, report) = best.expect("non-empty parameter grid");
    (report, grid[i].clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_cache_returns_consistent_traces() {
        let a = trace("synth");
        let b = trace("synth");
        // Same cached allocation, not merely equal contents.
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a, b);
        assert_eq!(a.stats().reads, 100_000);
    }

    #[test]
    #[should_panic(expected = "unknown trace")]
    fn unknown_trace_panics() {
        trace("nope");
    }

    #[test]
    fn failed_lookup_is_typed_and_repeatable() {
        // The first failure caches a typed error; the second lookup must
        // see the same error again — not a poisoned lock or a hang.
        let e1 = try_trace("no-such-trace").unwrap_err();
        let e2 = try_trace("no-such-trace").unwrap_err();
        assert_eq!(e1, TraceError::Unknown("no-such-trace".to_string()));
        assert_eq!(e1, e2);
        assert!(e1.to_string().contains("unknown trace no-such-trace"));
        // And a failed name never wedges *other* names.
        assert!(try_trace("synth").is_ok());
    }

    #[test]
    fn generation_error_formats_with_cause() {
        let e = TraceError::Generation {
            name: "broken".to_string(),
            panic: "index out of bounds".to_string(),
        };
        assert_eq!(
            e.to_string(),
            "generating trace broken panicked: index out of bounds"
        );
    }

    #[test]
    fn panic_payloads_render_as_text() {
        let boxed: Box<dyn std::any::Any + Send> = Box::new("boom");
        assert_eq!(panic_message(boxed.as_ref()), "boom");
        let boxed: Box<dyn std::any::Any + Send> = Box::new("boom".to_string());
        assert_eq!(panic_message(boxed.as_ref()), "boom");
        let boxed: Box<dyn std::any::Any + Send> = Box::new(17u32);
        assert_eq!(panic_message(boxed.as_ref()), "non-string panic payload");
    }

    #[test]
    fn disk_counts_match_paper() {
        assert_eq!(DISK_COUNTS.len(), 11);
        assert_eq!(DISK_COUNTS[0], 1);
        assert_eq!(DISK_COUNTS[10], 16);
        assert_eq!(paper_disk_counts().count(), 11);
    }

    #[test]
    fn trace_cache_is_race_free() {
        // Many workers asking for the same trace at once still share one
        // generated copy.
        let arcs: Vec<Arc<Trace>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4).map(|_| s.spawn(|| trace("synth"))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for a in &arcs[1..] {
            assert!(Arc::ptr_eq(&arcs[0], a));
        }
    }

    #[test]
    fn best_reverse_is_no_worse_than_default() {
        let t = parcache_trace::synth::synth_trace(3, 200, 7);
        let cfg = SimConfig::for_trace(2, &t);
        let default = run(&t, PolicyKind::ReverseAggressive, &cfg);
        let tuned = best_reverse(&t, &cfg);
        assert!(tuned.elapsed <= default.elapsed);
    }

    #[test]
    fn best_reverse_search_is_thread_count_invariant() {
        let t = parcache_trace::synth::synth_trace(3, 200, 7);
        let base = SimConfig::for_trace(2, &t);
        let (serial, serial_cfg) = best_reverse_search(&t, &base, 1);
        let (threaded, threaded_cfg) = best_reverse_search(&t, &base, 4);
        assert_eq!(serial, threaded);
        assert_eq!(serial_cfg, threaded_cfg);
        // The winning configuration really produces the winning report.
        let replay = run(&t, PolicyKind::ReverseAggressive, &serial_cfg);
        assert_eq!(replay, serial);
    }
}
