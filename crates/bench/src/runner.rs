//! Shared experiment runner: trace cache, disk-count grid, reverse
//! aggressive parameter search.

use parcache_core::engine::{simulate, Report};
use parcache_core::policy::PolicyKind;
use parcache_core::SimConfig;
use parcache_trace::Trace;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// The seed used for every published experiment, so all tables and
/// figures run against identical traces.
pub const SEED: u64 = 1996;

/// The paper's array sizes: 1-8, 10, 12, 16.
pub const DISK_COUNTS: [usize; 11] = [1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16];

/// The paper's array sizes (function form for iterator chains).
pub fn paper_disk_counts() -> impl Iterator<Item = usize> {
    DISK_COUNTS.into_iter()
}

/// Returns the named trace, generated once per process and cached.
///
/// The cache hands out [`Arc`] clones, so repeated lookups share one
/// generated trace instead of deep-copying hundreds of thousands of
/// requests per call.
pub fn trace(name: &str) -> Arc<Trace> {
    static CACHE: OnceLock<Mutex<HashMap<String, Arc<Trace>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().expect("trace cache poisoned");
    Arc::clone(map.entry(name.to_string()).or_insert_with(|| {
        Arc::new(
            parcache_trace::trace_by_name(name, SEED)
                .unwrap_or_else(|| panic!("unknown trace {name}")),
        )
    }))
}

/// Runs one simulation.
pub fn run(trace: &Trace, kind: PolicyKind, config: &SimConfig) -> Report {
    simulate(trace, kind, config)
}

/// Reverse aggressive with per-configuration tuning, as the paper does:
/// "reverse aggressive's fetch time estimate F̂ and batch size are chosen
/// to minimize its elapsed time" (appendix A). Searches a small grid and
/// returns the best run.
pub fn best_reverse(trace: &Trace, base: &SimConfig) -> Report {
    let fetch_estimates = [1u64, 4, 16, 64];
    let batches = [4usize, 40];
    let mut best: Option<Report> = None;
    for f in fetch_estimates {
        for b in batches {
            let cfg = base.clone().with_reverse_params(f, b);
            let r = simulate(trace, PolicyKind::ReverseAggressive, &cfg);
            if best.as_ref().is_none_or(|cur| r.elapsed < cur.elapsed) {
                best = Some(r);
            }
        }
    }
    best.expect("non-empty parameter grid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_cache_returns_consistent_traces() {
        let a = trace("synth");
        let b = trace("synth");
        // Same cached allocation, not merely equal contents.
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a, b);
        assert_eq!(a.stats().reads, 100_000);
    }

    #[test]
    #[should_panic(expected = "unknown trace")]
    fn unknown_trace_panics() {
        trace("nope");
    }

    #[test]
    fn disk_counts_match_paper() {
        assert_eq!(DISK_COUNTS.len(), 11);
        assert_eq!(DISK_COUNTS[0], 1);
        assert_eq!(DISK_COUNTS[10], 16);
        assert_eq!(paper_disk_counts().count(), 11);
    }

    #[test]
    fn best_reverse_is_no_worse_than_default() {
        let t = parcache_trace::synth::synth_trace(3, 200, 7);
        let cfg = SimConfig::for_trace(2, &t);
        let default = run(&t, PolicyKind::ReverseAggressive, &cfg);
        let tuned = best_reverse(&t, &cfg);
        assert!(tuned.elapsed <= default.elapsed);
    }
}
