//! Shared experiment runner: trace cache, disk-count grid, reverse
//! aggressive parameter search.

use parcache_core::engine::{simulate, Report};
use parcache_core::policy::PolicyKind;
use parcache_core::SimConfig;
use parcache_trace::Trace;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Process-wide trace-cache hit count (lookups served an already
/// generated trace). Profiling telemetry only — never consulted by the
/// harness's control flow.
static TRACE_CACHE_HITS: AtomicU64 = AtomicU64::new(0);
/// Process-wide trace-cache miss count (lookups that generated).
static TRACE_CACHE_MISSES: AtomicU64 = AtomicU64::new(0);

/// `(hits, misses)` of the process-wide trace cache so far.
pub fn trace_cache_stats() -> (u64, u64) {
    (
        TRACE_CACHE_HITS.load(Ordering::Relaxed),
        TRACE_CACHE_MISSES.load(Ordering::Relaxed),
    )
}

/// The seed used for every published experiment, so all tables and
/// figures run against identical traces.
pub const SEED: u64 = 1996;

/// The paper's array sizes: 1-8, 10, 12, 16.
pub const DISK_COUNTS: [usize; 11] = [1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16];

/// The paper's array sizes (function form for iterator chains).
pub fn paper_disk_counts() -> impl Iterator<Item = usize> {
    DISK_COUNTS.into_iter()
}

/// Returns the named trace, generated once per process and cached.
///
/// The cache hands out [`Arc`] clones, so repeated lookups share one
/// generated trace instead of deep-copying hundreds of thousands of
/// requests per call. Each entry is its own [`OnceLock`], so the map's
/// mutex is held only to find the entry: sweep workers resolving
/// *different* traces generate them concurrently, while workers racing on
/// the *same* trace generate it exactly once.
pub fn trace(name: &str) -> Arc<Trace> {
    type Slot = Arc<OnceLock<Arc<Trace>>>;
    static CACHE: OnceLock<Mutex<HashMap<String, Slot>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let slot = {
        let mut map = cache.lock().expect("trace cache poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    };
    let mut generated = false;
    let t = Arc::clone(slot.get_or_init(|| {
        generated = true;
        Arc::new(
            parcache_trace::trace_by_name(name, SEED)
                .unwrap_or_else(|| panic!("unknown trace {name}")),
        )
    }));
    if generated {
        TRACE_CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
    } else {
        TRACE_CACHE_HITS.fetch_add(1, Ordering::Relaxed);
    }
    t
}

/// Runs one simulation.
pub fn run(trace: &Trace, kind: PolicyKind, config: &SimConfig) -> Report {
    simulate(trace, kind, config)
}

/// Reverse aggressive with per-configuration tuning, as the paper does:
/// "reverse aggressive's fetch time estimate F̂ and batch size are chosen
/// to minimize its elapsed time" (appendix A). Searches a small grid and
/// returns the best run.
pub fn best_reverse(trace: &Trace, base: &SimConfig) -> Report {
    best_reverse_search(trace, base, crate::sweep::default_threads()).0
}

/// [`best_reverse`], returning the winning configuration as well and
/// running the grid's eight simulations on up to `threads` workers via
/// [`run_indexed`](crate::sweep::run_indexed).
///
/// The winner is chosen by folding the reports *in grid order* with a
/// strictly-smaller-elapsed rule — exactly the serial loop's
/// first-wins tie-break — so the result does not depend on `threads`.
pub fn best_reverse_search(trace: &Trace, base: &SimConfig, threads: usize) -> (Report, SimConfig) {
    let fetch_estimates = [1u64, 4, 16, 64];
    let batches = [4usize, 40];
    let grid: Vec<SimConfig> = fetch_estimates
        .iter()
        .flat_map(|&f| {
            batches
                .iter()
                .map(move |&b| base.clone().with_reverse_params(f, b))
        })
        .collect();
    let reports = crate::sweep::run_indexed(grid.len(), threads, |i| {
        simulate(trace, PolicyKind::ReverseAggressive, &grid[i])
    });
    let mut best: Option<(usize, Report)> = None;
    for (i, r) in reports.into_iter().enumerate() {
        if best.as_ref().is_none_or(|(_, cur)| r.elapsed < cur.elapsed) {
            best = Some((i, r));
        }
    }
    let (i, report) = best.expect("non-empty parameter grid");
    (report, grid[i].clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_cache_returns_consistent_traces() {
        let a = trace("synth");
        let b = trace("synth");
        // Same cached allocation, not merely equal contents.
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a, b);
        assert_eq!(a.stats().reads, 100_000);
    }

    #[test]
    #[should_panic(expected = "unknown trace")]
    fn unknown_trace_panics() {
        trace("nope");
    }

    #[test]
    fn disk_counts_match_paper() {
        assert_eq!(DISK_COUNTS.len(), 11);
        assert_eq!(DISK_COUNTS[0], 1);
        assert_eq!(DISK_COUNTS[10], 16);
        assert_eq!(paper_disk_counts().count(), 11);
    }

    #[test]
    fn trace_cache_is_race_free() {
        // Many workers asking for the same trace at once still share one
        // generated copy.
        let arcs: Vec<Arc<Trace>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4).map(|_| s.spawn(|| trace("synth"))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for a in &arcs[1..] {
            assert!(Arc::ptr_eq(&arcs[0], a));
        }
    }

    #[test]
    fn best_reverse_is_no_worse_than_default() {
        let t = parcache_trace::synth::synth_trace(3, 200, 7);
        let cfg = SimConfig::for_trace(2, &t);
        let default = run(&t, PolicyKind::ReverseAggressive, &cfg);
        let tuned = best_reverse(&t, &cfg);
        assert!(tuned.elapsed <= default.elapsed);
    }

    #[test]
    fn best_reverse_search_is_thread_count_invariant() {
        let t = parcache_trace::synth::synth_trace(3, 200, 7);
        let base = SimConfig::for_trace(2, &t);
        let (serial, serial_cfg) = best_reverse_search(&t, &base, 1);
        let (threaded, threaded_cfg) = best_reverse_search(&t, &base, 4);
        assert_eq!(serial, threaded);
        assert_eq!(serial_cfg, threaded_cfg);
        // The winning configuration really produces the winning report.
        let replay = run(&t, PolicyKind::ReverseAggressive, &serial_cfg);
        assert_eq!(replay, serial);
    }
}
