//! Table formatting in the shape of the paper's figures and appendices.

use crate::sweep::{CellExecution, SweepCell};
use parcache_core::engine::Report;
use parcache_types::Nanos;

/// One row of a breakdown table (one policy at one array size).
#[derive(Debug, Clone)]
pub struct BreakdownRow {
    /// Array size.
    pub disks: usize,
    /// Policy name.
    pub policy: String,
    /// The run's report.
    pub report: Report,
}

impl BreakdownRow {
    /// Builds a row from a report.
    pub fn new(report: Report) -> BreakdownRow {
        BreakdownRow {
            disks: report.disks,
            policy: report.policy.clone(),
            report,
        }
    }
}

/// Percentage difference of `a` relative to `b`: `(a - b) / b * 100`.
pub fn percent(a: Nanos, b: Nanos) -> f64 {
    if b == Nanos::ZERO {
        return 0.0;
    }
    (a.as_nanos() as f64 - b.as_nanos() as f64) / b.as_nanos() as f64 * 100.0
}

/// Formats rows in the style of the appendix tables: per disk count and
/// policy, the fetches, driver time, stall time, elapsed time, average
/// fetch time, and average disk utilization.
pub fn breakdown_table(title: &str, rows: &[BreakdownRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let _ = writeln!(
        out,
        "{:<6} {:<20} {:>8} {:>12} {:>12} {:>12} {:>12} {:>6}",
        "disks", "policy", "fetches", "driver(s)", "stall(s)", "elapsed(s)", "avg fetch", "util"
    );
    for row in rows {
        let r = &row.report;
        let _ = writeln!(
            out,
            "{:<6} {:<20} {:>8} {:>12.4} {:>12.3} {:>12.3} {:>10.3}ms {:>6.2}",
            row.disks,
            row.policy,
            r.fetches,
            r.driver.as_secs_f64(),
            r.stall.as_secs_f64(),
            r.elapsed.as_secs_f64(),
            r.avg_fetch_time.as_millis_f64(),
            r.avg_disk_utilization,
        );
    }
    out
}

/// Formats rows as a stall-provenance table (`--explain`): per disk
/// count and policy, the total stall and its five per-cause components,
/// each with its share of the stall. This is the paper's why-narrative
/// in one table — e.g. forestall beating aggressive shows up as stall
/// moving out of `no-prefetch` without piling into `congestion`.
pub fn explain_table(title: &str, rows: &[BreakdownRow]) -> String {
    use parcache_core::probe::StallCause;
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "== {title}: stall by cause ==");
    let _ = writeln!(
        out,
        "{:<6} {:<20} {:>10} {:>14} {:>14} {:>14} {:>14} {:>16}",
        "disks", "policy", "stall(s)", "late-pf", "no-pf", "congestion", "retry", "evict-refetch"
    );
    for row in rows {
        let r = &row.report;
        let mut cols = String::new();
        for &cause in &StallCause::ALL {
            let t = r.stall_by_cause.get(cause);
            let share = if r.stall == Nanos::ZERO {
                0.0
            } else {
                t.as_nanos() as f64 / r.stall.as_nanos() as f64 * 100.0
            };
            let width = if cause == StallCause::EvictionRefetch {
                16
            } else {
                14
            };
            let _ = write!(
                cols,
                " {:>w$}",
                format!("{:.2}s {:>3.0}%", t.as_secs_f64(), share),
                w = width
            );
        }
        let _ = writeln!(
            out,
            "{:<6} {:<20} {:>10.3}{}",
            row.disks,
            row.policy,
            r.stall.as_secs_f64(),
            cols,
        );
    }
    out
}

/// The stderr summary of a fail-soft sweep: one line per failed or
/// skipped cell, naming the grid point and the diagnosis, then a totals
/// line. Empty when every cell finished — the clean path prints nothing.
pub fn failsoft_summary(cells: &[SweepCell], executions: &[CellExecution]) -> String {
    use crate::sweep::CellOutcome;
    use std::fmt::Write as _;
    let mut out = String::new();
    let (mut ok, mut panicked, mut timed_out, mut skipped, mut retries) = (0, 0, 0, 0, 0u64);
    for e in executions {
        retries += u64::from(e.attempts.saturating_sub(1));
        let cell = cells.get(e.index);
        let point = |c: Option<&SweepCell>| match c {
            Some(c) => format!("{}/{}/{} disks", c.trace.name, c.algo.name(), c.disks),
            None => "?".to_string(),
        };
        match &e.outcome {
            CellOutcome::Ok(_) => ok += 1,
            CellOutcome::Panicked { msg } => {
                panicked += 1;
                let _ = writeln!(
                    out,
                    "cell {} ({}): panicked after {} attempt(s): {}",
                    e.index,
                    point(cell),
                    e.attempts,
                    msg.lines().next().unwrap_or(""),
                );
            }
            CellOutcome::TimedOut { limit } => {
                timed_out += 1;
                let _ = writeln!(
                    out,
                    "cell {} ({}): timed out after {} attempt(s) of {:?} each",
                    e.index,
                    point(cell),
                    e.attempts,
                    limit,
                );
            }
            CellOutcome::Skipped => skipped += 1,
        }
    }
    if panicked + timed_out + skipped == 0 {
        return out;
    }
    let _ = writeln!(
        out,
        "fail-soft: {ok}/{} cells ok, {panicked} panicked, {timed_out} timed out, \
         {skipped} skipped, {retries} retr{}",
        executions.len(),
        if retries == 1 { "y" } else { "ies" },
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcache_core::policy::PolicyKind;
    use parcache_core::SimConfig;

    #[test]
    fn percent_matches_definition() {
        assert_eq!(percent(Nanos(110), Nanos(100)), 10.0);
        assert_eq!(percent(Nanos(90), Nanos(100)), -10.0);
        assert_eq!(percent(Nanos(50), Nanos::ZERO), 0.0);
    }

    #[test]
    fn breakdown_table_contains_all_rows() {
        let t = parcache_trace::synth::synth_trace(2, 50, 3);
        let cfg = SimConfig::for_trace(1, &t);
        let r = parcache_core::simulate(&t, PolicyKind::Demand, &cfg);
        let rows = vec![BreakdownRow::new(r)];
        let s = breakdown_table("test", &rows);
        assert!(s.contains("== test =="));
        assert!(s.contains("demand"));
        assert!(s.lines().count() >= 3);
    }

    #[test]
    fn explain_table_shares_sum_to_the_stall() {
        // A single disk under demand fetching stalls on every miss, and
        // demand never prefetches: the whole stall is no-prefetch (first
        // touches) plus eviction-refetch (re-misses after eviction).
        let t = parcache_trace::synth::synth_trace(2, 80, 3);
        let cfg = SimConfig::for_trace(1, &t);
        let r = parcache_core::simulate(&t, PolicyKind::Demand, &cfg);
        assert!(r.stall > Nanos::ZERO);
        assert_eq!(r.stall_by_cause.total(), r.stall);
        let s = explain_table("test", &[BreakdownRow::new(r)]);
        assert!(s.contains("stall by cause"), "{s}");
        assert!(s.contains("no-pf"), "{s}");
        assert!(s.contains("demand"), "{s}");
    }
}
