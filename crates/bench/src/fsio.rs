//! Atomic file output: write-temp-then-rename.
//!
//! Every artifact the harness writes (sweep CSV/JSON, failure manifests,
//! profiles, bench baselines, event logs) goes through this module, so a
//! process killed mid-write never leaves a truncated file under the
//! destination name — readers either see the complete old contents, the
//! complete new contents, or nothing. The temporary lives in the
//! destination's directory (same filesystem, so the final `rename` is
//! atomic) and is fsynced before the rename.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// The temporary name an in-flight write uses: a dot-hidden sibling
/// tagged with the writer's pid, so concurrent writers (or the debris of
/// a killed one) never collide with each other or the destination.
fn tmp_path(dest: &Path) -> PathBuf {
    let name = dest
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    dest.with_file_name(format!(".{name}.tmp.{}", std::process::id()))
}

/// Writes `contents` to `path` atomically: the destination either keeps
/// its old bytes or gets all the new ones, never a prefix.
pub fn write_atomic(path: impl AsRef<Path>, contents: impl AsRef<[u8]>) -> io::Result<()> {
    let mut file = AtomicFile::create(path)?;
    file.write_all(contents.as_ref())?;
    file.commit()
}

/// An incrementally-written atomic file: accumulate with [`Write`], then
/// [`commit`](AtomicFile::commit) to fsync and rename into place. Dropped
/// without committing — including via a panic — it removes its temporary
/// and leaves the destination untouched.
#[derive(Debug)]
pub struct AtomicFile {
    tmp: PathBuf,
    dest: PathBuf,
    /// `None` once committed (the guard for Drop's cleanup).
    file: Option<File>,
}

impl AtomicFile {
    /// Opens a temporary alongside `dest` for writing.
    pub fn create(dest: impl AsRef<Path>) -> io::Result<AtomicFile> {
        let dest = dest.as_ref().to_path_buf();
        let tmp = tmp_path(&dest);
        let file = File::create(&tmp)?;
        Ok(AtomicFile {
            tmp,
            dest,
            file: Some(file),
        })
    }

    /// Durably publishes the accumulated bytes under the destination
    /// name: fsync the temporary, then rename it into place.
    pub fn commit(mut self) -> io::Result<()> {
        let file = self.file.take().expect("commit consumes the file");
        file.sync_all()?;
        fs::rename(&self.tmp, &self.dest)
    }
}

impl Write for AtomicFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.file.as_mut().expect("not committed").write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.file.as_mut().expect("not committed").flush()
    }
}

impl Drop for AtomicFile {
    fn drop(&mut self) {
        if self.file.take().is_some() {
            // Uncommitted: abandon the write. Best-effort — debris here
            // is cosmetic (dot-hidden, pid-tagged), never a truncated
            // artifact under the destination name.
            let _ = fs::remove_file(&self.tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("parcache-fsio-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn write_atomic_round_trips_and_leaves_no_temp() {
        let path = scratch("round-trip.txt");
        write_atomic(&path, "hello\n").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "hello\n");
        // Overwrite is also atomic.
        write_atomic(&path, "goodbye\n").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "goodbye\n");
        assert!(!tmp_path(&path).exists());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn uncommitted_atomic_file_leaves_destination_untouched() {
        let path = scratch("abandoned.txt");
        fs::write(&path, "original").unwrap();
        {
            let mut f = AtomicFile::create(&path).unwrap();
            f.write_all(b"half-writ").unwrap();
            // Dropped without commit.
        }
        assert_eq!(fs::read_to_string(&path).unwrap(), "original");
        assert!(!tmp_path(&path).exists());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn atomic_file_commit_publishes_streamed_writes() {
        let path = scratch("streamed.txt");
        let mut f = AtomicFile::create(&path).unwrap();
        f.write_all(b"part one, ").unwrap();
        f.write_all(b"part two\n").unwrap();
        f.commit().unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "part one, part two\n");
        assert!(!tmp_path(&path).exists());
        fs::remove_file(&path).unwrap();
    }
}
