//! Shared experiment drivers: algorithm selection (including the paper's
//! per-configuration tuning of reverse aggressive) and measured-vs-paper
//! comparison tables.

use crate::paper::paper_elapsed;
use crate::runner::{best_reverse, trace};
use parcache_core::engine::Report;
use parcache_core::policy::PolicyKind;
use parcache_core::SimConfig;
use parcache_trace::Trace;
use std::fmt::Write as _;

/// An algorithm as run in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Demand fetching with optimal replacement.
    Demand,
    /// Fixed horizon with the configured H.
    FixedHorizon,
    /// Aggressive with the configured batch size.
    Aggressive,
    /// Reverse aggressive with F̂ and batch tuned per configuration, as
    /// in appendix A.
    TunedReverse,
    /// Forestall with dynamic F estimation.
    Forestall,
}

impl Algo {
    /// The four prefetching algorithms of appendix A, in table order.
    pub const APPENDIX_A: [Algo; 4] = [
        Algo::FixedHorizon,
        Algo::Aggressive,
        Algo::TunedReverse,
        Algo::Forestall,
    ];

    /// Figure 2's four algorithms (demand baseline + three prefetchers).
    pub const FIGURE_2: [Algo; 4] = [
        Algo::Demand,
        Algo::FixedHorizon,
        Algo::Aggressive,
        Algo::TunedReverse,
    ];

    /// Figures 3-5's three algorithms.
    pub const THREE: [Algo; 3] = [Algo::FixedHorizon, Algo::Aggressive, Algo::TunedReverse];

    /// Figures 8-10's three practical algorithms.
    pub const PRACTICAL: [Algo; 3] = [Algo::FixedHorizon, Algo::Aggressive, Algo::Forestall];

    /// Runs the algorithm.
    pub fn run(&self, t: &Trace, cfg: &SimConfig) -> Report {
        match self.policy_kind() {
            Some(kind) => parcache_core::simulate(t, kind, cfg),
            None => best_reverse(t, cfg),
        }
    }

    /// The policy this algorithm runs the configuration's parameters
    /// under, or `None` for [`Algo::TunedReverse`], which searches
    /// reverse aggressive's parameter grid instead of using the
    /// configured values.
    pub fn policy_kind(&self) -> Option<PolicyKind> {
        match self {
            Algo::Demand => Some(PolicyKind::Demand),
            Algo::FixedHorizon => Some(PolicyKind::FixedHorizon),
            Algo::Aggressive => Some(PolicyKind::Aggressive),
            Algo::TunedReverse => None,
            Algo::Forestall => Some(PolicyKind::Forestall),
        }
    }

    /// Looks an algorithm up by its display name (`"tuned-reverse"` is
    /// accepted as an alias distinguishing the tuned search from plain
    /// reverse aggressive).
    pub fn by_name(name: &str) -> Option<Algo> {
        match name {
            "demand" => Some(Algo::Demand),
            "fixed-horizon" => Some(Algo::FixedHorizon),
            "aggressive" => Some(Algo::Aggressive),
            "reverse-aggressive" | "tuned-reverse" => Some(Algo::TunedReverse),
            "forestall" => Some(Algo::Forestall),
            _ => None,
        }
    }

    /// Display name (matches the policies' own names).
    pub fn name(&self) -> &'static str {
        match self {
            Algo::Demand => "demand",
            Algo::FixedHorizon => "fixed-horizon",
            Algo::Aggressive => "aggressive",
            Algo::TunedReverse => "reverse-aggressive",
            Algo::Forestall => "forestall",
        }
    }
}

/// Appends one comparison row: measured breakdown plus the paper's
/// elapsed time for the same cell, when published and applicable.
fn push_row(out: &mut String, r: &Report, with_paper: bool) {
    let paper = if with_paper {
        paper_elapsed(&r.trace, &r.policy, r.disks)
    } else {
        None
    };
    let (paper_s, delta) = match paper {
        Some(p) => (
            format!("{p:>10.3}"),
            format!("{:>+7.1}%", (r.elapsed.as_secs_f64() - p) / p * 100.0),
        ),
        None => ("         -".to_string(), "       -".to_string()),
    };
    let _ = writeln!(
        out,
        "{:<6} {:<20} {:>8} {:>9.3} {:>9.3} {:>9.3} {:>10.3} {paper_s} {delta} {:>9.3} {:>6.2}",
        r.disks,
        r.policy,
        r.fetches,
        r.compute.as_secs_f64(),
        r.driver.as_secs_f64(),
        r.stall.as_secs_f64(),
        r.elapsed.as_secs_f64(),
        r.avg_fetch_time.as_millis_f64(),
        r.avg_disk_utilization,
    );
}

/// Header line matching [`push_row`].
fn header(out: &mut String) {
    let _ = writeln!(
        out,
        "{:<6} {:<20} {:>8} {:>9} {:>9} {:>9} {:>10} {:>10} {:>8} {:>9} {:>6}",
        "disks",
        "policy",
        "fetches",
        "compute",
        "driver",
        "stall",
        "elapsed",
        "paper",
        "delta",
        "fetch(ms)",
        "util"
    );
}

/// Runs `algos` on `trace_name` for each array size and formats a
/// measured-vs-paper comparison table. `modify` adjusts the default
/// configuration (identity for baseline experiments).
pub fn comparison(
    title: &str,
    trace_name: &str,
    algos: &[Algo],
    disks: &[usize],
    modify: impl Fn(SimConfig) -> SimConfig,
) -> String {
    comparison_with(title, trace_name, algos, disks, modify, true)
}

/// Like [`comparison`], with explicit control over the paper column —
/// pass `false` when the configuration differs from the paper's baseline
/// (appendix B-H sweeps), so baseline numbers are not shown against
/// non-baseline runs.
pub fn comparison_with(
    title: &str,
    trace_name: &str,
    algos: &[Algo],
    disks: &[usize],
    modify: impl Fn(SimConfig) -> SimConfig,
    with_paper: bool,
) -> String {
    let t = trace(trace_name);
    comparison_on(title, &t, algos, disks, modify, with_paper)
}

/// Like [`comparison_with`], on an explicit trace (e.g. the double-speed
/// CPU variant).
pub fn comparison_on(
    title: &str,
    t: &Trace,
    algos: &[Algo],
    disks: &[usize],
    modify: impl Fn(SimConfig) -> SimConfig,
    with_paper: bool,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let _ = writeln!(out, "trace: {}", t.name);
    header(&mut out);
    for &d in disks {
        let cfg = modify(SimConfig::for_trace(d, t));
        for a in algos {
            let r = a.run(t, &cfg);
            push_row(&mut out, &r, with_paper);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_prints_paper_columns() {
        let s = comparison("t", "postgres-select", &[Algo::FixedHorizon], &[1], |c| c);
        assert!(s.contains("fixed-horizon"));
        // The paper's 45.390 should appear in the paper column.
        assert!(s.contains("45.390"), "{s}");
    }

    #[test]
    fn algo_names_match_policy_names() {
        assert_eq!(Algo::Demand.name(), PolicyKind::Demand.name());
        assert_eq!(
            Algo::TunedReverse.name(),
            PolicyKind::ReverseAggressive.name()
        );
    }

    #[test]
    fn algo_name_round_trips_through_by_name() {
        for a in [
            Algo::Demand,
            Algo::FixedHorizon,
            Algo::Aggressive,
            Algo::TunedReverse,
            Algo::Forestall,
        ] {
            assert_eq!(Algo::by_name(a.name()), Some(a));
        }
        assert_eq!(Algo::by_name("tuned-reverse"), Some(Algo::TunedReverse));
        assert_eq!(Algo::by_name("nope"), None);
        assert_eq!(Algo::TunedReverse.policy_kind(), None);
        assert_eq!(Algo::Forestall.policy_kind(), Some(PolicyKind::Forestall));
    }
}
