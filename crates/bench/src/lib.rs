//! Experiment harness reproducing every table and figure of Kimbrel et
//! al., *A Trace-Driven Comparison of Algorithms for Parallel Prefetching
//! and Caching* (OSDI 1996).
//!
//! Each table/figure has a bench target in `benches/` (`harness = false`)
//! that prints the paper's rows; this library holds the shared runner,
//! parameter grids, and formatting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod experiments;
pub mod fsio;
pub mod fuzz;
pub mod manifest;
pub mod paper;
pub mod prof;
pub mod report;
pub mod runner;
pub mod sha256;
pub mod sweep;

pub use bench::{
    check_engine, check_scaling, run_engine_bench, run_sweep_bench, EngineBench, SweepBench,
    ENGINE_ALLOC_CEILING, ENGINE_FORESTALL_DEMAND_RATIO, SCALING_EFFICIENCY_FLOOR,
    SCALING_GATE_THREADS,
};
pub use experiments::{comparison, comparison_on, comparison_with, Algo};
pub use fsio::{write_atomic, AtomicFile};
pub use fuzz::{fuzz, fuzz_differential, FuzzCase, FuzzFailure, FuzzReport};
pub use manifest::{
    grid_hash, plan_resume, ManifestCell, ManifestError, ManifestStatus, ResumePlan, SweepManifest,
    MANIFEST_SCHEMA,
};
pub use paper::{paper_cells, paper_elapsed};
pub use prof::{detect_parallelism, EffectiveParallelism, NoopProf, Prof, WallProf, WorkerStats};
pub use report::{breakdown_table, explain_table, failsoft_summary, percent, BreakdownRow};
pub use runner::{
    best_reverse, best_reverse_search, paper_disk_counts, run, trace, trace_cache_stats, try_trace,
    TraceError, DISK_COUNTS, SEED,
};
pub use sha256::{sha256, sha256_hex};
pub use sweep::{
    default_threads, run_cells_failsoft, run_indexed, run_indexed_measured, run_indexed_observed,
    run_indexed_profiled, run_sweep, run_sweep_audited, run_sweep_cells, run_sweep_cells_audited,
    run_sweep_cells_audited_profiled, run_sweep_cells_profiled, run_sweep_probed, sweep_csv,
    sweep_csv_explain, sweep_csv_gated, sweep_json, CellExecution, CellOutcome, CellRow, CsvGates,
    FailSoft, FailSoftRun, Injection, InjectionKind, SweepCell, SweepEntry, SweepSpec,
    ThreadAllocSampler,
};
