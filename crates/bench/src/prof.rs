//! Wall-clock self-profiling for the harness (std-only).
//!
//! The simulated-time side of observability lives in parcache-core
//! (stall provenance, the audit layer); this module is the wall-clock
//! side: where do the harness's own microseconds and allocations go?
//! It mirrors the engine's zero-cost probe design — code is generic over
//! [`Prof`], and the disabled implementation ([`NoopProf`]) carries
//! `ENABLED = false` as an associated constant, so every profiling
//! branch monomorphizes away exactly like the engine's `NoopProbe`
//! branches do.
//!
//! Three instruments:
//!
//! * **Hierarchical span timers** ([`WallProf`], [`Span`]): scoped RAII
//!   guards accumulate *self time* per `a;b;c` path — the time charged
//!   to a span excludes its children, so path times sum to the profiled
//!   wall time exactly and emit directly as flamegraph-compatible
//!   folded-stack lines.
//! * **Per-phase allocation counters**: an injected sampler (the binary's
//!   counting allocator; the library stays `forbid(unsafe_code)`)
//!   attributes heap allocations to the open span the same way.
//! * **Effective parallelism detection** ([`detect_parallelism`]):
//!   `std::thread::available_parallelism` clamped by the cgroup CPU
//!   quota when readable, so a single-core container reports "scaling
//!   not measurable" instead of committing negative-scaling numbers.

use std::sync::Mutex;
use std::time::Instant;

/// A wall-clock profiler the harness's phases are generic over.
///
/// The `ENABLED` constant lets call sites guard with
/// `if P::ENABLED { ... }`: with [`NoopProf`] the branch is
/// const-false and the profiling code is compiled out entirely.
pub trait Prof {
    /// False only for [`NoopProf`]: lets generic code skip profiling
    /// work entirely when monomorphized with the no-op.
    const ENABLED: bool = true;

    /// Opens a nested span; prefer the RAII [`Prof::span`].
    fn enter(&self, name: &'static str);

    /// Closes the innermost open span.
    fn exit(&self);

    /// Opens a span closed when the returned guard drops.
    fn span(&self, name: &'static str) -> Span<'_, Self>
    where
        Self: Sized,
    {
        if Self::ENABLED {
            self.enter(name);
        }
        Span { prof: self }
    }
}

/// RAII guard for one open span; closes it on drop.
pub struct Span<'a, P: Prof> {
    prof: &'a P,
}

impl<P: Prof> Drop for Span<'_, P> {
    fn drop(&mut self) {
        if P::ENABLED {
            self.prof.exit();
        }
    }
}

/// The disabled profiler: all operations are empty and `ENABLED` is
/// false, so profiled code paths monomorphize to their unprofiled
/// selves (the same trick as the engine's `NoopProbe`).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopProf;

impl Prof for NoopProf {
    const ENABLED: bool = false;

    #[inline(always)]
    fn enter(&self, _name: &'static str) {}

    #[inline(always)]
    fn exit(&self) {}
}

/// Accumulated cost of one span path.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
struct PathCost {
    /// Self time in microseconds: time inside this path excluding
    /// children, so costs over all paths sum to the profiled wall time.
    self_us: u64,
    /// Heap allocations charged to this path (when a sampler is set).
    allocs: u64,
}

/// Span-stack state behind [`WallProf`]'s mutex.
#[derive(Debug, Default)]
struct Inner {
    /// Open span names, outermost first.
    stack: Vec<&'static str>,
    /// Microseconds since `start` when the current self-time segment
    /// began (last enter or exit).
    segment_from: u64,
    /// Allocation count at the segment start.
    allocs_from: u64,
    /// Accumulated costs keyed by `a;b;c` path, insertion-ordered so
    /// output is deterministic for a deterministic phase sequence.
    paths: Vec<(String, PathCost)>,
}

impl Inner {
    /// Charges the running segment to the currently-open path.
    fn charge(&mut self, now_us: u64, allocs_now: u64) {
        if self.stack.is_empty() {
            self.segment_from = now_us;
            self.allocs_from = allocs_now;
            return;
        }
        let path = self.stack.join(";");
        let d_us = now_us.saturating_sub(self.segment_from);
        let d_allocs = allocs_now.saturating_sub(self.allocs_from);
        match self.paths.iter_mut().find(|(p, _)| *p == path) {
            Some((_, cost)) => {
                cost.self_us += d_us;
                cost.allocs += d_allocs;
            }
            None => self.paths.push((
                path,
                PathCost {
                    self_us: d_us,
                    allocs: d_allocs,
                },
            )),
        }
        self.segment_from = now_us;
        self.allocs_from = allocs_now;
    }
}

/// The enabled profiler: accumulates self time (and allocations, when a
/// sampler is injected) per hierarchical span path.
///
/// Span operations take a mutex — [`WallProf`] instruments the
/// harness's orchestration phases, which open a handful of spans per
/// run, not the simulator hot path.
pub struct WallProf {
    start: Instant,
    /// Samples the process-wide allocation count; `None` when the
    /// binary's counting allocator is not wired in.
    alloc_sampler: Option<fn() -> u64>,
    inner: Mutex<Inner>,
}

impl WallProf {
    /// A profiler with no allocation sampling.
    pub fn new() -> WallProf {
        WallProf::with_alloc_sampler_opt(None)
    }

    /// A profiler charging allocation deltas from `sampler` to spans.
    pub fn with_alloc_sampler(sampler: fn() -> u64) -> WallProf {
        WallProf::with_alloc_sampler_opt(Some(sampler))
    }

    fn with_alloc_sampler_opt(alloc_sampler: Option<fn() -> u64>) -> WallProf {
        WallProf {
            start: Instant::now(),
            alloc_sampler,
            inner: Mutex::new(Inner::default()),
        }
    }

    fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    fn sample_allocs(&self) -> u64 {
        self.alloc_sampler.map_or(0, |f| f())
    }

    /// Total wall time since construction, in microseconds.
    pub fn wall_us(&self) -> u64 {
        self.now_us()
    }

    /// The accumulated `(path, self_us, allocs)` rows, insertion order.
    /// Open spans are not charged until they exit.
    pub fn rows(&self) -> Vec<(String, u64, u64)> {
        let inner = self.inner.lock().expect("profiler mutex poisoned");
        inner
            .paths
            .iter()
            .map(|(p, c)| (p.clone(), c.self_us, c.allocs))
            .collect()
    }

    /// Flamegraph-compatible folded-stack text: one `path self_us` line
    /// per span path, self times in microseconds as the sample unit.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (path, self_us, _) in self.rows() {
            out.push_str(&path);
            out.push(' ');
            out.push_str(&self_us.to_string());
            out.push('\n');
        }
        out
    }

    /// The span table as a JSON array.
    pub fn spans_json(&self) -> String {
        let rows: Vec<String> = self
            .rows()
            .iter()
            .map(|(path, self_us, allocs)| {
                format!(
                    r#"{{"path":"{}","self_us":{},"allocs":{}}}"#,
                    path, self_us, allocs
                )
            })
            .collect();
        format!("[{}]", rows.join(","))
    }
}

impl Default for WallProf {
    fn default() -> WallProf {
        WallProf::new()
    }
}

impl Prof for WallProf {
    fn enter(&self, name: &'static str) {
        let now = self.now_us();
        let allocs = self.sample_allocs();
        let mut inner = self.inner.lock().expect("profiler mutex poisoned");
        inner.charge(now, allocs);
        inner.stack.push(name);
    }

    fn exit(&self) {
        let now = self.now_us();
        let allocs = self.sample_allocs();
        let mut inner = self.inner.lock().expect("profiler mutex poisoned");
        inner.charge(now, allocs);
        inner
            .stack
            .pop()
            .expect("span exit without a matching enter");
    }
}

/// Wall-clock telemetry for one sweep worker thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Items (cells, cases) this worker executed.
    pub items: u64,
    /// Microseconds spent inside item closures.
    pub busy_us: u64,
    /// Microseconds from thread start to thread end.
    pub wall_us: u64,
    /// Heap allocations made *inside* item closures, sampled from a
    /// thread-local counter when the embedding binary provides one
    /// (0 otherwise). Excludes worker setup — thread spawn, queue
    /// bookkeeping, result collection — so summed over workers it is a
    /// pure function of the item set, identical at any thread count.
    pub work_allocs: u64,
    /// Items this worker ran that ended in failure (panicked or timed
    /// out) under the fail-soft executor. 0 on plain executors, where a
    /// failure aborts the run instead of being counted.
    pub failed: u64,
    /// Items this worker drained as skipped after a fail-fast halt.
    pub skipped: u64,
    /// Extra attempts this worker spent retrying failed items (an item
    /// that succeeds on its third attempt contributes 2).
    pub retries: u64,
}

impl WorkerStats {
    /// Microseconds the worker was not executing items: queue waits,
    /// scheduling, and the tail after the queue drained.
    pub fn idle_us(&self) -> u64 {
        self.wall_us.saturating_sub(self.busy_us)
    }

    /// These stats as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"items":{},"busy_us":{},"idle_us":{},"wall_us":{},"work_allocs":{},"failed":{},"skipped":{},"retries":{}}}"#,
            self.items,
            self.busy_us,
            self.idle_us(),
            self.wall_us,
            self.work_allocs,
            self.failed,
            self.skipped,
            self.retries
        )
    }
}

/// What the machine can actually run in parallel, as far as the harness
/// can tell from inside its container.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EffectiveParallelism {
    /// `std::thread::available_parallelism` (1 when undeterminable).
    pub available: usize,
    /// CPU-cores-worth of cgroup quota (`cpu.max` on v2,
    /// `cpu.cfs_quota_us / cpu.cfs_period_us` on v1), when readable and
    /// bounded.
    pub cgroup_quota: Option<f64>,
    /// The binding estimate: the quota when it is tighter than the
    /// visible CPU count, the CPU count otherwise.
    pub effective: f64,
}

impl EffectiveParallelism {
    /// True when thread-scaling measurements are meaningful here: with
    /// fewer than two effective cores, a multi-thread run measures
    /// timeslicing overhead, not scaling.
    pub fn scaling_measurable(&self) -> bool {
        self.effective >= 2.0
    }

    /// This detection as a JSON object.
    pub fn to_json(&self) -> String {
        let quota = match self.cgroup_quota {
            Some(q) => format!("{q:.2}"),
            None => "null".to_string(),
        };
        format!(
            r#"{{"available":{},"cgroup_quota":{},"effective":{:.2},"scaling_measurable":{}}}"#,
            self.available,
            quota,
            self.effective,
            self.scaling_measurable()
        )
    }
}

/// Parses a cgroup-v2 `cpu.max` file: `"max 100000"` (unbounded) or
/// `"200000 100000"` (quota period) — cores = quota / period.
fn parse_cpu_max(s: &str) -> Option<f64> {
    let mut it = s.split_whitespace();
    let quota = it.next()?;
    if quota == "max" {
        return None;
    }
    let quota: f64 = quota.parse().ok()?;
    let period: f64 = it.next().unwrap_or("100000").parse().ok()?;
    if quota <= 0.0 || period <= 0.0 {
        return None;
    }
    Some(quota / period)
}

/// Reads the cgroup CPU quota in cores, v2 first then v1; `None` when
/// unreadable or unbounded.
fn cgroup_quota() -> Option<f64> {
    if let Ok(s) = std::fs::read_to_string("/sys/fs/cgroup/cpu.max") {
        return parse_cpu_max(&s);
    }
    let quota: f64 = std::fs::read_to_string("/sys/fs/cgroup/cpu/cpu.cfs_quota_us")
        .ok()?
        .trim()
        .parse()
        .ok()?;
    if quota <= 0.0 {
        // -1 means unbounded.
        return None;
    }
    let period: f64 = std::fs::read_to_string("/sys/fs/cgroup/cpu/cpu.cfs_period_us")
        .ok()?
        .trim()
        .parse()
        .ok()?;
    if period <= 0.0 {
        return None;
    }
    Some(quota / period)
}

/// Detects the effective parallelism of the current environment.
pub fn detect_parallelism() -> EffectiveParallelism {
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let quota = cgroup_quota();
    let effective = match quota {
        Some(q) => q.min(available as f64),
        None => available as f64,
    };
    EffectiveParallelism {
        available,
        cgroup_quota: quota,
        effective,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_prof_is_zero_sized_and_disabled() {
        assert_eq!(std::mem::size_of::<NoopProf>(), 0);
        // Pin the associated constants: compile-time checks that the
        // no-op stays disabled and the real profiler enabled.
        const { assert!(!NoopProf::ENABLED) };
        const { assert!(WallProf::ENABLED) };
        // Spans through the no-op compile and cost nothing observable.
        let p = NoopProf;
        let _outer = p.span("outer");
        let _inner = p.span("inner");
    }

    #[test]
    fn self_times_nest_and_sum_to_profiled_wall() {
        let p = WallProf::new();
        {
            let _a = p.span("sweep");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _b = p.span("cells");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            {
                let _c = p.span("csv");
            }
        }
        let rows = p.rows();
        let paths: Vec<&str> = rows.iter().map(|(p, _, _)| p.as_str()).collect();
        assert_eq!(paths, vec!["sweep", "sweep;cells", "sweep;csv"]);
        let total: u64 = rows.iter().map(|(_, us, _)| us).sum();
        assert!(total <= p.wall_us(), "{total} > {}", p.wall_us());
        // Both sleeps actually registered, in their own paths.
        assert!(rows[0].1 >= 1_000, "sweep self {}", rows[0].1);
        assert!(rows[1].1 >= 1_000, "cells self {}", rows[1].1);
    }

    #[test]
    fn folded_output_is_one_sample_line_per_path() {
        let p = WallProf::new();
        {
            let _a = p.span("a");
            let _b = p.span("b");
        }
        let folded = p.folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("a "), "{folded}");
        assert!(lines[1].starts_with("a;b "), "{folded}");
        for l in &lines {
            let (path, us) = l.rsplit_once(' ').expect("path us");
            assert!(!path.is_empty());
            us.parse::<u64>().expect("sample count parses");
        }
    }

    #[test]
    fn alloc_sampler_charges_deltas_to_the_open_span() {
        fn fake_counter() -> u64 {
            use std::sync::atomic::{AtomicU64, Ordering};
            static N: AtomicU64 = AtomicU64::new(0);
            N.fetch_add(7, Ordering::Relaxed)
        }
        let p = WallProf::with_alloc_sampler(fake_counter);
        {
            let _a = p.span("alloc-heavy");
        }
        let rows = p.rows();
        assert_eq!(rows.len(), 1);
        // The fake counter advances by 7 per sample; enter and exit each
        // sample once, so the span sees exactly one delta of 7.
        assert_eq!(rows[0].2, 7, "{rows:?}");
    }

    #[test]
    fn cpu_max_parses_bounded_and_unbounded() {
        assert_eq!(parse_cpu_max("max 100000\n"), None);
        assert_eq!(parse_cpu_max("200000 100000\n"), Some(2.0));
        assert_eq!(parse_cpu_max("50000 100000"), Some(0.5));
        assert_eq!(parse_cpu_max("garbage"), None);
        assert_eq!(parse_cpu_max("-1 100000"), None);
    }

    #[test]
    fn detection_reports_consistent_bounds() {
        let p = detect_parallelism();
        assert!(p.available >= 1);
        assert!(p.effective >= 0.0 && p.effective <= p.available as f64);
        let json = p.to_json();
        assert!(json.contains(r#""available":"#), "{json}");
        assert!(json.contains(r#""scaling_measurable":"#), "{json}");
    }

    #[test]
    fn worker_stats_account_idle_as_the_complement() {
        let w = WorkerStats {
            items: 3,
            busy_us: 40,
            wall_us: 100,
            work_allocs: 12,
            failed: 1,
            skipped: 2,
            retries: 4,
        };
        assert_eq!(w.idle_us(), 60);
        assert_eq!(
            w.to_json(),
            r#"{"items":3,"busy_us":40,"idle_us":60,"wall_us":100,"work_allocs":12,"failed":1,"skipped":2,"retries":4}"#
        );
    }
}
