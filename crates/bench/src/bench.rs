//! Continuous benchmark harness (std-only, no external harness crate).
//!
//! Two workloads, chosen to cover the two performance surfaces that
//! matter:
//!
//! * **Sweep bench** — replays the appendix-A trace × algorithm × disks
//!   grid through the normal sweep runner and reports cells per second:
//!   the end-to-end number a user doing parameter studies experiences.
//!   A *smoke* subset (three traces, every algorithm) runs in seconds
//!   and anchors the CI regression gate; the full grid additionally runs
//!   at 1, 2, and 4 worker threads to record thread scaling.
//! * **Engine bench** — replays one large synthetic stress trace (an
//!   oversized `synth`: many passes over a big sequential loop) through
//!   every policy with an event-counting probe attached, reporting
//!   simulated events per second: the inner-loop number that isolates
//!   the engine and policies from trace generation and the thread pool.
//!
//! Wall-clock timing uses [`std::time::Instant`]. Allocation counts are
//! reported when the embedding binary installs a counting global
//! allocator and passes a reader down ([`parcache-run`] does); the
//! library itself stays `forbid(unsafe_code)`.
//!
//! Regression checking is intentionally tolerant: CI fails only when the
//! smoke grid's cells/sec drops by more than [`REGRESSION_TOLERANCE`]
//! (25%) against the committed baseline. Single-core runners, noisy
//! neighbours, and debug-adjacent codegen differences produce swings in
//! the 10–20% range; a genuine hot-path regression shows up far larger.

use crate::prof::{detect_parallelism, EffectiveParallelism};
use crate::sweep::{self, SweepSpec};
use crate::Algo;
use parcache_core::engine::simulate_probed;
use parcache_core::metrics::json_escape;
use parcache_core::policy::PolicyKind;
use parcache_core::probe::{Event, Probe};
use parcache_core::SimConfig;
use parcache_disk::FaultPlan;
use std::time::Instant;

/// Thread counts the full sweep bench records scaling for.
pub const SCALING_THREADS: [usize; 3] = [1, 2, 4];

/// Relative cells/sec drop versus the baseline that fails the CI gate.
/// 25%: big enough to ignore scheduler noise on shared single-core
/// runners, small enough to catch any real hot-path regression.
pub const REGRESSION_TOLERANCE: f64 = 0.25;

/// Traces of the smoke subset: small, fast, and together exercising
/// every algorithm including the 8-configuration tuned-reverse search.
pub const SMOKE_TRACES: [&str; 3] = ["dinero", "cscope1", "ld"];

/// Stress-trace shape for the engine bench: passes over a sequential
/// loop, sized well past any trace in the paper's suite.
pub const STRESS_PASSES: usize = 60;
/// Blocks in the stress trace's loop.
pub const STRESS_LOOP_BLOCKS: usize = 4000;
/// Disks the stress trace is striped over.
pub const STRESS_DISKS: usize = 4;

/// One timed stage: how many units of work in how long.
#[derive(Debug, Clone, Copy)]
pub struct Stage {
    /// Work units completed (cells or simulated events).
    pub units: u64,
    /// Wall-clock seconds for the stage.
    pub wall_secs: f64,
    /// Heap allocations during the stage, when countable.
    pub allocations: Option<u64>,
}

impl Stage {
    /// Work units per wall-clock second.
    pub fn per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.units as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// Results of the sweep bench.
#[derive(Debug)]
pub struct SweepBench {
    /// What the environment can actually run in parallel. Recorded with
    /// every bench document so scaling rows are interpretable: on an
    /// effectively single-core container multi-thread numbers measure
    /// timeslicing, not scaling.
    pub parallelism: EffectiveParallelism,
    /// The smoke subset (always present; the CI gate keys off this).
    pub smoke: Stage,
    /// Full appendix-A grid per thread count (empty in smoke-only mode;
    /// only the single-thread row when scaling is not measurable here).
    pub scaling: Vec<(usize, Stage)>,
}

/// Results of the engine bench: one entry per policy.
#[derive(Debug)]
pub struct EngineBench {
    /// Requests in the stress trace.
    pub requests: usize,
    /// Per-policy stages, in [`PolicyKind::ALL`] order.
    pub runs: Vec<(&'static str, Stage)>,
}

/// Reads the current allocation count, when a counting allocator is
/// installed by the embedding binary.
pub type AllocReader<'a> = Option<&'a dyn Fn() -> u64>;

fn timed<R>(alloc: AllocReader<'_>, f: impl FnOnce() -> R) -> (R, f64, Option<u64>) {
    let before = alloc.map(|a| a());
    let start = Instant::now();
    let r = f();
    let secs = start.elapsed().as_secs_f64();
    let allocs = match (before, alloc) {
        (Some(b), Some(a)) => Some(a().saturating_sub(b)),
        _ => None,
    };
    (r, secs, allocs)
}

/// The smoke subset: [`SMOKE_TRACES`] × every appendix-A algorithm at
/// each trace's published disk counts.
pub fn smoke_spec(threads: usize) -> SweepSpec {
    SweepSpec::named(&SMOKE_TRACES, &Algo::APPENDIX_A, None, threads)
}

/// Runs the sweep bench. With `full`, also replays the complete
/// appendix-A grid at every [`SCALING_THREADS`] count.
pub fn run_sweep_bench(full: bool, alloc: AllocReader<'_>) -> SweepBench {
    let parallelism = detect_parallelism();
    let faults = FaultPlan::default();
    let spec = smoke_spec(1);
    let cells = spec.cells();
    let n = cells.len() as u64;
    let (_, wall, allocs) = timed(alloc, || {
        sweep::run_sweep_cells(&cells, 1, false, &faults);
    });
    let smoke = Stage {
        units: n,
        wall_secs: wall,
        allocations: allocs,
    };

    let mut scaling = Vec::new();
    if full {
        // On an effectively single-core machine the multi-thread rows
        // would record timeslicing overhead as negative scaling; run
        // only the single-thread row and let the recorded parallelism
        // say why.
        let thread_counts: &[usize] = if parallelism.scaling_measurable() {
            &SCALING_THREADS
        } else {
            &SCALING_THREADS[..1]
        };
        for &threads in thread_counts {
            let spec = SweepSpec::appendix_a(threads);
            let cells = spec.cells();
            let n = cells.len() as u64;
            let (_, wall, allocs) = timed(alloc, || {
                sweep::run_sweep_cells(&cells, threads, false, &faults);
            });
            scaling.push((
                threads,
                Stage {
                    units: n,
                    wall_secs: wall,
                    allocations: allocs,
                },
            ));
        }
    }
    SweepBench {
        parallelism,
        smoke,
        scaling,
    }
}

/// Event-counting probe: one `u64` bump per simulation event.
struct CountProbe {
    events: u64,
}

impl Probe for CountProbe {
    fn on_event(&mut self, _event: &Event) {
        self.events += 1;
    }
}

/// Runs the engine bench: the synthetic stress trace through every
/// policy with an event-counting probe.
pub fn run_engine_bench(alloc: AllocReader<'_>) -> EngineBench {
    let t = parcache_trace::synth::synth_trace(STRESS_PASSES, STRESS_LOOP_BLOCKS, crate::SEED);
    let cfg = SimConfig::for_trace(STRESS_DISKS, &t);
    let mut runs = Vec::new();
    for kind in PolicyKind::ALL {
        let mut probe = CountProbe { events: 0 };
        let (_, wall, allocs) = timed(alloc, || {
            simulate_probed(&t, kind, &cfg, &mut probe);
        });
        runs.push((
            kind.name(),
            Stage {
                units: probe.events,
                wall_secs: wall,
                allocations: allocs,
            },
        ));
    }
    EngineBench {
        requests: t.requests.len(),
        runs,
    }
}

fn stage_json(s: &Stage, unit: &str) -> String {
    let allocs = match s.allocations {
        Some(a) => a.to_string(),
        None => "null".to_string(),
    };
    format!(
        r#"{{"{unit}":{},"wall_secs":{:.3},"{unit}_per_sec":{:.1},"allocations":{allocs}}}"#,
        s.units,
        s.wall_secs,
        s.per_sec(),
    )
}

/// Serializes a [`SweepBench`] as the `BENCH_sweep.json` document.
pub fn sweep_bench_json(b: &SweepBench) -> String {
    let scaling: Vec<String> = b
        .scaling
        .iter()
        .map(|(threads, s)| format!(r#"{{"threads":{threads},{}"#, &stage_json(s, "cells")[1..]))
        .collect();
    // `parallelism` sits before `smoke`: `baseline_smoke_cells_per_sec`
    // is positional (split on the `"smoke"` key), so new fields must not
    // appear after it.
    format!(
        "{{\"schema\":\"parcache-bench-sweep-v1\",\"grid\":\"appendix-a\",\
         \"parallelism\":{},\"smoke_traces\":[{}],\"smoke\":{},\"scaling\":[{}]}}",
        b.parallelism.to_json(),
        SMOKE_TRACES
            .iter()
            .map(|t| format!("\"{}\"", json_escape(t)))
            .collect::<Vec<_>>()
            .join(","),
        stage_json(&b.smoke, "cells"),
        scaling.join(",")
    )
}

/// Serializes an [`EngineBench`] as the `BENCH_engine.json` document.
pub fn engine_bench_json(b: &EngineBench) -> String {
    let runs: Vec<String> = b
        .runs
        .iter()
        .map(|(name, s)| {
            format!(
                r#"{{"policy":"{}",{}"#,
                json_escape(name),
                &stage_json(s, "events")[1..]
            )
        })
        .collect();
    format!(
        "{{\"schema\":\"parcache-bench-engine-v1\",\"trace\":\"synth-stress\",\
         \"passes\":{},\"loop_blocks\":{},\"disks\":{},\"requests\":{},\"runs\":[{}]}}",
        STRESS_PASSES,
        STRESS_LOOP_BLOCKS,
        STRESS_DISKS,
        b.requests,
        runs.join(",")
    )
}

/// Pulls `"cells_per_sec":<number>` out of the `"smoke"` object of a
/// `BENCH_sweep.json` document. Deliberately minimal: it parses only the
/// documents this module writes.
pub fn baseline_smoke_cells_per_sec(json: &str) -> Option<f64> {
    let smoke = json.split("\"smoke\":").nth(1)?;
    let field = smoke.split("\"cells_per_sec\":").nth(1)?;
    let end = field
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(field.len());
    field[..end].parse().ok()
}

/// Compares a fresh smoke measurement against a committed baseline
/// document. `Ok` carries a human-readable verdict; `Err` means the
/// measurement regressed beyond [`REGRESSION_TOLERANCE`].
pub fn check_regression(current: &Stage, baseline_json: &str) -> Result<String, String> {
    let Some(base) = baseline_smoke_cells_per_sec(baseline_json) else {
        return Err("baseline JSON has no smoke cells_per_sec field".to_string());
    };
    let cur = current.per_sec();
    if base <= 0.0 {
        return Ok(format!(
            "baseline {base:.1} cells/sec is not positive; skipping gate"
        ));
    }
    let ratio = cur / base;
    let verdict = format!(
        "smoke: {cur:.1} cells/sec vs baseline {base:.1} ({:+.1}%)",
        (ratio - 1.0) * 100.0
    );
    if ratio < 1.0 - REGRESSION_TOLERANCE {
        Err(format!(
            "{verdict} — exceeds the {:.0}% regression tolerance",
            REGRESSION_TOLERANCE * 100.0
        ))
    } else {
        Ok(verdict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_spec_covers_all_algorithms() {
        let spec = smoke_spec(1);
        let cells = spec.cells();
        assert!(!cells.is_empty());
        for algo in Algo::APPENDIX_A {
            assert!(
                cells.iter().any(|c| c.algo == algo),
                "{} missing from smoke grid",
                algo.name()
            );
        }
    }

    #[test]
    fn stage_math() {
        let s = Stage {
            units: 100,
            wall_secs: 2.0,
            allocations: None,
        };
        assert_eq!(s.per_sec(), 50.0);
        let z = Stage {
            units: 5,
            wall_secs: 0.0,
            allocations: None,
        };
        assert_eq!(z.per_sec(), 0.0);
    }

    #[test]
    fn json_round_trips_cells_per_sec() {
        let b = SweepBench {
            parallelism: EffectiveParallelism {
                available: 4,
                cgroup_quota: Some(1.5),
                effective: 1.5,
            },
            smoke: Stage {
                units: 42,
                wall_secs: 0.5,
                allocations: Some(1234),
            },
            scaling: vec![(
                1,
                Stage {
                    units: 332,
                    wall_secs: 10.0,
                    allocations: None,
                },
            )],
        };
        let json = sweep_bench_json(&b);
        // The positional smoke parser must survive the parallelism
        // object that now precedes the "smoke" key.
        assert_eq!(baseline_smoke_cells_per_sec(&json), Some(84.0));
        assert!(json.contains("\"threads\":1"));
        assert!(json.contains("\"allocations\":1234"));
        assert!(json.contains("\"allocations\":null"));
        assert!(json.contains("\"parallelism\":{\"available\":4"), "{json}");
        assert!(json.contains("\"scaling_measurable\":false"), "{json}");
    }

    #[test]
    fn regression_gate_triggers_only_past_tolerance() {
        let base = SweepBench {
            parallelism: detect_parallelism(),
            smoke: Stage {
                units: 100,
                wall_secs: 1.0,
                allocations: None,
            },
            scaling: Vec::new(),
        };
        let json = sweep_bench_json(&base);
        let ok = Stage {
            units: 80,
            wall_secs: 1.0,
            allocations: None,
        }; // -20%: inside tolerance
        assert!(check_regression(&ok, &json).is_ok());
        let bad = Stage {
            units: 70,
            wall_secs: 1.0,
            allocations: None,
        }; // -30%: outside
        assert!(check_regression(&bad, &json).is_err());
        let better = Stage {
            units: 200,
            wall_secs: 1.0,
            allocations: None,
        };
        assert!(check_regression(&better, &json).is_ok());
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        let s = Stage {
            units: 1,
            wall_secs: 1.0,
            allocations: None,
        };
        assert!(check_regression(&s, "{}").is_err());
        assert!(check_regression(&s, "not json at all").is_err());
    }

    #[test]
    fn engine_bench_counts_events() {
        // A miniature version of the stress run: the probe must see at
        // least one event per request.
        let t = parcache_trace::synth::synth_trace(2, 50, crate::SEED);
        let cfg = SimConfig::for_trace(2, &t);
        let mut probe = CountProbe { events: 0 };
        simulate_probed(&t, PolicyKind::Demand, &cfg, &mut probe);
        assert!(probe.events >= t.requests.len() as u64);
    }
}
