//! Continuous benchmark harness (std-only, no external harness crate).
//!
//! Two workloads, chosen to cover the two performance surfaces that
//! matter:
//!
//! * **Sweep bench** — replays the appendix-A trace × algorithm × disks
//!   grid through the normal sweep runner and reports cells per second:
//!   the end-to-end number a user doing parameter studies experiences.
//!   A *smoke* subset (three traces, every algorithm) runs in seconds
//!   and anchors the CI regression gate; the full grid additionally runs
//!   at 1, 2, and 4 worker threads to record thread scaling.
//! * **Engine bench** — replays one large synthetic stress trace (an
//!   oversized `synth`: many passes over a big sequential loop) through
//!   every policy with an event-counting probe attached, reporting
//!   simulated events per second: the inner-loop number that isolates
//!   the engine and policies from trace generation and the thread pool.
//!
//! Wall-clock timing uses [`std::time::Instant`]. Allocation counts are
//! reported when the embedding binary installs a counting global
//! allocator and passes a reader down ([`parcache-run`] does); the
//! library itself stays `forbid(unsafe_code)`.
//!
//! Regression checking is intentionally tolerant: CI fails only when the
//! smoke grid's cells/sec drops by more than [`REGRESSION_TOLERANCE`]
//! (25%) against the committed baseline. Single-core runners, noisy
//! neighbours, and debug-adjacent codegen differences produce swings in
//! the 10–20% range; a genuine hot-path regression shows up far larger.
//!
//! A second gate watches *scaling*: on machines with at least two
//! effective cores, cells/sec at [`SCALING_GATE_THREADS`] threads must
//! reach [`SCALING_EFFICIENCY_FLOOR`] of perfect linear scaling over the
//! 1-thread rate ([`check_scaling`]). Effectively single-core
//! environments skip with an explicit note instead of timing the
//! scheduler.

use crate::prof::{detect_parallelism, EffectiveParallelism};
use crate::sweep::{self, SweepCell, SweepSpec, ThreadAllocSampler};
use crate::Algo;
use parcache_core::engine::simulate_probed;
use parcache_core::metrics::json_escape;
use parcache_core::policy::PolicyKind;
use parcache_core::probe::{Event, Probe};
use parcache_core::SimConfig;
use parcache_disk::FaultPlan;
use std::time::{Duration, Instant};

/// Thread counts the full sweep bench records scaling for.
pub const SCALING_THREADS: [usize; 3] = [1, 2, 4];

/// The thread count the scaling-efficiency gate measures at.
pub const SCALING_GATE_THREADS: usize = 2;

/// Relative cells/sec drop versus the baseline that fails the CI gate.
/// 25%: big enough to ignore scheduler noise on shared single-core
/// runners, small enough to catch any real hot-path regression.
pub const REGRESSION_TOLERANCE: f64 = 0.25;

/// Minimum acceptable scaling efficiency at [`SCALING_GATE_THREADS`]
/// threads — cells/sec at N threads ÷ (N × cells/sec at 1 thread) — on
/// machines whose detected effective parallelism is ≥ 2. Two workers on
/// two real cores should come close to 1.0; the committed sweep once
/// scored *negative* scaling (0.39 at 2 threads), so the floor sits
/// well above any contention regression while leaving room for shared
/// runners.
pub const SCALING_EFFICIENCY_FLOOR: f64 = 0.75;

/// Traces of the smoke subset: small, fast, and together exercising
/// every algorithm including the 8-configuration tuned-reverse search.
pub const SMOKE_TRACES: [&str; 3] = ["dinero", "cscope1", "ld"];

/// Per-policy allocation ceiling for one engine-bench run. Every policy
/// sits near ~130 steady-state allocations; reverse-aggressive once
/// carried ~19k from a heap-allocated queue per scheduled block. The
/// ceiling is machine-independent (allocation counts are deterministic),
/// so it is enforced whenever a counting allocator is installed.
pub const ENGINE_ALLOC_CEILING: u64 = 1_000;

/// Ceiling on how many times slower than demand paging the forestall
/// policy may simulate. Wall-clock rates vary machine to machine, but
/// the *gap between policies on the same machine* is a property of the
/// code: forestall's stall predictor was a full window rescan per
/// decision (10.9x slower than demand) before it became incremental.
pub const ENGINE_FORESTALL_DEMAND_RATIO: f64 = 4.0;

/// Stress-trace shape for the engine bench: passes over a sequential
/// loop, sized well past any trace in the paper's suite.
pub const STRESS_PASSES: usize = 60;
/// Blocks in the stress trace's loop.
pub const STRESS_LOOP_BLOCKS: usize = 4000;
/// Disks the stress trace is striped over.
pub const STRESS_DISKS: usize = 4;

/// One timed stage: how many units of work in how long.
#[derive(Debug, Clone, Copy)]
pub struct Stage {
    /// Work units completed (cells or simulated events).
    pub units: u64,
    /// Wall-clock time for the stage at full [`Instant`] resolution.
    /// Rates derive from this unrounded duration; rounding happens only
    /// at the JSON/display edge.
    pub wall: Duration,
    /// Heap allocations attributable to the work itself, when countable.
    /// For sweep stages this is the sum of per-cell counts sampled on
    /// the worker threads — a pure function of the cell set, identical
    /// at any `--threads`. For engine stages (single-threaded) it is the
    /// process-wide delta.
    pub allocations: Option<u64>,
    /// Allocations the harness spent *around* the work (process-wide
    /// delta minus [`Stage::allocations`]): queue bookkeeping, result
    /// collection, output assembly. Thread-count-dependent by nature, so
    /// kept out of the comparable number.
    pub harness_allocations: Option<u64>,
}

impl Stage {
    /// Work units per wall-clock second, from the unrounded duration.
    pub fn per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.units as f64 / secs
        } else {
            0.0
        }
    }
}

/// Results of the sweep bench.
#[derive(Debug)]
pub struct SweepBench {
    /// What the environment can actually run in parallel. Recorded with
    /// every bench document so scaling rows are interpretable: on an
    /// effectively single-core container multi-thread numbers measure
    /// timeslicing, not scaling.
    pub parallelism: EffectiveParallelism,
    /// The smoke subset at one thread (always present; the CI regression
    /// gate keys off this).
    pub smoke: Stage,
    /// The smoke subset re-run at [`SCALING_GATE_THREADS`] threads —
    /// the cheap input to the scaling-efficiency gate, recorded in
    /// smoke-only mode on machines where scaling is measurable.
    pub smoke_scaling: Option<Stage>,
    /// Full appendix-A grid per thread count (empty in smoke-only mode;
    /// only the single-thread row when scaling is not measurable here).
    pub scaling: Vec<(usize, Stage)>,
}

impl SweepBench {
    /// Scaling efficiency of the full grid at `threads`: cells/sec at
    /// `threads` ÷ (`threads` × cells/sec at one thread). 1.0 is
    /// perfect scaling; the 1-thread row scores exactly 1.0.
    pub fn scaling_efficiency(&self, threads: usize) -> Option<f64> {
        let base = self.scaling.iter().find(|(t, _)| *t == 1)?.1;
        let row = self.scaling.iter().find(|(t, _)| *t == threads)?.1;
        efficiency(&base, threads, &row)
    }

    /// Scaling efficiency of the smoke grid at [`SCALING_GATE_THREADS`],
    /// when the re-run was recorded.
    pub fn smoke_efficiency(&self) -> Option<f64> {
        let s = self.smoke_scaling.as_ref()?;
        efficiency(&self.smoke, SCALING_GATE_THREADS, s)
    }
}

/// Rate at `threads` ÷ (`threads` × rate at one thread).
fn efficiency(base: &Stage, threads: usize, at_n: &Stage) -> Option<f64> {
    let denom = threads as f64 * base.per_sec();
    (denom > 0.0).then(|| at_n.per_sec() / denom)
}

/// Results of the engine bench: one entry per policy.
#[derive(Debug)]
pub struct EngineBench {
    /// Requests in the stress trace.
    pub requests: usize,
    /// Per-policy stages, in [`PolicyKind::ALL`] order.
    pub runs: Vec<(&'static str, Stage)>,
}

/// Reads the current allocation count, when a counting allocator is
/// installed by the embedding binary.
pub type AllocReader<'a> = Option<&'a dyn Fn() -> u64>;

fn timed<R>(alloc: AllocReader<'_>, f: impl FnOnce() -> R) -> (R, Duration, Option<u64>) {
    let before = alloc.map(|a| a());
    let start = Instant::now();
    let r = f();
    let wall = start.elapsed();
    let allocs = match (before, alloc) {
        (Some(b), Some(a)) => Some(a().saturating_sub(b)),
        _ => None,
    };
    (r, wall, allocs)
}

/// The smoke subset: [`SMOKE_TRACES`] × every appendix-A algorithm at
/// each trace's published disk counts.
pub fn smoke_spec(threads: usize) -> SweepSpec {
    SweepSpec::named(&SMOKE_TRACES, &Algo::APPENDIX_A, None, threads)
}

/// Runs the sweep bench. With `full`, also replays the complete
/// appendix-A grid at every [`SCALING_THREADS`] count.
///
/// `thread_alloc` reads the *calling thread's* allocation count (the
/// thread-local counter of the embedding binary's counting allocator);
/// when provided, every stage's comparable `allocations` figure is the
/// sum of per-cell counts sampled on the worker threads, which is
/// identical at any thread count.
pub fn run_sweep_bench(
    full: bool,
    alloc: AllocReader<'_>,
    thread_alloc: ThreadAllocSampler,
) -> SweepBench {
    let parallelism = detect_parallelism();
    let faults = FaultPlan::default();
    // Traces are generated and grids expanded before any clock starts:
    // the first timed region used to pay for generating every trace in
    // its grid, inflating the smoke row and charging the scaling table's
    // whole generation cost to the 1-thread row.
    let smoke_cells = smoke_spec(sweep::default_threads()).cells();
    let smoke = timed_cells(&smoke_cells, 1, &faults, alloc, thread_alloc);

    let mut scaling = Vec::new();
    if full {
        // On an effectively single-core machine the multi-thread rows
        // would record timeslicing overhead as negative scaling; run
        // only the single-thread row and let the recorded parallelism
        // say why.
        let thread_counts: &[usize] = if parallelism.scaling_measurable() {
            &SCALING_THREADS
        } else {
            &SCALING_THREADS[..1]
        };
        let cells = SweepSpec::appendix_a(sweep::default_threads()).cells();
        for &threads in thread_counts {
            scaling.push((
                threads,
                timed_cells(&cells, threads, &faults, alloc, thread_alloc),
            ));
        }
    }
    // The efficiency gate needs a measurement at SCALING_GATE_THREADS;
    // in smoke-only mode on a multi-core machine, re-run the smoke
    // subset there (seconds, not minutes).
    let smoke_scaling = (parallelism.scaling_measurable() && scaling.is_empty()).then(|| {
        timed_cells(
            &smoke_cells,
            SCALING_GATE_THREADS,
            &faults,
            alloc,
            thread_alloc,
        )
    });
    SweepBench {
        parallelism,
        smoke,
        smoke_scaling,
        scaling,
    }
}

/// Times one sweep over `cells` at `threads` workers, splitting the
/// allocation count into the comparable per-cell work figure and the
/// thread-count-dependent harness overhead.
fn timed_cells(
    cells: &[SweepCell],
    threads: usize,
    faults: &FaultPlan,
    alloc: AllocReader<'_>,
    thread_alloc: ThreadAllocSampler,
) -> Stage {
    let ((_, workers), wall, total) = timed(alloc, || {
        sweep::run_sweep_cells_profiled(cells, threads, false, faults, thread_alloc)
    });
    let work: Option<u64> = thread_alloc
        .is_some()
        .then(|| workers.iter().map(|w| w.work_allocs).sum());
    let harness = match (total, work) {
        (Some(t), Some(w)) => Some(t.saturating_sub(w)),
        _ => None,
    };
    Stage {
        units: cells.len() as u64,
        wall,
        // Without a per-thread sampler, fall back to the process-wide
        // delta rather than reporting nothing.
        allocations: work.or(total),
        harness_allocations: harness,
    }
}

/// Event-counting probe: one `u64` bump per simulation event.
struct CountProbe {
    events: u64,
}

impl Probe for CountProbe {
    fn on_event(&mut self, _event: &Event) {
        self.events += 1;
    }
}

/// Runs the engine bench: the synthetic stress trace through every
/// policy with an event-counting probe.
pub fn run_engine_bench(alloc: AllocReader<'_>) -> EngineBench {
    let t = parcache_trace::synth::synth_trace(STRESS_PASSES, STRESS_LOOP_BLOCKS, crate::SEED);
    let cfg = SimConfig::for_trace(STRESS_DISKS, &t);
    let mut runs = Vec::new();
    for kind in PolicyKind::ALL {
        let mut probe = CountProbe { events: 0 };
        let (_, wall, allocs) = timed(alloc, || {
            simulate_probed(&t, kind, &cfg, &mut probe);
        });
        runs.push((
            kind.name(),
            Stage {
                units: probe.events,
                wall,
                allocations: allocs,
                // Engine stages run single-threaded with nothing around
                // the simulate call; there is no separate harness share.
                // The engine schema (v2) carries no such field.
                harness_allocations: None,
            },
        ));
    }
    EngineBench {
        requests: t.requests.len(),
        runs,
    }
}

fn stage_json(s: &Stage, unit: &str) -> String {
    let allocs = match s.allocations {
        Some(a) => a.to_string(),
        None => "null".to_string(),
    };
    let harness = match s.harness_allocations {
        Some(a) => a.to_string(),
        None => "null".to_string(),
    };
    // `wall_secs` is rounded for display only; `{unit}_per_sec` comes
    // from the unrounded nanoseconds via `Stage::per_sec`.
    format!(
        r#"{{"{unit}":{},"wall_secs":{:.3},"{unit}_per_sec":{:.3},"allocations":{allocs},"harness_allocations":{harness}}}"#,
        s.units,
        s.wall.as_secs_f64(),
        s.per_sec(),
    )
}

fn opt_f64(v: Option<f64>) -> String {
    match v {
        Some(e) => format!("{e:.3}"),
        None => "null".to_string(),
    }
}

/// Serializes a [`SweepBench`] as the `BENCH_sweep.json` document.
pub fn sweep_bench_json(b: &SweepBench) -> String {
    let scaling: Vec<String> = b
        .scaling
        .iter()
        .map(|(threads, s)| {
            format!(
                r#"{{"threads":{threads},"efficiency":{},{}"#,
                opt_f64(b.scaling_efficiency(*threads)),
                &stage_json(s, "cells")[1..]
            )
        })
        .collect();
    let smoke_scaling = match &b.smoke_scaling {
        Some(s) => format!(
            r#"{{"threads":{SCALING_GATE_THREADS},"efficiency":{},{}"#,
            opt_f64(b.smoke_efficiency()),
            &stage_json(s, "cells")[1..]
        ),
        None => "null".to_string(),
    };
    // `parallelism` sits before `smoke`: `baseline_smoke_cells_per_sec`
    // is positional (split on the `"smoke"` key), so new fields must not
    // appear after it. (`smoke_scaling` and `smoke_traces` are safe: the
    // split pattern is the quoted key `"smoke":`, which matches neither.)
    format!(
        "{{\"schema\":\"parcache-bench-sweep-v2\",\"grid\":\"appendix-a\",\
         \"parallelism\":{},\"smoke_traces\":[{}],\"smoke\":{},\
         \"smoke_scaling\":{},\"scaling\":[{}]}}",
        b.parallelism.to_json(),
        SMOKE_TRACES
            .iter()
            .map(|t| format!("\"{}\"", json_escape(t)))
            .collect::<Vec<_>>()
            .join(","),
        stage_json(&b.smoke, "cells"),
        smoke_scaling,
        scaling.join(",")
    )
}

/// Serializes an [`EngineBench`] as the `BENCH_engine.json` document
/// (schema v2).
///
/// v2 drops v1's `harness_allocations` field, which was `null` on every
/// row: engine stages are single-threaded with nothing around the
/// simulate call, so there is no harness share to split out, and a
/// permanently-null column invites a downstream parser to key on it.
pub fn engine_bench_json(b: &EngineBench) -> String {
    let runs: Vec<String> = b
        .runs
        .iter()
        .map(|(name, s)| {
            let allocs = match s.allocations {
                Some(a) => a.to_string(),
                None => "null".to_string(),
            };
            // Field order is a compatibility surface:
            // `baseline_engine_events_per_sec` splits on `"policy":"…"`
            // then takes the next `"events_per_sec":`, so the rate must
            // stay inside its policy's row.
            format!(
                r#"{{"policy":"{}","events":{},"wall_secs":{:.3},"events_per_sec":{:.3},"allocations":{allocs}}}"#,
                json_escape(name),
                s.units,
                s.wall.as_secs_f64(),
                s.per_sec(),
            )
        })
        .collect();
    format!(
        "{{\"schema\":\"parcache-bench-engine-v2\",\"trace\":\"synth-stress\",\
         \"passes\":{},\"loop_blocks\":{},\"disks\":{},\"requests\":{},\"runs\":[{}]}}",
        STRESS_PASSES,
        STRESS_LOOP_BLOCKS,
        STRESS_DISKS,
        b.requests,
        runs.join(",")
    )
}

/// Pulls `"cells_per_sec":<number>` out of the `"smoke"` object of a
/// `BENCH_sweep.json` document. Deliberately minimal: it parses only the
/// documents this module writes.
pub fn baseline_smoke_cells_per_sec(json: &str) -> Option<f64> {
    let smoke = json.split("\"smoke\":").nth(1)?;
    let field = smoke.split("\"cells_per_sec\":").nth(1)?;
    let end = field
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(field.len());
    field[..end].parse().ok()
}

/// Compares a fresh smoke measurement against a committed baseline
/// document. `Ok` carries a human-readable verdict; `Err` means the
/// measurement regressed beyond [`REGRESSION_TOLERANCE`].
pub fn check_regression(current: &Stage, baseline_json: &str) -> Result<String, String> {
    let Some(base) = baseline_smoke_cells_per_sec(baseline_json) else {
        return Err("baseline JSON has no smoke cells_per_sec field".to_string());
    };
    let cur = current.per_sec();
    if base <= 0.0 {
        return Ok(format!(
            "baseline {base:.1} cells/sec is not positive; skipping gate"
        ));
    }
    let ratio = cur / base;
    let verdict = format!(
        "smoke: {cur:.1} cells/sec vs baseline {base:.1} ({:+.1}%)",
        (ratio - 1.0) * 100.0
    );
    if ratio < 1.0 - REGRESSION_TOLERANCE {
        Err(format!(
            "{verdict} — exceeds the {:.0}% regression tolerance",
            REGRESSION_TOLERANCE * 100.0
        ))
    } else {
        Ok(verdict)
    }
}

/// Pulls `"events_per_sec":<number>` for one policy's row out of a
/// `BENCH_engine.json` document (v1 or v2 — the row shape it relies on
/// is shared). Positional, like [`baseline_smoke_cells_per_sec`]: it
/// parses only the documents this module writes. The quoted
/// `"policy":"name"` pattern cannot match inside another policy's name
/// (`aggressive` never matches `reverse-aggressive`'s row: the leading
/// quote anchors the full name).
pub fn baseline_engine_events_per_sec(json: &str, policy: &str) -> Option<f64> {
    let row = json
        .split(&format!("\"policy\":\"{}\"", json_escape(policy)))
        .nth(1)?;
    let field = row.split("\"events_per_sec\":").nth(1)?;
    let end = field
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(field.len());
    field[..end].parse().ok()
}

/// Applies the per-policy engine gates to a fresh engine bench against a
/// committed `BENCH_engine.json` baseline.
///
/// Three gates, `Err` on any violation (all violations are reported):
///
/// * **Throughput floor** — each policy's events/sec must stay within
///   [`REGRESSION_TOLERANCE`] of its own baseline row. A policy missing
///   from the baseline is an error: a silently unguarded policy is how
///   the forestall gap went unnoticed.
/// * **Allocation ceiling** — each policy's allocation count (when a
///   counting allocator is installed) must stay under
///   [`ENGINE_ALLOC_CEILING`]. Deterministic, so no tolerance.
/// * **Relative gap** — forestall's rate must stay within
///   [`ENGINE_FORESTALL_DEMAND_RATIO`] of demand's *from the same run*,
///   which holds even when the machine differs from the baseline's.
pub fn check_engine(b: &EngineBench, baseline_json: &str) -> Result<String, String> {
    let mut lines = Vec::new();
    let mut errors = Vec::new();
    let mut demand_rate = None;
    let mut forestall_rate = None;
    for (name, s) in &b.runs {
        let cur = s.per_sec();
        match *name {
            "demand" => demand_rate = Some(cur),
            "forestall" => forestall_rate = Some(cur),
            _ => {}
        }
        match baseline_engine_events_per_sec(baseline_json, name) {
            Some(base) if base > 0.0 => {
                let ratio = cur / base;
                let verdict = format!(
                    "engine {name}: {cur:.0} events/sec vs baseline {base:.0} ({:+.1}%)",
                    (ratio - 1.0) * 100.0
                );
                if ratio < 1.0 - REGRESSION_TOLERANCE {
                    errors.push(format!(
                        "{verdict} — exceeds the {:.0}% regression tolerance",
                        REGRESSION_TOLERANCE * 100.0
                    ));
                } else {
                    lines.push(verdict);
                }
            }
            _ => errors.push(format!(
                "baseline JSON has no positive events_per_sec for policy {name}"
            )),
        }
        if let Some(a) = s.allocations {
            if a > ENGINE_ALLOC_CEILING {
                errors.push(format!(
                    "engine {name}: {a} allocations exceed the {ENGINE_ALLOC_CEILING} ceiling"
                ));
            }
        }
    }
    if let (Some(d), Some(f)) = (demand_rate, forestall_rate) {
        if f > 0.0 {
            let gap = d / f;
            let verdict = format!(
                "engine forestall/demand gap: {gap:.2}x (ceiling {ENGINE_FORESTALL_DEMAND_RATIO:.1}x)"
            );
            if gap > ENGINE_FORESTALL_DEMAND_RATIO {
                errors.push(format!("{verdict} — forestall fell out of its band"));
            } else {
                lines.push(verdict);
            }
        }
    }
    if errors.is_empty() {
        Ok(lines.join("\n"))
    } else {
        Err(errors.join("\n"))
    }
}

/// Applies the scaling-efficiency gate to a sweep bench.
///
/// `Ok` carries a human-readable verdict — including an explicit
/// skip-with-note on machines whose effective parallelism is below 2,
/// where a multi-thread run would time the scheduler, not the harness.
/// `Err` means efficiency at [`SCALING_GATE_THREADS`] threads fell
/// below [`SCALING_EFFICIENCY_FLOOR`]. The full grid's measurement is
/// preferred; the smoke re-run is the fallback in smoke-only mode.
pub fn check_scaling(b: &SweepBench) -> Result<String, String> {
    if !b.parallelism.scaling_measurable() {
        return Ok(format!(
            "scaling gate skipped: effective parallelism {:.2} < 2 \
             (multi-thread timing here would measure timeslicing)",
            b.parallelism.effective
        ));
    }
    let (source, eff) = if let Some(e) = b.scaling_efficiency(SCALING_GATE_THREADS) {
        ("full grid", e)
    } else if let Some(e) = b.smoke_efficiency() {
        ("smoke grid", e)
    } else {
        return Err(format!(
            "scaling gate: no {SCALING_GATE_THREADS}-thread measurement to judge"
        ));
    };
    let verdict = format!(
        "scaling: {source} efficiency {eff:.3} at {SCALING_GATE_THREADS} threads \
         (floor {SCALING_EFFICIENCY_FLOOR:.2})"
    );
    if eff < SCALING_EFFICIENCY_FLOOR {
        Err(format!("{verdict} — below the committed floor"))
    } else {
        Ok(verdict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A stage with the given units and wall milliseconds, no counters.
    fn stage(units: u64, millis: u64) -> Stage {
        Stage {
            units,
            wall: Duration::from_millis(millis),
            allocations: None,
            harness_allocations: None,
        }
    }

    fn multi_core() -> EffectiveParallelism {
        EffectiveParallelism {
            available: 4,
            cgroup_quota: None,
            effective: 4.0,
        }
    }

    #[test]
    fn smoke_spec_covers_all_algorithms() {
        let spec = smoke_spec(1);
        let cells = spec.cells();
        assert!(!cells.is_empty());
        for algo in Algo::APPENDIX_A {
            assert!(
                cells.iter().any(|c| c.algo == algo),
                "{} missing from smoke grid",
                algo.name()
            );
        }
    }

    #[test]
    fn stage_math() {
        assert_eq!(stage(100, 2000).per_sec(), 50.0);
        assert_eq!(stage(5, 0).per_sec(), 0.0);
    }

    #[test]
    fn per_sec_uses_unrounded_nanos() {
        // A sub-millisecond stage: had the rate been computed from the
        // 3-decimal `wall_secs` that lands in the JSON, this would be a
        // division by 0.000. The rate must come from the full-resolution
        // duration, with rounding confined to the display edge.
        let s = Stage {
            units: 10,
            wall: Duration::from_micros(400),
            allocations: None,
            harness_allocations: None,
        };
        assert_eq!(s.per_sec(), 25_000.0);
        let json = stage_json(&s, "cells");
        assert!(json.contains("\"wall_secs\":0.000"), "{json}");
        assert!(json.contains("\"cells_per_sec\":25000.000"), "{json}");
    }

    #[test]
    fn efficiency_math() {
        let b = SweepBench {
            parallelism: multi_core(),
            smoke: stage(100, 1000),              // 100 cells/sec
            smoke_scaling: Some(stage(100, 625)), // 160 cells/sec at 2 threads
            scaling: vec![(1, stage(332, 1000)), (2, stage(332, 550))],
        };
        let eff = b.scaling_efficiency(2).unwrap();
        assert!((eff - 1.0 / 0.55 / 2.0).abs() < 1e-9, "{eff}");
        assert!((b.scaling_efficiency(1).unwrap() - 1.0).abs() < 1e-9);
        assert_eq!(b.scaling_efficiency(4), None);
        assert!((b.smoke_efficiency().unwrap() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn json_round_trips_cells_per_sec() {
        let b = SweepBench {
            parallelism: EffectiveParallelism {
                available: 4,
                cgroup_quota: Some(1.5),
                effective: 1.5,
            },
            smoke: Stage {
                units: 42,
                wall: Duration::from_millis(500),
                allocations: Some(1234),
                harness_allocations: Some(56),
            },
            smoke_scaling: None,
            scaling: vec![(1, stage(332, 10_000))],
        };
        let json = sweep_bench_json(&b);
        // The positional smoke parser must survive the parallelism
        // object and the smoke_scaling key around the "smoke" key.
        assert_eq!(baseline_smoke_cells_per_sec(&json), Some(84.0));
        assert!(
            json.contains("\"schema\":\"parcache-bench-sweep-v2\""),
            "{json}"
        );
        assert!(
            json.contains("\"threads\":1,\"efficiency\":1.000"),
            "{json}"
        );
        assert!(json.contains("\"smoke_scaling\":null"), "{json}");
        assert!(json.contains("\"allocations\":1234"));
        assert!(json.contains("\"harness_allocations\":56"));
        assert!(json.contains("\"allocations\":null"));
        assert!(json.contains("\"parallelism\":{\"available\":4"), "{json}");
        assert!(json.contains("\"scaling_measurable\":false"), "{json}");
    }

    #[test]
    fn json_records_smoke_scaling_with_efficiency() {
        let b = SweepBench {
            parallelism: multi_core(),
            smoke: stage(100, 1000),
            smoke_scaling: Some(stage(100, 625)),
            scaling: Vec::new(),
        };
        let json = sweep_bench_json(&b);
        assert!(
            json.contains("\"smoke_scaling\":{\"threads\":2,\"efficiency\":0.800"),
            "{json}"
        );
        // The smoke re-run must not confuse the positional baseline
        // parser: the plain "smoke" object still wins.
        assert_eq!(baseline_smoke_cells_per_sec(&json), Some(100.0));
    }

    #[test]
    fn regression_gate_triggers_only_past_tolerance() {
        let base = SweepBench {
            parallelism: detect_parallelism(),
            smoke: stage(100, 1000),
            smoke_scaling: None,
            scaling: Vec::new(),
        };
        let json = sweep_bench_json(&base);
        let ok = stage(80, 1000); // -20%: inside tolerance
        assert!(check_regression(&ok, &json).is_ok());
        let bad = stage(70, 1000); // -30%: outside
        assert!(check_regression(&bad, &json).is_err());
        let better = stage(200, 1000);
        assert!(check_regression(&better, &json).is_ok());
    }

    #[test]
    fn scaling_gate_skips_below_two_effective_cores() {
        let b = SweepBench {
            parallelism: EffectiveParallelism {
                available: 1,
                cgroup_quota: None,
                effective: 1.0,
            },
            smoke: stage(100, 1000),
            smoke_scaling: None,
            scaling: vec![(1, stage(332, 1000))],
        };
        let note = check_scaling(&b).unwrap();
        assert!(note.contains("skipped"), "{note}");
    }

    #[test]
    fn scaling_gate_enforces_the_floor() {
        // Healthy scaling (0.909 at 2 threads) passes on the full grid.
        let good = SweepBench {
            parallelism: multi_core(),
            smoke: stage(100, 1000),
            smoke_scaling: None,
            scaling: vec![(1, stage(332, 1000)), (2, stage(332, 550))],
        };
        assert!(check_scaling(&good).unwrap().contains("full grid"));
        // The committed bug's shape — *slower* with two threads — fails.
        let inverse = SweepBench {
            parallelism: multi_core(),
            smoke: stage(100, 1000),
            smoke_scaling: None,
            scaling: vec![(1, stage(332, 1000)), (2, stage(332, 1800))],
        };
        let err = check_scaling(&inverse).unwrap_err();
        assert!(err.contains("below the committed floor"), "{err}");
        // Smoke-only mode falls back to the smoke re-run.
        let smoke_only = SweepBench {
            parallelism: multi_core(),
            smoke: stage(100, 1000),
            smoke_scaling: Some(stage(100, 625)),
            scaling: Vec::new(),
        };
        assert!(check_scaling(&smoke_only).unwrap().contains("smoke grid"));
        // Measurable machine but no 2-thread point at all: an error, not
        // a silent pass.
        let missing = SweepBench {
            parallelism: multi_core(),
            smoke: stage(100, 1000),
            smoke_scaling: None,
            scaling: Vec::new(),
        };
        assert!(check_scaling(&missing).is_err());
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        let s = stage(1, 1000);
        assert!(check_regression(&s, "{}").is_err());
        assert!(check_regression(&s, "not json at all").is_err());
    }

    /// An engine bench with the given (policy, events, millis, allocs)
    /// rows.
    fn engine(rows: &[(&'static str, u64, u64, Option<u64>)]) -> EngineBench {
        EngineBench {
            requests: 240_000,
            runs: rows
                .iter()
                .map(|&(name, units, millis, allocations)| {
                    (
                        name,
                        Stage {
                            units,
                            wall: Duration::from_millis(millis),
                            allocations,
                            harness_allocations: None,
                        },
                    )
                })
                .collect(),
        }
    }

    #[test]
    fn engine_json_is_v2_without_harness_allocations() {
        let b = engine(&[
            ("demand", 16_000, 1000, Some(111)),
            ("forestall", 8_000, 1000, None),
        ]);
        let json = engine_bench_json(&b);
        assert!(
            json.contains("\"schema\":\"parcache-bench-engine-v2\""),
            "{json}"
        );
        assert!(!json.contains("harness_allocations"), "{json}");
        assert!(json.contains("\"policy\":\"demand\",\"events\":16000"));
        assert!(json.contains("\"allocations\":111"));
        assert!(json.contains("\"allocations\":null"));
        assert_eq!(
            baseline_engine_events_per_sec(&json, "demand"),
            Some(16000.0)
        );
        assert_eq!(
            baseline_engine_events_per_sec(&json, "forestall"),
            Some(8000.0)
        );
        assert_eq!(baseline_engine_events_per_sec(&json, "aggressive"), None);
    }

    #[test]
    fn engine_baseline_parse_anchors_full_policy_names() {
        // "aggressive" must not match inside reverse-aggressive's row.
        let b = engine(&[
            ("aggressive", 7_000, 1000, Some(131)),
            ("reverse-aggressive", 5_000, 1000, Some(150)),
        ]);
        let json = engine_bench_json(&b);
        assert_eq!(
            baseline_engine_events_per_sec(&json, "aggressive"),
            Some(7000.0)
        );
        assert_eq!(
            baseline_engine_events_per_sec(&json, "reverse-aggressive"),
            Some(5000.0)
        );
    }

    #[test]
    fn engine_gate_enforces_per_policy_floors() {
        let base = engine(&[
            ("demand", 16_000, 1000, Some(111)),
            ("forestall", 8_000, 1000, Some(132)),
        ]);
        let baseline = engine_bench_json(&base);
        // Within tolerance on both policies: passes, verdict names both.
        let ok = engine(&[
            ("demand", 14_000, 1000, Some(111)),
            ("forestall", 7_000, 1000, Some(132)),
        ]);
        let verdict = check_engine(&ok, &baseline).unwrap();
        assert!(verdict.contains("engine demand"), "{verdict}");
        assert!(verdict.contains("engine forestall"), "{verdict}");
        assert!(verdict.contains("gap"), "{verdict}");
        // One policy regressing past tolerance fails even when the
        // others improve.
        let bad = engine(&[
            ("demand", 20_000, 1000, Some(111)),
            ("forestall", 5_000, 1000, Some(132)),
        ]);
        let err = check_engine(&bad, &baseline).unwrap_err();
        assert!(err.contains("engine forestall"), "{err}");
        assert!(err.contains("regression tolerance"), "{err}");
    }

    #[test]
    fn engine_gate_enforces_the_allocation_ceiling_and_gap() {
        let base = engine(&[
            ("demand", 16_000, 1000, Some(111)),
            ("forestall", 8_000, 1000, Some(132)),
        ]);
        let baseline = engine_bench_json(&base);
        // The old reverse-aggressive shape: allocations far past the
        // ceiling fail deterministically.
        let alloc_heavy = engine(&[
            ("demand", 16_000, 1000, Some(19_400)),
            ("forestall", 8_000, 1000, Some(132)),
        ]);
        let err = check_engine(&alloc_heavy, &baseline).unwrap_err();
        assert!(err.contains("allocations exceed"), "{err}");
        // The old forestall shape: 10.9x slower than demand on the same
        // machine fails the relative gap even if the baseline row is met.
        let gapped = engine(&[
            ("demand", 87_200, 1000, Some(111)),
            ("forestall", 8_000, 1000, Some(132)),
        ]);
        let err = check_engine(&gapped, &baseline).unwrap_err();
        assert!(err.contains("fell out of its band"), "{err}");
        // No allocator installed: the ceiling is simply not judged.
        let uncounted = engine(&[
            ("demand", 16_000, 1000, None),
            ("forestall", 8_000, 1000, None),
        ]);
        assert!(check_engine(&uncounted, &baseline).is_ok());
        // A policy missing from the baseline is an error, not a skip.
        let extra = engine(&[
            ("demand", 16_000, 1000, None),
            ("aggressive", 7_000, 1000, None),
            ("forestall", 8_000, 1000, None),
        ]);
        let err = check_engine(&extra, &baseline).unwrap_err();
        assert!(err.contains("no positive events_per_sec"), "{err}");
    }

    #[test]
    fn engine_bench_counts_events() {
        // A miniature version of the stress run: the probe must see at
        // least one event per request.
        let t = parcache_trace::synth::synth_trace(2, 50, crate::SEED);
        let cfg = SimConfig::for_trace(2, &t);
        let mut probe = CountProbe { events: 0 };
        simulate_probed(&t, PolicyKind::Demand, &cfg, &mut probe);
        assert!(probe.events >= t.requests.len() as u64);
    }
}
