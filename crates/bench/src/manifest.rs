//! Sweep failure manifests: the checkpoint/resume format.
//!
//! A fail-soft sweep writes `<out>.manifest.json` next to its CSV: the
//! grid's content hash, the document's column gates, and one outcome per
//! cell — finished cells carry their **fully rendered CSV row**, failed
//! cells their diagnosis and attempt count. `--resume <manifest>`
//! re-runs only the cells that produced no row and splices stored and
//! fresh rows back together in cell-index order; because the CSV's
//! column gates are a pure function of the grid (see
//! [`CsvGates`](crate::sweep::CsvGates)), the spliced document is
//! byte-identical to an uninterrupted run.
//!
//! The manifest is parsed by a hand-rolled, std-only JSON reader (the
//! workspace is hermetic — no serde), which reports malformed input with
//! a line number and stale input (wrong grid hash, unknown cell index)
//! with a field-level diagnostic. Neither ever panics: the CLI maps both
//! onto its typed usage errors.

use crate::sha256::sha256_hex;
use crate::sweep::{CellExecution, CellOutcome, CsvGates, SweepCell};
use parcache_core::metrics::json_escape;
use parcache_disk::FaultPlan;
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::Arc;

/// Schema tag of the manifest format this module reads and writes.
pub const MANIFEST_SCHEMA: &str = "parcache-sweep-manifest-v1";

/// Why a manifest was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestError {
    /// The bytes are not well-formed JSON; `line` is 1-based.
    Parse {
        /// Line the reader choked on.
        line: usize,
        /// What it expected or found.
        msg: String,
    },
    /// Well-formed JSON that is not a manifest (wrong schema tag,
    /// missing or mistyped field). Names the offending field.
    Schema(String),
    /// A valid manifest for a *different* sweep: grid hash mismatch,
    /// cell count mismatch, unknown or duplicate cell index, or gates
    /// that disagree with the requested output flavor.
    Stale(String),
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
            ManifestError::Schema(msg) => write!(f, "not a sweep manifest: {msg}"),
            ManifestError::Stale(msg) => write!(f, "manifest does not match this sweep: {msg}"),
        }
    }
}

/// One cell's recorded ending.
#[derive(Debug, Clone, PartialEq)]
pub enum ManifestStatus {
    /// Finished: the rendered CSV row (no trailing newline) and, for
    /// audited sweeps, whether its audit came back clean.
    Ok {
        /// The cell's CSV row as the run's gates rendered it.
        row: String,
        /// `Some(clean)` when the run was audited.
        audit_clean: Option<bool>,
    },
    /// Every attempt panicked.
    Panicked {
        /// The rendered panic payload.
        panic: String,
    },
    /// Every attempt overran the watchdog.
    TimedOut {
        /// The deadline, in milliseconds.
        timeout_ms: u64,
    },
    /// Never dispatched (fail-fast halt).
    Skipped,
}

impl ManifestStatus {
    /// The stored row, for finished cells.
    pub fn row(&self) -> Option<&str> {
        match self {
            ManifestStatus::Ok { row, .. } => Some(row),
            _ => None,
        }
    }
}

/// One cell's manifest entry.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestCell {
    /// Grid index.
    pub index: usize,
    /// Attempts consumed.
    pub attempts: u32,
    /// How the cell ended.
    pub status: ManifestStatus,
}

/// A sweep's failure manifest: enough to decide what to re-run and to
/// splice a byte-identical document once the re-run finishes.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepManifest {
    /// Content hash of the grid + fault plan (see [`grid_hash`]).
    pub grid_hash: String,
    /// Total cells in the grid.
    pub cells: usize,
    /// The column gates the rows were rendered under.
    pub gates: CsvGates,
    /// Whether the sweep ran audited.
    pub audited: bool,
    /// Per-cell outcomes, in index order as written (order is not
    /// trusted on read).
    pub outcomes: Vec<ManifestCell>,
}

impl ManifestCell {
    /// The manifest entry of one fail-soft execution; a finished cell
    /// stores its gate-rendered row (without the trailing newline).
    pub fn from_execution(e: &CellExecution, gates: CsvGates) -> ManifestCell {
        ManifestCell {
            index: e.index,
            attempts: e.attempts,
            status: match &e.outcome {
                CellOutcome::Ok(row) => ManifestStatus::Ok {
                    row: gates.row(row).trim_end_matches('\n').to_string(),
                    audit_clean: e.audit.as_ref().map(|a| a.violations.is_empty()),
                },
                CellOutcome::Panicked { msg } => ManifestStatus::Panicked { panic: msg.clone() },
                CellOutcome::TimedOut { limit } => ManifestStatus::TimedOut {
                    timeout_ms: limit.as_millis() as u64,
                },
                CellOutcome::Skipped => ManifestStatus::Skipped,
            },
        }
    }
}

impl SweepManifest {
    /// Builds the manifest of a fail-soft run: every execution becomes
    /// an entry; finished cells store their gate-rendered row.
    pub fn from_run(
        executions: &[CellExecution],
        gates: CsvGates,
        grid_hash: String,
        cells: usize,
        audited: bool,
    ) -> SweepManifest {
        let outcomes = executions
            .iter()
            .map(|e| ManifestCell::from_execution(e, gates))
            .collect();
        SweepManifest {
            grid_hash,
            cells,
            gates,
            audited,
            outcomes,
        }
    }

    /// How many entries finished.
    pub fn completed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.status.row().is_some())
            .count()
    }

    /// The manifest as its on-disk JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(self.outcomes.len() * 160 + 256);
        let _ = write!(
            out,
            r#"{{"schema":"{}","grid_hash":"{}","cells":{},"explain":{},"faulted":{},"hinted":{},"audited":{},"completed":{},"outcomes":["#,
            MANIFEST_SCHEMA,
            self.grid_hash,
            self.cells,
            self.gates.explain,
            self.gates.faulted,
            self.gates.hinted,
            self.audited,
            self.completed(),
        );
        for (i, o) in self.outcomes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            let _ = write!(out, r#"{{"index":{},"attempts":{},"#, o.index, o.attempts);
            match &o.status {
                ManifestStatus::Ok { row, audit_clean } => {
                    let _ = write!(out, r#""status":"ok","row":"{}""#, json_escape(row));
                    if let Some(clean) = audit_clean {
                        let _ = write!(out, r#","audit_clean":{clean}"#);
                    }
                }
                ManifestStatus::Panicked { panic } => {
                    let _ = write!(
                        out,
                        r#""status":"panicked","panic":"{}""#,
                        json_escape(panic)
                    );
                }
                ManifestStatus::TimedOut { timeout_ms } => {
                    let _ = write!(out, r#""status":"timed_out","timeout_ms":{timeout_ms}"#);
                }
                ManifestStatus::Skipped => out.push_str(r#""status":"skipped""#),
            }
            out.push('}');
        }
        out.push_str("\n]}\n");
        out
    }

    /// Parses a manifest document. Malformed JSON is a
    /// [`ManifestError::Parse`] with the line it went wrong on;
    /// well-formed JSON missing the contract is a
    /// [`ManifestError::Schema`] naming the field.
    pub fn parse(text: &str) -> Result<SweepManifest, ManifestError> {
        let value = JsonParser::new(text).document()?;
        let doc = value.as_object("manifest root")?;
        let schema = get(doc, "schema")?.as_str("schema")?;
        if schema != MANIFEST_SCHEMA {
            return Err(ManifestError::Schema(format!(
                "schema is {schema:?}, expected {MANIFEST_SCHEMA:?}"
            )));
        }
        let manifest = SweepManifest {
            grid_hash: get(doc, "grid_hash")?.as_str("grid_hash")?.to_string(),
            cells: get(doc, "cells")?.as_usize("cells")?,
            gates: CsvGates {
                explain: get(doc, "explain")?.as_bool("explain")?,
                faulted: get(doc, "faulted")?.as_bool("faulted")?,
                hinted: get(doc, "hinted")?.as_bool("hinted")?,
            },
            audited: get(doc, "audited")?.as_bool("audited")?,
            outcomes: get(doc, "outcomes")?
                .as_array("outcomes")?
                .iter()
                .map(parse_outcome)
                .collect::<Result<_, _>>()?,
        };
        Ok(manifest)
    }
}

fn parse_outcome(value: &Json) -> Result<ManifestCell, ManifestError> {
    let obj = value.as_object("outcomes[] entry")?;
    let index = get(obj, "index")?.as_usize("index")?;
    let attempts = get(obj, "attempts")?.as_usize("attempts")? as u32;
    let status = match get(obj, "status")?.as_str("status")? {
        "ok" => ManifestStatus::Ok {
            row: get(obj, "row")?.as_str("row")?.to_string(),
            audit_clean: match find(obj, "audit_clean") {
                Some(v) => Some(v.as_bool("audit_clean")?),
                None => None,
            },
        },
        "panicked" => ManifestStatus::Panicked {
            panic: get(obj, "panic")?.as_str("panic")?.to_string(),
        },
        "timed_out" => ManifestStatus::TimedOut {
            timeout_ms: get(obj, "timeout_ms")?.as_usize("timeout_ms")? as u64,
        },
        "skipped" => ManifestStatus::Skipped,
        other => {
            return Err(ManifestError::Schema(format!(
                "status: unknown value {other:?}"
            )))
        }
    };
    Ok(ManifestCell {
        index,
        attempts,
        status,
    })
}

/// The resume plan a validated manifest yields: which rows are already
/// on disk, and which cells still need to run.
#[derive(Debug, Clone, PartialEq)]
pub struct ResumePlan {
    /// Carried-forward manifest entries (clean, finished cells), keyed
    /// by cell index. Each holds its rendered row and attempt count.
    pub stored: HashMap<usize, ManifestCell>,
    /// Cell indices that must (re-)run, ascending.
    pub to_run: Vec<usize>,
    /// Cells whose recorded audit came back dirty; they re-run rather
    /// than carry a known-bad result forward.
    pub stale_audit_failures: Vec<usize>,
}

/// Validates `manifest` against the grid the caller is about to run
/// (its cell count and [`grid_hash`]) and plans the resume. Any
/// disagreement — hash, cell count, flavor, audit mode, out-of-range or
/// duplicate index — is a [`ManifestError::Stale`] naming what
/// differed; a manifest entry the grid lacks can only mean the flags
/// changed between runs.
pub fn plan_resume(
    manifest: &SweepManifest,
    cells: usize,
    expected_hash: &str,
    gates: CsvGates,
    audited: bool,
) -> Result<ResumePlan, ManifestError> {
    if manifest.grid_hash != expected_hash {
        return Err(ManifestError::Stale(format!(
            "grid_hash is {}…, this sweep's grid hashes to {}… (different traces, algorithms, disks, hints, or fault plan)",
            &manifest.grid_hash[..manifest.grid_hash.len().min(12)],
            &expected_hash[..expected_hash.len().min(12)],
        )));
    }
    if manifest.cells != cells {
        return Err(ManifestError::Stale(format!(
            "cells is {}, this sweep expands to {cells}",
            manifest.cells,
        )));
    }
    if manifest.gates != gates {
        return Err(ManifestError::Stale(format!(
            "gates are {:?}, this invocation renders {:?} (check --explain and fault/hint flags)",
            manifest.gates, gates
        )));
    }
    if manifest.audited != audited {
        return Err(ManifestError::Stale(format!(
            "audited is {}, this invocation's is {} (check --audit)",
            manifest.audited, audited
        )));
    }
    let mut stored = HashMap::with_capacity(manifest.outcomes.len());
    let mut stale_audit_failures = Vec::new();
    let mut seen = vec![false; cells];
    for o in &manifest.outcomes {
        if o.index >= cells {
            return Err(ManifestError::Stale(format!(
                "outcome index {} is outside the {cells}-cell grid",
                o.index,
            )));
        }
        if seen[o.index] {
            return Err(ManifestError::Stale(format!(
                "outcome index {} appears twice",
                o.index
            )));
        }
        seen[o.index] = true;
        if let ManifestStatus::Ok { audit_clean, .. } = &o.status {
            if *audit_clean == Some(false) {
                stale_audit_failures.push(o.index);
            } else {
                stored.insert(o.index, o.clone());
            }
        }
    }
    // Failed, skipped, dirty-audit, *and missing* cells all re-run: a
    // truncated-but-valid outcome list is indistinguishable from a skip,
    // and re-running is always safe.
    let to_run = (0..cells).filter(|i| !stored.contains_key(i)).collect();
    Ok(ResumePlan {
        stored,
        to_run,
        stale_audit_failures,
    })
}

/// Content hash identifying a sweep: every cell's trace (by content
/// digest), algorithm, array size, and hint source, plus the fault plan.
/// Two invocations agree on this hash exactly when their grids simulate
/// the same work, which is what makes a stored row safe to splice.
pub fn grid_hash(cells: &[SweepCell], faults: &FaultPlan) -> String {
    let mut traces: HashMap<*const parcache_trace::Trace, String> = HashMap::new();
    let mut desc = String::with_capacity(cells.len() * 96 + 64);
    for c in cells {
        let digest = traces
            .entry(Arc::as_ptr(&c.trace))
            .or_insert_with(|| trace_digest(&c.trace));
        let _ = writeln!(
            desc,
            "{}|{}|{}|{}|{}",
            c.index,
            digest,
            c.algo.name(),
            c.disks,
            c.hints.name()
        );
    }
    let _ = writeln!(desc, "faults|{faults:?}");
    sha256_hex(desc.as_bytes())
}

/// Content digest of one trace: name, cache size, and the full request
/// stream. Computed once per distinct trace of a grid.
fn trace_digest(t: &parcache_trace::Trace) -> String {
    let mut bytes = Vec::with_capacity(t.requests.len() * 16 + t.name.len() + 16);
    bytes.extend_from_slice(t.name.as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(&(t.cache_blocks as u64).to_le_bytes());
    for r in &t.requests {
        bytes.extend_from_slice(&r.block.0.to_le_bytes());
        bytes.extend_from_slice(&r.compute.0.to_le_bytes());
    }
    sha256_hex(&bytes)
}

// ---------------------------------------------------------------------------
// Minimal JSON reader
// ---------------------------------------------------------------------------

/// A parsed JSON value. Objects keep insertion order; numbers stay `f64`
/// (manifest integers are far below 2^53, checked on conversion).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "a boolean",
            Json::Num(_) => "a number",
            Json::Str(_) => "a string",
            Json::Arr(_) => "an array",
            Json::Obj(_) => "an object",
        }
    }

    fn as_object(&self, field: &str) -> Result<&[(String, Json)], ManifestError> {
        match self {
            Json::Obj(fields) => Ok(fields),
            v => Err(schema_mismatch(field, "an object", v)),
        }
    }

    fn as_array(&self, field: &str) -> Result<&[Json], ManifestError> {
        match self {
            Json::Arr(items) => Ok(items),
            v => Err(schema_mismatch(field, "an array", v)),
        }
    }

    fn as_str(&self, field: &str) -> Result<&str, ManifestError> {
        match self {
            Json::Str(s) => Ok(s),
            v => Err(schema_mismatch(field, "a string", v)),
        }
    }

    fn as_bool(&self, field: &str) -> Result<bool, ManifestError> {
        match self {
            Json::Bool(b) => Ok(*b),
            v => Err(schema_mismatch(field, "a boolean", v)),
        }
    }

    fn as_usize(&self, field: &str) -> Result<usize, ManifestError> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < 2f64.powi(53) => Ok(*n as usize),
            v => Err(schema_mismatch(field, "a non-negative integer", v)),
        }
    }
}

fn schema_mismatch(field: &str, wanted: &str, got: &Json) -> ManifestError {
    ManifestError::Schema(format!(
        "{field}: expected {wanted}, got {}",
        got.type_name()
    ))
}

fn find<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, ManifestError> {
    find(obj, key).ok_or_else(|| ManifestError::Schema(format!("{key}: missing field")))
}

/// Recursive-descent JSON reader over raw bytes, tracking the current
/// line for diagnostics. Handles exactly standard JSON; escapes cover
/// everything [`json_escape`] emits plus the remaining standard ones.
struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> JsonParser<'a> {
    fn new(text: &'a str) -> JsonParser<'a> {
        JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ManifestError> {
        Err(ManifestError::Parse {
            line: self.line,
            msg: msg.into(),
        })
    }

    /// Parses the whole input as one value (trailing garbage rejected).
    fn document(mut self) -> Result<Json, ManifestError> {
        let value = self.value()?;
        self.skip_ws();
        if self.pos < self.bytes.len() {
            return self.err("trailing characters after the document");
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), ManifestError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected {what}"))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, ManifestError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            self.err(format!("expected {text:?}"))
        }
    }

    fn value(&mut self) -> Result<Json, ManifestError> {
        self.skip_ws();
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => self.err(format!("unexpected character {:?}", c as char)),
        }
    }

    fn object(&mut self) -> Result<Json, ManifestError> {
        self.eat(b'{', "'{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "':' after object key")?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return self.err("expected ',' or '}' in object"),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ManifestError> {
        self.eat(b'[', "'['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected ',' or ']' in array"),
            }
        }
    }

    fn string(&mut self) -> Result<String, ManifestError> {
        self.eat(b'"', "'\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                // Surrogate pairs never appear: the
                                // writer only \u-escapes control bytes.
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("bad escape sequence"),
                    }
                    self.pos += 1;
                }
                Some(b'\n') => return self.err("unterminated string"),
                Some(_) => {
                    // Copy the full UTF-8 scalar, not just one byte.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| ManifestError::Parse {
                        line: self.line,
                        msg: "invalid UTF-8 in string".to_string(),
                    })?;
                    let c = s.chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ManifestError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        match text.parse::<f64>() {
            Ok(n) => Ok(Json::Num(n)),
            Err(_) => self.err(format!("bad number {text:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SweepManifest {
        SweepManifest {
            grid_hash: "deadbeef".into(),
            cells: 4,
            gates: CsvGates {
                faulted: false,
                hinted: true,
                explain: false,
            },
            audited: true,
            outcomes: vec![
                ManifestCell {
                    index: 0,
                    attempts: 1,
                    status: ManifestStatus::Ok {
                        row: "synth,demand,1,0.123".into(),
                        audit_clean: Some(true),
                    },
                },
                ManifestCell {
                    index: 1,
                    attempts: 2,
                    status: ManifestStatus::Panicked {
                        panic: "index out of bounds: \"quoted\"\nsecond line".into(),
                    },
                },
                ManifestCell {
                    index: 2,
                    attempts: 1,
                    status: ManifestStatus::TimedOut { timeout_ms: 250 },
                },
                ManifestCell {
                    index: 3,
                    attempts: 0,
                    status: ManifestStatus::Skipped,
                },
            ],
        }
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let m = sample();
        let parsed = SweepManifest::parse(&m.to_json()).unwrap();
        assert_eq!(parsed, m);
        assert_eq!(parsed.completed(), 1);
    }

    #[test]
    fn truncated_json_reports_the_line() {
        let text = sample().to_json();
        let cut = &text[..text.len() * 2 / 3];
        match SweepManifest::parse(cut) {
            Err(ManifestError::Parse { line, .. }) => assert!(line > 1, "line {line}"),
            other => panic!("expected a parse error, got {other:?}"),
        }
    }

    #[test]
    fn wrong_schema_and_missing_fields_are_schema_errors() {
        let err = SweepManifest::parse(r#"{"schema":"something-else"}"#).unwrap_err();
        assert!(matches!(err, ManifestError::Schema(ref m) if m.contains("something-else")));
        let err = SweepManifest::parse(r#"{"schema":"parcache-sweep-manifest-v1"}"#).unwrap_err();
        assert!(
            matches!(err, ManifestError::Schema(ref m) if m.contains("grid_hash")),
            "{err:?}"
        );
        let err = SweepManifest::parse("[1,2,3]").unwrap_err();
        assert!(matches!(err, ManifestError::Schema(_)), "{err:?}");
    }

    #[test]
    fn parser_handles_escapes_and_rejects_garbage() {
        let m = sample();
        let parsed = SweepManifest::parse(&m.to_json()).unwrap();
        match &parsed.outcomes[1].status {
            ManifestStatus::Panicked { panic } => {
                assert_eq!(panic, "index out of bounds: \"quoted\"\nsecond line");
            }
            other => panic!("{other:?}"),
        }
        for bad in ["", "{", "nul", r#"{"a" 1}"#, "{}trailing"] {
            assert!(
                matches!(SweepManifest::parse(bad), Err(ManifestError::Parse { .. })),
                "{bad:?}"
            );
        }
    }
}
