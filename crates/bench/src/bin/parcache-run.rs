//! Ad-hoc experiment runner.
//!
//! ```sh
//! parcache-run <trace> [policy] [disks] [--json] [--events <path>] [--hist]
//! parcache-run synth aggressive 1,2,3,4
//! parcache-run postgres-select all 1,2,4,8,16
//! parcache-run ./my-app.trace forestall 1,2,4   # your own trace file
//! parcache-run glimpse forestall 4 --json       # machine-readable report
//! parcache-run glimpse forestall 4 --hist       # ASCII latency histograms
//! parcache-run glimpse forestall 4 --events events.jsonl
//!
//! parcache-run --sweep [traces] [algos] [disks] [--threads N] [--json] [--hist]
//! parcache-run --sweep                           # full appendix-A grid, CSV
//! parcache-run --sweep all all --threads 4 --json
//! parcache-run --sweep dinero,cscope1 aggressive,tuned-reverse 1,2,4
//!
//! parcache-run --bench                               # full benchmark, writes BENCH_*.json
//! parcache-run --bench-smoke [--baseline BENCH_sweep.json]
//! parcache-run --fuzz 200 [--seed S] [--threads N]   # differential fuzzer
//! parcache-run --sweep --audit                       # audited sweep
//! parcache-run glimpse forestall 4 --audit           # audited single runs
//! parcache-run glimpse forestall 4 --faults outage:0:100:400
//! parcache-run --sweep --faults flaky:*:0.01,seed:7  # degraded-array sweep
//! parcache-run glimpse all 4 --explain               # stall-by-cause table
//! parcache-run --sweep --explain                     # CSV with per-cause columns
//! parcache-run --sweep --profile prof.json           # harness self-profile
//! parcache-run synth forestall 4 --hints markov      # online predicted hints
//! parcache-run --sweep synth all 4 --hints oracle,seq,markov,mithril
//! parcache-run --sweep --out sweep.csv               # atomic CSV + failure manifest
//! parcache-run --sweep --cell-timeout 5000 --max-cell-retries 1 --out sweep.csv
//! parcache-run --sweep --resume sweep.csv.manifest.json --out sweep.csv
//! ```
//!
//! The trace argument is one of the paper's trace names, or a path to a
//! trace file in the `parcache-trace` text format.
//!
//! * `--json` prints one JSON document (report + counters + histograms +
//!   per-disk timeline per run) instead of the human table.
//! * `--events <path>` streams every simulation event to `path` as JSON
//!   lines.
//! * `--hist` prints ASCII histogram tables (service, response, stall,
//!   queue depth) after the breakdown table.
//!
//! Any of the three attaches a metrics probe to the engine; without them
//! the run uses the zero-cost no-op probe.
//!
//! `--sweep` expands a trace × algorithm × disk-count grid and runs the
//! cells on `--threads` workers (default: all available cores). Traces
//! and algorithms accept `all` or comma-separated lists; algorithms are
//! the appendix-A names (`demand`, `fixed-horizon`, `aggressive`,
//! `tuned-reverse`, `forestall`); omitted disk counts default to each
//! trace's published appendix-A array sizes. Output is CSV (or one JSON
//! document with `--json`; `--hist` attaches probes and adds aggregate
//! histograms) and is byte-identical for every `--threads` value — only
//! wall-clock time changes. `--events` is not available under `--sweep`.
//!
//! * `--audit` reruns every cell (or run) under the conservation-checking
//!   audit probe. Stdout is unchanged — the audited rerun only verifies;
//!   violations go to stderr and the exit status becomes 1.
//! * `--fuzz <n>` runs the differential fuzzer for `n` generated cases
//!   (each case runs every policy, plain and audited) and exits nonzero
//!   on any violation or divergence. `--seed <s>` picks the stream
//!   (default 1996); `--threads` applies.
//! * `--bench` runs the continuous benchmark harness: the smoke sweep
//!   subset, the full appendix-A grid at 1/2/4 worker threads, and the
//!   synthetic engine stress trace under every policy. Results (wall
//!   time, cells/sec, simulated events/sec, allocation counts) are
//!   written to `BENCH_sweep.json` and `BENCH_engine.json` in the
//!   current directory.
//! * `--bench-smoke` runs only the smoke subset and prints its JSON to
//!   stdout; with `--baseline <path>` it compares cells/sec against a
//!   committed `BENCH_sweep.json` and exits 1 on a regression beyond
//!   the harness tolerance (25%). Both bench modes also apply the
//!   scaling-efficiency gate: on machines with at least two effective
//!   cores, 2-thread cells/sec must reach 75% of linear scaling over
//!   the 1-thread rate (effectively single-core machines skip with a
//!   note).
//! * `--faults <spec>` runs everything under a deterministic fault plan
//!   (single runs and sweeps). The spec is comma-separated
//!   `flaky:<disk|*>:<p>`, `slow:<disk|*>:<from_ms>:<until_ms>:<factor>`,
//!   `outage:<disk|*>:<from_ms>:<until_ms>`, and `seed:<u64>` clauses;
//!   reports and sweep CSV grow fault-accounting fields. Output stays
//!   byte-identical across `--threads` values.
//! * `--explain` breaks the stall column down by cause (late prefetch,
//!   no prefetch, congestion, fault retry, eviction refetch): single
//!   runs append a per-policy stall-by-cause table, and sweeps emit CSV
//!   with `stall_<cause>_s` columns plus per-trace tables on stderr.
//!   The default sweep CSV is untouched — the extra columns exist only
//!   under this flag. (`--json` output always carries
//!   `stall_by_cause`, so the flag changes nothing there.)
//! * `--hints <list>` swaps the disclosed-future oracle for an online
//!   predictor (`seq`, `markov`, `mithril`; `oracle` is the default
//!   disclosed future). Single runs take one source and print its
//!   precision/recall; sweeps accept a comma-separated list as an extra
//!   grid axis and gain a `hints` CSV column (plus
//!   `hint_precision`/`hint_recall` under `--explain`).
//! * Contradictory flag combinations (`--bench --sweep`, `--seed`
//!   without `--fuzz`, `--explain` under `--fuzz`, ...) are rejected up
//!   front with exit status 2 instead of being silently ignored.
//! * `--profile <path>` profiles the harness itself: hierarchical span
//!   self-times with per-span allocation counts, per-worker busy/idle
//!   telemetry for sweeps, trace-cache hit/miss counts, and the
//!   detected effective parallelism, written as one JSON document to
//!   `path` plus flamegraph-compatible folded stacks to `path.folded`.
//!   Without the flag the profiling code monomorphizes away entirely
//!   (the same zero-cost trick as the engine's no-op probe), so default
//!   runs pay nothing.
//!
//! Sweeps execute fail-soft: each cell runs behind an unwind boundary,
//! so one panicking cell costs that cell, not the sweep. The surviving
//! rows keep their exact clean-run bytes; the exit status becomes 1.
//!
//! * `--out <path>` writes the sweep document to `path` atomically
//!   (write-temp-then-rename) instead of stdout, and — in CSV modes —
//!   a failure manifest to `<path>.manifest.json` recording every
//!   cell's outcome, attempts, and panic payloads, plus a grid hash.
//! * `--resume <manifest>` re-runs only the cells a previous manifest
//!   records as failed, skipped, or missing, splices the stored rows
//!   back in cell order, and produces a document byte-identical to an
//!   uninterrupted run at any `--threads`. A manifest from a different
//!   grid, flag set, or trace content is rejected up front (exit 2).
//! * `--cell-timeout <ms>` puts each cell attempt under a wall-clock
//!   watchdog; an attempt that overruns is recorded as timed out.
//! * `--max-cell-retries <n>` retries a panicked or timed-out cell up
//!   to `n` more times before recording the failure.
//! * `--fail-fast` restores the historical abort semantics: stop
//!   dispatching new cells after the first failure (undispatched cells
//!   are recorded as skipped, so `--resume` picks them up).
//!
//! All file outputs (sweep documents, manifests, bench baselines,
//! profiles, event logs) are written atomically, so a killed process
//! never leaves a truncated artifact under a destination name.

use parcache_bench::bench;
use parcache_bench::fsio::{write_atomic, AtomicFile};
use parcache_bench::manifest::{self, ManifestCell, SweepManifest};
use parcache_bench::prof::{detect_parallelism, NoopProf, Prof, WallProf, WorkerStats};
use parcache_bench::report::{explain_table, failsoft_summary};
use parcache_bench::runner::{trace_cache_stats, TraceError};
use parcache_bench::sweep::{self, CellRow, SweepAggregate, SweepEntry, SweepSpec};
use parcache_bench::{breakdown_table, run, trace, Algo, BreakdownRow, DISK_COUNTS};
use parcache_core::engine::simulate_probed;
use parcache_core::metrics::{MetricsProbe, RunMetrics, Unit};
use parcache_core::policy::PolicyKind;
use parcache_core::predict::HintMode;
use parcache_core::probe::{Event, Probe};
use parcache_core::{Report, SimConfig};
use parcache_disk::FaultPlan;
use std::collections::HashMap;
use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

/// A pass-through global allocator that counts allocation calls, so the
/// benchmark harness can report per-stage allocation totals. The library
/// crates stay `forbid(unsafe_code)`; the counter lives only in this
/// binary.
///
/// The count is kept twice:
///
/// * a *sharded* global — each thread bumps its own cache-line-padded
///   stripe, summed on read. A single shared atomic used to bounce its
///   cache line between every worker on every allocation (~10.8M times
///   per full bench), which showed up as negative thread scaling in the
///   sweep bench. Striping makes the write purely thread-local in the
///   cache; reads are rare (a handful per bench stage).
/// * an *exact per-thread* counter — a plain thread-local `Cell`, read
///   by the sweep's per-cell sampling so comparable allocation figures
///   are a pure function of the cell set, independent of `--threads`.
mod counting_alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    /// Stripes the global total is sharded over: comfortably more than
    /// any plausible worker count, so concurrent threads land on
    /// different cache lines.
    const STRIPES: usize = 64;

    /// One padded counter. 128 bytes covers the spatial-prefetcher pair
    /// of 64-byte lines on current x86.
    #[repr(align(128))]
    struct Stripe(AtomicU64);

    /// Total allocation calls (alloc + realloc + alloc_zeroed), sharded.
    static STRIPE_COUNTS: [Stripe; STRIPES] = [const { Stripe(AtomicU64::new(0)) }; STRIPES];

    /// Round-robin stripe assignment for threads.
    static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

    thread_local! {
        /// This thread's assigned stripe; `usize::MAX` until first use.
        static STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
        /// Allocation calls made by this thread. `u64` has no
        /// destructor and the init is const, so touching it from inside
        /// the allocator cannot recurse into the allocator.
        static LOCAL: Cell<u64> = const { Cell::new(0) };
    }

    #[inline]
    fn bump() {
        // `try_with` covers TLS teardown: late allocations fall back to
        // stripe 0 and drop out of the (already sampled) local count.
        let idx = STRIPE
            .try_with(|s| {
                let mut idx = s.get();
                if idx == usize::MAX {
                    idx = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % STRIPES;
                    s.set(idx);
                }
                idx
            })
            .unwrap_or(0);
        STRIPE_COUNTS[idx].0.fetch_add(1, Ordering::Relaxed);
        let _ = LOCAL.try_with(|l| l.set(l.get() + 1));
    }

    /// Process-wide allocation calls so far: the sum over all stripes.
    /// Monotonic, but an unsynchronized snapshot — fine for deltas
    /// around quiesced stages.
    pub fn total() -> u64 {
        STRIPE_COUNTS
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Allocation calls made by the calling thread so far.
    pub fn thread_total() -> u64 {
        LOCAL.try_with(Cell::get).unwrap_or(0)
    }

    /// The counting wrapper around the system allocator.
    pub struct CountingAlloc;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            bump();
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            bump();
            unsafe { System.realloc(ptr, layout, new_size) }
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            bump();
            unsafe { System.alloc_zeroed(layout) }
        }
    }
}

#[global_allocator]
static ALLOC: counting_alloc::CountingAlloc = counting_alloc::CountingAlloc;

/// Reads the process-wide allocation counter.
fn alloc_count() -> u64 {
    counting_alloc::total()
}

/// Reads the calling thread's allocation counter — the sampler the sweep
/// threads through to per-cell work accounting.
fn thread_alloc_count() -> u64 {
    counting_alloc::thread_total()
}

/// One-screen usage summary, printed alongside argument errors.
const USAGE: &str = "\
usage: parcache-run <trace> [policy] [disks] [--json] [--hist] [--audit]
                    [--explain] [--events <path>] [--faults <spec>]
                    [--hints <source>] [--profile <path>]
       parcache-run --sweep [traces] [algos] [disks] [--threads N]
                    [--json] [--hist] [--audit] [--explain]
                    [--faults <spec>] [--hints <list>] [--profile <path>]
                    [--out <path>] [--resume <manifest>] [--cell-timeout <ms>]
                    [--max-cell-retries <n>] [--fail-fast]
       parcache-run --fuzz <n> [--seed <s>] [--threads N] [--differential]
                    [--profile <path>]
       parcache-run --bench [--profile <path>]
       parcache-run --bench-smoke [--baseline <BENCH_sweep.json>]
       parcache-run --bench-engine [--baseline <BENCH_engine.json>]

traces:  paper trace names (or `all`), or a path to a trace file
faults:  comma-separated flaky:<disk|*>:<p>, slow:<disk|*>:<from_ms>:<until_ms>:<factor>,
         outage:<disk|*>:<from_ms>:<until_ms>, seed:<u64>
hints:   oracle (disclosed future, the default), seq, markov, mithril —
         comma-separated under --sweep to add a hint-source sweep axis";

/// What stopped the CLI: a bad invocation (exit 2, with usage) or a
/// runtime I/O failure (exit 1).
#[derive(Debug)]
enum CliError {
    /// The command line does not parse or names something unknown.
    Usage(String),
    /// An I/O operation on behalf of the user failed.
    Io(String),
}

impl CliError {
    fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Io(_) => 1,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) | CliError::Io(msg) => write!(f, "{msg}"),
        }
    }
}

fn parse_policies(arg: &str) -> Vec<PolicyKind> {
    if arg == "all" {
        return PolicyKind::ALL.to_vec();
    }
    PolicyKind::ALL
        .into_iter()
        .filter(|k| k.name() == arg)
        .collect()
}

/// The probe the CLI attaches when any observability flag is set: folds
/// metrics, and optionally streams each event as a JSON line.
struct CliProbe<'a> {
    metrics: MetricsProbe,
    log: Option<&'a mut std::io::BufWriter<AtomicFile>>,
}

impl Probe for CliProbe<'_> {
    fn on_event(&mut self, event: &Event) {
        self.metrics.on_event(event);
        if let Some(w) = self.log.as_deref_mut() {
            writeln!(w, "{}", event.to_json()).unwrap_or_else(|e| {
                eprintln!("failed to write event log: {e}");
                std::process::exit(1);
            });
        }
    }
}

struct Options {
    json: bool,
    hist: bool,
    sweep: bool,
    audit: bool,
    explain: bool,
    fuzz: Option<usize>,
    /// `--differential`: the fuzzer additionally replays every forestall
    /// case on the naive full-rescan predictor and compares reports.
    differential: bool,
    bench: bool,
    bench_smoke: bool,
    /// `--bench-engine`: the engine stress bench alone, JSON to stdout,
    /// optionally gated against a committed `BENCH_engine.json`.
    bench_engine: bool,
    baseline: Option<String>,
    /// `--seed` as given; `None` means the flag was absent, so the
    /// fuzzer falls back to its default stream.
    seed: Option<u64>,
    threads: Option<usize>,
    events: Option<String>,
    profile: Option<String>,
    faults: FaultPlan,
    /// `--hints` as given; `None` means the flag was absent (oracle).
    hints: Option<Vec<HintMode>>,
    /// `--out`: write the sweep document here (atomically) instead of
    /// stdout, plus a failure manifest alongside in CSV modes.
    out: Option<String>,
    /// `--resume`: a manifest from a previous `--out` run whose
    /// finished rows are carried forward.
    resume: Option<String>,
    /// `--cell-timeout` in milliseconds; `None` means no watchdog.
    cell_timeout: Option<u64>,
    /// `--max-cell-retries`; 0 means one attempt per cell.
    max_cell_retries: u32,
    /// `--fail-fast`: stop dispatching cells after the first failure.
    fail_fast: bool,
    positional: Vec<String>,
}

fn parse_args(args: Vec<String>) -> Result<Options, CliError> {
    let mut opts = Options {
        json: false,
        hist: false,
        sweep: false,
        audit: false,
        explain: false,
        fuzz: None,
        differential: false,
        bench: false,
        bench_smoke: false,
        bench_engine: false,
        baseline: None,
        seed: None,
        threads: None,
        events: None,
        profile: None,
        faults: FaultPlan::default(),
        hints: None,
        out: None,
        resume: None,
        cell_timeout: None,
        max_cell_retries: 0,
        fail_fast: false,
        positional: Vec::new(),
    };
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => opts.json = true,
            "--hist" => opts.hist = true,
            "--sweep" => opts.sweep = true,
            "--audit" => opts.audit = true,
            "--explain" => opts.explain = true,
            "--fuzz" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => opts.fuzz = Some(n),
                _ => {
                    return Err(CliError::Usage(
                        "--fuzz requires a positive case count".to_string(),
                    ))
                }
            },
            "--bench" => opts.bench = true,
            "--bench-smoke" => opts.bench_smoke = true,
            "--bench-engine" => opts.bench_engine = true,
            "--differential" => opts.differential = true,
            "--baseline" => match it.next() {
                Some(p) => opts.baseline = Some(p),
                None => {
                    return Err(CliError::Usage(
                        "--baseline requires a path to a committed bench JSON".to_string(),
                    ))
                }
            },
            "--seed" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(s) => opts.seed = Some(s),
                None => {
                    return Err(CliError::Usage(
                        "--seed requires an unsigned integer".to_string(),
                    ))
                }
            },
            "--threads" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => opts.threads = Some(n),
                _ => {
                    return Err(CliError::Usage(
                        "--threads requires a positive integer".to_string(),
                    ))
                }
            },
            "--events" => match it.next() {
                Some(p) => opts.events = Some(p),
                None => return Err(CliError::Usage("--events requires a path".to_string())),
            },
            "--profile" => match it.next() {
                Some(p) => opts.profile = Some(p),
                None => {
                    return Err(CliError::Usage(
                        "--profile requires an output path".to_string(),
                    ))
                }
            },
            "--faults" => match it.next() {
                Some(spec) => {
                    opts.faults = FaultPlan::parse(&spec)
                        .map_err(|e| CliError::Usage(format!("bad --faults spec: {e}")))?;
                }
                None => {
                    return Err(CliError::Usage(
                        "--faults requires a fault-plan spec".to_string(),
                    ))
                }
            },
            "--hints" => match it.next() {
                Some(list) => {
                    let modes = list
                        .split(',')
                        .map(|n| {
                            HintMode::by_name(n).ok_or_else(|| {
                                CliError::Usage(format!(
                                    "unknown hint source {n:?}; choose from: {}",
                                    HintMode::ALL
                                        .iter()
                                        .map(|m| m.name())
                                        .collect::<Vec<_>>()
                                        .join(" ")
                                ))
                            })
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    opts.hints = Some(modes);
                }
                None => {
                    return Err(CliError::Usage(
                        "--hints requires a comma-separated source list".to_string(),
                    ))
                }
            },
            "--out" => match it.next() {
                Some(p) => opts.out = Some(p),
                None => return Err(CliError::Usage("--out requires an output path".to_string())),
            },
            "--resume" => match it.next() {
                Some(p) => opts.resume = Some(p),
                None => {
                    return Err(CliError::Usage(
                        "--resume requires a manifest path".to_string(),
                    ))
                }
            },
            "--cell-timeout" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(ms) if ms > 0 => opts.cell_timeout = Some(ms),
                _ => {
                    return Err(CliError::Usage(
                        "--cell-timeout requires a positive millisecond count".to_string(),
                    ))
                }
            },
            "--max-cell-retries" => match it.next().and_then(|n| n.parse::<u32>().ok()) {
                Some(n) => opts.max_cell_retries = n,
                None => {
                    return Err(CliError::Usage(
                        "--max-cell-retries requires an unsigned integer".to_string(),
                    ))
                }
            },
            "--fail-fast" => opts.fail_fast = true,
            f if f.starts_with("--") => {
                return Err(CliError::Usage(format!(
                    "unknown flag {f}; known flags: --json --hist --sweep --audit \
                     --explain --fuzz <n> --differential --bench --bench-smoke \
                     --bench-engine --baseline <path> \
                     --seed <s> --threads <n> --events <path> --faults <spec> \
                     --hints <list> --profile <path> --out <path> \
                     --resume <manifest> --cell-timeout <ms> \
                     --max-cell-retries <n> --fail-fast"
                )))
            }
            _ => opts.positional.push(a),
        }
    }
    Ok(opts)
}

/// Rejects contradictory flag combinations up front, before any mode
/// runs. The dispatcher used to pick the first matching mode and the
/// losing flags were silently ignored — `--bench --sweep` benched,
/// `--fuzz --seed`-less sweeps accepted `--seed`, and so on. Every
/// rejected combination exits 2 with the usage text, like any other
/// malformed command line.
fn validate(opts: &Options) -> Result<(), CliError> {
    let usage = |msg: &str| Err(CliError::Usage(msg.to_string()));
    let bench_mode = opts.bench || opts.bench_smoke || opts.bench_engine;
    let fuzzing = opts.fuzz.is_some();
    if [opts.bench, opts.bench_smoke, opts.bench_engine]
        .iter()
        .filter(|&&b| b)
        .count()
        > 1
    {
        return usage(
            "--bench, --bench-smoke, and --bench-engine are mutually exclusive; pick one",
        );
    }
    if bench_mode && opts.sweep {
        return usage(
            "--bench/--bench-smoke/--bench-engine and --sweep are mutually exclusive; \
             run one mode at a time",
        );
    }
    if bench_mode && fuzzing {
        return usage(
            "--bench/--bench-smoke/--bench-engine and --fuzz are mutually exclusive; \
             run one mode at a time",
        );
    }
    if fuzzing && opts.sweep {
        return usage("--fuzz and --sweep are mutually exclusive; run one mode at a time");
    }
    if opts.baseline.is_some() && !opts.bench_smoke && !opts.bench_engine {
        return usage("--baseline only applies to --bench-smoke and --bench-engine");
    }
    if opts.differential && !fuzzing {
        return usage("--differential only applies to --fuzz");
    }
    if opts.seed.is_some() && !fuzzing {
        return usage("--seed only applies to --fuzz; sweeps and single runs are deterministic");
    }
    if opts.threads.is_some() && !opts.sweep && !fuzzing {
        return usage("--threads only applies to --sweep and --fuzz");
    }
    if opts.events.is_some() {
        if opts.sweep {
            return usage(
                "--events is not supported with --sweep; run the cell on its own instead",
            );
        }
        if fuzzing || bench_mode {
            return usage("--events only applies to single runs");
        }
    }
    if opts.explain && (fuzzing || bench_mode) {
        return usage("--explain only applies to single runs and --sweep");
    }
    if opts.audit && (fuzzing || bench_mode) {
        return usage(
            "--audit only applies to single runs and --sweep; --fuzz already audits every case",
        );
    }
    if opts.hist && (fuzzing || bench_mode) {
        return usage("--hist only applies to single runs and --sweep");
    }
    if opts.json && (fuzzing || bench_mode) {
        return usage("--json only applies to single runs and --sweep");
    }
    if !opts.faults.is_empty() && (fuzzing || bench_mode) {
        return usage(
            "--faults only applies to single runs and --sweep; --fuzz draws its own fault plans",
        );
    }
    if let Some(hints) = opts.hints.as_deref() {
        if fuzzing || bench_mode {
            return usage(
                "--hints only applies to single runs and --sweep; --fuzz cycles hint sources on its own",
            );
        }
        if !opts.sweep && hints.len() != 1 {
            return usage(
                "single runs take exactly one --hints source; use --sweep to compare several",
            );
        }
    }
    if !opts.positional.is_empty() && (fuzzing || bench_mode) {
        return usage("--fuzz/--bench take no trace/policy/disks arguments");
    }
    if opts.out.is_some() && !opts.sweep {
        return usage("--out only applies to --sweep; single runs print to stdout");
    }
    if (opts.cell_timeout.is_some() || opts.max_cell_retries > 0 || opts.fail_fast) && !opts.sweep {
        return usage("--cell-timeout/--max-cell-retries/--fail-fast only apply to --sweep");
    }
    if opts.resume.is_some() {
        if !opts.sweep {
            return usage("--resume only applies to --sweep");
        }
        if opts.json || opts.hist {
            return usage(
                "--resume splices stored CSV rows and is incompatible with --json and --hist",
            );
        }
    }
    Ok(())
}

fn parse_disks(s: &str) -> Result<Vec<usize>, CliError> {
    s.split(',')
        .map(|x| match x.parse::<usize>() {
            Ok(d) if d > 0 => Ok(d),
            _ => Err(CliError::Usage(format!(
                "bad disk count {x:?}: expected positive integers like 1,2,4"
            ))),
        })
        .collect()
}

/// Resolves a trace argument: a paper trace name through the shared
/// cache, anything path-like through the trace-file loader.
fn resolve_trace(name: &str) -> Result<Arc<parcache_trace::Trace>, CliError> {
    if parcache_trace::TRACE_NAMES.contains(&name) {
        return Ok(trace(name));
    }
    if name.contains('/') || name.contains('.') {
        return match parcache_trace::load(name) {
            Ok(t) => Ok(Arc::new(t)),
            Err(e) => Err(CliError::Io(format!("failed to load {name}: {e}"))),
        };
    }
    Err(CliError::Usage(format!(
        "unknown trace {name}; choose one of: {} — or pass a path to a trace file",
        parcache_trace::TRACE_NAMES.join(" ")
    )))
}

/// Telemetry gathered along the way that belongs in the `--profile`
/// document but is produced deep inside a mode's run (per-worker sweep
/// stats). Stays empty when profiling is off.
#[derive(Default)]
struct ProfileExtras {
    workers: Vec<WorkerStats>,
}

/// `--sweep` mode: expand the grid, run it on the worker pool, print CSV
/// or JSON. The output is byte-identical for every thread count.
fn sweep_main<P: Prof>(
    opts: &Options,
    prof: &P,
    extras: &mut ProfileExtras,
) -> Result<(), CliError> {
    let _span = prof.span("sweep");
    let threads = opts.threads.unwrap_or_else(sweep::default_threads);
    let trace_arg = opts.positional.first().map(String::as_str).unwrap_or("all");
    let algo_arg = opts.positional.get(1).map(String::as_str).unwrap_or("all");
    let disks: Option<Vec<usize>> = match opts.positional.get(2) {
        Some(s) => Some(parse_disks(s)?),
        None => None,
    };

    let algos: Vec<Algo> = if algo_arg == "all" {
        Algo::APPENDIX_A.to_vec()
    } else {
        algo_arg
            .split(',')
            .map(|n| {
                Algo::by_name(n).ok_or_else(|| {
                    CliError::Usage(format!(
                        "unknown algorithm {n}; choose from: all demand fixed-horizon \
                         aggressive tuned-reverse forestall"
                    ))
                })
            })
            .collect::<Result<_, _>>()?
    };

    let names: Vec<&str> = if trace_arg == "all" {
        parcache_trace::TRACE_NAMES.to_vec()
    } else {
        trace_arg.split(',').collect()
    };
    let mut spec = if names
        .iter()
        .all(|n| parcache_trace::TRACE_NAMES.contains(n))
    {
        // Paper traces: generated in parallel through the shared cache.
        // A generator panic surfaces as a typed error here instead of
        // unwinding a worker thread.
        SweepSpec::try_named(&names, &algos, disks.as_deref(), threads).map_err(|e| match &e {
            TraceError::Unknown(_) => CliError::Usage(e.to_string()),
            TraceError::Generation { .. } => CliError::Io(e.to_string()),
        })?
    } else {
        let entries = names
            .iter()
            .map(|n| {
                Ok(SweepEntry {
                    trace: resolve_trace(n)?,
                    disks: disks.clone().unwrap_or_else(|| DISK_COUNTS.to_vec()),
                })
            })
            .collect::<Result<_, CliError>>()?;
        SweepSpec {
            entries,
            algos,
            hints: Vec::new(),
        }
    };
    // An absent --hints leaves the spec's default (oracle-only) grid,
    // keeping the flag-less sweep CSV byte-identical to what it always
    // was.
    if let Some(hints) = opts.hints.clone() {
        spec.hints = hints;
    }

    let cells = {
        let _span = prof.span("expand");
        spec.cells()
    };
    let gates = sweep::CsvGates::for_grid(&cells, &opts.faults, opts.explain);
    let inject = sweep::Injection::from_env()
        .map_err(|e| CliError::Usage(format!("bad PARCACHE_FAIL_CELL: {e}")))?;
    let failsoft = sweep::FailSoft {
        cell_timeout: opts.cell_timeout.map(std::time::Duration::from_millis),
        max_retries: opts.max_cell_retries,
        fail_fast: opts.fail_fast,
        inject,
    };

    // Manifests describe CSV-rendered sweeps; the grid hash keys both
    // reading one (--resume validation) and writing one (--out).
    let write_manifest = opts.out.is_some() && !opts.json;
    let grid_hash = if opts.resume.is_some() || write_manifest {
        Some(manifest::grid_hash(&cells, &opts.faults))
    } else {
        None
    };

    // A --resume manifest carries finished rows forward; everything it
    // records as failed, skipped, or missing (and, without a manifest,
    // everything) runs now.
    let (stored, to_run): (HashMap<usize, ManifestCell>, Vec<usize>) = match opts.resume.as_deref()
    {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| {
                CliError::Io(format!("failed to read --resume manifest {path}: {e}"))
            })?;
            let man = SweepManifest::parse(&text)
                .map_err(|e| CliError::Usage(format!("cannot resume from {path}: {e}")))?;
            let plan = manifest::plan_resume(
                &man,
                cells.len(),
                grid_hash.as_deref().expect("hash computed for --resume"),
                gates,
                opts.audit,
            )
            .map_err(|e| CliError::Usage(format!("cannot resume from {path}: {e}")))?;
            if !plan.stale_audit_failures.is_empty() {
                eprintln!(
                    "resume: re-running {} cell(s) whose recorded audit failed",
                    plan.stale_audit_failures.len()
                );
            }
            eprintln!(
                "resume: {} of {} cells carried forward from {path}, {} to run",
                plan.stored.len(),
                cells.len(),
                plan.to_run.len()
            );
            (plan.stored, plan.to_run)
        }
        None => (HashMap::new(), (0..cells.len()).collect()),
    };
    let run_cells: Vec<sweep::SweepCell> = to_run.iter().map(|&i| cells[i].clone()).collect();

    let wall = Instant::now();
    let cells_span = prof.span("cells");
    // The fail-soft executor isolates every cell; profiled runs also
    // thread the per-thread allocation sampler through so worker
    // telemetry carries comparable figures. Results are identical
    // either way — only telemetry differs.
    let sampler: sweep::ThreadAllocSampler = if P::ENABLED {
        Some(thread_alloc_count)
    } else {
        None
    };
    let run = sweep::run_cells_failsoft(
        &run_cells,
        threads,
        opts.hist,
        opts.audit,
        &opts.faults,
        &failsoft,
        sampler,
    );
    if P::ENABLED {
        extras.workers = run.workers.clone();
    }
    drop(cells_span);
    let elapsed = wall.elapsed();

    let _span = prof.span("render");
    let document = if opts.json {
        // --resume is CSV-only (validated), so every row here is fresh.
        let rows: Vec<CellRow> = run.rows().cloned().collect();
        sweep::sweep_json(&rows) + "\n"
    } else {
        // Splice in cell-index order: a fresh row where this run
        // produced one, the stored row where the manifest carried one
        // forward. A failed cell leaves no row — the CSV is the partial
        // result, the manifest records why.
        let fresh: HashMap<usize, &CellRow> = run
            .executions
            .iter()
            .filter_map(|e| e.outcome.row().map(|r| (e.index, r)))
            .collect();
        let per_row = if opts.explain { 128 } else { 96 };
        let mut doc = String::with_capacity(cells.len() * per_row + 160);
        doc.push_str(&gates.header());
        for i in 0..cells.len() {
            if let Some(row) = fresh.get(&i) {
                doc.push_str(&gates.row(row));
            } else if let Some(row) = stored.get(&i).and_then(|m| m.status.row()) {
                doc.push_str(row);
                doc.push('\n');
            }
        }
        doc
    };
    let aggregate = if !opts.json && opts.hist {
        let rows: Vec<CellRow> = run.rows().cloned().collect();
        SweepAggregate::fold(&rows).map(|agg| agg.render_ascii())
    } else {
        None
    };

    if let Some(path) = opts.out.as_deref() {
        write_atomic(path, document.as_bytes())
            .map_err(|e| CliError::Io(format!("failed to write {path}: {e}")))?;
        eprintln!("wrote {path}");
    } else {
        print!("{document}");
        if aggregate.is_some() {
            println!();
        }
    }
    if let Some(agg) = &aggregate {
        print!("{agg}");
    }
    if write_manifest {
        let out = opts.out.as_deref().expect("write_manifest implies --out");
        let fresh: HashMap<usize, &sweep::CellExecution> =
            run.executions.iter().map(|e| (e.index, e)).collect();
        let mut entries: Vec<ManifestCell> = Vec::with_capacity(cells.len());
        for i in 0..cells.len() {
            if let Some(e) = fresh.get(&i) {
                entries.push(ManifestCell::from_execution(e, gates));
            } else if let Some(m) = stored.get(&i) {
                entries.push(m.clone());
            }
        }
        let man = SweepManifest {
            grid_hash: grid_hash.clone().expect("hash computed for --out"),
            cells: cells.len(),
            gates,
            audited: opts.audit,
            outcomes: entries,
        };
        let man_path = format!("{out}.manifest.json");
        write_atomic(&man_path, man.to_json())
            .map_err(|e| CliError::Io(format!("failed to write {man_path}: {e}")))?;
        eprintln!("wrote {man_path}");
    }
    if opts.explain && !opts.json {
        // Per-trace stall-by-cause tables on stderr, so stdout stays
        // machine-readable CSV.
        let mut tables: Vec<(String, Vec<BreakdownRow>)> = Vec::new();
        for o in run.rows() {
            let row = BreakdownRow::new(o.report.clone());
            match tables.iter_mut().find(|(t, _)| *t == o.report.trace) {
                Some((_, rows)) => rows.push(row),
                None => tables.push((o.report.trace.clone(), vec![row])),
            }
        }
        for (trace_name, rows) in &tables {
            eprint!("{}", explain_table(trace_name, rows));
        }
    }
    eprintln!(
        "({} cells on {} thread(s) in {:.2?})",
        run.executions.len(),
        threads,
        elapsed
    );
    let failures = run.failures();
    if failures > 0 {
        eprint!("{}", failsoft_summary(&cells, &run.executions));
        match opts.out.as_deref() {
            Some(out) if !opts.json => eprintln!("resume with: --resume {out}.manifest.json"),
            _ => eprintln!("hint: add --out <path> to get a resumable failure manifest"),
        }
    }
    if opts.audit {
        // Carried-forward cells were already audited clean (dirty ones
        // re-ran); fresh rows carry their verdicts.
        let mut bad = 0usize;
        let mut audited_cells = stored.len();
        for e in &run.executions {
            if let (Some(row), Some(audit)) = (e.outcome.row(), e.audit.as_ref()) {
                audited_cells += 1;
                if !audit.is_clean() {
                    bad += 1;
                    eprintln!(
                        "audit FAILED for {}/{}/{} disk(s):",
                        row.report.trace, row.report.policy, row.report.disks
                    );
                    for v in &audit.violations {
                        eprintln!("  {v}");
                    }
                    if audit.suppressed > 0 {
                        eprintln!("  ... and {} more suppressed", audit.suppressed);
                    }
                }
            }
        }
        if bad > 0 {
            eprintln!("audit: {bad}/{audited_cells} cells FAILED");
            std::process::exit(1);
        }
        eprintln!("audit: all {audited_cells} cells clean");
    }
    if failures > 0 {
        // Partial results (and, with --out, the manifest) are already on
        // disk; the exit status still says the sweep did not finish.
        std::process::exit(1);
    }
    Ok(())
}

/// `--fuzz` mode: run the differential fuzzer and exit nonzero on any
/// audit violation or audited/unaudited divergence.
fn fuzz_main<P: Prof>(opts: &Options, cases: usize, prof: &P) {
    let _span = prof.span("fuzz");
    let threads = opts.threads.unwrap_or_else(sweep::default_threads);
    let wall = Instant::now();
    let seed = opts.seed.unwrap_or(parcache_bench::SEED);
    let report = if opts.differential {
        parcache_bench::fuzz_differential(seed, cases, threads)
    } else {
        parcache_bench::fuzz(seed, cases, threads)
    };
    println!("{report}");
    eprintln!("({} runs in {:.2?})", report.runs, wall.elapsed());
    if !report.is_clean() {
        for f in &report.failures {
            eprintln!("case {} under {}:", f.case, f.policy.name());
            for d in &f.details {
                eprintln!("  {d}");
            }
        }
        std::process::exit(1);
    }
}

/// `--bench` / `--bench-smoke` / `--bench-engine`: the continuous
/// benchmark harness.
///
/// Smoke mode prints the smoke-sweep JSON to stdout and, when
/// `--baseline` names a committed `BENCH_sweep.json`, applies the 25%
/// cells/sec regression gate. Engine mode runs only the per-policy
/// stress bench, prints the engine JSON (schema v2) to stdout, and with
/// `--baseline <BENCH_engine.json>` applies the per-policy throughput,
/// allocation-ceiling, and forestall/demand-gap gates. Full mode
/// additionally replays the complete appendix-A grid at 1/2/4 threads
/// and the engine stress trace, writing `BENCH_sweep.json` and
/// `BENCH_engine.json`. Sweep-based modes apply the scaling-efficiency
/// gate on machines with at least two effective cores (elsewhere it
/// skips with a note).
fn bench_main<P: Prof>(opts: &Options, prof: &P) -> Result<(), CliError> {
    let _span = prof.span("bench");
    let alloc: &dyn Fn() -> u64 = &alloc_count;
    if opts.bench_engine {
        eprintln!(
            "benchmarking: engine stress trace ({} passes x {} blocks, {} disks)...",
            bench::STRESS_PASSES,
            bench::STRESS_LOOP_BLOCKS,
            bench::STRESS_DISKS
        );
        let engine_span = prof.span("engine-bench");
        let engine_bench = bench::run_engine_bench(Some(alloc));
        drop(engine_span);
        for (policy, stage) in &engine_bench.runs {
            eprintln!(
                "{policy}: {} events in {:.2}s ({:.0} events/sec)",
                stage.units,
                stage.wall.as_secs_f64(),
                stage.per_sec()
            );
        }
        if let Some(path) = opts.baseline.as_deref() {
            let baseline = std::fs::read_to_string(path)
                .map_err(|e| CliError::Io(format!("failed to read baseline {path}: {e}")))?;
            match bench::check_engine(&engine_bench, &baseline) {
                Ok(verdict) => eprintln!("{verdict}"),
                Err(verdict) => {
                    eprintln!("BENCH ENGINE: {verdict}");
                    std::process::exit(1);
                }
            }
        }
        println!("{}", bench::engine_bench_json(&engine_bench));
        return Ok(());
    }
    let full = opts.bench;
    eprintln!(
        "benchmarking: smoke sweep ({} traces)...",
        bench::SMOKE_TRACES.len()
    );
    let sweep_span = prof.span("sweep-bench");
    let sweep_bench = bench::run_sweep_bench(full, Some(alloc), Some(thread_alloc_count));
    drop(sweep_span);
    eprintln!(
        "smoke: {} cells in {:.2}s ({:.1} cells/sec)",
        sweep_bench.smoke.units,
        sweep_bench.smoke.wall.as_secs_f64(),
        sweep_bench.smoke.per_sec()
    );
    if let Some(stage) = &sweep_bench.smoke_scaling {
        eprintln!(
            "smoke @ {} threads: {} cells in {:.2}s ({:.1} cells/sec)",
            bench::SCALING_GATE_THREADS,
            stage.units,
            stage.wall.as_secs_f64(),
            stage.per_sec()
        );
    }
    for (threads, stage) in &sweep_bench.scaling {
        let eff = match sweep_bench.scaling_efficiency(*threads) {
            Some(e) => format!(", efficiency {e:.3}"),
            None => String::new(),
        };
        eprintln!(
            "full grid @ {threads} thread(s): {} cells in {:.2}s ({:.1} cells/sec{eff})",
            stage.units,
            stage.wall.as_secs_f64(),
            stage.per_sec()
        );
    }
    if full && !sweep_bench.parallelism.scaling_measurable() {
        eprintln!(
            "note: effective parallelism {:.2} (available {}, cgroup quota {}) — \
             scaling not measurable; full grid ran single-threaded only",
            sweep_bench.parallelism.effective,
            sweep_bench.parallelism.available,
            sweep_bench
                .parallelism
                .cgroup_quota
                .map_or("unbounded".to_string(), |q| format!("{q:.2}")),
        );
    }

    if let Some(path) = opts.baseline.as_deref() {
        let baseline = std::fs::read_to_string(path)
            .map_err(|e| CliError::Io(format!("failed to read baseline {path}: {e}")))?;
        match bench::check_regression(&sweep_bench.smoke, &baseline) {
            Ok(verdict) => eprintln!("{verdict}"),
            Err(verdict) => {
                eprintln!("BENCH REGRESSION: {verdict}");
                std::process::exit(1);
            }
        }
    }

    match bench::check_scaling(&sweep_bench) {
        Ok(verdict) => eprintln!("{verdict}"),
        Err(verdict) => {
            eprintln!("BENCH SCALING: {verdict}");
            std::process::exit(1);
        }
    }

    if !full {
        println!("{}", bench::sweep_bench_json(&sweep_bench));
        return Ok(());
    }

    eprintln!(
        "benchmarking: engine stress trace ({} passes x {} blocks, {} disks)...",
        bench::STRESS_PASSES,
        bench::STRESS_LOOP_BLOCKS,
        bench::STRESS_DISKS
    );
    let engine_span = prof.span("engine-bench");
    let engine_bench = bench::run_engine_bench(Some(alloc));
    drop(engine_span);
    for (policy, stage) in &engine_bench.runs {
        eprintln!(
            "{policy}: {} events in {:.2}s ({:.0} events/sec)",
            stage.units,
            stage.wall.as_secs_f64(),
            stage.per_sec()
        );
    }

    for (path, contents) in [
        ("BENCH_sweep.json", bench::sweep_bench_json(&sweep_bench)),
        ("BENCH_engine.json", bench::engine_bench_json(&engine_bench)),
    ] {
        write_atomic(path, contents + "\n")
            .map_err(|e| CliError::Io(format!("failed to write {path}: {e}")))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn print_histograms(policy: &str, disks: usize, m: &RunMetrics) {
    println!("--- {policy} on {disks} disk(s) ---");
    print!(
        "{}",
        m.fetch_service
            .render_ascii("fetch service time", Unit::Millis)
    );
    print!(
        "{}",
        m.fetch_response
            .render_ascii("fetch response time", Unit::Millis)
    );
    print!(
        "{}",
        m.stall_duration
            .render_ascii("stall duration", Unit::Millis)
    );
    print!(
        "{}",
        m.queue_depth
            .render_ascii("queue depth at enqueue", Unit::Count)
    );
    println!();
}

fn main() {
    match real_main() {
        Ok(()) => {}
        Err(e) => {
            eprintln!("{e}");
            if matches!(e, CliError::Usage(_)) {
                eprintln!("{USAGE}");
            }
            std::process::exit(e.exit_code());
        }
    }
}

fn real_main() -> Result<(), CliError> {
    let opts = parse_args(std::env::args().skip(1).collect())?;
    validate(&opts)?;
    match opts.profile.clone() {
        // No --profile: monomorphize every mode with the no-op profiler,
        // compiling the instrumentation out entirely.
        None => dispatch(&opts, &NoopProf, &mut ProfileExtras::default()),
        Some(path) => {
            let prof = WallProf::with_alloc_sampler(alloc_count);
            let mut extras = ProfileExtras::default();
            let result = dispatch(&opts, &prof, &mut extras);
            write_profile(&path, &prof, &extras)?;
            result
        }
    }
}

/// Routes the parsed command line to its mode, generic over the
/// profiler so the default path pays nothing for instrumentation.
fn dispatch<P: Prof>(opts: &Options, prof: &P, extras: &mut ProfileExtras) -> Result<(), CliError> {
    if let Some(cases) = opts.fuzz {
        fuzz_main(opts, cases, prof);
        return Ok(());
    }
    if opts.bench || opts.bench_smoke || opts.bench_engine {
        return bench_main(opts, prof);
    }
    if opts.sweep {
        return sweep_main(opts, prof, extras);
    }
    single_main(opts, prof)
}

/// Writes the `--profile` outputs: the JSON document to `path` and the
/// flamegraph-compatible folded stacks to `path.folded`.
fn write_profile(path: &str, prof: &WallProf, extras: &ProfileExtras) -> Result<(), CliError> {
    let folded = prof.folded();
    let workers: Vec<String> = extras.workers.iter().map(|w| w.to_json()).collect();
    let (hits, misses) = trace_cache_stats();
    let json = format!(
        r#"{{"wall_us":{},"parallelism":{},"trace_cache":{{"hits":{},"misses":{}}},"workers":[{}],"spans":{}}}"#,
        prof.wall_us(),
        detect_parallelism().to_json(),
        hits,
        misses,
        workers.join(","),
        prof.spans_json(),
    );
    write_atomic(path, json + "\n")
        .map_err(|e| CliError::Io(format!("failed to write {path}: {e}")))?;
    let folded_path = format!("{path}.folded");
    write_atomic(&folded_path, folded)
        .map_err(|e| CliError::Io(format!("failed to write {folded_path}: {e}")))?;
    eprintln!("profile: wrote {path} and {folded_path}");
    Ok(())
}

/// Single-run mode: one trace, one or more policies and array sizes.
fn single_main<P: Prof>(opts: &Options, prof: &P) -> Result<(), CliError> {
    let _span = prof.span("single");
    let trace_name = opts
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or("synth");
    let policy_arg = opts.positional.get(1).map(String::as_str).unwrap_or("all");
    let disks: Vec<usize> = match opts.positional.get(2) {
        Some(s) => parse_disks(s)?,
        None => DISK_COUNTS.to_vec(),
    };

    let policies = parse_policies(policy_arg);
    if policies.is_empty() {
        return Err(CliError::Usage(format!(
            "unknown policy {policy_arg}; choose one of: all {}",
            PolicyKind::ALL.map(|k| k.name()).join(" ")
        )));
    }

    // A path loads a user trace file; otherwise use the paper's traces.
    let trace_span = prof.span("trace");
    let t = resolve_trace(trace_name)?;
    drop(trace_span);
    let stats = t.stats();
    if !opts.json {
        println!(
            "trace {trace_name}: {} reads, {} distinct, {:.1}s compute, cache {} blocks",
            stats.reads,
            stats.distinct_blocks,
            stats.compute.as_secs_f64(),
            t.cache_blocks
        );
    }

    let probed = opts.json || opts.hist || opts.events.is_some();
    let mut event_log = match opts.events.as_ref() {
        Some(path) => match AtomicFile::create(path) {
            Ok(f) => Some(std::io::BufWriter::new(f)),
            Err(e) => return Err(CliError::Io(format!("failed to create {path}: {e}"))),
        },
        None => None,
    };

    let mut results: Vec<(Report, Option<RunMetrics>)> = Vec::new();
    let mut audit_failures: Vec<String> = Vec::new();
    let wall = Instant::now();
    let runs_span = prof.span("runs");
    // validate() has already pinned --hints to at most one source here.
    let hint_mode = opts
        .hints
        .as_deref()
        .and_then(|h| h.first().copied())
        .unwrap_or(HintMode::Oracle);
    for &d in &disks {
        let cfg = SimConfig::for_trace(d, &t).with_hint_mode(hint_mode);
        // An empty --faults plan leaves the config untouched, keeping
        // healthy-run output byte-identical.
        let cfg = if opts.faults.is_empty() {
            cfg
        } else {
            cfg.with_faults(opts.faults.clone())
        };
        for &kind in &policies {
            let (report, metrics) = if probed {
                let mut probe = CliProbe {
                    metrics: MetricsProbe::for_disks(d),
                    log: event_log.as_mut(),
                };
                let report = simulate_probed(&t, kind, &cfg, &mut probe);
                (report, Some(probe.metrics.finish()))
            } else {
                (run(&t, kind, &cfg), None)
            };
            if opts.audit {
                let (audited, outcome) = parcache_core::simulate_audited(&t, kind, &cfg);
                let mut lines = Vec::new();
                for v in &outcome.violations {
                    lines.push(format!("  {v}"));
                }
                if outcome.suppressed > 0 {
                    lines.push(format!("  ... and {} more suppressed", outcome.suppressed));
                }
                if audited != report {
                    lines.push("  audited rerun diverged from the plain run".to_string());
                }
                if !lines.is_empty() {
                    audit_failures.push(format!(
                        "audit FAILED for {}/{}/{} disk(s):\n{}",
                        report.trace,
                        report.policy,
                        report.disks,
                        lines.join("\n")
                    ));
                }
            }
            results.push((report, metrics));
        }
    }
    drop(runs_span);
    let elapsed = wall.elapsed();

    if let Some(w) = event_log.take() {
        // Publish the event log: flush the buffer, then rename the
        // temporary into place.
        let file = w
            .into_inner()
            .map_err(|e| CliError::Io(format!("failed to flush event log: {e}")))?;
        file.commit()
            .map_err(|e| CliError::Io(format!("failed to publish event log: {e}")))?;
    }

    let _render = prof.span("render");
    if opts.json {
        let runs: Vec<String> = results
            .iter()
            .map(|(report, metrics)| match metrics {
                Some(m) => format!(
                    r#"{{"report":{},"metrics":{}}}"#,
                    report.to_json(),
                    m.to_json()
                ),
                None => format!(r#"{{"report":{}}}"#, report.to_json()),
            })
            .collect();
        println!(
            r#"{{"trace":"{}","reads":{},"distinct_blocks":{},"cache_blocks":{},"runs":[{}]}}"#,
            parcache_core::metrics::json_escape(trace_name),
            stats.reads,
            stats.distinct_blocks,
            t.cache_blocks,
            runs.join(",")
        );
    } else {
        let rows: Vec<BreakdownRow> = results
            .iter()
            .map(|(r, _)| BreakdownRow::new(r.clone()))
            .collect();
        println!("{}", breakdown_table(trace_name, &rows));
        for (report, _) in &results {
            if let Some(h) = &report.hints {
                println!(
                    "hints {}: {}/{} predictions correct over {} references \
                     (precision {:.4}, recall {:.4}) for {} on {} disk(s)",
                    h.source,
                    h.correct,
                    h.predicted,
                    h.references,
                    h.precision(),
                    h.recall(),
                    report.policy,
                    report.disks
                );
            }
        }
        if opts.explain {
            println!("{}", explain_table(trace_name, &rows));
        }
        if opts.hist {
            for (report, metrics) in &results {
                if let Some(m) = metrics {
                    print_histograms(&report.policy, report.disks, m);
                }
            }
        }
    }
    eprintln!("({} runs in {:.2?})", results.len(), elapsed);
    if opts.audit {
        if !audit_failures.is_empty() {
            for f in &audit_failures {
                eprintln!("{f}");
            }
            eprintln!(
                "audit: {}/{} runs FAILED",
                audit_failures.len(),
                results.len()
            );
            std::process::exit(1);
        }
        eprintln!("audit: all {} runs clean", results.len());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcache_core::predict::PredictorKind;

    fn parsed(args: &[&str]) -> Result<Options, CliError> {
        parse_args(args.iter().map(|s| s.to_string()).collect())
    }

    /// Parses and validates, the way `real_main` does.
    fn checked(args: &[&str]) -> Result<Options, CliError> {
        let opts = parsed(args)?;
        validate(&opts)?;
        Ok(opts)
    }

    fn assert_usage(args: &[&str]) {
        match checked(args) {
            Err(e @ CliError::Usage(_)) => assert_eq!(e.exit_code(), 2, "{args:?}"),
            Err(e) => panic!("{args:?} should be a usage error, got {e}"),
            Ok(_) => panic!("{args:?} should be rejected as a usage error"),
        }
    }

    #[test]
    fn hints_flag_parses_a_source_list() {
        let opts = parsed(&["--sweep", "--hints", "oracle,seq,markov,mithril"]).unwrap();
        assert_eq!(
            opts.hints,
            Some(vec![
                HintMode::Oracle,
                HintMode::Predicted(PredictorKind::Sequential),
                HintMode::Predicted(PredictorKind::Markov),
                HintMode::Predicted(PredictorKind::Mithril),
            ])
        );
        assert!(parsed(&["--hints"]).is_err());
        assert!(parsed(&["--hints", "psychic"]).is_err());
    }

    #[test]
    fn contradictory_flag_combinations_exit_2() {
        // Mode flags are mutually exclusive.
        assert_usage(&["--bench", "--sweep"]);
        assert_usage(&["--bench-smoke", "--sweep"]);
        assert_usage(&["--bench", "--bench-smoke"]);
        assert_usage(&["--bench", "--bench-engine"]);
        assert_usage(&["--bench-smoke", "--bench-engine"]);
        assert_usage(&["--bench-engine", "--sweep"]);
        assert_usage(&["--bench-engine", "--fuzz", "10"]);
        assert_usage(&["--bench", "--fuzz", "10"]);
        assert_usage(&["--fuzz", "10", "--sweep"]);
        // Flags that only make sense for one mode.
        assert_usage(&["--sweep", "--baseline", "BENCH_sweep.json"]);
        assert_usage(&["--bench", "--baseline", "BENCH_sweep.json"]);
        assert_usage(&["--sweep", "--differential"]);
        assert_usage(&["--bench", "--differential"]);
        assert_usage(&["synth", "all", "4", "--differential"]);
        assert_usage(&["--sweep", "--seed", "7"]);
        assert_usage(&["synth", "all", "4", "--seed", "7"]);
        assert_usage(&["synth", "--threads", "4"]);
        assert_usage(&["--bench", "--threads", "4"]);
        assert_usage(&["--sweep", "--events", "out.jsonl"]);
        assert_usage(&["--fuzz", "10", "--events", "out.jsonl"]);
        assert_usage(&["--fuzz", "10", "--explain"]);
        assert_usage(&["--bench", "--explain"]);
        assert_usage(&["--fuzz", "10", "--audit"]);
        assert_usage(&["--fuzz", "10", "--hist"]);
        assert_usage(&["--fuzz", "10", "--json"]);
        assert_usage(&["--fuzz", "10", "--faults", "flaky:*:0.01"]);
        assert_usage(&["--fuzz", "10", "--hints", "seq"]);
        assert_usage(&["--bench", "--hints", "seq"]);
        assert_usage(&["--fuzz", "10", "synth"]);
        assert_usage(&["--bench", "synth"]);
        // Single runs take exactly one hint source.
        assert_usage(&["synth", "all", "4", "--hints", "seq,markov"]);
        // Fail-soft flags are sweep-only.
        assert_usage(&["synth", "all", "4", "--out", "x.csv"]);
        assert_usage(&["--bench", "--out", "x.csv"]);
        assert_usage(&["synth", "all", "4", "--cell-timeout", "1000"]);
        assert_usage(&["--fuzz", "10", "--cell-timeout", "1000"]);
        assert_usage(&["synth", "all", "4", "--max-cell-retries", "2"]);
        assert_usage(&["synth", "all", "4", "--fail-fast"]);
        assert_usage(&["--bench", "--fail-fast"]);
        assert_usage(&["synth", "all", "4", "--resume", "x.csv.manifest.json"]);
        assert_usage(&["--fuzz", "10", "--resume", "x.csv.manifest.json"]);
        // --resume splices CSV rows; JSON and histogram modes have no
        // stored form to splice into.
        assert_usage(&["--sweep", "--resume", "m.json", "--json"]);
        assert_usage(&["--sweep", "--resume", "m.json", "--hist"]);
    }

    #[test]
    fn well_formed_invocations_validate() {
        for args in [
            &["--sweep", "--threads", "4", "--hints", "seq,markov"][..],
            &["--sweep", "synth", "all", "1,2", "--audit", "--explain"],
            &["--fuzz", "10", "--seed", "7", "--threads", "2"],
            &["--fuzz", "300", "--differential", "--threads", "2"],
            &["--bench-smoke", "--baseline", "BENCH_sweep.json"],
            &["--bench-engine", "--baseline", "BENCH_engine.json"],
            &["--bench-engine"],
            &["synth", "forestall", "4", "--hints", "mithril", "--json"],
            &["synth", "all", "1,2", "--faults", "flaky:*:0.01,seed:7"],
            &["--sweep", "--out", "sweep.csv", "--cell-timeout", "5000"],
            &["--sweep", "--max-cell-retries", "2", "--fail-fast"],
            &[
                "--sweep",
                "--resume",
                "sweep.csv.manifest.json",
                "--out",
                "sweep.csv",
            ],
            &["--sweep", "--resume", "m.json", "--audit", "--explain"],
            &["--sweep", "--out", "sweep.json", "--json"],
        ] {
            assert!(checked(args).is_ok(), "{args:?} should validate");
        }
    }

    #[test]
    fn failsoft_flags_parse_their_values() {
        let opts = parsed(&[
            "--sweep",
            "--out",
            "sweep.csv",
            "--resume",
            "old.csv.manifest.json",
            "--cell-timeout",
            "2500",
            "--max-cell-retries",
            "3",
            "--fail-fast",
        ])
        .unwrap();
        assert_eq!(opts.out.as_deref(), Some("sweep.csv"));
        assert_eq!(opts.resume.as_deref(), Some("old.csv.manifest.json"));
        assert_eq!(opts.cell_timeout, Some(2500));
        assert_eq!(opts.max_cell_retries, 3);
        assert!(opts.fail_fast);
        // Malformed values are rejected at parse time.
        assert!(parsed(&["--sweep", "--cell-timeout", "0"]).is_err());
        assert!(parsed(&["--sweep", "--cell-timeout", "soon"]).is_err());
        assert!(parsed(&["--sweep", "--max-cell-retries", "-1"]).is_err());
        assert!(parsed(&["--sweep", "--out"]).is_err());
        assert!(parsed(&["--sweep", "--resume"]).is_err());
    }

    #[test]
    fn single_run_picks_up_the_one_allowed_hint_source() {
        let opts = checked(&["synth", "all", "4", "--hints", "markov"]).unwrap();
        assert_eq!(
            opts.hints.as_deref().and_then(|h| h.first().copied()),
            Some(HintMode::Predicted(PredictorKind::Markov))
        );
    }

    #[test]
    fn allocation_counters_observe_an_allocation() {
        let before_total = alloc_count();
        let before_local = thread_alloc_count();
        let v: Vec<u64> = Vec::with_capacity(32);
        assert!(alloc_count() > before_total);
        assert!(thread_alloc_count() > before_local);
        drop(v);
    }

    #[test]
    fn thread_counter_starts_fresh_per_thread() {
        // Warm the main thread's counter well past zero.
        let _v: Vec<u64> = Vec::with_capacity(8);
        assert!(thread_alloc_count() > 0);
        let (before, after) = std::thread::spawn(|| {
            let before = thread_alloc_count();
            let v: Vec<u64> = Vec::with_capacity(8);
            let after = thread_alloc_count();
            drop(v);
            (before, after)
        })
        .join()
        .unwrap();
        assert!(after > before);
        // A fresh thread's counter reflects only its own few startup
        // allocations, not the process history.
        assert!(before < 100, "fresh thread counter started at {before}");
    }

    #[test]
    fn sharded_total_sees_every_thread() {
        let before = alloc_count();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let v: Vec<u8> = Vec::with_capacity(128);
                    drop(v);
                });
            }
        });
        assert!(alloc_count() >= before + 4);
    }

    #[test]
    fn work_allocs_are_thread_count_invariant_under_real_allocator() {
        // Each item allocates a deterministic amount; the summed
        // per-item figure sampled from the real thread-local counter
        // must not depend on the worker count. This is the pinned form
        // of the old drift bug, where the comparable bench number moved
        // by dozens of allocations between --threads values.
        let run = |i: usize| -> usize {
            let mut v = Vec::new();
            for k in 0..(i % 5) + 1 {
                v.push(vec![k as u8; 64]);
            }
            v.len()
        };
        let totals: Vec<u64> = [1usize, 2, 4]
            .iter()
            .map(|&threads| {
                let (results, workers) = parcache_bench::run_indexed_measured(
                    12,
                    threads,
                    Some(thread_alloc_count),
                    run,
                );
                assert_eq!(results.len(), 12);
                workers.iter().map(|w| w.work_allocs).sum()
            })
            .collect();
        assert!(totals[0] > 0);
        assert_eq!(totals[0], totals[1]);
        assert_eq!(totals[0], totals[2]);
    }
}
