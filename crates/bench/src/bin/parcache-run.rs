//! Ad-hoc experiment runner.
//!
//! ```sh
//! parcache-run <trace> [policy] [disks] [--json] [--events <path>] [--hist]
//! parcache-run synth aggressive 1,2,3,4
//! parcache-run postgres-select all 1,2,4,8,16
//! parcache-run ./my-app.trace forestall 1,2,4   # your own trace file
//! parcache-run glimpse forestall 4 --json       # machine-readable report
//! parcache-run glimpse forestall 4 --hist       # ASCII latency histograms
//! parcache-run glimpse forestall 4 --events events.jsonl
//!
//! parcache-run --sweep [traces] [algos] [disks] [--threads N] [--json] [--hist]
//! parcache-run --sweep                           # full appendix-A grid, CSV
//! parcache-run --sweep all all --threads 4 --json
//! parcache-run --sweep dinero,cscope1 aggressive,tuned-reverse 1,2,4
//!
//! parcache-run --bench                               # full benchmark, writes BENCH_*.json
//! parcache-run --bench-smoke [--baseline BENCH_sweep.json]
//! parcache-run --fuzz 200 [--seed S] [--threads N]   # differential fuzzer
//! parcache-run --sweep --audit                       # audited sweep
//! parcache-run glimpse forestall 4 --audit           # audited single runs
//! parcache-run glimpse forestall 4 --faults outage:0:100:400
//! parcache-run --sweep --faults flaky:*:0.01,seed:7  # degraded-array sweep
//! ```
//!
//! The trace argument is one of the paper's trace names, or a path to a
//! trace file in the `parcache-trace` text format.
//!
//! * `--json` prints one JSON document (report + counters + histograms +
//!   per-disk timeline per run) instead of the human table.
//! * `--events <path>` streams every simulation event to `path` as JSON
//!   lines.
//! * `--hist` prints ASCII histogram tables (service, response, stall,
//!   queue depth) after the breakdown table.
//!
//! Any of the three attaches a metrics probe to the engine; without them
//! the run uses the zero-cost no-op probe.
//!
//! `--sweep` expands a trace × algorithm × disk-count grid and runs the
//! cells on `--threads` workers (default: all available cores). Traces
//! and algorithms accept `all` or comma-separated lists; algorithms are
//! the appendix-A names (`demand`, `fixed-horizon`, `aggressive`,
//! `tuned-reverse`, `forestall`); omitted disk counts default to each
//! trace's published appendix-A array sizes. Output is CSV (or one JSON
//! document with `--json`; `--hist` attaches probes and adds aggregate
//! histograms) and is byte-identical for every `--threads` value — only
//! wall-clock time changes. `--events` is not available under `--sweep`.
//!
//! * `--audit` reruns every cell (or run) under the conservation-checking
//!   audit probe. Stdout is unchanged — the audited rerun only verifies;
//!   violations go to stderr and the exit status becomes 1.
//! * `--fuzz <n>` runs the differential fuzzer for `n` generated cases
//!   (each case runs every policy, plain and audited) and exits nonzero
//!   on any violation or divergence. `--seed <s>` picks the stream
//!   (default 1996); `--threads` applies.
//! * `--bench` runs the continuous benchmark harness: the smoke sweep
//!   subset, the full appendix-A grid at 1/2/4 worker threads, and the
//!   synthetic engine stress trace under every policy. Results (wall
//!   time, cells/sec, simulated events/sec, allocation counts) are
//!   written to `BENCH_sweep.json` and `BENCH_engine.json` in the
//!   current directory.
//! * `--bench-smoke` runs only the smoke subset and prints its JSON to
//!   stdout; with `--baseline <path>` it compares cells/sec against a
//!   committed `BENCH_sweep.json` and exits 1 on a regression beyond
//!   the harness tolerance (25%).
//! * `--faults <spec>` runs everything under a deterministic fault plan
//!   (single runs and sweeps). The spec is comma-separated
//!   `flaky:<disk|*>:<p>`, `slow:<disk|*>:<from_ms>:<until_ms>:<factor>`,
//!   `outage:<disk|*>:<from_ms>:<until_ms>`, and `seed:<u64>` clauses;
//!   reports and sweep CSV grow fault-accounting fields. Output stays
//!   byte-identical across `--threads` values.

use parcache_bench::bench;
use parcache_bench::sweep::{self, SweepAggregate, SweepEntry, SweepSpec};
use parcache_bench::{breakdown_table, run, trace, Algo, BreakdownRow, DISK_COUNTS};
use parcache_core::engine::simulate_probed;
use parcache_core::metrics::{MetricsProbe, RunMetrics, Unit};
use parcache_core::policy::PolicyKind;
use parcache_core::probe::{Event, Probe};
use parcache_core::{Report, SimConfig};
use parcache_disk::FaultPlan;
use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

/// A pass-through global allocator that counts allocation calls, so the
/// benchmark harness can report per-stage allocation totals. The library
/// crates stay `forbid(unsafe_code)`; the counter lives only in this
/// binary. One relaxed atomic increment per allocation is noise next to
/// the allocation itself.
mod counting_alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Total allocation calls (alloc + realloc + alloc_zeroed) so far.
    pub static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

    /// The counting wrapper around the system allocator.
    pub struct CountingAlloc;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc_zeroed(layout) }
        }
    }
}

#[global_allocator]
static ALLOC: counting_alloc::CountingAlloc = counting_alloc::CountingAlloc;

/// Reads the process-wide allocation counter.
fn alloc_count() -> u64 {
    counting_alloc::ALLOCATIONS.load(std::sync::atomic::Ordering::Relaxed)
}

/// One-screen usage summary, printed alongside argument errors.
const USAGE: &str = "\
usage: parcache-run <trace> [policy] [disks] [--json] [--hist] [--audit]
                    [--events <path>] [--faults <spec>]
       parcache-run --sweep [traces] [algos] [disks] [--threads N]
                    [--json] [--hist] [--audit] [--faults <spec>]
       parcache-run --fuzz <n> [--seed <s>] [--threads N]
       parcache-run --bench
       parcache-run --bench-smoke [--baseline <BENCH_sweep.json>]

traces:  paper trace names (or `all`), or a path to a trace file
faults:  comma-separated flaky:<disk|*>:<p>, slow:<disk|*>:<from_ms>:<until_ms>:<factor>,
         outage:<disk|*>:<from_ms>:<until_ms>, seed:<u64>";

/// What stopped the CLI: a bad invocation (exit 2, with usage) or a
/// runtime I/O failure (exit 1).
#[derive(Debug)]
enum CliError {
    /// The command line does not parse or names something unknown.
    Usage(String),
    /// An I/O operation on behalf of the user failed.
    Io(String),
}

impl CliError {
    fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Io(_) => 1,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) | CliError::Io(msg) => write!(f, "{msg}"),
        }
    }
}

fn parse_policies(arg: &str) -> Vec<PolicyKind> {
    if arg == "all" {
        return PolicyKind::ALL.to_vec();
    }
    PolicyKind::ALL
        .into_iter()
        .filter(|k| k.name() == arg)
        .collect()
}

/// The probe the CLI attaches when any observability flag is set: folds
/// metrics, and optionally streams each event as a JSON line.
struct CliProbe<'a> {
    metrics: MetricsProbe,
    log: Option<&'a mut std::io::BufWriter<std::fs::File>>,
}

impl Probe for CliProbe<'_> {
    fn on_event(&mut self, event: &Event) {
        self.metrics.on_event(event);
        if let Some(w) = self.log.as_deref_mut() {
            writeln!(w, "{}", event.to_json()).unwrap_or_else(|e| {
                eprintln!("failed to write event log: {e}");
                std::process::exit(1);
            });
        }
    }
}

struct Options {
    json: bool,
    hist: bool,
    sweep: bool,
    audit: bool,
    fuzz: Option<usize>,
    bench: bool,
    bench_smoke: bool,
    baseline: Option<String>,
    seed: u64,
    threads: Option<usize>,
    events: Option<String>,
    faults: FaultPlan,
    positional: Vec<String>,
}

fn parse_args(args: Vec<String>) -> Result<Options, CliError> {
    let mut opts = Options {
        json: false,
        hist: false,
        sweep: false,
        audit: false,
        fuzz: None,
        bench: false,
        bench_smoke: false,
        baseline: None,
        seed: parcache_bench::SEED,
        threads: None,
        events: None,
        faults: FaultPlan::default(),
        positional: Vec::new(),
    };
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => opts.json = true,
            "--hist" => opts.hist = true,
            "--sweep" => opts.sweep = true,
            "--audit" => opts.audit = true,
            "--fuzz" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => opts.fuzz = Some(n),
                _ => {
                    return Err(CliError::Usage(
                        "--fuzz requires a positive case count".to_string(),
                    ))
                }
            },
            "--bench" => opts.bench = true,
            "--bench-smoke" => opts.bench_smoke = true,
            "--baseline" => match it.next() {
                Some(p) => opts.baseline = Some(p),
                None => {
                    return Err(CliError::Usage(
                        "--baseline requires a path to a BENCH_sweep.json".to_string(),
                    ))
                }
            },
            "--seed" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(s) => opts.seed = s,
                None => {
                    return Err(CliError::Usage(
                        "--seed requires an unsigned integer".to_string(),
                    ))
                }
            },
            "--threads" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => opts.threads = Some(n),
                _ => {
                    return Err(CliError::Usage(
                        "--threads requires a positive integer".to_string(),
                    ))
                }
            },
            "--events" => match it.next() {
                Some(p) => opts.events = Some(p),
                None => return Err(CliError::Usage("--events requires a path".to_string())),
            },
            "--faults" => match it.next() {
                Some(spec) => {
                    opts.faults = FaultPlan::parse(&spec)
                        .map_err(|e| CliError::Usage(format!("bad --faults spec: {e}")))?;
                }
                None => {
                    return Err(CliError::Usage(
                        "--faults requires a fault-plan spec".to_string(),
                    ))
                }
            },
            f if f.starts_with("--") => {
                return Err(CliError::Usage(format!(
                    "unknown flag {f}; known flags: --json --hist --sweep --audit \
                     --fuzz <n> --bench --bench-smoke --baseline <path> \
                     --seed <s> --threads <n> --events <path> --faults <spec>"
                )))
            }
            _ => opts.positional.push(a),
        }
    }
    Ok(opts)
}

fn parse_disks(s: &str) -> Result<Vec<usize>, CliError> {
    s.split(',')
        .map(|x| match x.parse::<usize>() {
            Ok(d) if d > 0 => Ok(d),
            _ => Err(CliError::Usage(format!(
                "bad disk count {x:?}: expected positive integers like 1,2,4"
            ))),
        })
        .collect()
}

/// Resolves a trace argument: a paper trace name through the shared
/// cache, anything path-like through the trace-file loader.
fn resolve_trace(name: &str) -> Result<Arc<parcache_trace::Trace>, CliError> {
    if parcache_trace::TRACE_NAMES.contains(&name) {
        return Ok(trace(name));
    }
    if name.contains('/') || name.contains('.') {
        return match parcache_trace::load(name) {
            Ok(t) => Ok(Arc::new(t)),
            Err(e) => Err(CliError::Io(format!("failed to load {name}: {e}"))),
        };
    }
    Err(CliError::Usage(format!(
        "unknown trace {name}; choose one of: {} — or pass a path to a trace file",
        parcache_trace::TRACE_NAMES.join(" ")
    )))
}

/// `--sweep` mode: expand the grid, run it on the worker pool, print CSV
/// or JSON. The output is byte-identical for every thread count.
fn sweep_main(opts: &Options) -> Result<(), CliError> {
    if opts.events.is_some() {
        return Err(CliError::Usage(
            "--events is not supported with --sweep; run the cell on its own instead".to_string(),
        ));
    }
    let threads = opts.threads.unwrap_or_else(sweep::default_threads);
    let trace_arg = opts.positional.first().map(String::as_str).unwrap_or("all");
    let algo_arg = opts.positional.get(1).map(String::as_str).unwrap_or("all");
    let disks: Option<Vec<usize>> = match opts.positional.get(2) {
        Some(s) => Some(parse_disks(s)?),
        None => None,
    };

    let algos: Vec<Algo> = if algo_arg == "all" {
        Algo::APPENDIX_A.to_vec()
    } else {
        algo_arg
            .split(',')
            .map(|n| {
                Algo::by_name(n).ok_or_else(|| {
                    CliError::Usage(format!(
                        "unknown algorithm {n}; choose from: all demand fixed-horizon \
                         aggressive tuned-reverse forestall"
                    ))
                })
            })
            .collect::<Result<_, _>>()?
    };

    let names: Vec<&str> = if trace_arg == "all" {
        parcache_trace::TRACE_NAMES.to_vec()
    } else {
        trace_arg.split(',').collect()
    };
    let spec = if names
        .iter()
        .all(|n| parcache_trace::TRACE_NAMES.contains(n))
    {
        // Paper traces: generated in parallel through the shared cache.
        SweepSpec::named(&names, &algos, disks.as_deref(), threads)
    } else {
        let entries = names
            .iter()
            .map(|n| {
                Ok(SweepEntry {
                    trace: resolve_trace(n)?,
                    disks: disks.clone().unwrap_or_else(|| DISK_COUNTS.to_vec()),
                })
            })
            .collect::<Result<_, CliError>>()?;
        SweepSpec { entries, algos }
    };

    let cells = spec.cells();
    let wall = Instant::now();
    let (outcomes, audits) = if opts.audit {
        let (outcomes, audits) =
            sweep::run_sweep_cells_audited(&cells, threads, opts.hist, &opts.faults);
        (outcomes, Some(audits))
    } else {
        (
            sweep::run_sweep_cells(&cells, threads, opts.hist, &opts.faults),
            None,
        )
    };
    let elapsed = wall.elapsed();

    if opts.json {
        println!("{}", sweep::sweep_json(&outcomes));
    } else {
        print!("{}", sweep::sweep_csv(&outcomes));
        if let Some(agg) = SweepAggregate::fold(&outcomes) {
            println!();
            print!("{}", agg.render_ascii());
        }
    }
    eprintln!(
        "({} cells on {} thread(s) in {:.2?})",
        outcomes.len(),
        threads,
        elapsed
    );
    if let Some(audits) = audits {
        let mut bad = 0usize;
        for (outcome, audit) in outcomes.iter().zip(&audits) {
            if !audit.is_clean() {
                bad += 1;
                eprintln!(
                    "audit FAILED for {}/{}/{} disk(s):",
                    outcome.report.trace, outcome.report.policy, outcome.report.disks
                );
                for v in &audit.violations {
                    eprintln!("  {v}");
                }
                if audit.suppressed > 0 {
                    eprintln!("  ... and {} more suppressed", audit.suppressed);
                }
            }
        }
        if bad > 0 {
            eprintln!("audit: {bad}/{} cells FAILED", audits.len());
            std::process::exit(1);
        }
        eprintln!("audit: all {} cells clean", audits.len());
    }
    Ok(())
}

/// `--fuzz` mode: run the differential fuzzer and exit nonzero on any
/// audit violation or audited/unaudited divergence.
fn fuzz_main(opts: &Options, cases: usize) {
    let threads = opts.threads.unwrap_or_else(sweep::default_threads);
    let wall = Instant::now();
    let report = parcache_bench::fuzz(opts.seed, cases, threads);
    println!("{report}");
    eprintln!("({} runs in {:.2?})", report.runs, wall.elapsed());
    if !report.is_clean() {
        for f in &report.failures {
            eprintln!("case {} under {}:", f.case, f.policy.name());
            for d in &f.details {
                eprintln!("  {d}");
            }
        }
        std::process::exit(1);
    }
}

/// `--bench` / `--bench-smoke`: the continuous benchmark harness.
///
/// Smoke mode prints the smoke-sweep JSON to stdout and, when
/// `--baseline` names a committed `BENCH_sweep.json`, applies the 25%
/// cells/sec regression gate. Full mode additionally replays the
/// complete appendix-A grid at 1/2/4 threads and the engine stress
/// trace, writing `BENCH_sweep.json` and `BENCH_engine.json`.
fn bench_main(opts: &Options) -> Result<(), CliError> {
    let alloc: &dyn Fn() -> u64 = &alloc_count;
    let full = opts.bench;
    eprintln!(
        "benchmarking: smoke sweep ({} traces)...",
        bench::SMOKE_TRACES.len()
    );
    let sweep_bench = bench::run_sweep_bench(full, Some(alloc));
    eprintln!(
        "smoke: {} cells in {:.2}s ({:.1} cells/sec)",
        sweep_bench.smoke.units,
        sweep_bench.smoke.wall_secs,
        sweep_bench.smoke.per_sec()
    );
    for (threads, stage) in &sweep_bench.scaling {
        eprintln!(
            "full grid @ {threads} thread(s): {} cells in {:.2}s ({:.1} cells/sec)",
            stage.units,
            stage.wall_secs,
            stage.per_sec()
        );
    }

    if let Some(path) = opts.baseline.as_deref() {
        let baseline = std::fs::read_to_string(path)
            .map_err(|e| CliError::Io(format!("failed to read baseline {path}: {e}")))?;
        match bench::check_regression(&sweep_bench.smoke, &baseline) {
            Ok(verdict) => eprintln!("{verdict}"),
            Err(verdict) => {
                eprintln!("BENCH REGRESSION: {verdict}");
                std::process::exit(1);
            }
        }
    }

    if !full {
        println!("{}", bench::sweep_bench_json(&sweep_bench));
        return Ok(());
    }

    eprintln!(
        "benchmarking: engine stress trace ({} passes x {} blocks, {} disks)...",
        bench::STRESS_PASSES,
        bench::STRESS_LOOP_BLOCKS,
        bench::STRESS_DISKS
    );
    let engine_bench = bench::run_engine_bench(Some(alloc));
    for (policy, stage) in &engine_bench.runs {
        eprintln!(
            "{policy}: {} events in {:.2}s ({:.0} events/sec)",
            stage.units,
            stage.wall_secs,
            stage.per_sec()
        );
    }

    for (path, contents) in [
        ("BENCH_sweep.json", bench::sweep_bench_json(&sweep_bench)),
        ("BENCH_engine.json", bench::engine_bench_json(&engine_bench)),
    ] {
        std::fs::write(path, contents + "\n")
            .map_err(|e| CliError::Io(format!("failed to write {path}: {e}")))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn print_histograms(policy: &str, disks: usize, m: &RunMetrics) {
    println!("--- {policy} on {disks} disk(s) ---");
    print!(
        "{}",
        m.fetch_service
            .render_ascii("fetch service time", Unit::Millis)
    );
    print!(
        "{}",
        m.fetch_response
            .render_ascii("fetch response time", Unit::Millis)
    );
    print!(
        "{}",
        m.stall_duration
            .render_ascii("stall duration", Unit::Millis)
    );
    print!(
        "{}",
        m.queue_depth
            .render_ascii("queue depth at enqueue", Unit::Count)
    );
    println!();
}

fn main() {
    match real_main() {
        Ok(()) => {}
        Err(e) => {
            eprintln!("{e}");
            if matches!(e, CliError::Usage(_)) {
                eprintln!("{USAGE}");
            }
            std::process::exit(e.exit_code());
        }
    }
}

fn real_main() -> Result<(), CliError> {
    let opts = parse_args(std::env::args().skip(1).collect())?;
    if let Some(cases) = opts.fuzz {
        fuzz_main(&opts, cases);
        return Ok(());
    }
    if opts.bench || opts.bench_smoke {
        return bench_main(&opts);
    }
    if opts.sweep {
        return sweep_main(&opts);
    }
    let trace_name = opts
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or("synth");
    let policy_arg = opts.positional.get(1).map(String::as_str).unwrap_or("all");
    let disks: Vec<usize> = match opts.positional.get(2) {
        Some(s) => parse_disks(s)?,
        None => DISK_COUNTS.to_vec(),
    };

    let policies = parse_policies(policy_arg);
    if policies.is_empty() {
        return Err(CliError::Usage(format!(
            "unknown policy {policy_arg}; choose one of: all {}",
            PolicyKind::ALL.map(|k| k.name()).join(" ")
        )));
    }

    // A path loads a user trace file; otherwise use the paper's traces.
    let t = resolve_trace(trace_name)?;
    let stats = t.stats();
    if !opts.json {
        println!(
            "trace {trace_name}: {} reads, {} distinct, {:.1}s compute, cache {} blocks",
            stats.reads,
            stats.distinct_blocks,
            stats.compute.as_secs_f64(),
            t.cache_blocks
        );
    }

    let probed = opts.json || opts.hist || opts.events.is_some();
    let mut event_log = match opts.events.as_ref() {
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => Some(std::io::BufWriter::new(f)),
            Err(e) => return Err(CliError::Io(format!("failed to create {path}: {e}"))),
        },
        None => None,
    };

    let mut results: Vec<(Report, Option<RunMetrics>)> = Vec::new();
    let mut audit_failures: Vec<String> = Vec::new();
    let wall = Instant::now();
    for &d in &disks {
        let cfg = SimConfig::for_trace(d, &t);
        // An empty --faults plan leaves the config untouched, keeping
        // healthy-run output byte-identical.
        let cfg = if opts.faults.is_empty() {
            cfg
        } else {
            cfg.with_faults(opts.faults.clone())
        };
        for &kind in &policies {
            let (report, metrics) = if probed {
                let mut probe = CliProbe {
                    metrics: MetricsProbe::for_disks(d),
                    log: event_log.as_mut(),
                };
                let report = simulate_probed(&t, kind, &cfg, &mut probe);
                (report, Some(probe.metrics.finish()))
            } else {
                (run(&t, kind, &cfg), None)
            };
            if opts.audit {
                let (audited, outcome) = parcache_core::simulate_audited(&t, kind, &cfg);
                let mut lines = Vec::new();
                for v in &outcome.violations {
                    lines.push(format!("  {v}"));
                }
                if outcome.suppressed > 0 {
                    lines.push(format!("  ... and {} more suppressed", outcome.suppressed));
                }
                if audited != report {
                    lines.push("  audited rerun diverged from the plain run".to_string());
                }
                if !lines.is_empty() {
                    audit_failures.push(format!(
                        "audit FAILED for {}/{}/{} disk(s):\n{}",
                        report.trace,
                        report.policy,
                        report.disks,
                        lines.join("\n")
                    ));
                }
            }
            results.push((report, metrics));
        }
    }
    let elapsed = wall.elapsed();

    if let Some(w) = event_log.as_mut() {
        if let Err(e) = w.flush() {
            return Err(CliError::Io(format!("failed to flush event log: {e}")));
        }
    }

    if opts.json {
        let runs: Vec<String> = results
            .iter()
            .map(|(report, metrics)| match metrics {
                Some(m) => format!(
                    r#"{{"report":{},"metrics":{}}}"#,
                    report.to_json(),
                    m.to_json()
                ),
                None => format!(r#"{{"report":{}}}"#, report.to_json()),
            })
            .collect();
        println!(
            r#"{{"trace":"{}","reads":{},"distinct_blocks":{},"cache_blocks":{},"runs":[{}]}}"#,
            parcache_core::metrics::json_escape(trace_name),
            stats.reads,
            stats.distinct_blocks,
            t.cache_blocks,
            runs.join(",")
        );
    } else {
        let rows: Vec<BreakdownRow> = results
            .iter()
            .map(|(r, _)| BreakdownRow::new(r.clone()))
            .collect();
        println!("{}", breakdown_table(trace_name, &rows));
        if opts.hist {
            for (report, metrics) in &results {
                if let Some(m) = metrics {
                    print_histograms(&report.policy, report.disks, m);
                }
            }
        }
    }
    eprintln!("({} runs in {:.2?})", results.len(), elapsed);
    if opts.audit {
        if !audit_failures.is_empty() {
            for f in &audit_failures {
                eprintln!("{f}");
            }
            eprintln!(
                "audit: {}/{} runs FAILED",
                audit_failures.len(),
                results.len()
            );
            std::process::exit(1);
        }
        eprintln!("audit: all {} runs clean", results.len());
    }
    Ok(())
}
