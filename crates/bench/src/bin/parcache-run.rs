//! Ad-hoc experiment runner.
//!
//! ```sh
//! parcache-run <trace> [policy] [disks]
//! parcache-run synth aggressive 1,2,3,4
//! parcache-run postgres-select all 1,2,4,8,16
//! parcache-run ./my-app.trace forestall 1,2,4   # your own trace file
//! ```
//!
//! The trace argument is one of the paper's trace names, or a path to a
//! trace file in the `parcache-trace` text format.

use parcache_bench::{breakdown_table, run, trace, BreakdownRow, DISK_COUNTS};
use parcache_core::policy::PolicyKind;
use parcache_core::SimConfig;
use std::time::Instant;

fn parse_policies(arg: &str) -> Vec<PolicyKind> {
    if arg == "all" {
        return PolicyKind::ALL.to_vec();
    }
    PolicyKind::ALL
        .into_iter()
        .filter(|k| k.name() == arg)
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace_name = args.first().map(String::as_str).unwrap_or("synth");
    let policy_arg = args.get(1).map(String::as_str).unwrap_or("all");
    let disks: Vec<usize> = match args.get(2) {
        Some(s) => s
            .split(',')
            .map(|x| match x.parse::<usize>() {
                Ok(d) if d > 0 => d,
                _ => {
                    eprintln!("bad disk count {x:?}: expected positive integers like 1,2,4");
                    std::process::exit(1);
                }
            })
            .collect(),
        None => DISK_COUNTS.to_vec(),
    };

    let policies = parse_policies(policy_arg);
    if policies.is_empty() {
        eprintln!(
            "unknown policy {policy_arg}; choose one of: all {}",
            PolicyKind::ALL.map(|k| k.name()).join(" ")
        );
        std::process::exit(1);
    }

    // A path loads a user trace file; otherwise use the paper's traces.
    let t = if trace_name.contains('/') || trace_name.contains('.') {
        match parcache_trace::load(trace_name) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("failed to load {trace_name}: {e}");
                std::process::exit(1);
            }
        }
    } else if parcache_trace::TRACE_NAMES.contains(&trace_name) {
        trace(trace_name)
    } else {
        eprintln!(
            "unknown trace {trace_name}; choose one of: {} — or pass a path to a trace file",
            parcache_trace::TRACE_NAMES.join(" ")
        );
        std::process::exit(1);
    };
    let stats = t.stats();
    println!(
        "trace {trace_name}: {} reads, {} distinct, {:.1}s compute, cache {} blocks",
        stats.reads,
        stats.distinct_blocks,
        stats.compute.as_secs_f64(),
        t.cache_blocks
    );

    let mut rows = Vec::new();
    let wall = Instant::now();
    for &d in &disks {
        let cfg = SimConfig::for_trace(d, &t);
        for &kind in &policies {
            rows.push(BreakdownRow::new(run(&t, kind, &cfg)));
        }
    }
    println!("{}", breakdown_table(trace_name, &rows));
    eprintln!("({} runs in {:.2?})", rows.len(), wall.elapsed());
}
