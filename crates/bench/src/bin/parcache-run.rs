//! Ad-hoc experiment runner.
//!
//! ```sh
//! parcache-run <trace> [policy] [disks] [--json] [--events <path>] [--hist]
//! parcache-run synth aggressive 1,2,3,4
//! parcache-run postgres-select all 1,2,4,8,16
//! parcache-run ./my-app.trace forestall 1,2,4   # your own trace file
//! parcache-run glimpse forestall 4 --json       # machine-readable report
//! parcache-run glimpse forestall 4 --hist       # ASCII latency histograms
//! parcache-run glimpse forestall 4 --events events.jsonl
//! ```
//!
//! The trace argument is one of the paper's trace names, or a path to a
//! trace file in the `parcache-trace` text format.
//!
//! * `--json` prints one JSON document (report + counters + histograms +
//!   per-disk timeline per run) instead of the human table.
//! * `--events <path>` streams every simulation event to `path` as JSON
//!   lines.
//! * `--hist` prints ASCII histogram tables (service, response, stall,
//!   queue depth) after the breakdown table.
//!
//! Any of the three attaches a metrics probe to the engine; without them
//! the run uses the zero-cost no-op probe.

use parcache_bench::{breakdown_table, run, trace, BreakdownRow, DISK_COUNTS};
use parcache_core::engine::simulate_probed;
use parcache_core::metrics::{MetricsProbe, RunMetrics, Unit};
use parcache_core::policy::PolicyKind;
use parcache_core::probe::{Event, Probe};
use parcache_core::{Report, SimConfig};
use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

fn parse_policies(arg: &str) -> Vec<PolicyKind> {
    if arg == "all" {
        return PolicyKind::ALL.to_vec();
    }
    PolicyKind::ALL
        .into_iter()
        .filter(|k| k.name() == arg)
        .collect()
}

/// The probe the CLI attaches when any observability flag is set: folds
/// metrics, and optionally streams each event as a JSON line.
struct CliProbe<'a> {
    metrics: MetricsProbe,
    log: Option<&'a mut std::io::BufWriter<std::fs::File>>,
}

impl Probe for CliProbe<'_> {
    fn on_event(&mut self, event: &Event) {
        self.metrics.on_event(event);
        if let Some(w) = self.log.as_deref_mut() {
            writeln!(w, "{}", event.to_json()).unwrap_or_else(|e| {
                eprintln!("failed to write event log: {e}");
                std::process::exit(1);
            });
        }
    }
}

struct Options {
    json: bool,
    hist: bool,
    events: Option<String>,
    positional: Vec<String>,
}

fn parse_args(args: Vec<String>) -> Options {
    let mut opts = Options {
        json: false,
        hist: false,
        events: None,
        positional: Vec::new(),
    };
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => opts.json = true,
            "--hist" => opts.hist = true,
            "--events" => match it.next() {
                Some(p) => opts.events = Some(p),
                None => {
                    eprintln!("--events requires a path");
                    std::process::exit(1);
                }
            },
            f if f.starts_with("--") => {
                eprintln!("unknown flag {f}; known flags: --json --hist --events <path>");
                std::process::exit(1);
            }
            _ => opts.positional.push(a),
        }
    }
    opts
}

fn print_histograms(policy: &str, disks: usize, m: &RunMetrics) {
    println!("--- {policy} on {disks} disk(s) ---");
    print!(
        "{}",
        m.fetch_service
            .render_ascii("fetch service time", Unit::Millis)
    );
    print!(
        "{}",
        m.fetch_response
            .render_ascii("fetch response time", Unit::Millis)
    );
    print!(
        "{}",
        m.stall_duration
            .render_ascii("stall duration", Unit::Millis)
    );
    print!(
        "{}",
        m.queue_depth
            .render_ascii("queue depth at enqueue", Unit::Count)
    );
    println!();
}

fn main() {
    let opts = parse_args(std::env::args().skip(1).collect());
    let trace_name = opts
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or("synth");
    let policy_arg = opts.positional.get(1).map(String::as_str).unwrap_or("all");
    let disks: Vec<usize> = match opts.positional.get(2) {
        Some(s) => s
            .split(',')
            .map(|x| match x.parse::<usize>() {
                Ok(d) if d > 0 => d,
                _ => {
                    eprintln!("bad disk count {x:?}: expected positive integers like 1,2,4");
                    std::process::exit(1);
                }
            })
            .collect(),
        None => DISK_COUNTS.to_vec(),
    };

    let policies = parse_policies(policy_arg);
    if policies.is_empty() {
        eprintln!(
            "unknown policy {policy_arg}; choose one of: all {}",
            PolicyKind::ALL.map(|k| k.name()).join(" ")
        );
        std::process::exit(1);
    }

    // A path loads a user trace file; otherwise use the paper's traces.
    let t = if trace_name.contains('/') || trace_name.contains('.') {
        match parcache_trace::load(trace_name) {
            Ok(t) => Arc::new(t),
            Err(e) => {
                eprintln!("failed to load {trace_name}: {e}");
                std::process::exit(1);
            }
        }
    } else if parcache_trace::TRACE_NAMES.contains(&trace_name) {
        trace(trace_name)
    } else {
        eprintln!(
            "unknown trace {trace_name}; choose one of: {} — or pass a path to a trace file",
            parcache_trace::TRACE_NAMES.join(" ")
        );
        std::process::exit(1);
    };
    let stats = t.stats();
    if !opts.json {
        println!(
            "trace {trace_name}: {} reads, {} distinct, {:.1}s compute, cache {} blocks",
            stats.reads,
            stats.distinct_blocks,
            stats.compute.as_secs_f64(),
            t.cache_blocks
        );
    }

    let probed = opts.json || opts.hist || opts.events.is_some();
    let mut event_log = opts.events.as_ref().map(|path| {
        std::io::BufWriter::new(std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("failed to create {path}: {e}");
            std::process::exit(1);
        }))
    });

    let mut results: Vec<(Report, Option<RunMetrics>)> = Vec::new();
    let wall = Instant::now();
    for &d in &disks {
        let cfg = SimConfig::for_trace(d, &t);
        for &kind in &policies {
            if probed {
                let mut probe = CliProbe {
                    metrics: MetricsProbe::for_disks(d),
                    log: event_log.as_mut(),
                };
                let report = simulate_probed(&t, kind, &cfg, &mut probe);
                results.push((report, Some(probe.metrics.finish())));
            } else {
                results.push((run(&t, kind, &cfg), None));
            }
        }
    }
    let elapsed = wall.elapsed();

    if let Some(w) = event_log.as_mut() {
        w.flush().expect("flush event log");
    }

    if opts.json {
        let runs: Vec<String> = results
            .iter()
            .map(|(report, metrics)| {
                format!(
                    r#"{{"report":{},"metrics":{}}}"#,
                    report.to_json(),
                    metrics.as_ref().expect("probed run has metrics").to_json()
                )
            })
            .collect();
        println!(
            r#"{{"trace":"{}","reads":{},"distinct_blocks":{},"cache_blocks":{},"runs":[{}]}}"#,
            parcache_core::metrics::json_escape(trace_name),
            stats.reads,
            stats.distinct_blocks,
            t.cache_blocks,
            runs.join(",")
        );
    } else {
        let rows: Vec<BreakdownRow> = results
            .iter()
            .map(|(r, _)| BreakdownRow::new(r.clone()))
            .collect();
        println!("{}", breakdown_table(trace_name, &rows));
        if opts.hist {
            for (report, metrics) in &results {
                if let Some(m) = metrics {
                    print_histograms(&report.policy, report.disks, m);
                }
            }
        }
    }
    eprintln!("({} runs in {:.2?})", results.len(), elapsed);
}
