//! Deterministic multi-threaded sweep engine.
//!
//! A sweep expands a trace × algorithm × disk-count grid into indexed
//! cells, executes the cells on `std::thread::scope` workers pulling from
//! a shared atomic queue, and reassembles the results in cell-index order.
//! Every cell is an independent simulation (its own engine, cache, and
//! disk array over a shared immutable [`Arc<Trace>`]), so the output is
//! **byte-identical** at `--threads 1` and `--threads N`: parallelism
//! changes wall-clock time, never results.
//!
//! The same work-queue core ([`run_indexed`]) drives reverse aggressive's
//! per-configuration parameter search
//! ([`best_reverse`](crate::runner::best_reverse)), so every independent
//! simulation in the harness scales with cores. Everything here is
//! std-only, consistent with the workspace's hermetic-build rule.

use crate::experiments::Algo;
use crate::prof::WorkerStats;
use crate::runner::{best_reverse_search, trace};
use parcache_core::audit::{simulate_audited, AuditOutcome, AuditViolation};
use parcache_core::engine::{simulate_probed, Report};
use parcache_core::metrics::{Counters, Histogram, MetricsProbe, RunMetrics, Unit};
use parcache_core::policy::PolicyKind;
use parcache_core::predict::HintMode;
use parcache_core::SimConfig;
use parcache_disk::FaultPlan;
use parcache_trace::Trace;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The worker count used when the caller does not specify one: the
/// machine's available parallelism (1 when it cannot be determined).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `run(0..n)` on `threads` scoped workers pulling indices from a
/// shared atomic counter, and returns the results **in index order**
/// regardless of which worker computed what — the deterministic core of
/// the sweep engine.
///
/// With one thread (or one task) the closure runs inline, so the serial
/// path is exactly a `map` over `0..n`.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn run_indexed<T, F>(n: usize, threads: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        return (0..n).map(run).collect();
    }
    let next = AtomicUsize::new(0);
    let mut collected: Vec<(usize, T)> = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    // Sized for an even split up front: result collection
                    // should almost never grow mid-loop, keeping worker
                    // allocator traffic out of the items' way.
                    let mut local = Vec::with_capacity(n / threads + 1);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, run(i)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => collected.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    // Reassemble in cell-index order: the output must not depend on the
    // scheduler's interleaving.
    collected.sort_by_key(|&(i, _)| i);
    collected.into_iter().map(|(_, t)| t).collect()
}

/// Samples a *thread-local* allocation counter: the embedding binary's
/// counting allocator maintains one exact counter per thread, so a
/// worker reading it before and after an item sees exactly the item's
/// own allocations — no cross-thread noise, no shared cache line.
/// `None` disables allocation accounting (the counters read 0).
pub type ThreadAllocSampler = Option<fn() -> u64>;

/// [`run_indexed`] with per-worker wall-clock telemetry: how many items
/// each worker ran, how long it was busy inside them, and its total
/// thread lifetime (idle = wall − busy covers queue waits and the tail
/// after the queue drains). Results are identical to [`run_indexed`];
/// only the second return value is new. The serial path reports one
/// worker.
pub fn run_indexed_profiled<T, F>(n: usize, threads: usize, run: F) -> (Vec<T>, Vec<WorkerStats>)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_measured(n, threads, None, run)
}

/// [`run_indexed_profiled`] with per-item allocation accounting: when a
/// sampler is given, each item's allocations are read off the worker's
/// own thread-local counter and accumulated into
/// [`WorkerStats::work_allocs`]. Worker *setup* — thread spawn, the
/// result vector, queue bookkeeping — falls outside the sampled windows,
/// so `work_allocs` summed over workers is a pure function of the item
/// set: identical at any thread count (the committed bench baselines
/// used to drift by a few dozen allocations per extra worker).
pub fn run_indexed_measured<T, F>(
    n: usize,
    threads: usize,
    sampler: ThreadAllocSampler,
    run: F,
) -> (Vec<T>, Vec<WorkerStats>)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    use std::time::Instant;
    let sample = move || sampler.map_or(0, |f| f());
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        let from = Instant::now();
        let mut busy_us = 0u64;
        let mut work_allocs = 0u64;
        let out: Vec<T> = (0..n)
            .map(|i| {
                let t0 = Instant::now();
                let a0 = sample();
                let r = run(i);
                work_allocs += sample().saturating_sub(a0);
                busy_us += t0.elapsed().as_micros() as u64;
                r
            })
            .collect();
        let stats = WorkerStats {
            items: n as u64,
            busy_us,
            wall_us: from.elapsed().as_micros() as u64,
            work_allocs,
        };
        return (out, vec![stats]);
    }
    let next = AtomicUsize::new(0);
    let mut collected: Vec<(usize, T)> = Vec::with_capacity(n);
    let mut workers: Vec<WorkerStats> = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let from = Instant::now();
                    let mut local = Vec::with_capacity(n / threads + 1);
                    let mut stats = WorkerStats::default();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let t0 = Instant::now();
                        let a0 = sample();
                        let r = run(i);
                        stats.work_allocs += sample().saturating_sub(a0);
                        stats.busy_us += t0.elapsed().as_micros() as u64;
                        stats.items += 1;
                        local.push((i, r));
                    }
                    stats.wall_us = from.elapsed().as_micros() as u64;
                    (local, stats)
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok((part, stats)) => {
                    collected.extend(part);
                    workers.push(stats);
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    collected.sort_by_key(|&(i, _)| i);
    (collected.into_iter().map(|(_, t)| t).collect(), workers)
}

/// One trace of a sweep, with the array sizes to run it at.
#[derive(Debug, Clone)]
pub struct SweepEntry {
    /// The (shared) trace.
    pub trace: Arc<Trace>,
    /// Array sizes to simulate, in output order.
    pub disks: Vec<usize>,
}

/// A sweep specification: the grid before expansion.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Traces and their disk counts, in output order.
    pub entries: Vec<SweepEntry>,
    /// Algorithms to run at every (trace, disks) point, in output order.
    pub algos: Vec<Algo>,
    /// Hint sources to run every grid point under, in output order. An
    /// empty list means the default oracle source, so pre-existing specs
    /// expand to exactly the cells they always did.
    pub hints: Vec<HintMode>,
}

/// One expanded grid point.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Position in the expanded grid (and in the output).
    pub index: usize,
    /// The trace this cell simulates.
    pub trace: Arc<Trace>,
    /// The algorithm.
    pub algo: Algo,
    /// The array size.
    pub disks: usize,
    /// Where the policy's hints come from.
    pub hints: HintMode,
}

/// One finished cell: the cell, its report, and (for probed sweeps) the
/// run's metrics.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The grid point.
    pub cell: SweepCell,
    /// The simulation report.
    pub report: Report,
    /// Probe metrics, when the sweep ran probed.
    pub metrics: Option<RunMetrics>,
}

impl SweepSpec {
    /// The full appendix-A grid: every paper trace at every published
    /// array size under the four prefetching algorithms (332 cells).
    /// Traces are generated in parallel on `threads` workers (each is
    /// generated once and shared; see [`trace`]).
    pub fn appendix_a(threads: usize) -> SweepSpec {
        SweepSpec::named(
            &parcache_trace::TRACE_NAMES,
            &Algo::APPENDIX_A,
            None,
            threads,
        )
    }

    /// A grid over named paper traces. `disks` of `None` selects each
    /// trace's published appendix-A array sizes.
    pub fn named(
        names: &[&str],
        algos: &[Algo],
        disks: Option<&[usize]>,
        threads: usize,
    ) -> SweepSpec {
        // Resolve (generate) distinct traces in parallel; the per-name
        // cache in `runner::trace` hands every worker the same Arc.
        let traces = run_indexed(names.len(), threads, |i| trace(names[i]));
        let entries = names
            .iter()
            .zip(traces)
            .map(|(name, t)| SweepEntry {
                disks: disks
                    .map(<[usize]>::to_vec)
                    .or_else(|| crate::paper::paper_cells(name).map(<[usize]>::to_vec))
                    .unwrap_or_else(|| crate::runner::DISK_COUNTS.to_vec()),
                trace: t,
            })
            .collect();
        SweepSpec {
            entries,
            algos: algos.to_vec(),
            hints: Vec::new(),
        }
    }

    /// Expands the grid into indexed cells: traces outermost, then hint
    /// sources, then array sizes, then algorithms — the appendix tables'
    /// row order, repeated per hint source.
    pub fn cells(&self) -> Vec<SweepCell> {
        let default_hints = [HintMode::Oracle];
        let hints: &[HintMode] = if self.hints.is_empty() {
            &default_hints
        } else {
            &self.hints
        };
        let mut cells = Vec::new();
        for entry in &self.entries {
            for &h in hints {
                for &d in &entry.disks {
                    for &algo in &self.algos {
                        cells.push(SweepCell {
                            index: cells.len(),
                            trace: Arc::clone(&entry.trace),
                            algo,
                            disks: d,
                            hints: h,
                        });
                    }
                }
            }
        }
        cells
    }
}

/// Executes one cell, also returning the policy and configuration that
/// produced the report (for tuned reverse aggressive, the search's
/// winning configuration) so an audited rerun can replay it exactly.
fn run_cell_inner(
    cell: &SweepCell,
    probed: bool,
    faults: &FaultPlan,
) -> (CellOutcome, PolicyKind, SimConfig) {
    let cfg = SimConfig::for_trace(cell.disks, &cell.trace).with_hint_mode(cell.hints);
    // An empty plan leaves the config untouched, so healthy sweeps stay
    // byte-identical to builds without fault support.
    let cfg = if faults.is_empty() {
        cfg
    } else {
        cfg.with_faults(faults.clone())
    };
    let (report, metrics, kind, cfg) = match cell.algo {
        Algo::TunedReverse => {
            let (report, best_cfg) = best_reverse_search(&cell.trace, &cfg, 1);
            let kind = PolicyKind::ReverseAggressive;
            if probed {
                // Re-run the winning configuration under a probe; the
                // simulator is deterministic, so the report is unchanged.
                let mut probe = MetricsProbe::for_disks(cell.disks);
                let report = simulate_probed(&cell.trace, kind, &best_cfg, &mut probe);
                (report, Some(probe.finish()), kind, best_cfg)
            } else {
                (report, None, kind, best_cfg)
            }
        }
        algo => {
            let kind = algo.policy_kind().expect("only TunedReverse lacks a kind");
            if probed {
                let mut probe = MetricsProbe::for_disks(cell.disks);
                let report = simulate_probed(&cell.trace, kind, &cfg, &mut probe);
                (report, Some(probe.finish()), kind, cfg)
            } else {
                (
                    parcache_core::simulate(&cell.trace, kind, &cfg),
                    None,
                    kind,
                    cfg,
                )
            }
        }
    };
    let outcome = CellOutcome {
        cell: cell.clone(),
        report,
        metrics,
    };
    (outcome, kind, cfg)
}

/// Executes one cell. Tuned reverse aggressive runs its parameter search
/// serially here — the sweep already owns the machine's parallelism, and
/// nested worker pools would oversubscribe it.
fn run_cell(cell: &SweepCell, probed: bool, faults: &FaultPlan) -> CellOutcome {
    run_cell_inner(cell, probed, faults).0
}

/// Executes one cell twice — once exactly as [`run_cell`] (so the
/// outcome, and therefore the sweep's output bytes, are identical to an
/// unaudited sweep) and once with an [`AuditProbe`] riding the event
/// stream. A report that differs between the two runs is itself recorded
/// as an audit violation: the audit must never perturb the simulation.
///
/// [`AuditProbe`]: parcache_core::audit::AuditProbe
fn run_cell_audited(
    cell: &SweepCell,
    probed: bool,
    faults: &FaultPlan,
) -> (CellOutcome, AuditOutcome) {
    let (outcome, kind, cfg) = run_cell_inner(cell, probed, faults);
    let (audited_report, mut audit) = simulate_audited(&cell.trace, kind, &cfg);
    if audited_report != outcome.report {
        audit.violations.push(AuditViolation {
            time: outcome.report.elapsed,
            rule: "audit-transparency",
            detail: format!(
                "audited rerun of {}/{}/{} disks diverged from the unaudited report",
                outcome.report.trace, outcome.report.policy, outcome.report.disks
            ),
        });
    }
    (outcome, audit)
}

/// Runs every cell of `spec` on `threads` workers and returns the
/// outcomes in cell-index order.
pub fn run_sweep(spec: &SweepSpec, threads: usize) -> Vec<CellOutcome> {
    run_sweep_cells(&spec.cells(), threads, false, &FaultPlan::default())
}

/// [`run_sweep`] with a metrics probe attached to every cell, so the
/// outcomes carry [`RunMetrics`] (and can be folded into a
/// [`SweepAggregate`]).
pub fn run_sweep_probed(spec: &SweepSpec, threads: usize) -> Vec<CellOutcome> {
    run_sweep_cells(&spec.cells(), threads, true, &FaultPlan::default())
}

/// Runs pre-expanded cells; the building block both entry points share.
/// A non-empty `faults` plan is applied to every cell (the plan's own
/// seed stream keeps the whole sweep deterministic at any thread count).
pub fn run_sweep_cells(
    cells: &[SweepCell],
    threads: usize,
    probed: bool,
    faults: &FaultPlan,
) -> Vec<CellOutcome> {
    run_indexed(cells.len(), threads, |i| {
        run_cell(&cells[i], probed, faults)
    })
}

/// [`run_sweep_cells`] with every cell audited: returns the outcomes
/// (byte-identical to an unaudited sweep) together with each cell's
/// audit verdict, in cell-index order.
pub fn run_sweep_cells_audited(
    cells: &[SweepCell],
    threads: usize,
    probed: bool,
    faults: &FaultPlan,
) -> (Vec<CellOutcome>, Vec<AuditOutcome>) {
    let pairs = run_indexed(cells.len(), threads, |i| {
        run_cell_audited(&cells[i], probed, faults)
    });
    pairs.into_iter().unzip()
}

/// [`run_sweep_cells`] with per-worker telemetry (for `--profile` and
/// the bench harness). A `sampler` attributes each cell's allocations to
/// [`WorkerStats::work_allocs`]; see [`run_indexed_measured`].
pub fn run_sweep_cells_profiled(
    cells: &[SweepCell],
    threads: usize,
    probed: bool,
    faults: &FaultPlan,
    sampler: ThreadAllocSampler,
) -> (Vec<CellOutcome>, Vec<WorkerStats>) {
    run_indexed_measured(cells.len(), threads, sampler, |i| {
        run_cell(&cells[i], probed, faults)
    })
}

/// [`run_sweep_cells_audited`] with per-worker telemetry.
pub fn run_sweep_cells_audited_profiled(
    cells: &[SweepCell],
    threads: usize,
    probed: bool,
    faults: &FaultPlan,
    sampler: ThreadAllocSampler,
) -> (Vec<CellOutcome>, Vec<AuditOutcome>, Vec<WorkerStats>) {
    let (pairs, workers) = run_indexed_measured(cells.len(), threads, sampler, |i| {
        run_cell_audited(&cells[i], probed, faults)
    });
    let (outcomes, audits) = pairs.into_iter().unzip();
    (outcomes, audits, workers)
}

/// [`run_sweep`] with every cell audited.
pub fn run_sweep_audited(
    spec: &SweepSpec,
    threads: usize,
) -> (Vec<CellOutcome>, Vec<AuditOutcome>) {
    run_sweep_cells_audited(&spec.cells(), threads, false, &FaultPlan::default())
}

/// Shape-independent metrics folded across every probed cell of a sweep
/// (cells with different array sizes cannot merge their per-disk vectors,
/// so the aggregate keeps the global distributions and counters).
#[derive(Debug, Clone, Default)]
pub struct SweepAggregate {
    /// Event counters summed over all cells.
    pub counters: Counters,
    /// Service times across all cells and drives (ns).
    pub fetch_service: Histogram,
    /// Response times across all cells and drives (ns).
    pub fetch_response: Histogram,
    /// Stall durations across all cells (ns).
    pub stall_duration: Histogram,
    /// Queue depths at enqueue across all cells and drives.
    pub queue_depth: Histogram,
}

impl SweepAggregate {
    /// Folds the probed outcomes (in the order given — callers pass
    /// cell-index order for deterministic output). Returns `None` when no
    /// outcome carries metrics.
    pub fn fold(outcomes: &[CellOutcome]) -> Option<SweepAggregate> {
        let mut agg: Option<SweepAggregate> = None;
        for m in outcomes.iter().filter_map(|o| o.metrics.as_ref()) {
            let a = agg.get_or_insert_with(SweepAggregate::default);
            a.counters.merge(&m.counters);
            a.fetch_service.merge(&m.fetch_service);
            a.fetch_response.merge(&m.fetch_response);
            a.stall_duration.merge(&m.stall_duration);
            a.queue_depth.merge(&m.queue_depth);
        }
        agg
    }

    /// ASCII rendering of the aggregate distributions.
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        out.push_str(
            &self
                .fetch_service
                .render_ascii("fetch service time", Unit::Millis),
        );
        out.push_str(
            &self
                .fetch_response
                .render_ascii("fetch response time", Unit::Millis),
        );
        out.push_str(
            &self
                .stall_duration
                .render_ascii("stall duration", Unit::Millis),
        );
        out.push_str(
            &self
                .queue_depth
                .render_ascii("queue depth at enqueue", Unit::Count),
        );
        out
    }

    /// The aggregate as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"counters":{},"fetch_service_ns":{},"fetch_response_ns":{},"stall_ns":{},"queue_depth":{}}}"#,
            self.counters.to_json(),
            self.fetch_service.to_json(),
            self.fetch_response.to_json(),
            self.stall_duration.to_json(),
            self.queue_depth.to_json(),
        )
    }
}

/// Whether any outcome ran under a predicted hint source. Gates the
/// `hints` CSV columns the same way fault accounting gates the fault
/// columns: oracle-only sweeps keep the exact historical bytes.
fn any_hinted(outcomes: &[CellOutcome]) -> bool {
    outcomes
        .iter()
        .any(|o| o.cell.hints != HintMode::Oracle || o.report.hints.is_some())
}

/// The outcomes as a CSV document (header plus one row per cell, in cell
/// order). Identical input produces identical bytes, whatever the thread
/// count that computed it.
pub fn sweep_csv(outcomes: &[CellOutcome]) -> String {
    let hinted = any_hinted(outcomes);
    let mut out = String::with_capacity(outcomes.len() * 96 + 128);
    // Fault columns appear only when a cell carries fault accounting, so
    // healthy sweeps keep the exact historical header and row bytes.
    if outcomes.iter().any(|o| o.report.fault.is_some()) {
        out.push_str(Report::csv_header_faulted());
    } else {
        out.push_str(Report::csv_header());
    }
    if hinted {
        out.push_str(",hints");
    }
    out.push('\n');
    for o in outcomes {
        out.push_str(&o.report.to_csv_row());
        if hinted {
            out.push(',');
            out.push_str(o.cell.hints.name());
        }
        out.push('\n');
    }
    out
}

/// [`sweep_csv`] with the five per-cause stall columns appended to every
/// row (`--explain`), plus — when any cell ran on predicted hints — the
/// hint source and its prediction precision/recall. A separate function,
/// not a flag on [`sweep_csv`]: the default document's bytes are
/// golden-pinned and must not change.
pub fn sweep_csv_explain(outcomes: &[CellOutcome]) -> String {
    let faulted = outcomes.iter().any(|o| o.report.fault.is_some());
    let hinted = any_hinted(outcomes);
    let mut out = String::with_capacity(outcomes.len() * 128 + 160);
    out.push_str(&Report::csv_header_explain(faulted));
    if hinted {
        out.push_str(",hints,hint_precision,hint_recall");
    }
    out.push('\n');
    for o in outcomes {
        out.push_str(&o.report.to_csv_row_explain());
        if hinted {
            // The oracle source is by definition perfectly precise and
            // complete; predicted cells report measured figures.
            let (precision, recall) = match &o.report.hints {
                Some(stats) => (stats.precision(), stats.recall()),
                None => (1.0, 1.0),
            };
            out.push_str(&format!(
                ",{},{:.4},{:.4}",
                o.cell.hints.name(),
                precision,
                recall
            ));
        }
        out.push('\n');
    }
    out
}

/// The outcomes as one JSON document: `{"cells":[...]}`, each cell's
/// report (and metrics, when probed) in cell order, plus the aggregate
/// over probed cells when present.
pub fn sweep_json(outcomes: &[CellOutcome]) -> String {
    let cells: Vec<String> = outcomes
        .iter()
        .map(|o| match &o.metrics {
            Some(m) => format!(
                r#"{{"report":{},"metrics":{}}}"#,
                o.report.to_json(),
                m.to_json()
            ),
            None => format!(r#"{{"report":{}}}"#, o.report.to_json()),
        })
        .collect();
    match SweepAggregate::fold(outcomes) {
        Some(agg) => format!(
            r#"{{"cells":[{}],"aggregate":{}}}"#,
            cells.join(","),
            agg.to_json()
        ),
        None => format!(r#"{{"cells":[{}]}}"#, cells.join(",")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_indexed_preserves_order_across_threads() {
        for threads in [1, 2, 4, 9] {
            let out = run_indexed(57, threads, |i| i * i);
            assert_eq!(out, (0..57).map(|i| i * i).collect::<Vec<_>>(), "{threads}");
        }
        assert!(run_indexed(0, 4, |i| i).is_empty());
    }

    #[test]
    fn run_indexed_runs_every_index_exactly_once() {
        use std::sync::Mutex;
        let seen = Mutex::new(vec![0u32; 100]);
        let out = run_indexed(100, 4, |i| {
            seen.lock().unwrap()[i] += 1;
            i
        });
        assert_eq!(out.len(), 100);
        assert!(seen.lock().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn run_indexed_propagates_worker_panics() {
        run_indexed(8, 3, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn run_indexed_profiled_matches_run_indexed() {
        for threads in [1, 3] {
            let (out, workers) = run_indexed_profiled(23, threads, |i| i * 3);
            assert_eq!(out, (0..23).map(|i| i * 3).collect::<Vec<_>>());
            assert_eq!(workers.len(), threads);
            assert_eq!(workers.iter().map(|w| w.items).sum::<u64>(), 23);
            for w in &workers {
                assert!(w.wall_us >= w.busy_us, "{w:?}");
            }
        }
        let (out, workers) = run_indexed_profiled(0, 4, |i| i);
        assert!(out.is_empty());
        assert_eq!(workers.len(), 1);
    }

    #[test]
    fn measured_work_allocs_are_thread_count_invariant() {
        use std::cell::Cell;
        thread_local! {
            static FAKE: Cell<u64> = const { Cell::new(0) };
        }
        fn read_fake() -> u64 {
            FAKE.with(Cell::get)
        }
        // Each item "allocates" i + 1 ticks on whichever worker runs it;
        // anything outside the items never touches the counter, so the
        // summed figure must be a pure function of the item set.
        let run = |i: usize| {
            FAKE.with(|c| c.set(c.get() + i as u64 + 1));
            i * 2
        };
        let expected: u64 = (1..=40).sum();
        for threads in [1, 2, 4] {
            let (out, workers) = run_indexed_measured(40, threads, Some(read_fake), run);
            assert_eq!(out, (0..40).map(|i| i * 2).collect::<Vec<_>>());
            let total: u64 = workers.iter().map(|w| w.work_allocs).sum();
            assert_eq!(total, expected, "{threads} threads");
        }
        // Without a sampler the counters stay zero.
        let (_, workers) = run_indexed_measured(8, 2, None, |i| i);
        assert!(workers.iter().all(|w| w.work_allocs == 0));
    }

    #[test]
    fn explain_csv_appends_cause_columns_without_touching_default() {
        let t = Arc::new(parcache_trace::synth::synth_trace(2, 60, 5));
        let spec = SweepSpec {
            entries: vec![SweepEntry {
                trace: t,
                disks: vec![1],
            }],
            algos: vec![Algo::Demand, Algo::Aggressive],
            hints: Vec::new(),
        };
        let outcomes = run_sweep(&spec, 1);
        let plain = sweep_csv(&outcomes);
        let explain = sweep_csv_explain(&outcomes);
        let plain_cols = plain.lines().next().unwrap().split(',').count();
        for (p, e) in plain.lines().zip(explain.lines()) {
            // Every explain row is its default row plus five columns —
            // the default bytes are a strict prefix.
            assert!(e.starts_with(p), "{e}\nvs\n{p}");
            assert_eq!(e.split(',').count(), plain_cols + 5);
        }
        assert!(explain
            .lines()
            .next()
            .unwrap()
            .ends_with("stall_late_prefetch_s,stall_no_prefetch_s,stall_congestion_s,stall_retry_s,stall_eviction_refetch_s"));
    }

    #[test]
    fn cells_expand_in_row_order() {
        let t = Arc::new(parcache_trace::synth::synth_trace(2, 40, 5));
        let spec = SweepSpec {
            entries: vec![SweepEntry {
                trace: t,
                disks: vec![1, 2],
            }],
            algos: vec![Algo::Demand, Algo::FixedHorizon],
            hints: Vec::new(),
        };
        let cells = spec.cells();
        assert_eq!(cells.len(), 4);
        assert!(cells.iter().all(|c| c.hints == HintMode::Oracle));
        let order: Vec<(usize, &str)> = cells.iter().map(|c| (c.disks, c.algo.name())).collect();
        assert_eq!(
            order,
            vec![
                (1, "demand"),
                (1, "fixed-horizon"),
                (2, "demand"),
                (2, "fixed-horizon")
            ]
        );
        assert!(cells.iter().enumerate().all(|(i, c)| c.index == i));
    }

    #[test]
    fn hint_axis_multiplies_the_grid_and_gates_the_csv_columns() {
        use parcache_core::predict::PredictorKind;
        let t = Arc::new(parcache_trace::synth::synth_trace(2, 60, 5));
        let spec = SweepSpec {
            entries: vec![SweepEntry {
                trace: t,
                disks: vec![1],
            }],
            algos: vec![Algo::Demand, Algo::Aggressive],
            hints: vec![
                HintMode::Oracle,
                HintMode::Predicted(PredictorKind::Sequential),
            ],
        };
        let cells = spec.cells();
        assert_eq!(cells.len(), 4);
        let order: Vec<&str> = cells.iter().map(|c| c.hints.name()).collect();
        assert_eq!(order, vec!["oracle", "oracle", "seq", "seq"]);
        let outcomes = run_sweep(&spec, 1);
        // Oracle cells stay stats-free; predicted cells carry stats.
        assert!(outcomes[0].report.hints.is_none());
        assert!(outcomes[2].report.hints.is_some());
        let csv = sweep_csv(&outcomes);
        assert!(csv.lines().next().unwrap().ends_with(",hints"));
        assert!(csv.lines().nth(1).unwrap().ends_with(",oracle"));
        assert!(csv.lines().nth(3).unwrap().ends_with(",seq"));
        let explain = sweep_csv_explain(&outcomes);
        let header = explain.lines().next().unwrap();
        assert!(header.ends_with(",hints,hint_precision,hint_recall"));
        // Oracle rows render as perfectly precise and complete.
        assert!(explain
            .lines()
            .nth(1)
            .unwrap()
            .contains(",oracle,1.0000,1.0000"));
        // The plain document for an oracle-only subset keeps its
        // historical bytes: no hints column at all.
        let oracle_only = sweep_csv(&outcomes[..2]);
        assert!(!oracle_only.contains("hints"));
    }

    #[test]
    fn appendix_a_grid_has_332_cells() {
        // Grid shape only — expansion does not run any simulation, but it
        // does generate the traces, so share the process-wide cache.
        let spec = SweepSpec::appendix_a(2);
        assert_eq!(spec.cells().len(), 332);
    }
}
