//! Deterministic multi-threaded sweep engine.
//!
//! A sweep expands a trace × algorithm × disk-count grid into indexed
//! cells, executes the cells on `std::thread::scope` workers pulling from
//! a shared atomic queue, and reassembles the results in cell-index order.
//! Every cell is an independent simulation (its own engine, cache, and
//! disk array over a shared immutable [`Arc<Trace>`]), so the output is
//! **byte-identical** at `--threads 1` and `--threads N`: parallelism
//! changes wall-clock time, never results.
//!
//! The same work-queue core ([`run_indexed`]) drives reverse aggressive's
//! per-configuration parameter search
//! ([`best_reverse`](crate::runner::best_reverse)), so every independent
//! simulation in the harness scales with cores. Everything here is
//! std-only, consistent with the workspace's hermetic-build rule.

use crate::experiments::Algo;
use crate::prof::WorkerStats;
use crate::runner::{best_reverse_search, panic_message, try_trace, TraceError};
use parcache_core::audit::{simulate_audited, AuditOutcome, AuditViolation};
use parcache_core::engine::{simulate_probed, Report};
use parcache_core::metrics::{Counters, Histogram, MetricsProbe, RunMetrics, Unit};
use parcache_core::policy::PolicyKind;
use parcache_core::predict::HintMode;
use parcache_core::SimConfig;
use parcache_disk::FaultPlan;
use parcache_trace::Trace;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// The worker count used when the caller does not specify one: the
/// machine's *effective* parallelism — available cores capped by the
/// cgroup CPU quota (see [`crate::prof::detect_parallelism`]), floored
/// so a fractional quota never oversubscribes, and at least 1.
///
/// A container limited to `200000 100000` (2 CPUs) on a 16-core host
/// gets 2 workers, not 16: extra workers past the quota only add
/// scheduler churn and skew per-worker telemetry.
pub fn default_threads() -> usize {
    let p = crate::prof::detect_parallelism();
    (p.effective.floor() as usize).max(1)
}

/// Runs `run(0..n)` on `threads` scoped workers pulling indices from a
/// shared atomic counter, and returns the results **in index order**
/// regardless of which worker computed what — the deterministic core of
/// the sweep engine.
///
/// With one thread (or one task) the closure runs inline, so the serial
/// path is exactly a `map` over `0..n`.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn run_indexed<T, F>(n: usize, threads: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        return (0..n).map(run).collect();
    }
    let next = AtomicUsize::new(0);
    let mut collected: Vec<(usize, T)> = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    // Sized for an even split up front: result collection
                    // should almost never grow mid-loop, keeping worker
                    // allocator traffic out of the items' way.
                    let mut local = Vec::with_capacity(n / threads + 1);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, run(i)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => collected.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    // Reassemble in cell-index order: the output must not depend on the
    // scheduler's interleaving.
    collected.sort_by_key(|&(i, _)| i);
    collected.into_iter().map(|(_, t)| t).collect()
}

/// Samples a *thread-local* allocation counter: the embedding binary's
/// counting allocator maintains one exact counter per thread, so a
/// worker reading it before and after an item sees exactly the item's
/// own allocations — no cross-thread noise, no shared cache line.
/// `None` disables allocation accounting (the counters read 0).
pub type ThreadAllocSampler = Option<fn() -> u64>;

/// [`run_indexed`] with per-worker wall-clock telemetry: how many items
/// each worker ran, how long it was busy inside them, and its total
/// thread lifetime (idle = wall − busy covers queue waits and the tail
/// after the queue drains). Results are identical to [`run_indexed`];
/// only the second return value is new. The serial path reports one
/// worker.
pub fn run_indexed_profiled<T, F>(n: usize, threads: usize, run: F) -> (Vec<T>, Vec<WorkerStats>)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_measured(n, threads, None, run)
}

/// [`run_indexed_profiled`] with per-item allocation accounting: when a
/// sampler is given, each item's allocations are read off the worker's
/// own thread-local counter and accumulated into
/// [`WorkerStats::work_allocs`]. Worker *setup* — thread spawn, the
/// result vector, queue bookkeeping — falls outside the sampled windows,
/// so `work_allocs` summed over workers is a pure function of the item
/// set: identical at any thread count (the committed bench baselines
/// used to drift by a few dozen allocations per extra worker).
pub fn run_indexed_measured<T, F>(
    n: usize,
    threads: usize,
    sampler: ThreadAllocSampler,
    run: F,
) -> (Vec<T>, Vec<WorkerStats>)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_observed(n, threads, sampler, run, |_, _| {})
}

/// [`run_indexed_measured`] with a per-item observer: after each item is
/// produced (and its time/allocation windows closed), `observe` may fold
/// item-derived counts into the worker's own [`WorkerStats`]. The
/// fail-soft executor attributes ok/failed/skipped/retry counts to the
/// worker that ran each cell this way; plain callers pass a no-op.
pub fn run_indexed_observed<T, F, O>(
    n: usize,
    threads: usize,
    sampler: ThreadAllocSampler,
    run: F,
    observe: O,
) -> (Vec<T>, Vec<WorkerStats>)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    O: Fn(&T, &mut WorkerStats) + Sync,
{
    use std::time::Instant;
    let sample = move || sampler.map_or(0, |f| f());
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        let from = Instant::now();
        let mut stats = WorkerStats::default();
        let out: Vec<T> = (0..n)
            .map(|i| {
                let t0 = Instant::now();
                let a0 = sample();
                let r = run(i);
                stats.work_allocs += sample().saturating_sub(a0);
                stats.busy_us += t0.elapsed().as_micros() as u64;
                stats.items += 1;
                observe(&r, &mut stats);
                r
            })
            .collect();
        stats.wall_us = from.elapsed().as_micros() as u64;
        return (out, vec![stats]);
    }
    let next = AtomicUsize::new(0);
    let mut collected: Vec<(usize, T)> = Vec::with_capacity(n);
    let mut workers: Vec<WorkerStats> = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let from = Instant::now();
                    let mut local = Vec::with_capacity(n / threads + 1);
                    let mut stats = WorkerStats::default();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let t0 = Instant::now();
                        let a0 = sample();
                        let r = run(i);
                        stats.work_allocs += sample().saturating_sub(a0);
                        stats.busy_us += t0.elapsed().as_micros() as u64;
                        stats.items += 1;
                        observe(&r, &mut stats);
                        local.push((i, r));
                    }
                    stats.wall_us = from.elapsed().as_micros() as u64;
                    (local, stats)
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok((part, stats)) => {
                    collected.extend(part);
                    workers.push(stats);
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    collected.sort_by_key(|&(i, _)| i);
    (collected.into_iter().map(|(_, t)| t).collect(), workers)
}

/// One trace of a sweep, with the array sizes to run it at.
#[derive(Debug, Clone)]
pub struct SweepEntry {
    /// The (shared) trace.
    pub trace: Arc<Trace>,
    /// Array sizes to simulate, in output order.
    pub disks: Vec<usize>,
}

/// A sweep specification: the grid before expansion.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Traces and their disk counts, in output order.
    pub entries: Vec<SweepEntry>,
    /// Algorithms to run at every (trace, disks) point, in output order.
    pub algos: Vec<Algo>,
    /// Hint sources to run every grid point under, in output order. An
    /// empty list means the default oracle source, so pre-existing specs
    /// expand to exactly the cells they always did.
    pub hints: Vec<HintMode>,
}

/// One expanded grid point.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Position in the expanded grid (and in the output).
    pub index: usize,
    /// The trace this cell simulates.
    pub trace: Arc<Trace>,
    /// The algorithm.
    pub algo: Algo,
    /// The array size.
    pub disks: usize,
    /// Where the policy's hints come from.
    pub hints: HintMode,
}

/// One finished cell: the cell, its report, and (for probed sweeps) the
/// run's metrics.
#[derive(Debug, Clone)]
pub struct CellRow {
    /// The grid point.
    pub cell: SweepCell,
    /// The simulation report.
    pub report: Report,
    /// Probe metrics, when the sweep ran probed.
    pub metrics: Option<RunMetrics>,
}

impl SweepSpec {
    /// The full appendix-A grid: every paper trace at every published
    /// array size under the four prefetching algorithms (332 cells).
    /// Traces are generated in parallel on `threads` workers (each is
    /// generated once and shared; see [`trace`]).
    pub fn appendix_a(threads: usize) -> SweepSpec {
        SweepSpec::named(
            &parcache_trace::TRACE_NAMES,
            &Algo::APPENDIX_A,
            None,
            threads,
        )
    }

    /// A grid over named paper traces. `disks` of `None` selects each
    /// trace's published appendix-A array sizes.
    ///
    /// # Panics
    ///
    /// Panics when a trace is unknown or fails to generate; callers that
    /// want the failure as a value use [`SweepSpec::try_named`].
    pub fn named(
        names: &[&str],
        algos: &[Algo],
        disks: Option<&[usize]>,
        threads: usize,
    ) -> SweepSpec {
        Self::try_named(names, algos, disks, threads).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`SweepSpec::named`] with trace resolution failures returned as
    /// typed [`TraceError`]s instead of panicking a worker thread — an
    /// unknown name or a generator panic surfaces as a value the CLI can
    /// turn into a diagnostic and an exit code. The first failing name
    /// (in input order) wins.
    pub fn try_named(
        names: &[&str],
        algos: &[Algo],
        disks: Option<&[usize]>,
        threads: usize,
    ) -> Result<SweepSpec, TraceError> {
        // Resolve (generate) distinct traces in parallel; the per-name
        // cache in `runner::try_trace` hands every worker the same Arc,
        // and caches failures too, so no worker ever unwinds here.
        let traces = run_indexed(names.len(), threads, |i| try_trace(names[i]));
        let mut entries = Vec::with_capacity(names.len());
        for (name, t) in names.iter().zip(traces) {
            entries.push(SweepEntry {
                disks: disks
                    .map(<[usize]>::to_vec)
                    .or_else(|| crate::paper::paper_cells(name).map(<[usize]>::to_vec))
                    .unwrap_or_else(|| crate::runner::DISK_COUNTS.to_vec()),
                trace: t?,
            });
        }
        Ok(SweepSpec {
            entries,
            algos: algos.to_vec(),
            hints: Vec::new(),
        })
    }

    /// Expands the grid into indexed cells: traces outermost, then hint
    /// sources, then array sizes, then algorithms — the appendix tables'
    /// row order, repeated per hint source.
    pub fn cells(&self) -> Vec<SweepCell> {
        let default_hints = [HintMode::Oracle];
        let hints: &[HintMode] = if self.hints.is_empty() {
            &default_hints
        } else {
            &self.hints
        };
        let mut cells = Vec::new();
        for entry in &self.entries {
            for &h in hints {
                for &d in &entry.disks {
                    for &algo in &self.algos {
                        cells.push(SweepCell {
                            index: cells.len(),
                            trace: Arc::clone(&entry.trace),
                            algo,
                            disks: d,
                            hints: h,
                        });
                    }
                }
            }
        }
        cells
    }
}

/// Executes one cell, also returning the policy and configuration that
/// produced the report (for tuned reverse aggressive, the search's
/// winning configuration) so an audited rerun can replay it exactly.
fn run_cell_inner(
    cell: &SweepCell,
    probed: bool,
    faults: &FaultPlan,
) -> (CellRow, PolicyKind, SimConfig) {
    let cfg = SimConfig::for_trace(cell.disks, &cell.trace).with_hint_mode(cell.hints);
    // An empty plan leaves the config untouched, so healthy sweeps stay
    // byte-identical to builds without fault support.
    let cfg = if faults.is_empty() {
        cfg
    } else {
        cfg.with_faults(faults.clone())
    };
    let (report, metrics, kind, cfg) = match cell.algo {
        Algo::TunedReverse => {
            let (report, best_cfg) = best_reverse_search(&cell.trace, &cfg, 1);
            let kind = PolicyKind::ReverseAggressive;
            if probed {
                // Re-run the winning configuration under a probe; the
                // simulator is deterministic, so the report is unchanged.
                let mut probe = MetricsProbe::for_disks(cell.disks);
                let report = simulate_probed(&cell.trace, kind, &best_cfg, &mut probe);
                (report, Some(probe.finish()), kind, best_cfg)
            } else {
                (report, None, kind, best_cfg)
            }
        }
        algo => {
            let kind = algo.policy_kind().expect("only TunedReverse lacks a kind");
            if probed {
                let mut probe = MetricsProbe::for_disks(cell.disks);
                let report = simulate_probed(&cell.trace, kind, &cfg, &mut probe);
                (report, Some(probe.finish()), kind, cfg)
            } else {
                (
                    parcache_core::simulate(&cell.trace, kind, &cfg),
                    None,
                    kind,
                    cfg,
                )
            }
        }
    };
    let outcome = CellRow {
        cell: cell.clone(),
        report,
        metrics,
    };
    (outcome, kind, cfg)
}

/// Executes one cell. Tuned reverse aggressive runs its parameter search
/// serially here — the sweep already owns the machine's parallelism, and
/// nested worker pools would oversubscribe it.
fn run_cell(cell: &SweepCell, probed: bool, faults: &FaultPlan) -> CellRow {
    run_cell_inner(cell, probed, faults).0
}

/// Executes one cell twice — once exactly as [`run_cell`] (so the
/// outcome, and therefore the sweep's output bytes, are identical to an
/// unaudited sweep) and once with an [`AuditProbe`] riding the event
/// stream. A report that differs between the two runs is itself recorded
/// as an audit violation: the audit must never perturb the simulation.
///
/// [`AuditProbe`]: parcache_core::audit::AuditProbe
fn run_cell_audited(cell: &SweepCell, probed: bool, faults: &FaultPlan) -> (CellRow, AuditOutcome) {
    let (outcome, kind, cfg) = run_cell_inner(cell, probed, faults);
    let (audited_report, mut audit) = simulate_audited(&cell.trace, kind, &cfg);
    if audited_report != outcome.report {
        audit.violations.push(AuditViolation {
            time: outcome.report.elapsed,
            rule: "audit-transparency",
            detail: format!(
                "audited rerun of {}/{}/{} disks diverged from the unaudited report",
                outcome.report.trace, outcome.report.policy, outcome.report.disks
            ),
        });
    }
    (outcome, audit)
}

/// Runs every cell of `spec` on `threads` workers and returns the
/// outcomes in cell-index order.
pub fn run_sweep(spec: &SweepSpec, threads: usize) -> Vec<CellRow> {
    run_sweep_cells(&spec.cells(), threads, false, &FaultPlan::default())
}

/// [`run_sweep`] with a metrics probe attached to every cell, so the
/// outcomes carry [`RunMetrics`] (and can be folded into a
/// [`SweepAggregate`]).
pub fn run_sweep_probed(spec: &SweepSpec, threads: usize) -> Vec<CellRow> {
    run_sweep_cells(&spec.cells(), threads, true, &FaultPlan::default())
}

/// Runs pre-expanded cells; the building block both entry points share.
/// A non-empty `faults` plan is applied to every cell (the plan's own
/// seed stream keeps the whole sweep deterministic at any thread count).
pub fn run_sweep_cells(
    cells: &[SweepCell],
    threads: usize,
    probed: bool,
    faults: &FaultPlan,
) -> Vec<CellRow> {
    run_indexed(cells.len(), threads, |i| {
        run_cell(&cells[i], probed, faults)
    })
}

/// [`run_sweep_cells`] with every cell audited: returns the outcomes
/// (byte-identical to an unaudited sweep) together with each cell's
/// audit verdict, in cell-index order.
pub fn run_sweep_cells_audited(
    cells: &[SweepCell],
    threads: usize,
    probed: bool,
    faults: &FaultPlan,
) -> (Vec<CellRow>, Vec<AuditOutcome>) {
    let pairs = run_indexed(cells.len(), threads, |i| {
        run_cell_audited(&cells[i], probed, faults)
    });
    pairs.into_iter().unzip()
}

/// [`run_sweep_cells`] with per-worker telemetry (for `--profile` and
/// the bench harness). A `sampler` attributes each cell's allocations to
/// [`WorkerStats::work_allocs`]; see [`run_indexed_measured`].
pub fn run_sweep_cells_profiled(
    cells: &[SweepCell],
    threads: usize,
    probed: bool,
    faults: &FaultPlan,
    sampler: ThreadAllocSampler,
) -> (Vec<CellRow>, Vec<WorkerStats>) {
    run_indexed_measured(cells.len(), threads, sampler, |i| {
        run_cell(&cells[i], probed, faults)
    })
}

/// [`run_sweep_cells_audited`] with per-worker telemetry.
pub fn run_sweep_cells_audited_profiled(
    cells: &[SweepCell],
    threads: usize,
    probed: bool,
    faults: &FaultPlan,
    sampler: ThreadAllocSampler,
) -> (Vec<CellRow>, Vec<AuditOutcome>, Vec<WorkerStats>) {
    let (pairs, workers) = run_indexed_measured(cells.len(), threads, sampler, |i| {
        run_cell_audited(&cells[i], probed, faults)
    });
    let (outcomes, audits) = pairs.into_iter().unzip();
    (outcomes, audits, workers)
}

/// [`run_sweep`] with every cell audited.
pub fn run_sweep_audited(spec: &SweepSpec, threads: usize) -> (Vec<CellRow>, Vec<AuditOutcome>) {
    run_sweep_cells_audited(&spec.cells(), threads, false, &FaultPlan::default())
}

// ---------------------------------------------------------------------------
// Fail-soft execution
// ---------------------------------------------------------------------------

/// Fail-soft execution policy for a sweep. The default — no timeout, no
/// retries, no fail-fast, no injection — runs every cell exactly once,
/// inline on its worker, behind a `catch_unwind` boundary; a clean grid
/// produces byte-identical output to the historical executor.
#[derive(Debug, Clone, Default)]
pub struct FailSoft {
    /// Wall-clock deadline per cell attempt. When set, each attempt runs
    /// on a dedicated watchdog thread; an attempt that overruns is
    /// recorded as [`CellOutcome::TimedOut`] and its thread is detached
    /// (Rust cannot kill a thread, so a truly hung cell parks one thread
    /// until it finishes or the process exits — its allocations and CPU
    /// time are no longer attributed to the sweep's workers).
    pub cell_timeout: Option<Duration>,
    /// How many times a failed (panicked or timed-out) attempt is
    /// retried before the failure is recorded. 0 = one attempt.
    pub max_retries: u32,
    /// Stop dispatching new cells after the first failure, restoring the
    /// historical abort semantics. Cells never dispatched are recorded
    /// as [`CellOutcome::Skipped`]. With more than one worker, *which*
    /// cells are skipped depends on scheduling; at one thread the cut is
    /// deterministic.
    pub fail_fast: bool,
    /// Deterministic crash injection, for exercising the machinery.
    pub inject: Option<Injection>,
}

/// A deterministic, index-addressed fault injected *inside* the
/// isolation boundary, so tests and CI exercise the real
/// catch/watchdog/retry paths rather than a simulation of them. The CLI
/// parses one from the `PARCACHE_FAIL_CELL` environment hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injection {
    /// Grid index of the cell to sabotage.
    pub cell: usize,
    /// What the sabotage does.
    pub kind: InjectionKind,
    /// How many attempts fail before the cell is allowed to succeed;
    /// `u32::MAX` (the parse default) means every attempt fails.
    pub times: u32,
}

/// The kinds of injected failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectionKind {
    /// Panic before running the cell.
    Panic,
    /// Sleep this long before running the cell (trips the watchdog).
    Hang(Duration),
}

impl Injection {
    /// Parses an injection spec: `panic:<cell>[:<times>]` or
    /// `hang:<cell>:<ms>[:<times>]`.
    pub fn parse(spec: &str) -> Result<Injection, String> {
        let int = |s: &str, what: &str| {
            s.parse::<u64>()
                .map_err(|_| format!("bad {what} {s:?} in injection spec {spec:?}"))
        };
        let parts: Vec<&str> = spec.split(':').collect();
        match parts.as_slice() {
            ["panic", cell] | ["panic", cell, ""] => Ok(Injection {
                cell: int(cell, "cell index")? as usize,
                kind: InjectionKind::Panic,
                times: u32::MAX,
            }),
            ["panic", cell, times] => Ok(Injection {
                cell: int(cell, "cell index")? as usize,
                kind: InjectionKind::Panic,
                times: int(times, "attempt count")?.min(u32::MAX as u64) as u32,
            }),
            ["hang", cell, ms] => Ok(Injection {
                cell: int(cell, "cell index")? as usize,
                kind: InjectionKind::Hang(Duration::from_millis(int(ms, "hang millis")?)),
                times: u32::MAX,
            }),
            ["hang", cell, ms, times] => Ok(Injection {
                cell: int(cell, "cell index")? as usize,
                kind: InjectionKind::Hang(Duration::from_millis(int(ms, "hang millis")?)),
                times: int(times, "attempt count")?.min(u32::MAX as u64) as u32,
            }),
            _ => Err(format!(
                "bad injection spec {spec:?}: expected panic:<cell>[:<times>] or hang:<cell>:<ms>[:<times>]"
            )),
        }
    }

    /// Reads the `PARCACHE_FAIL_CELL` environment hook. `Ok(None)` when
    /// unset; a set-but-malformed value is an error, never a silent
    /// no-op (a typo must not quietly disable a CI crash test).
    pub fn from_env() -> Result<Option<Injection>, String> {
        match std::env::var("PARCACHE_FAIL_CELL") {
            Ok(v) => Injection::parse(&v).map(Some),
            Err(_) => Ok(None),
        }
    }
}

/// How one cell ended: the outcome lattice of the fail-soft executor.
/// `Ok` carries the finished row; `Panicked` and `TimedOut` record a
/// failure after all attempts; `Skipped` means the executor never
/// dispatched the cell (fail-fast halt). Everything but `Ok` is re-run
/// by `--resume`.
///
/// `Ok` dwarfs the failure variants, but it is also the variant nearly
/// every instance holds — boxing the row would buy nothing and cost an
/// allocation per healthy cell.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum CellOutcome {
    /// The cell finished and produced its row.
    Ok(CellRow),
    /// Every attempt panicked; the last panic payload, as a string.
    Panicked {
        /// The rendered panic payload.
        msg: String,
    },
    /// Every attempt overran the watchdog deadline.
    TimedOut {
        /// The deadline each attempt overran.
        limit: Duration,
    },
    /// Never dispatched: a fail-fast halt landed first.
    Skipped,
}

impl CellOutcome {
    /// The finished row, when the cell completed.
    pub fn row(&self) -> Option<&CellRow> {
        match self {
            CellOutcome::Ok(row) => Some(row),
            _ => None,
        }
    }

    /// Whether a resumed run must re-execute this cell (anything that
    /// did not produce a row).
    pub fn needs_rerun(&self) -> bool {
        self.row().is_none()
    }
}

/// One cell's trip through the fail-soft executor.
#[derive(Debug, Clone)]
pub struct CellExecution {
    /// Grid index of the cell.
    pub index: usize,
    /// Attempts consumed (0 for a skipped cell).
    pub attempts: u32,
    /// How the cell ended.
    pub outcome: CellOutcome,
    /// The audit verdict, for audited runs whose cell produced a row.
    pub audit: Option<AuditOutcome>,
}

/// A fail-soft run: per-cell executions in grid order, plus per-worker
/// telemetry carrying the outcome counters.
#[derive(Debug, Clone)]
pub struct FailSoftRun {
    /// One execution per dispatched grid cell, in cell-index order.
    pub executions: Vec<CellExecution>,
    /// Per-worker telemetry (`failed`/`skipped`/`retries` populated).
    pub workers: Vec<WorkerStats>,
}

impl FailSoftRun {
    /// How many cells did not produce a row.
    pub fn failures(&self) -> usize {
        self.executions
            .iter()
            .filter(|e| e.outcome.needs_rerun())
            .count()
    }

    /// The finished rows, in cell-index order.
    pub fn rows(&self) -> impl Iterator<Item = &CellRow> {
        self.executions.iter().filter_map(|e| e.outcome.row())
    }
}

/// Runs pre-expanded cells under a fail-soft `policy`: every attempt is
/// isolated behind `catch_unwind` (and, with a timeout, a watchdog
/// thread), failures are retried up to `policy.max_retries` times, and
/// the executor keeps draining the queue — one poisoned cell costs that
/// cell, not the sweep. Results come back in cell-index order, so the
/// surviving rows render byte-identically to the same cells of a clean
/// run at any thread count.
pub fn run_cells_failsoft(
    cells: &[SweepCell],
    threads: usize,
    probed: bool,
    audited: bool,
    faults: &FaultPlan,
    policy: &FailSoft,
    sampler: ThreadAllocSampler,
) -> FailSoftRun {
    let halt = AtomicBool::new(false);
    let (executions, workers) = run_indexed_observed(
        cells.len(),
        threads,
        sampler,
        |i| {
            let cell = &cells[i];
            if policy.fail_fast && halt.load(Ordering::Relaxed) {
                return CellExecution {
                    index: cell.index,
                    attempts: 0,
                    outcome: CellOutcome::Skipped,
                    audit: None,
                };
            }
            let exec = run_cell_failsoft(cell, probed, audited, faults, policy);
            if policy.fail_fast && exec.outcome.needs_rerun() {
                halt.store(true, Ordering::Relaxed);
            }
            exec
        },
        |exec: &CellExecution, stats: &mut WorkerStats| {
            match exec.outcome {
                CellOutcome::Ok(_) => {}
                CellOutcome::Skipped => stats.skipped += 1,
                CellOutcome::Panicked { .. } | CellOutcome::TimedOut { .. } => stats.failed += 1,
            }
            stats.retries += u64::from(exec.attempts.saturating_sub(1));
        },
    );
    FailSoftRun {
        executions,
        workers,
    }
}

/// One cell through the bounded-retry loop.
fn run_cell_failsoft(
    cell: &SweepCell,
    probed: bool,
    audited: bool,
    faults: &FaultPlan,
    policy: &FailSoft,
) -> CellExecution {
    let max_attempts = policy.max_retries.saturating_add(1);
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let injected = policy
            .inject
            .filter(|inj| inj.cell == cell.index && attempts <= inj.times);
        let result = attempt_cell(cell, probed, audited, faults, policy.cell_timeout, injected);
        let outcome = match result {
            AttemptResult::Finished(row, audit) => {
                return CellExecution {
                    index: cell.index,
                    attempts,
                    outcome: CellOutcome::Ok(row),
                    audit,
                }
            }
            AttemptResult::Panicked(msg) => CellOutcome::Panicked { msg },
            AttemptResult::TimedOut(limit) => CellOutcome::TimedOut { limit },
        };
        if attempts >= max_attempts {
            return CellExecution {
                index: cell.index,
                attempts,
                outcome,
                audit: None,
            };
        }
    }
}

/// One isolated attempt at a cell. (`Finished` is near-universal, so —
/// as with [`CellOutcome`] — boxing the row is not worth an allocation
/// per healthy cell.)
#[allow(clippy::large_enum_variant)]
enum AttemptResult {
    /// The attempt produced a row (and, when audited, a verdict).
    Finished(CellRow, Option<AuditOutcome>),
    /// The attempt panicked; the rendered payload.
    Panicked(String),
    /// The attempt overran the watchdog deadline.
    TimedOut(Duration),
}

fn attempt_cell(
    cell: &SweepCell,
    probed: bool,
    audited: bool,
    faults: &FaultPlan,
    timeout: Option<Duration>,
    injected: Option<Injection>,
) -> AttemptResult {
    match timeout {
        None => {
            // No deadline: run inline on the worker behind the unwind
            // boundary alone — the zero-cost clean path.
            match catch_unwind(AssertUnwindSafe(|| {
                cell_body(cell, probed, audited, faults, injected)
            })) {
                Ok((row, audit)) => AttemptResult::Finished(row, audit),
                Err(payload) => AttemptResult::Panicked(panic_message(payload.as_ref())),
            }
        }
        Some(limit) => {
            // Watchdog: the attempt runs on its own thread and reports
            // over a channel; the worker waits at most `limit`. On
            // timeout the thread is detached, never joined — the cell
            // may still be spinning, but the sweep moves on.
            let (tx, rx) = mpsc::channel();
            let cell = cell.clone();
            let faults = faults.clone();
            std::thread::spawn(move || {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    cell_body(&cell, probed, audited, &faults, injected)
                }));
                // The receiver may have given up on us; that's fine.
                let _ = tx.send(result);
            });
            match rx.recv_timeout(limit) {
                Ok(Ok((row, audit))) => AttemptResult::Finished(row, audit),
                Ok(Err(payload)) => AttemptResult::Panicked(panic_message(payload.as_ref())),
                Err(mpsc::RecvTimeoutError::Timeout) => AttemptResult::TimedOut(limit),
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    AttemptResult::Panicked("cell worker vanished without reporting".to_string())
                }
            }
        }
    }
}

/// The work inside the isolation boundary: the injection point, then the
/// real cell. Injection fires in here — not in the dispatch loop — so an
/// injected panic unwinds through exactly the machinery a real one would.
fn cell_body(
    cell: &SweepCell,
    probed: bool,
    audited: bool,
    faults: &FaultPlan,
    injected: Option<Injection>,
) -> (CellRow, Option<AuditOutcome>) {
    if let Some(inj) = injected {
        match inj.kind {
            InjectionKind::Panic => panic!("injected failure in cell {}", cell.index),
            InjectionKind::Hang(d) => std::thread::sleep(d),
        }
    }
    if audited {
        let (row, audit) = run_cell_audited(cell, probed, faults);
        (row, Some(audit))
    } else {
        (run_cell(cell, probed, faults), None)
    }
}

/// Shape-independent metrics folded across every probed cell of a sweep
/// (cells with different array sizes cannot merge their per-disk vectors,
/// so the aggregate keeps the global distributions and counters).
#[derive(Debug, Clone, Default)]
pub struct SweepAggregate {
    /// Event counters summed over all cells.
    pub counters: Counters,
    /// Service times across all cells and drives (ns).
    pub fetch_service: Histogram,
    /// Response times across all cells and drives (ns).
    pub fetch_response: Histogram,
    /// Stall durations across all cells (ns).
    pub stall_duration: Histogram,
    /// Queue depths at enqueue across all cells and drives.
    pub queue_depth: Histogram,
}

impl SweepAggregate {
    /// Folds the probed outcomes (in the order given — callers pass
    /// cell-index order for deterministic output). Returns `None` when no
    /// outcome carries metrics.
    pub fn fold(outcomes: &[CellRow]) -> Option<SweepAggregate> {
        let mut agg: Option<SweepAggregate> = None;
        for m in outcomes.iter().filter_map(|o| o.metrics.as_ref()) {
            let a = agg.get_or_insert_with(SweepAggregate::default);
            a.counters.merge(&m.counters);
            a.fetch_service.merge(&m.fetch_service);
            a.fetch_response.merge(&m.fetch_response);
            a.stall_duration.merge(&m.stall_duration);
            a.queue_depth.merge(&m.queue_depth);
        }
        agg
    }

    /// ASCII rendering of the aggregate distributions.
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        out.push_str(
            &self
                .fetch_service
                .render_ascii("fetch service time", Unit::Millis),
        );
        out.push_str(
            &self
                .fetch_response
                .render_ascii("fetch response time", Unit::Millis),
        );
        out.push_str(
            &self
                .stall_duration
                .render_ascii("stall duration", Unit::Millis),
        );
        out.push_str(
            &self
                .queue_depth
                .render_ascii("queue depth at enqueue", Unit::Count),
        );
        out
    }

    /// The aggregate as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"counters":{},"fetch_service_ns":{},"fetch_response_ns":{},"stall_ns":{},"queue_depth":{}}}"#,
            self.counters.to_json(),
            self.fetch_service.to_json(),
            self.fetch_response.to_json(),
            self.stall_duration.to_json(),
            self.queue_depth.to_json(),
        )
    }
}

/// Whether any outcome ran under a predicted hint source. Gates the
/// `hints` CSV columns the same way fault accounting gates the fault
/// columns: oracle-only sweeps keep the exact historical bytes.
fn any_hinted(outcomes: &[CellRow]) -> bool {
    outcomes
        .iter()
        .any(|o| o.cell.hints != HintMode::Oracle || o.report.hints.is_some())
}

/// The column gates of a sweep CSV document: which optional column
/// groups the header and every row carry. Fault columns appear iff the
/// run carries fault accounting; hint columns iff any cell runs a
/// predicted source. Both are **pure functions of the grid**:
/// [`Report::fault`] is `Some` exactly when the fault plan was
/// non-empty, and a cell's hint column depends only on its own
/// [`SweepCell::hints`]. [`CsvGates::for_grid`] therefore renders any
/// *subset* of a grid's rows with the same bytes the full run would
/// produce — the fact that makes a resumed sweep's spliced CSV
/// byte-identical to an uninterrupted run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsvGates {
    /// Append the fault accounting columns.
    pub faulted: bool,
    /// Append the hint-source column (plus accuracy, with `explain`).
    pub hinted: bool,
    /// Render the `--explain` flavor (per-cause stall columns).
    pub explain: bool,
}

impl CsvGates {
    /// The gates a grid will render under, before any cell has run.
    pub fn for_grid(cells: &[SweepCell], faults: &FaultPlan, explain: bool) -> CsvGates {
        CsvGates {
            faulted: !faults.is_empty() && !cells.is_empty(),
            hinted: cells.iter().any(|c| c.hints != HintMode::Oracle),
            explain,
        }
    }

    /// The gates a finished row set renders under — the historical,
    /// outcome-driven computation. Identical to [`CsvGates::for_grid`]
    /// of the cells the rows came from (pinned by test).
    pub fn for_rows(rows: &[CellRow], explain: bool) -> CsvGates {
        CsvGates {
            faulted: rows.iter().any(|o| o.report.fault.is_some()),
            hinted: any_hinted(rows),
            explain,
        }
    }

    /// The header line (with trailing newline).
    pub fn header(&self) -> String {
        let mut out = String::new();
        if self.explain {
            out.push_str(&Report::csv_header_explain(self.faulted));
            if self.hinted {
                out.push_str(",hints,hint_precision,hint_recall");
            }
        } else {
            // Fault columns appear only when a cell carries fault
            // accounting, so healthy sweeps keep the exact historical
            // header and row bytes.
            if self.faulted {
                out.push_str(Report::csv_header_faulted());
            } else {
                out.push_str(Report::csv_header());
            }
            if self.hinted {
                out.push_str(",hints");
            }
        }
        out.push('\n');
        out
    }

    /// One row (with trailing newline), rendered under these gates.
    pub fn row(&self, o: &CellRow) -> String {
        let mut out = if self.explain {
            o.report.to_csv_row_explain()
        } else {
            o.report.to_csv_row()
        };
        if self.hinted {
            if self.explain {
                // The oracle source is by definition perfectly precise
                // and complete; predicted cells report measured figures.
                let (precision, recall) = match &o.report.hints {
                    Some(stats) => (stats.precision(), stats.recall()),
                    None => (1.0, 1.0),
                };
                out.push_str(&format!(
                    ",{},{:.4},{:.4}",
                    o.cell.hints.name(),
                    precision,
                    recall
                ));
            } else {
                out.push(',');
                out.push_str(o.cell.hints.name());
            }
        }
        out.push('\n');
        out
    }
}

/// The outcomes as a CSV document (header plus one row per cell, in cell
/// order). Identical input produces identical bytes, whatever the thread
/// count that computed it.
pub fn sweep_csv(outcomes: &[CellRow]) -> String {
    sweep_csv_gated(CsvGates::for_rows(outcomes, false), outcomes)
}

/// [`sweep_csv`] with the five per-cause stall columns appended to every
/// row (`--explain`), plus — when any cell ran on predicted hints — the
/// hint source and its prediction precision/recall. A separate function,
/// not a flag on [`sweep_csv`]: the default document's bytes are
/// golden-pinned and must not change.
pub fn sweep_csv_explain(outcomes: &[CellRow]) -> String {
    sweep_csv_gated(CsvGates::for_rows(outcomes, true), outcomes)
}

/// Renders rows under explicit `gates` — the building block the resume
/// path uses to splice stored and freshly-computed rows into one
/// document with a grid-determined shape.
pub fn sweep_csv_gated(gates: CsvGates, outcomes: &[CellRow]) -> String {
    let per_row = if gates.explain { 128 } else { 96 };
    let mut out = String::with_capacity(outcomes.len() * per_row + 160);
    out.push_str(&gates.header());
    for o in outcomes {
        out.push_str(&gates.row(o));
    }
    out
}

/// The outcomes as one JSON document: `{"cells":[...]}`, each cell's
/// report (and metrics, when probed) in cell order, plus the aggregate
/// over probed cells when present.
pub fn sweep_json(outcomes: &[CellRow]) -> String {
    let cells: Vec<String> = outcomes
        .iter()
        .map(|o| match &o.metrics {
            Some(m) => format!(
                r#"{{"report":{},"metrics":{}}}"#,
                o.report.to_json(),
                m.to_json()
            ),
            None => format!(r#"{{"report":{}}}"#, o.report.to_json()),
        })
        .collect();
    match SweepAggregate::fold(outcomes) {
        Some(agg) => format!(
            r#"{{"cells":[{}],"aggregate":{}}}"#,
            cells.join(","),
            agg.to_json()
        ),
        None => format!(r#"{{"cells":[{}]}}"#, cells.join(",")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_indexed_preserves_order_across_threads() {
        for threads in [1, 2, 4, 9] {
            let out = run_indexed(57, threads, |i| i * i);
            assert_eq!(out, (0..57).map(|i| i * i).collect::<Vec<_>>(), "{threads}");
        }
        assert!(run_indexed(0, 4, |i| i).is_empty());
    }

    #[test]
    fn run_indexed_runs_every_index_exactly_once() {
        use std::sync::Mutex;
        let seen = Mutex::new(vec![0u32; 100]);
        let out = run_indexed(100, 4, |i| {
            seen.lock().unwrap()[i] += 1;
            i
        });
        assert_eq!(out.len(), 100);
        assert!(seen.lock().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn run_indexed_propagates_worker_panics() {
        run_indexed(8, 3, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn run_indexed_profiled_matches_run_indexed() {
        for threads in [1, 3] {
            let (out, workers) = run_indexed_profiled(23, threads, |i| i * 3);
            assert_eq!(out, (0..23).map(|i| i * 3).collect::<Vec<_>>());
            assert_eq!(workers.len(), threads);
            assert_eq!(workers.iter().map(|w| w.items).sum::<u64>(), 23);
            for w in &workers {
                assert!(w.wall_us >= w.busy_us, "{w:?}");
            }
        }
        let (out, workers) = run_indexed_profiled(0, 4, |i| i);
        assert!(out.is_empty());
        assert_eq!(workers.len(), 1);
    }

    #[test]
    fn measured_work_allocs_are_thread_count_invariant() {
        use std::cell::Cell;
        thread_local! {
            static FAKE: Cell<u64> = const { Cell::new(0) };
        }
        fn read_fake() -> u64 {
            FAKE.with(Cell::get)
        }
        // Each item "allocates" i + 1 ticks on whichever worker runs it;
        // anything outside the items never touches the counter, so the
        // summed figure must be a pure function of the item set.
        let run = |i: usize| {
            FAKE.with(|c| c.set(c.get() + i as u64 + 1));
            i * 2
        };
        let expected: u64 = (1..=40).sum();
        for threads in [1, 2, 4] {
            let (out, workers) = run_indexed_measured(40, threads, Some(read_fake), run);
            assert_eq!(out, (0..40).map(|i| i * 2).collect::<Vec<_>>());
            let total: u64 = workers.iter().map(|w| w.work_allocs).sum();
            assert_eq!(total, expected, "{threads} threads");
        }
        // Without a sampler the counters stay zero.
        let (_, workers) = run_indexed_measured(8, 2, None, |i| i);
        assert!(workers.iter().all(|w| w.work_allocs == 0));
    }

    #[test]
    fn explain_csv_appends_cause_columns_without_touching_default() {
        let t = Arc::new(parcache_trace::synth::synth_trace(2, 60, 5));
        let spec = SweepSpec {
            entries: vec![SweepEntry {
                trace: t,
                disks: vec![1],
            }],
            algos: vec![Algo::Demand, Algo::Aggressive],
            hints: Vec::new(),
        };
        let outcomes = run_sweep(&spec, 1);
        let plain = sweep_csv(&outcomes);
        let explain = sweep_csv_explain(&outcomes);
        let plain_cols = plain.lines().next().unwrap().split(',').count();
        for (p, e) in plain.lines().zip(explain.lines()) {
            // Every explain row is its default row plus five columns —
            // the default bytes are a strict prefix.
            assert!(e.starts_with(p), "{e}\nvs\n{p}");
            assert_eq!(e.split(',').count(), plain_cols + 5);
        }
        assert!(explain
            .lines()
            .next()
            .unwrap()
            .ends_with("stall_late_prefetch_s,stall_no_prefetch_s,stall_congestion_s,stall_retry_s,stall_eviction_refetch_s"));
    }

    #[test]
    fn cells_expand_in_row_order() {
        let t = Arc::new(parcache_trace::synth::synth_trace(2, 40, 5));
        let spec = SweepSpec {
            entries: vec![SweepEntry {
                trace: t,
                disks: vec![1, 2],
            }],
            algos: vec![Algo::Demand, Algo::FixedHorizon],
            hints: Vec::new(),
        };
        let cells = spec.cells();
        assert_eq!(cells.len(), 4);
        assert!(cells.iter().all(|c| c.hints == HintMode::Oracle));
        let order: Vec<(usize, &str)> = cells.iter().map(|c| (c.disks, c.algo.name())).collect();
        assert_eq!(
            order,
            vec![
                (1, "demand"),
                (1, "fixed-horizon"),
                (2, "demand"),
                (2, "fixed-horizon")
            ]
        );
        assert!(cells.iter().enumerate().all(|(i, c)| c.index == i));
    }

    #[test]
    fn hint_axis_multiplies_the_grid_and_gates_the_csv_columns() {
        use parcache_core::predict::PredictorKind;
        let t = Arc::new(parcache_trace::synth::synth_trace(2, 60, 5));
        let spec = SweepSpec {
            entries: vec![SweepEntry {
                trace: t,
                disks: vec![1],
            }],
            algos: vec![Algo::Demand, Algo::Aggressive],
            hints: vec![
                HintMode::Oracle,
                HintMode::Predicted(PredictorKind::Sequential),
            ],
        };
        let cells = spec.cells();
        assert_eq!(cells.len(), 4);
        let order: Vec<&str> = cells.iter().map(|c| c.hints.name()).collect();
        assert_eq!(order, vec!["oracle", "oracle", "seq", "seq"]);
        let outcomes = run_sweep(&spec, 1);
        // Oracle cells stay stats-free; predicted cells carry stats.
        assert!(outcomes[0].report.hints.is_none());
        assert!(outcomes[2].report.hints.is_some());
        let csv = sweep_csv(&outcomes);
        assert!(csv.lines().next().unwrap().ends_with(",hints"));
        assert!(csv.lines().nth(1).unwrap().ends_with(",oracle"));
        assert!(csv.lines().nth(3).unwrap().ends_with(",seq"));
        let explain = sweep_csv_explain(&outcomes);
        let header = explain.lines().next().unwrap();
        assert!(header.ends_with(",hints,hint_precision,hint_recall"));
        // Oracle rows render as perfectly precise and complete.
        assert!(explain
            .lines()
            .nth(1)
            .unwrap()
            .contains(",oracle,1.0000,1.0000"));
        // The plain document for an oracle-only subset keeps its
        // historical bytes: no hints column at all.
        let oracle_only = sweep_csv(&outcomes[..2]);
        assert!(!oracle_only.contains("hints"));
    }

    #[test]
    fn appendix_a_grid_has_332_cells() {
        // Grid shape only — expansion does not run any simulation, but it
        // does generate the traces, so share the process-wide cache.
        let spec = SweepSpec::appendix_a(2);
        assert_eq!(spec.cells().len(), 332);
    }
}
