//! The block cache: residency, in-flight frame reservation, and
//! furthest-next-reference (Belady) eviction.
//!
//! §2.1 semantics: the cache holds `K` frames. Issuing a fetch reserves a
//! frame immediately — the evicted block becomes unavailable at issue time
//! and the incoming block becomes available at completion; neither is
//! accessible in between. `resident + in-flight <= K` always.

use crate::oracle::{Oracle, NEVER};
use parcache_types::BlockId;
use std::collections::{BinaryHeap, HashSet};

/// The cache state.
#[derive(Debug)]
pub struct Cache {
    capacity: usize,
    resident: HashSet<BlockId>,
    inflight: HashSet<BlockId>,
    /// Lazy max-heap over resident blocks keyed by next-reference
    /// position. Entries go stale as the cursor advances or blocks are
    /// evicted; they are validated against the oracle when popped.
    belady: BinaryHeap<(usize, BlockId)>,
    /// The block the application is about to reference, exempt from
    /// eviction. Without this, a block demand-fetched for an
    /// *undisclosed* reference (whose policy-visible next use is NEVER)
    /// would be evicted the instant it arrived, re-demanded, and the
    /// simulation would livelock — a real OS never evicts a page with an
    /// outstanding demand on it.
    pinned: Option<BlockId>,
    /// Under incomplete hints, value blocks with no *disclosed* future by
    /// LRU recency (`last use + capacity`) instead of "never used again",
    /// the way TIP2 values unhinted pages. Off in the fully-hinted
    /// setting, where absence of a future reference is exact knowledge.
    lru_estimate: bool,
    /// Most recent reference (or fetch) position per block, for the LRU
    /// estimate. Only maintained when `lru_estimate` is on.
    last_use: std::collections::HashMap<BlockId, usize>,
}

impl Cache {
    /// Creates an empty cache of `capacity` frames.
    pub fn new(capacity: usize) -> Cache {
        assert!(capacity > 0, "cache must hold at least one block");
        Cache {
            capacity,
            resident: HashSet::new(),
            inflight: HashSet::new(),
            belady: BinaryHeap::new(),
            pinned: None,
            lru_estimate: false,
            last_use: std::collections::HashMap::new(),
        }
    }

    /// Enables LRU valuation of blocks with no disclosed future (used by
    /// the engine for incomplete-hint runs).
    pub fn enable_lru_estimate(&mut self) {
        self.lru_estimate = true;
    }

    /// The Belady key of `block` for an event at position `pos`: its next
    /// disclosed occurrence, or — under the LRU estimate — its last use
    /// plus the cache capacity.
    fn key_for(&self, block: BlockId, pos: usize, oracle: &Oracle) -> usize {
        let next = oracle.next_occurrence(block, pos);
        if next != NEVER || !self.lru_estimate {
            return next;
        }
        self.last_use
            .get(&block)
            .map(|&lu| lu.saturating_add(self.capacity))
            .unwrap_or(NEVER)
    }

    /// Pins `block` against eviction (the engine pins the current
    /// reference); `None` unpins.
    pub fn pin(&mut self, block: Option<BlockId>) {
        self.pinned = block;
    }

    /// The currently pinned block, if any.
    pub fn pinned(&self) -> Option<BlockId> {
        self.pinned
    }

    /// Frame count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True when `block` is available in the cache.
    pub fn resident(&self, block: BlockId) -> bool {
        self.resident.contains(&block)
    }

    /// True when a fetch of `block` has been issued but not completed.
    pub fn inflight(&self, block: BlockId) -> bool {
        self.inflight.contains(&block)
    }

    /// Number of resident blocks.
    pub fn resident_count(&self) -> usize {
        self.resident.len()
    }

    /// Number of in-flight fetches.
    pub fn inflight_count(&self) -> usize {
        self.inflight.len()
    }

    /// True when a fetch can be issued without evicting anything.
    pub fn has_free_frame(&self) -> bool {
        self.resident.len() + self.inflight.len() < self.capacity
    }

    /// Begins a fetch of `block`, evicting `evict` if given.
    ///
    /// # Panics
    ///
    /// Panics on violated invariants: fetching a resident or in-flight
    /// block, evicting a non-resident block, or fetching without a frame.
    pub fn start_fetch(&mut self, block: BlockId, evict: Option<BlockId>) {
        assert!(!self.resident(block), "fetching resident {block}");
        assert!(!self.inflight(block), "duplicate fetch of {block}");
        if let Some(e) = evict {
            assert!(Some(e) != self.pinned, "evicting pinned {e}");
            assert!(self.resident.remove(&e), "evicting non-resident {e}");
            // The heap entry for `e` goes stale and is skipped on pop.
        } else {
            assert!(
                self.resident.len() + self.inflight.len() < self.capacity,
                "no free frame and no eviction"
            );
        }
        self.inflight.insert(block);
    }

    /// Completes the fetch of `block` at cursor position `cursor`: the
    /// block becomes resident and enters the Belady heap.
    ///
    /// # Panics
    ///
    /// Panics if no fetch of `block` was in flight.
    pub fn complete_fetch(&mut self, block: BlockId, cursor: usize, oracle: &Oracle) {
        assert!(self.inflight.remove(&block), "completing unfetched {block}");
        self.resident.insert(block);
        if self.lru_estimate {
            self.last_use.entry(block).or_insert(cursor);
        }
        self.belady
            .push((self.key_for(block, cursor, oracle), block));
    }

    /// Abandons the in-flight fetch of `block`: the reserved frame is
    /// released and the block is neither resident nor in flight (the
    /// driver gave up on the request; see the engine's retry policy).
    ///
    /// # Panics
    ///
    /// Panics if no fetch of `block` was in flight.
    pub fn cancel_fetch(&mut self, block: BlockId) {
        assert!(self.inflight.remove(&block), "cancelling unfetched {block}");
    }

    /// Records that the application consumed `block` at position `pos`:
    /// refreshes its Belady key to the next occurrence after `pos`.
    pub fn on_reference(&mut self, block: BlockId, pos: usize, oracle: &Oracle) {
        debug_assert!(self.resident(block), "consumed non-resident {block}");
        if self.lru_estimate {
            self.last_use.insert(block, pos + 1);
        }
        self.belady
            .push((self.key_for(block, pos + 1, oracle), block));
    }

    /// The evictable resident block whose next reference (at or after
    /// `cursor`) is furthest in the future, with that position ([`NEVER`]
    /// if it is never referenced again). `None` when nothing evictable is
    /// resident. The pinned block is never returned.
    ///
    /// Lazily repairs stale heap entries; amortized cost is logarithmic.
    pub fn furthest_resident(
        &mut self,
        cursor: usize,
        oracle: &Oracle,
    ) -> Option<(BlockId, usize)> {
        let mut stash: Option<(usize, BlockId)> = None;
        let mut found = None;
        while let Some((key, block)) = self.belady.pop() {
            if !self.resident(block) {
                continue; // evicted since this entry was pushed
            }
            let actual = self.key_for(block, cursor, oracle);
            if actual != key {
                self.belady.push((actual, block));
                continue;
            }
            if Some(block) == self.pinned {
                // Valid entry, but exempt: set it aside and keep looking.
                stash = Some((key, block));
                continue;
            }
            self.belady.push((key, block));
            found = Some((block, key));
            break;
        }
        if let Some(entry) = stash {
            self.belady.push(entry);
        }
        found
    }

    /// Iterates over resident blocks (unordered).
    pub fn resident_blocks(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.resident.iter().copied()
    }
}

/// Dynamic index of *missing* blocks' next occurrences.
///
/// For every block that is neither resident nor in flight, the tracker
/// holds the position of its next reference, globally and per disk. This
/// is what lets every policy find "the first missing block (on disk D)"
/// in logarithmic time instead of scanning the future.
#[derive(Debug)]
pub struct MissingTracker {
    /// Next-occurrence positions of missing blocks, global.
    global: std::collections::BTreeSet<usize>,
    /// The same positions partitioned by disk.
    per_disk: Vec<std::collections::BTreeSet<usize>>,
}

impl MissingTracker {
    /// Builds the tracker for a cold cache: every distinct block is
    /// missing at its first occurrence.
    pub fn new(oracle: &Oracle) -> MissingTracker {
        let mut t = MissingTracker {
            global: Default::default(),
            per_disk: vec![Default::default(); oracle.layout().disks()],
        };
        for (block, pos) in oracle.first_occurrences() {
            t.insert(block, pos, oracle);
        }
        t
    }

    fn insert(&mut self, block: BlockId, pos: usize, oracle: &Oracle) {
        if pos == NEVER {
            return;
        }
        debug_assert_eq!(oracle.block_at(pos), block);
        self.global.insert(pos);
        self.per_disk[oracle.disk_of(block).index()].insert(pos);
    }

    /// A fetch of `block` was issued: it is no longer missing.
    pub fn on_fetch_issued(&mut self, block: BlockId, cursor: usize, oracle: &Oracle) {
        let pos = oracle.next_occurrence(block, cursor);
        if pos == NEVER {
            return;
        }
        self.global.remove(&pos);
        self.per_disk[oracle.disk_of(block).index()].remove(&pos);
    }

    /// `block` was evicted at cursor position `cursor`: it is missing
    /// again from its next reference on.
    pub fn on_evicted(&mut self, block: BlockId, cursor: usize, oracle: &Oracle) {
        let pos = oracle.next_occurrence(block, cursor);
        self.insert(block, pos, oracle);
    }

    /// The first position `>= from` whose block is missing, globally.
    pub fn first_missing(&self, from: usize) -> Option<usize> {
        self.global.range(from..).next().copied()
    }

    /// The first position `>= from` whose block is missing and lives on
    /// `disk`.
    pub fn first_missing_on_disk(&self, disk: usize, from: usize) -> Option<usize> {
        self.per_disk[disk].range(from..).next().copied()
    }

    /// Positions of missing blocks in `[from, to)`, globally, ascending.
    pub fn missing_in_window(&self, from: usize, to: usize) -> impl Iterator<Item = usize> + '_ {
        self.global.range(from..to).copied()
    }

    /// Positions of missing blocks in `[from, to)` on `disk`, ascending.
    pub fn missing_on_disk_in_window(
        &self,
        disk: usize,
        from: usize,
        to: usize,
    ) -> impl Iterator<Item = usize> + '_ {
        self.per_disk[disk].range(from..to).copied()
    }

    /// Total missing-block entries (diagnostics).
    pub fn len(&self) -> usize {
        self.global.len()
    }

    /// True when nothing is missing.
    pub fn is_empty(&self) -> bool {
        self.global.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcache_disk::layout::Layout;
    use parcache_trace::{Request, Trace};
    use parcache_types::Nanos;

    fn oracle_of(blocks: &[u64], disks: usize) -> Oracle {
        let t = Trace::new(
            "t",
            blocks
                .iter()
                .map(|&b| Request {
                    block: BlockId(b),
                    compute: Nanos::from_millis(1),
                })
                .collect(),
            4,
        );
        Oracle::new(&t, Layout::striped(disks))
    }

    #[test]
    fn fetch_lifecycle() {
        let o = oracle_of(&[1, 2, 1], 1);
        let mut c = Cache::new(2);
        assert!(c.has_free_frame());
        c.start_fetch(BlockId(1), None);
        assert!(c.inflight(BlockId(1)));
        assert!(!c.resident(BlockId(1)));
        c.complete_fetch(BlockId(1), 0, &o);
        assert!(c.resident(BlockId(1)));
        assert!(!c.inflight(BlockId(1)));
        assert_eq!(c.resident_count(), 1);
    }

    #[test]
    fn frames_are_reserved_at_issue() {
        let o = oracle_of(&[1, 2, 3], 1);
        let mut c = Cache::new(2);
        c.start_fetch(BlockId(1), None);
        c.start_fetch(BlockId(2), None);
        assert!(!c.has_free_frame());
        c.complete_fetch(BlockId(1), 0, &o);
        c.complete_fetch(BlockId(2), 0, &o);
        // Full cache: must evict to fetch.
        c.start_fetch(BlockId(3), Some(BlockId(1)));
        assert!(!c.resident(BlockId(1)));
        assert_eq!(c.resident_count() + c.inflight_count(), 2);
    }

    #[test]
    #[should_panic(expected = "no free frame")]
    fn overcommit_panics() {
        let mut c = Cache::new(1);
        c.start_fetch(BlockId(1), None);
        c.start_fetch(BlockId(2), None);
    }

    #[test]
    fn cancel_fetch_releases_the_frame() {
        let o = oracle_of(&[1, 2], 1);
        let mut c = Cache::new(1);
        c.start_fetch(BlockId(1), None);
        assert!(!c.has_free_frame());
        c.cancel_fetch(BlockId(1));
        assert!(!c.inflight(BlockId(1)));
        assert!(!c.resident(BlockId(1)));
        // The frame is reusable, including for the same block again.
        c.start_fetch(BlockId(1), None);
        c.complete_fetch(BlockId(1), 0, &o);
        assert!(c.resident(BlockId(1)));
    }

    #[test]
    #[should_panic(expected = "cancelling unfetched")]
    fn cancel_of_unfetched_block_panics() {
        let mut c = Cache::new(2);
        c.cancel_fetch(BlockId(1));
    }

    #[test]
    #[should_panic(expected = "duplicate fetch")]
    fn duplicate_fetch_panics() {
        let mut c = Cache::new(2);
        c.start_fetch(BlockId(1), None);
        c.start_fetch(BlockId(1), None);
    }

    #[test]
    fn belady_picks_furthest() {
        // Sequence: 1 2 3 1 2 3 ... block 9 never referenced.
        let o = oracle_of(&[1, 2, 3, 1, 2, 3], 1);
        let mut c = Cache::new(4);
        for b in [1u64, 2, 3, 9] {
            c.start_fetch(BlockId(b), None);
            c.complete_fetch(BlockId(b), 0, &o);
        }
        // Block 9 is never referenced: furthest.
        let (b, key) = c.furthest_resident(0, &o).unwrap();
        assert_eq!(b, BlockId(9));
        assert_eq!(key, NEVER);
        c.start_fetch(BlockId(42), Some(BlockId(9)));
        // Now block 3 (next ref at 2) is furthest among 1(0), 2(1), 3(2).
        let (b, key) = c.furthest_resident(0, &o).unwrap();
        assert_eq!((b, key), (BlockId(3), 2));
    }

    #[test]
    fn belady_keys_refresh_as_cursor_advances() {
        let o = oracle_of(&[1, 2, 1, 2], 1);
        let mut c = Cache::new(2);
        for b in [1u64, 2] {
            c.start_fetch(BlockId(b), None);
            c.complete_fetch(BlockId(b), 0, &o);
        }
        // At cursor 0: block 2 next at 1... block 1 at 0; furthest is 2.
        assert_eq!(c.furthest_resident(0, &o).unwrap().0, BlockId(2));
        // Consume positions 0 and 1; at cursor 2, next refs are 1->2, 2->3.
        c.on_reference(BlockId(1), 0, &o);
        c.on_reference(BlockId(2), 1, &o);
        assert_eq!(c.furthest_resident(2, &o).unwrap(), (BlockId(2), 3));
        // At cursor 4 both are NEVER; either may win but the key is NEVER.
        assert_eq!(c.furthest_resident(4, &o).unwrap().1, NEVER);
    }

    #[test]
    fn empty_cache_has_no_furthest() {
        let o = oracle_of(&[1], 1);
        let mut c = Cache::new(2);
        assert_eq!(c.furthest_resident(0, &o), None);
    }

    #[test]
    fn tracker_initializes_with_first_occurrences() {
        let o = oracle_of(&[5, 6, 5, 7], 2);
        let t = MissingTracker::new(&o);
        assert_eq!(t.len(), 3);
        assert_eq!(t.first_missing(0), Some(0));
        assert_eq!(t.first_missing(1), Some(1));
        assert_eq!(t.first_missing(2), Some(3)); // 5 registered at 0 only
    }

    #[test]
    fn tracker_fetch_and_evict_cycle() {
        let o = oracle_of(&[5, 6, 5, 7], 1);
        let mut t = MissingTracker::new(&o);
        t.on_fetch_issued(BlockId(5), 0, &o);
        assert_eq!(t.first_missing(0), Some(1)); // block 6
                                                 // Evict 5 at cursor 1: re-registered at its next ref, position 2.
        t.on_evicted(BlockId(5), 1, &o);
        assert_eq!(t.first_missing(0), Some(1));
        assert_eq!(t.first_missing(2), Some(2));
    }

    #[test]
    fn tracker_per_disk_views() {
        // Striped over 2 disks: blocks 0,2 on disk 0; 1,3 on disk 1.
        let o = oracle_of(&[0, 1, 2, 3], 2);
        let t = MissingTracker::new(&o);
        assert_eq!(t.first_missing_on_disk(0, 0), Some(0));
        assert_eq!(t.first_missing_on_disk(1, 0), Some(1));
        assert_eq!(t.first_missing_on_disk(0, 1), Some(2));
        let w: Vec<usize> = t.missing_on_disk_in_window(1, 0, 4).collect();
        assert_eq!(w, vec![1, 3]);
    }

    #[test]
    fn tracker_ignores_never_referenced_evictions() {
        let o = oracle_of(&[1, 2], 1);
        let mut t = MissingTracker::new(&o);
        t.on_fetch_issued(BlockId(1), 0, &o);
        t.on_fetch_issued(BlockId(2), 0, &o);
        assert!(t.is_empty());
        // Evicting block 1 at cursor 2 (past its last reference): no entry.
        t.on_evicted(BlockId(1), 2, &o);
        assert!(t.is_empty());
    }

    #[test]
    fn window_queries() {
        let o = oracle_of(&[0, 1, 2, 3, 4], 1);
        let t = MissingTracker::new(&o);
        let w: Vec<usize> = t.missing_in_window(1, 4).collect();
        assert_eq!(w, vec![1, 2, 3]);
    }
}
