//! The block cache: residency, in-flight frame reservation, and
//! furthest-next-reference (Belady) eviction.
//!
//! §2.1 semantics: the cache holds `K` frames. Issuing a fetch reserves a
//! frame immediately — the evicted block becomes unavailable at issue time
//! and the incoming block becomes available at completion; neither is
//! accessible in between. `resident + in-flight <= K` always.
//!
//! All per-block state is keyed by the oracle's compact block index
//! (`u32`): residency and in-flight are bitsets, the LRU recency estimate
//! is a slot array. Membership tests on the reference hot path are a load
//! and a mask, with no hashing.

use crate::oracle::{Oracle, NEVER};
use parcache_types::{BitSet, BlockId, PosSet};
use std::collections::BinaryHeap;

/// Sentinel in the `last_use` slot array for "never used".
const NO_USE: usize = usize::MAX;

/// The cache state.
#[derive(Debug)]
pub struct Cache {
    capacity: usize,
    resident: BitSet,
    inflight: BitSet,
    /// Lazy max-heap over resident blocks keyed by next-reference
    /// position. Entries go stale as the cursor advances or blocks are
    /// evicted; they are validated against the oracle when popped. The
    /// `BlockId` stays in the entry so tie-breaking on equal keys is
    /// identical to the pre-index implementation; the trailing compact
    /// index never influences the order because equal `(key, block)`
    /// implies an equal index.
    belady: BinaryHeap<(usize, BlockId, u32)>,
    /// The block the application is about to reference, exempt from
    /// eviction. Without this, a block demand-fetched for an
    /// *undisclosed* reference (whose policy-visible next use is NEVER)
    /// would be evicted the instant it arrived, re-demanded, and the
    /// simulation would livelock — a real OS never evicts a page with an
    /// outstanding demand on it.
    pinned: Option<u32>,
    /// Under incomplete hints, value blocks with no *disclosed* future by
    /// LRU recency (`last use + capacity`) instead of "never used again",
    /// the way TIP2 values unhinted pages. Off in the fully-hinted
    /// setting, where absence of a future reference is exact knowledge.
    lru_estimate: bool,
    /// Most recent reference (or fetch) position per compact index, for
    /// the LRU estimate. Only maintained when `lru_estimate` is on.
    last_use: Vec<usize>,
}

impl Cache {
    /// Creates an empty cache of `capacity` frames whose block universe
    /// holds `universe` compact indices (see [`Oracle::num_blocks`]).
    pub fn new(capacity: usize, universe: usize) -> Cache {
        assert!(capacity > 0, "cache must hold at least one block");
        Cache {
            capacity,
            resident: BitSet::with_capacity(universe),
            inflight: BitSet::with_capacity(universe),
            belady: BinaryHeap::new(),
            pinned: None,
            lru_estimate: false,
            last_use: vec![NO_USE; universe],
        }
    }

    /// Enables LRU valuation of blocks with no disclosed future (used by
    /// the engine for incomplete-hint runs).
    pub fn enable_lru_estimate(&mut self) {
        self.lru_estimate = true;
    }

    /// The Belady key of block `idx` given its next occurrence `next`:
    /// that occurrence, or — under the LRU estimate — its last use plus
    /// the cache capacity.
    fn key_from_next(&self, idx: u32, next: usize) -> usize {
        if next != NEVER || !self.lru_estimate {
            return next;
        }
        match self.last_use[idx as usize] {
            NO_USE => NEVER,
            lu => lu.saturating_add(self.capacity),
        }
    }

    /// The Belady key of block `idx` for an event at position `pos`.
    fn key_for(&self, idx: u32, pos: usize, oracle: &Oracle) -> usize {
        self.key_from_next(idx, oracle.next_occurrence_idx(idx, pos))
    }

    /// Pins block `idx` against eviction (the engine pins the current
    /// reference); `None` unpins.
    pub fn pin(&mut self, idx: Option<u32>) {
        self.pinned = idx;
    }

    /// The currently pinned block, if any.
    pub fn pinned(&self) -> Option<u32> {
        self.pinned
    }

    /// Frame count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True when block `idx` is available in the cache.
    #[inline]
    pub fn resident(&self, idx: u32) -> bool {
        self.resident.contains(idx)
    }

    /// True when a fetch of block `idx` has been issued but not completed.
    #[inline]
    pub fn inflight(&self, idx: u32) -> bool {
        self.inflight.contains(idx)
    }

    /// Number of resident blocks.
    pub fn resident_count(&self) -> usize {
        self.resident.len()
    }

    /// Number of in-flight fetches.
    pub fn inflight_count(&self) -> usize {
        self.inflight.len()
    }

    /// True when a fetch can be issued without evicting anything.
    pub fn has_free_frame(&self) -> bool {
        self.resident.len() + self.inflight.len() < self.capacity
    }

    /// Begins a fetch of block `idx`, evicting `evict` if given.
    ///
    /// # Panics
    ///
    /// Panics on violated invariants: fetching a resident or in-flight
    /// block, evicting a non-resident block, or fetching without a frame.
    pub fn start_fetch(&mut self, idx: u32, evict: Option<u32>) {
        assert!(!self.resident(idx), "fetching resident block index {idx}");
        assert!(!self.inflight(idx), "duplicate fetch of block index {idx}");
        if let Some(e) = evict {
            assert!(Some(e) != self.pinned, "evicting pinned block index {e}");
            assert!(
                self.resident.remove(e),
                "evicting non-resident block index {e}"
            );
            // The heap entry for `e` goes stale and is skipped on pop.
        } else {
            assert!(
                self.resident.len() + self.inflight.len() < self.capacity,
                "no free frame and no eviction"
            );
        }
        self.inflight.insert(idx);
    }

    /// Completes the fetch of block `idx` at cursor position `cursor`:
    /// the block becomes resident and enters the Belady heap.
    ///
    /// # Panics
    ///
    /// Panics if no fetch of block `idx` was in flight.
    pub fn complete_fetch(&mut self, idx: u32, cursor: usize, oracle: &Oracle) {
        assert!(
            self.inflight.remove(idx),
            "completing unfetched block index {idx}"
        );
        self.resident.insert(idx);
        if self.lru_estimate && self.last_use[idx as usize] == NO_USE {
            self.last_use[idx as usize] = cursor;
        }
        self.belady
            .push((self.key_for(idx, cursor, oracle), oracle.block_of(idx), idx));
    }

    /// Abandons the in-flight fetch of block `idx`: the reserved frame is
    /// released and the block is neither resident nor in flight (the
    /// driver gave up on the request; see the engine's retry policy).
    ///
    /// # Panics
    ///
    /// Panics if no fetch of block `idx` was in flight.
    pub fn cancel_fetch(&mut self, idx: u32) {
        assert!(
            self.inflight.remove(idx),
            "cancelling unfetched block index {idx}"
        );
    }

    /// Records that the application consumed block `idx` at position
    /// `pos`: refreshes its Belady key to the next occurrence after `pos`
    /// (an O(1) next-pointer walk when `pos` references `idx`, which it
    /// always does on this path).
    pub fn on_reference(&mut self, idx: u32, pos: usize, oracle: &Oracle) {
        debug_assert!(
            self.resident(idx),
            "consumed non-resident block index {idx}"
        );
        if self.lru_estimate {
            self.last_use[idx as usize] = pos + 1;
        }
        let key = self.key_from_next(idx, oracle.next_after_idx(idx, pos));
        self.belady.push((key, oracle.block_of(idx), idx));
    }

    /// The evictable resident block whose next reference (at or after
    /// `cursor`) is furthest in the future, with that position ([`NEVER`]
    /// if it is never referenced again). `None` when nothing evictable is
    /// resident. The pinned block is never returned.
    ///
    /// Lazily repairs stale heap entries; amortized cost is logarithmic.
    pub fn furthest_resident(&mut self, cursor: usize, oracle: &Oracle) -> Option<(u32, usize)> {
        let mut stash: Option<(usize, BlockId, u32)> = None;
        let mut found = None;
        while let Some((key, block, idx)) = self.belady.pop() {
            if !self.resident(idx) {
                continue; // evicted since this entry was pushed
            }
            let actual = self.key_for(idx, cursor, oracle);
            if actual != key {
                self.belady.push((actual, block, idx));
                continue;
            }
            if Some(idx) == self.pinned {
                // Valid entry, but exempt: set it aside and keep looking.
                stash = Some((key, block, idx));
                continue;
            }
            self.belady.push((key, block, idx));
            found = Some((idx, key));
            break;
        }
        if let Some(entry) = stash {
            self.belady.push(entry);
        }
        found
    }

    /// Iterates over resident block indices, ascending.
    pub fn resident_indices(&self) -> impl Iterator<Item = u32> + '_ {
        self.resident.ones()
    }
}

/// Dynamic index of *missing* blocks' next occurrences.
///
/// For every block that is neither resident nor in flight, the tracker
/// holds the position of its next reference, globally and per disk, in
/// [`PosSet`] bitsets over the trace's positions. This is what lets every
/// policy find "the first missing block (on disk D)" in near-constant
/// time instead of scanning the future.
#[derive(Debug)]
pub struct MissingTracker {
    /// Next-occurrence positions of missing blocks, global.
    global: PosSet,
    /// The same positions partitioned by disk.
    per_disk: Vec<PosSet>,
    /// Per-disk insertion epochs: bumped on every insert that actually
    /// adds a position to that disk's set. Consumers (forestall's
    /// incremental stall predictor) cache derived verdicts keyed by the
    /// two direction-split epochs; no-stall verdicts are insensitive to
    /// removals (fewer missing blocks can only weaken a stall), so they
    /// key on this counter alone, plus the positions in `recent_ins`.
    /// Queries and `NEVER`-position no-ops never bump.
    ins_epochs: Vec<u64>,
    /// Per-disk removal epochs: the mirror of `ins_epochs` for removes.
    /// Stall-predicted verdicts are insensitive to insertions (more
    /// missing blocks can only strengthen a stall) and key on this.
    rem_epochs: Vec<u64>,
    /// Per-disk ring of the last [`RECENT_INS`] inserted positions, slot
    /// `epoch % RECENT_INS` holding the insert that bumped `ins_epochs`
    /// to `epoch`. Lets [`MissingTracker::inserts_all_at_or_beyond`]
    /// re-validate a cached verdict across a few insertions when they
    /// all landed beyond the verdict's horizon (the common case:
    /// evicted blocks re-enter at far-future next occurrences).
    recent_ins: Vec<[usize; RECENT_INS]>,
}

/// Ring capacity of [`MissingTracker::recent_ins`]: enough to span the
/// insertions a policy's whole fetch batch causes between two decision
/// points.
const RECENT_INS: usize = 32;

impl MissingTracker {
    /// Builds the tracker for a cold cache: every distinct block is
    /// missing at its first occurrence.
    pub fn new(oracle: &Oracle) -> MissingTracker {
        let disks = oracle.layout().disks();
        let mut t = MissingTracker {
            global: PosSet::new(oracle.len()),
            per_disk: vec![PosSet::new(oracle.len()); disks],
            ins_epochs: vec![0; disks],
            rem_epochs: vec![0; disks],
            recent_ins: vec![[0; RECENT_INS]; disks],
        };
        for (block, pos) in oracle.first_occurrences() {
            t.insert(block, pos, oracle);
        }
        t
    }

    /// The insertion epoch of `disk`'s position set.
    #[inline]
    pub fn ins_epoch(&self, disk: usize) -> u64 {
        self.ins_epochs[disk]
    }

    /// The removal epoch of `disk`'s position set.
    #[inline]
    pub fn rem_epoch(&self, disk: usize) -> u64 {
        self.rem_epochs[disk]
    }

    /// Whether every position inserted on `disk` since insertion epoch
    /// `since` landed at or beyond `guard`. Returns `None` when more
    /// than [`RECENT_INS`] insertions happened since and the ring no
    /// longer remembers them all.
    #[inline]
    pub fn inserts_all_at_or_beyond(&self, disk: usize, since: u64, guard: usize) -> Option<bool> {
        let now = self.ins_epochs[disk];
        debug_assert!(since <= now, "insertion epochs only grow");
        if now - since > RECENT_INS as u64 {
            return None;
        }
        let ring = &self.recent_ins[disk];
        let mut e = since;
        while e < now {
            e += 1;
            if ring[(e % RECENT_INS as u64) as usize] < guard {
                return Some(false);
            }
        }
        Some(true)
    }

    #[inline]
    fn record_insert(&mut self, disk: usize, pos: usize) {
        let e = self.ins_epochs[disk] + 1;
        self.ins_epochs[disk] = e;
        self.recent_ins[disk][(e % RECENT_INS as u64) as usize] = pos;
    }

    fn insert(&mut self, block: BlockId, pos: usize, oracle: &Oracle) {
        if pos == NEVER {
            return;
        }
        debug_assert_eq!(oracle.block_at(pos), block);
        let d = oracle.disk_of(block).index();
        self.global.insert(pos);
        self.per_disk[d].insert(pos);
        self.record_insert(d, pos);
    }

    /// [`MissingTracker::insert`] by compact index (no hashing).
    fn insert_idx(&mut self, idx: u32, pos: usize, oracle: &Oracle) {
        if pos == NEVER {
            return;
        }
        debug_assert_eq!(oracle.block_at(pos), oracle.block_of(idx));
        let d = oracle.disk_of(oracle.block_of(idx)).index();
        self.global.insert(pos);
        self.per_disk[d].insert(pos);
        self.record_insert(d, pos);
    }

    /// A fetch of `block` was issued: it is no longer missing.
    pub fn on_fetch_issued(&mut self, block: BlockId, cursor: usize, oracle: &Oracle) {
        let pos = oracle.next_occurrence(block, cursor);
        if pos == NEVER {
            return;
        }
        let d = oracle.disk_of(block).index();
        self.global.remove(pos);
        self.per_disk[d].remove(pos);
        self.rem_epochs[d] += 1;
    }

    /// [`MissingTracker::on_fetch_issued`] by compact index (no hashing).
    pub fn on_fetch_issued_idx(&mut self, idx: u32, cursor: usize, oracle: &Oracle) {
        let pos = oracle.next_occurrence_idx(idx, cursor);
        if pos == NEVER {
            return;
        }
        let d = oracle.disk_of(oracle.block_of(idx)).index();
        self.global.remove(pos);
        self.per_disk[d].remove(pos);
        self.rem_epochs[d] += 1;
    }

    /// `block` was evicted at cursor position `cursor`: it is missing
    /// again from its next reference on.
    pub fn on_evicted(&mut self, block: BlockId, cursor: usize, oracle: &Oracle) {
        let pos = oracle.next_occurrence(block, cursor);
        self.insert(block, pos, oracle);
    }

    /// [`MissingTracker::on_evicted`] by compact index (no hashing).
    pub fn on_evicted_idx(&mut self, idx: u32, cursor: usize, oracle: &Oracle) {
        let pos = oracle.next_occurrence_idx(idx, cursor);
        self.insert_idx(idx, pos, oracle);
    }

    /// The first position `>= from` whose block is missing, globally.
    #[inline]
    pub fn first_missing(&self, from: usize) -> Option<usize> {
        self.global.next_at_or_after(from)
    }

    /// The first position `>= from` whose block is missing and lives on
    /// `disk`.
    #[inline]
    pub fn first_missing_on_disk(&self, disk: usize, from: usize) -> Option<usize> {
        self.per_disk[disk].next_at_or_after(from)
    }

    /// Positions of missing blocks in `[from, to)`, globally, ascending.
    pub fn missing_in_window(&self, from: usize, to: usize) -> impl Iterator<Item = usize> + '_ {
        self.global.iter_from(from).take_while(move |&p| p < to)
    }

    /// Positions of missing blocks at or after `from` on `disk`,
    /// ascending, as the concrete [`PosSet`] iterator. Unlike
    /// [`MissingTracker::missing_on_disk_in_window`] the window bound is
    /// the caller's job; in exchange the iterator's popcount-skipping
    /// `nth` stays reachable (an adapter like `take_while` would hide it
    /// behind the one-step default).
    #[inline]
    pub fn missing_on_disk_from(
        &self,
        disk: usize,
        from: usize,
    ) -> parcache_types::posset::Iter<'_> {
        self.per_disk[disk].iter_from(from)
    }

    /// Positions of missing blocks in `[from, to)` on `disk`, ascending.
    pub fn missing_on_disk_in_window(
        &self,
        disk: usize,
        from: usize,
        to: usize,
    ) -> impl Iterator<Item = usize> + '_ {
        self.per_disk[disk]
            .iter_from(from)
            .take_while(move |&p| p < to)
    }

    /// Total missing-block entries (diagnostics).
    pub fn len(&self) -> usize {
        self.global.len()
    }

    /// True when nothing is missing.
    pub fn is_empty(&self) -> bool {
        self.global.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcache_disk::layout::Layout;
    use parcache_trace::{Request, Trace};
    use parcache_types::Nanos;

    /// Oracle over `blocks`, with `extras` given compact indices despite
    /// never being referenced (the way the engine indexes the full trace
    /// universe under incomplete hints).
    fn oracle_with_extras(blocks: &[u64], disks: usize, extras: &[u64]) -> Oracle {
        let entries: Vec<(usize, BlockId)> = blocks
            .iter()
            .enumerate()
            .map(|(i, &b)| (i, BlockId(b)))
            .collect();
        let universe: Vec<BlockId> = extras.iter().map(|&b| BlockId(b)).collect();
        Oracle::from_positions_with_universe(
            blocks.len(),
            entries,
            &universe,
            Layout::striped(disks),
        )
    }

    fn oracle_of(blocks: &[u64], disks: usize) -> Oracle {
        let t = Trace::new(
            "t",
            blocks
                .iter()
                .map(|&b| Request {
                    block: BlockId(b),
                    compute: Nanos::from_millis(1),
                })
                .collect(),
            4,
        );
        Oracle::new(&t, Layout::striped(disks))
    }

    fn idx(o: &Oracle, b: u64) -> u32 {
        o.index_of(BlockId(b)).unwrap()
    }

    #[test]
    fn fetch_lifecycle() {
        let o = oracle_of(&[1, 2, 1], 1);
        let mut c = Cache::new(2, o.num_blocks());
        let b1 = idx(&o, 1);
        assert!(c.has_free_frame());
        c.start_fetch(b1, None);
        assert!(c.inflight(b1));
        assert!(!c.resident(b1));
        c.complete_fetch(b1, 0, &o);
        assert!(c.resident(b1));
        assert!(!c.inflight(b1));
        assert_eq!(c.resident_count(), 1);
    }

    #[test]
    fn frames_are_reserved_at_issue() {
        let o = oracle_of(&[1, 2, 3], 1);
        let mut c = Cache::new(2, o.num_blocks());
        let (b1, b2, b3) = (idx(&o, 1), idx(&o, 2), idx(&o, 3));
        c.start_fetch(b1, None);
        c.start_fetch(b2, None);
        assert!(!c.has_free_frame());
        c.complete_fetch(b1, 0, &o);
        c.complete_fetch(b2, 0, &o);
        // Full cache: must evict to fetch.
        c.start_fetch(b3, Some(b1));
        assert!(!c.resident(b1));
        assert_eq!(c.resident_count() + c.inflight_count(), 2);
    }

    #[test]
    #[should_panic(expected = "no free frame")]
    fn overcommit_panics() {
        let mut c = Cache::new(1, 4);
        c.start_fetch(0, None);
        c.start_fetch(1, None);
    }

    #[test]
    fn cancel_fetch_releases_the_frame() {
        let o = oracle_of(&[1, 2], 1);
        let mut c = Cache::new(1, o.num_blocks());
        let b1 = idx(&o, 1);
        c.start_fetch(b1, None);
        assert!(!c.has_free_frame());
        c.cancel_fetch(b1);
        assert!(!c.inflight(b1));
        assert!(!c.resident(b1));
        // The frame is reusable, including for the same block again.
        c.start_fetch(b1, None);
        c.complete_fetch(b1, 0, &o);
        assert!(c.resident(b1));
    }

    #[test]
    #[should_panic(expected = "cancelling unfetched")]
    fn cancel_of_unfetched_block_panics() {
        let mut c = Cache::new(2, 4);
        c.cancel_fetch(1);
    }

    #[test]
    #[should_panic(expected = "duplicate fetch")]
    fn duplicate_fetch_panics() {
        let mut c = Cache::new(2, 4);
        c.start_fetch(1, None);
        c.start_fetch(1, None);
    }

    #[test]
    fn belady_picks_furthest() {
        // Sequence: 1 2 3 1 2 3 ... blocks 9 and 42 never referenced but
        // part of the indexed universe.
        let o = oracle_with_extras(&[1, 2, 3, 1, 2, 3], 1, &[9, 42]);
        let mut c = Cache::new(4, o.num_blocks());
        for b in [1u64, 2, 3, 9] {
            c.start_fetch(idx(&o, b), None);
            c.complete_fetch(idx(&o, b), 0, &o);
        }
        // Block 9 is never referenced: furthest.
        let (b, key) = c.furthest_resident(0, &o).unwrap();
        assert_eq!(b, idx(&o, 9));
        assert_eq!(key, NEVER);
        c.start_fetch(idx(&o, 42), Some(idx(&o, 9)));
        // Now block 3 (next ref at 2) is furthest among 1(0), 2(1), 3(2).
        let (b, key) = c.furthest_resident(0, &o).unwrap();
        assert_eq!((b, key), (idx(&o, 3), 2));
    }

    #[test]
    fn belady_keys_refresh_as_cursor_advances() {
        let o = oracle_of(&[1, 2, 1, 2], 1);
        let mut c = Cache::new(2, o.num_blocks());
        let (b1, b2) = (idx(&o, 1), idx(&o, 2));
        for b in [b1, b2] {
            c.start_fetch(b, None);
            c.complete_fetch(b, 0, &o);
        }
        // At cursor 0: block 2 next at 1... block 1 at 0; furthest is 2.
        assert_eq!(c.furthest_resident(0, &o).unwrap().0, b2);
        // Consume positions 0 and 1; at cursor 2, next refs are 1->2, 2->3.
        c.on_reference(b1, 0, &o);
        c.on_reference(b2, 1, &o);
        assert_eq!(c.furthest_resident(2, &o).unwrap(), (b2, 3));
        // At cursor 4 both are NEVER; either may win but the key is NEVER.
        assert_eq!(c.furthest_resident(4, &o).unwrap().1, NEVER);
    }

    #[test]
    fn empty_cache_has_no_furthest() {
        let o = oracle_of(&[1], 1);
        let mut c = Cache::new(2, o.num_blocks());
        assert_eq!(c.furthest_resident(0, &o), None);
    }

    #[test]
    fn resident_indices_are_ascending() {
        let o = oracle_of(&[1, 2, 3], 1);
        let mut c = Cache::new(3, o.num_blocks());
        for b in [3u64, 1, 2] {
            c.start_fetch(idx(&o, b), None);
            c.complete_fetch(idx(&o, b), 0, &o);
        }
        let got: Vec<u32> = c.resident_indices().collect();
        let mut want = vec![idx(&o, 1), idx(&o, 2), idx(&o, 3)];
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn tracker_initializes_with_first_occurrences() {
        let o = oracle_of(&[5, 6, 5, 7], 2);
        let t = MissingTracker::new(&o);
        assert_eq!(t.len(), 3);
        assert_eq!(t.first_missing(0), Some(0));
        assert_eq!(t.first_missing(1), Some(1));
        assert_eq!(t.first_missing(2), Some(3)); // 5 registered at 0 only
    }

    #[test]
    fn tracker_fetch_and_evict_cycle() {
        let o = oracle_of(&[5, 6, 5, 7], 1);
        let mut t = MissingTracker::new(&o);
        t.on_fetch_issued(BlockId(5), 0, &o);
        assert_eq!(t.first_missing(0), Some(1)); // block 6
                                                 // Evict 5 at cursor 1: re-registered at its next ref, position 2.
        t.on_evicted(BlockId(5), 1, &o);
        assert_eq!(t.first_missing(0), Some(1));
        assert_eq!(t.first_missing(2), Some(2));
    }

    #[test]
    fn tracker_idx_variants_match_block_variants() {
        let o = oracle_of(&[5, 6, 5, 7], 2);
        let mut a = MissingTracker::new(&o);
        let mut b = MissingTracker::new(&o);
        a.on_fetch_issued(BlockId(5), 0, &o);
        b.on_fetch_issued_idx(idx(&o, 5), 0, &o);
        a.on_evicted(BlockId(5), 1, &o);
        b.on_evicted_idx(idx(&o, 5), 1, &o);
        for from in 0..4 {
            assert_eq!(a.first_missing(from), b.first_missing(from));
            for d in 0..2 {
                assert_eq!(
                    a.first_missing_on_disk(d, from),
                    b.first_missing_on_disk(d, from)
                );
            }
        }
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn tracker_per_disk_views() {
        // Striped over 2 disks: blocks 0,2 on disk 0; 1,3 on disk 1.
        let o = oracle_of(&[0, 1, 2, 3], 2);
        let t = MissingTracker::new(&o);
        assert_eq!(t.first_missing_on_disk(0, 0), Some(0));
        assert_eq!(t.first_missing_on_disk(1, 0), Some(1));
        assert_eq!(t.first_missing_on_disk(0, 1), Some(2));
        let w: Vec<usize> = t.missing_on_disk_in_window(1, 0, 4).collect();
        assert_eq!(w, vec![1, 3]);
    }

    #[test]
    fn tracker_ignores_never_referenced_evictions() {
        let o = oracle_of(&[1, 2], 1);
        let mut t = MissingTracker::new(&o);
        t.on_fetch_issued(BlockId(1), 0, &o);
        t.on_fetch_issued(BlockId(2), 0, &o);
        assert!(t.is_empty());
        // Evicting block 1 at cursor 2 (past its last reference): no entry.
        t.on_evicted(BlockId(1), 2, &o);
        assert!(t.is_empty());
    }

    #[test]
    fn window_queries() {
        let o = oracle_of(&[0, 1, 2, 3, 4], 1);
        let t = MissingTracker::new(&o);
        let w: Vec<usize> = t.missing_in_window(1, 4).collect();
        assert_eq!(w, vec![1, 2, 3]);
    }

    #[test]
    fn epochs_bump_exactly_on_per_disk_mutation() {
        // Striped over 2 disks: blocks 0,2 on disk 0; 1,3 on disk 1.
        let o = oracle_of(&[0, 1, 2, 3, 0], 2);
        let mut t = MissingTracker::new(&o);
        let (i0, r0) = (t.ins_epoch(0), t.rem_epoch(0));
        let (i1, r1) = (t.ins_epoch(1), t.rem_epoch(1));
        // Queries never bump.
        let _ = t.first_missing_on_disk(0, 0);
        let _: Vec<usize> = t.missing_on_disk_in_window(1, 0, 5).collect();
        assert_eq!((t.ins_epoch(0), t.rem_epoch(0)), (i0, r0));
        // A fetch on disk 0 bumps only disk 0's removal epoch.
        t.on_fetch_issued(BlockId(0), 0, &o);
        assert_eq!((t.ins_epoch(0), t.rem_epoch(0)), (i0, r0 + 1));
        assert_eq!((t.ins_epoch(1), t.rem_epoch(1)), (i1, r1));
        // An eviction re-registering block 0 at its next use (position 4)
        // bumps only disk 0's insertion epoch.
        t.on_evicted(BlockId(0), 1, &o);
        assert_eq!((t.ins_epoch(0), t.rem_epoch(0)), (i0 + 1, r0 + 1));
        assert_eq!((t.ins_epoch(1), t.rem_epoch(1)), (i1, r1));
        // A `NEVER`-position no-op (block 1 evicted past its last use)
        // leaves the set untouched and must not bump.
        t.on_fetch_issued(BlockId(1), 0, &o);
        let (i1b, r1b) = (t.ins_epoch(1), t.rem_epoch(1));
        t.on_evicted(BlockId(1), 2, &o);
        assert_eq!((t.ins_epoch(1), t.rem_epoch(1)), (i1b, r1b));
    }

    #[test]
    fn insert_ring_answers_guard_queries() {
        // Disk 0 owns every block (1-disk layout); the ring remembers
        // the positions of recent insertions for guard re-validation.
        let blocks: Vec<u64> = (0..80).collect();
        let o = oracle_of(&blocks, 1);
        let t = MissingTracker::new(&o);
        let base = t.ins_epoch(0);
        // Two evictions re-register blocks 0 and 1 at their (never)
        // next use -- pick re-referenced blocks instead.
        let blocks2: Vec<u64> = (0..40).chain(0..40).collect();
        let o = oracle_of(&blocks2, 1);
        let mut t2 = MissingTracker::new(&o);
        let base2 = t2.ins_epoch(0);
        // Evicting block 3 at cursor 10 re-inserts position 43; block 7
        // re-inserts position 47.
        t2.on_fetch_issued(BlockId(3), 0, &o);
        t2.on_fetch_issued(BlockId(7), 0, &o);
        let since = t2.ins_epoch(0);
        t2.on_evicted(BlockId(3), 10, &o);
        t2.on_evicted(BlockId(7), 10, &o);
        assert_eq!(t2.ins_epoch(0), since + 2);
        // Both landed at or beyond 43.
        assert_eq!(t2.inserts_all_at_or_beyond(0, since, 43), Some(true));
        // ...but not beyond 44 (position 43 is below that guard).
        assert_eq!(t2.inserts_all_at_or_beyond(0, since, 44), Some(false));
        // An unchanged epoch passes any guard vacuously.
        assert_eq!(
            t2.inserts_all_at_or_beyond(0, t2.ins_epoch(0), usize::MAX),
            Some(true)
        );
        // Exhausting the ring reports None rather than guessing.
        for _ in 0..2 {
            for b in 0..40u64 {
                t2.on_fetch_issued(BlockId(b), 0, &o);
                t2.on_evicted(BlockId(b), 0, &o);
            }
        }
        assert_eq!(t2.inserts_all_at_or_beyond(0, since, 0), None);
        // Quiet tracker: the cold-start epoch still answers.
        assert_eq!(t.ins_epoch(0), base);
        let _ = base2;
        assert_eq!(t.inserts_all_at_or_beyond(0, base, usize::MAX), Some(true));
    }

    #[test]
    fn missing_on_disk_in_window_matches_naive_filter() {
        // Boundary property test for the iterator the incremental stall
        // predictor's invalidation contract depends on: `[from, to)`
        // semantics (inclusive start, exclusive end), a cursor sitting
        // exactly on a missing position, disks with no missing entries at
        // all, and empty (`from >= to`) windows — all against a naive
        // filter over the full per-disk missing set.
        let mut rng = parcache_types::rng::Rng::seed_from_u64(0x5eed_2026);
        for case in 0..100 {
            let len = rng.gen_range(1usize..=40);
            let universe = rng.gen_range(1u64..=12);
            let disks = rng.gen_range(1usize..=4);
            let blocks: Vec<u64> = (0..len).map(|_| rng.gen_range(0u64..universe)).collect();
            let o = oracle_of(&blocks, disks);
            let mut t = MissingTracker::new(&o);
            // Mutate a little so the set is not just first occurrences.
            for _ in 0..rng.gen_range(0usize..4) {
                let b = BlockId(rng.gen_range(0..universe));
                if o.index_of(b).is_some() {
                    let at = rng.gen_range(0usize..=len);
                    t.on_fetch_issued(b, at, &o);
                    t.on_evicted(b, at, &o);
                }
            }
            // The full per-disk ground truth via an unbounded window.
            for d in 0..disks {
                let all: Vec<usize> = t.missing_on_disk_in_window(d, 0, usize::MAX).collect();
                // Every edge combination, including from == to and
                // from > to (empty), from on a missing position
                // (inclusive), and to on a missing position (exclusive).
                let mut edges: Vec<usize> = vec![0, len, len + 1];
                edges.extend(all.iter().copied());
                edges.extend(all.iter().map(|&p| p + 1));
                for &from in &edges {
                    for &to in &edges {
                        let got: Vec<usize> = t.missing_on_disk_in_window(d, from, to).collect();
                        let naive: Vec<usize> = all
                            .iter()
                            .copied()
                            .filter(|&p| p >= from && p < to)
                            .collect();
                        assert_eq!(
                            got, naive,
                            "case {case}: disk {d} window [{from}, {to}) over {blocks:?}"
                        );
                    }
                }
            }
        }
    }
}
