//! Metrics built from the probe event stream: counters, log₂-bucketed
//! latency histograms with quantile summaries, and a time-sliced per-disk
//! utilization/queue-depth timeline.
//!
//! [`MetricsProbe`] is a [`Probe`] that folds the stream into a
//! [`RunMetrics`]; everything renders to hand-rolled JSON (no external
//! dependencies) and to plain ASCII tables.

use crate::probe::{Event, Probe};
use parcache_types::Nanos;

/// A histogram over `u64` samples with power-of-two bucket boundaries.
///
/// Bucket `0` holds the value `0`; bucket `i > 0` holds values in
/// `[2^(i-1), 2^i)`. Quantiles are estimated by linear interpolation
/// inside the containing bucket, which is exact to within a factor of two
/// and much tighter in practice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: vec![0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The lower edge of bucket `i` (inclusive).
    fn bucket_lo(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// The upper edge of bucket `i` (exclusive; saturates at `u64::MAX`).
    fn bucket_hi(i: usize) -> u64 {
        if i == 0 {
            1
        } else if i >= 64 {
            u64::MAX
        } else {
            1u64 << i
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records a [`Nanos`] sample.
    pub fn record_nanos(&mut self, value: Nanos) {
        self.record(value.as_nanos());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The estimated `q`-quantile (`q` in `[0, 1]`), by interpolating
    /// within the containing bucket. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                // Tighten the bucket edges with the observed extremes.
                // Clamping `hi` to the true max (not `max.max(1)`) keeps
                // quantile(1.0) exact: the old floor of 1 made an
                // all-zeros histogram report a top quantile of 1.
                let lo = Self::bucket_lo(i).max(self.min());
                let hi = Self::bucket_hi(i).min(self.max);
                if hi <= lo {
                    return lo;
                }
                // The rank landing on the bucket's last sample returns the
                // (clamped) upper edge exactly: going through the f64
                // interpolation would lose low bits of 64-bit values, so
                // quantile(1.0) would miss max by a few ULPs.
                if rank - seen == n {
                    return hi;
                }
                let frac = (rank - seen) as f64 / n as f64;
                return lo + ((hi - lo) as f64 * frac) as u64;
            }
            seen += n;
        }
        self.max
    }

    /// Folds `other` into `self`, as if every sample recorded in `other`
    /// had been recorded here. Associative and commutative, so per-thread
    /// histograms can be merged in any grouping (the sweep runner merges
    /// them in cell-index order for deterministic output).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        // The empty-histogram sentinels (min = u64::MAX, max = 0) are
        // identities for min/max, so merging an empty side is a no-op.
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// p50, p90, and p99 in one call.
    pub fn summary(&self) -> (u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
        )
    }

    /// Occupied buckets as `(lo, hi, count)` triples, low to high.
    pub fn occupied_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (Self::bucket_lo(i), Self::bucket_hi(i), n))
            .collect()
    }

    /// This histogram as a JSON object. Samples are dimensionless here;
    /// callers name the field so units are clear (`*_ns` for times).
    pub fn to_json(&self) -> String {
        let (p50, p90, p99) = self.summary();
        let buckets: Vec<String> = self
            .occupied_buckets()
            .iter()
            .map(|(lo, hi, n)| format!(r#"{{"lo":{lo},"hi":{hi},"count":{n}}}"#))
            .collect();
        format!(
            r#"{{"count":{},"mean":{:.1},"min":{},"max":{},"p50":{},"p90":{},"p99":{},"buckets":[{}]}}"#,
            self.count,
            self.mean(),
            self.min(),
            self.max(),
            p50,
            p90,
            p99,
            buckets.join(",")
        )
    }

    /// An ASCII rendering: one row per occupied bucket with a proportional
    /// bar, preceded by a one-line summary. `unit` scales and labels the
    /// values (e.g. [`Unit::Millis`] for nanosecond samples).
    pub fn render_ascii(&self, title: &str, unit: Unit) -> String {
        let mut out = String::new();
        let (p50, p90, p99) = self.summary();
        out.push_str(&format!(
            "{title}: n={} mean={} p50={} p90={} p99={} max={}\n",
            self.count,
            unit.fmt(self.mean() as u64),
            unit.fmt(p50),
            unit.fmt(p90),
            unit.fmt(p99),
            unit.fmt(self.max()),
        ));
        let peak = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        for (lo, hi, n) in self.occupied_buckets() {
            let bar_len = (n as f64 / peak as f64 * 40.0).ceil() as usize;
            out.push_str(&format!(
                "  [{:>10} .. {:>10}) {:>8} {}\n",
                unit.fmt(lo),
                unit.fmt(hi),
                n,
                "#".repeat(bar_len)
            ));
        }
        out
    }
}

/// How to print a histogram's raw `u64` samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Samples are nanoseconds; print as milliseconds.
    Millis,
    /// Samples are plain counts; print bare.
    Count,
}

impl Unit {
    fn fmt(self, v: u64) -> String {
        match self {
            Unit::Millis => format!("{:.2}ms", v as f64 / 1e6),
            Unit::Count => format!("{v}"),
        }
    }
}

/// Monotonic event counters for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Policy decision points.
    pub decisions: u64,
    /// References that found their block resident.
    pub cache_hits: u64,
    /// References that did not.
    pub cache_misses: u64,
    /// Blocks evicted to make room for fetches.
    pub evictions: u64,
    /// Fetches issued (demand + prefetch).
    pub fetches_issued: u64,
    /// Fetches issued from the demand-miss path.
    pub demand_fetches: u64,
    /// Write-behind flushes issued.
    pub writes_issued: u64,
    /// Drive service starts (reads and writes).
    pub services_started: u64,
    /// Drive service completions (reads and writes).
    pub services_completed: u64,
    /// Stall intervals begun.
    pub stalls_begun: u64,
    /// Stall intervals ended.
    pub stalls_ended: u64,
    /// Faults charged to requests (media errors + outage rejections).
    pub faults_injected: u64,
    /// Driver retries issued in response to faults.
    pub retries: u64,
    /// Requests the driver gave up on.
    pub requests_abandoned: u64,
}

impl Counters {
    /// Adds `other`'s counts into `self`.
    pub fn merge(&mut self, other: &Counters) {
        self.decisions += other.decisions;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.evictions += other.evictions;
        self.fetches_issued += other.fetches_issued;
        self.demand_fetches += other.demand_fetches;
        self.writes_issued += other.writes_issued;
        self.services_started += other.services_started;
        self.services_completed += other.services_completed;
        self.stalls_begun += other.stalls_begun;
        self.stalls_ended += other.stalls_ended;
        self.faults_injected += other.faults_injected;
        self.retries += other.retries;
        self.requests_abandoned += other.requests_abandoned;
    }

    /// These counters as a JSON object. The fault counters appear only
    /// when nonzero, so healthy-run output is byte-identical to output
    /// from before fault support existed.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            r#"{{"decisions":{},"cache_hits":{},"cache_misses":{},"evictions":{},"fetches_issued":{},"demand_fetches":{},"writes_issued":{},"services_started":{},"services_completed":{},"stalls_begun":{},"stalls_ended":{}"#,
            self.decisions,
            self.cache_hits,
            self.cache_misses,
            self.evictions,
            self.fetches_issued,
            self.demand_fetches,
            self.writes_issued,
            self.services_started,
            self.services_completed,
            self.stalls_begun,
            self.stalls_ended,
        );
        if self.faults_injected > 0 {
            s.push_str(&format!(r#","faults_injected":{}"#, self.faults_injected));
        }
        if self.retries > 0 {
            s.push_str(&format!(r#","retries":{}"#, self.retries));
        }
        if self.requests_abandoned > 0 {
            s.push_str(&format!(
                r#","requests_abandoned":{}"#,
                self.requests_abandoned
            ));
        }
        s.push('}');
        s
    }
}

/// One drive's latency and queueing distributions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiskMetrics {
    /// Pure service times (ns).
    pub service: Histogram,
    /// Response times — queueing plus service (ns).
    pub response: Histogram,
    /// Queue depth sampled at each arrival.
    pub queue_depth: Histogram,
}

impl DiskMetrics {
    /// Folds `other`'s distributions into `self`.
    pub fn merge(&mut self, other: &DiskMetrics) {
        self.service.merge(&other.service);
        self.response.merge(&other.response);
        self.queue_depth.merge(&other.queue_depth);
    }
}

/// Per-disk activity aggregated into fixed-width time slices.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    slice: Nanos,
    disks: usize,
    /// `slices[s][d]` = (busy ns, max depth seen) for disk `d` in slice `s`.
    slices: Vec<Vec<(u64, usize)>>,
}

impl Timeline {
    fn new(disks: usize, slice: Nanos) -> Timeline {
        Timeline {
            slice,
            disks,
            slices: Vec::new(),
        }
    }

    /// The slice width.
    pub fn slice_width(&self) -> Nanos {
        self.slice
    }

    /// Number of slices touched so far.
    pub fn len(&self) -> usize {
        self.slices.len()
    }

    /// True when no activity has been recorded.
    pub fn is_empty(&self) -> bool {
        self.slices.is_empty()
    }

    fn slot(&mut self, index: usize) -> &mut Vec<(u64, usize)> {
        while self.slices.len() <= index {
            self.slices.push(vec![(0, 0); self.disks]);
        }
        &mut self.slices[index]
    }

    /// Credits `disk` with busy time over `[start, end)`, split across the
    /// slices the interval overlaps.
    fn add_busy(&mut self, disk: usize, start: Nanos, end: Nanos) {
        let w = self.slice.as_nanos().max(1);
        let (mut t, end) = (start.as_nanos(), end.as_nanos());
        while t < end {
            let idx = (t / w) as usize;
            let slice_end = (idx as u64 + 1) * w;
            let chunk = end.min(slice_end) - t;
            self.slot(idx)[disk].0 += chunk;
            t += chunk;
        }
    }

    /// Records a queue-depth sample for `disk` at time `t`.
    fn sample_depth(&mut self, disk: usize, t: Nanos, depth: usize) {
        let idx = (t.as_nanos() / self.slice.as_nanos().max(1)) as usize;
        let cell = &mut self.slot(idx)[disk];
        cell.1 = cell.1.max(depth);
    }

    /// Overlays `other` onto `self`: busy time adds per slice and disk,
    /// max queue depths take the maximum. Both timelines must describe
    /// the same array shape and slice width.
    ///
    /// # Panics
    ///
    /// Panics when the slice widths or disk counts differ — merging
    /// timelines of different geometry is meaningless.
    pub fn merge(&mut self, other: &Timeline) {
        assert_eq!(
            self.slice, other.slice,
            "cannot merge timelines with different slice widths"
        );
        assert_eq!(
            self.disks, other.disks,
            "cannot merge timelines with different disk counts"
        );
        for (s, cells) in other.slices.iter().enumerate() {
            let mine = self.slot(s);
            for (d, &(busy, depth)) in cells.iter().enumerate() {
                mine[d].0 += busy;
                mine[d].1 = mine[d].1.max(depth);
            }
        }
    }

    /// Per-slice rows: `(slice start, per-disk utilization in [0,1],
    /// per-disk max queue depth)`.
    pub fn rows(&self) -> Vec<(Nanos, Vec<f64>, Vec<usize>)> {
        let w = self.slice.as_nanos().max(1);
        self.slices
            .iter()
            .enumerate()
            .map(|(i, cells)| {
                (
                    Nanos(i as u64 * w),
                    cells
                        .iter()
                        .map(|&(busy, _)| busy as f64 / w as f64)
                        .collect(),
                    cells.iter().map(|&(_, depth)| depth).collect(),
                )
            })
            .collect()
    }

    /// This timeline as a JSON object.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .rows()
            .iter()
            .map(|(start, util, depth)| {
                let u: Vec<String> = util.iter().map(|x| format!("{x:.4}")).collect();
                let d: Vec<String> = depth.iter().map(|x| x.to_string()).collect();
                format!(
                    r#"{{"start_ns":{},"utilization":[{}],"max_depth":[{}]}}"#,
                    start.as_nanos(),
                    u.join(","),
                    d.join(",")
                )
            })
            .collect();
        format!(
            r#"{{"slice_ns":{},"slices":[{}]}}"#,
            self.slice.as_nanos(),
            rows.join(",")
        )
    }
}

/// Everything [`MetricsProbe`] accumulates over one run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Event counters.
    pub counters: Counters,
    /// Service times across all drives (ns).
    pub fetch_service: Histogram,
    /// Response times across all drives (ns).
    pub fetch_response: Histogram,
    /// Stall durations (ns).
    pub stall_duration: Histogram,
    /// Queue depth at enqueue, across all drives.
    pub queue_depth: Histogram,
    /// Per-drive distributions.
    pub per_disk: Vec<DiskMetrics>,
    /// Time-sliced per-disk activity.
    pub timeline: Timeline,
}

impl RunMetrics {
    /// Empty metrics for an array of `disks` drives with the given
    /// timeline slice width — the identity for [`RunMetrics::merge`].
    pub fn new(disks: usize, slice: Nanos) -> RunMetrics {
        RunMetrics {
            counters: Counters::default(),
            fetch_service: Histogram::new(),
            fetch_response: Histogram::new(),
            stall_duration: Histogram::new(),
            queue_depth: Histogram::new(),
            per_disk: vec![DiskMetrics::default(); disks],
            timeline: Timeline::new(disks, slice),
        }
    }

    /// Folds another run's metrics into `self`, so per-thread (or
    /// per-cell) probe metrics can be combined into one aggregate report.
    /// Both sides must describe arrays of the same size.
    ///
    /// # Panics
    ///
    /// Panics when the per-disk arities or timeline geometries differ.
    pub fn merge(&mut self, other: &RunMetrics) {
        assert_eq!(
            self.per_disk.len(),
            other.per_disk.len(),
            "cannot merge metrics for arrays of different sizes"
        );
        self.counters.merge(&other.counters);
        self.fetch_service.merge(&other.fetch_service);
        self.fetch_response.merge(&other.fetch_response);
        self.stall_duration.merge(&other.stall_duration);
        self.queue_depth.merge(&other.queue_depth);
        for (mine, theirs) in self.per_disk.iter_mut().zip(&other.per_disk) {
            mine.merge(theirs);
        }
        self.timeline.merge(&other.timeline);
    }

    /// These metrics as a JSON object.
    pub fn to_json(&self) -> String {
        let per_disk: Vec<String> = self
            .per_disk
            .iter()
            .map(|d| {
                format!(
                    r#"{{"service_ns":{},"response_ns":{},"queue_depth":{}}}"#,
                    d.service.to_json(),
                    d.response.to_json(),
                    d.queue_depth.to_json()
                )
            })
            .collect();
        format!(
            r#"{{"counters":{},"fetch_service_ns":{},"fetch_response_ns":{},"stall_ns":{},"queue_depth":{},"per_disk":[{}],"timeline":{}}}"#,
            self.counters.to_json(),
            self.fetch_service.to_json(),
            self.fetch_response.to_json(),
            self.stall_duration.to_json(),
            self.queue_depth.to_json(),
            per_disk.join(","),
            self.timeline.to_json()
        )
    }
}

/// A [`Probe`] that folds the event stream into [`RunMetrics`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsProbe {
    metrics: RunMetrics,
}

impl MetricsProbe {
    /// A metrics probe for an array of `disks` drives, slicing the
    /// timeline into `slice`-wide windows.
    pub fn new(disks: usize, slice: Nanos) -> MetricsProbe {
        MetricsProbe {
            metrics: RunMetrics::new(disks, slice),
        }
    }

    /// A metrics probe with the default 100 ms timeline slice.
    pub fn for_disks(disks: usize) -> MetricsProbe {
        MetricsProbe::new(disks, Nanos::from_millis(100))
    }

    /// The accumulated metrics.
    pub fn finish(self) -> RunMetrics {
        self.metrics
    }

    /// Borrows the accumulated metrics.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }
}

impl Probe for MetricsProbe {
    fn on_event(&mut self, event: &Event) {
        let m = &mut self.metrics;
        match *event {
            Event::PolicyDecision { .. } => m.counters.decisions += 1,
            Event::CacheHit { .. } => m.counters.cache_hits += 1,
            Event::CacheMiss { .. } => m.counters.cache_misses += 1,
            Event::Eviction { .. } => m.counters.evictions += 1,
            Event::FetchIssued { demand, .. } => {
                m.counters.fetches_issued += 1;
                if demand {
                    m.counters.demand_fetches += 1;
                }
            }
            Event::WriteIssued { .. } => m.counters.writes_issued += 1,
            Event::QueueDepth { now, disk, depth } => {
                m.queue_depth.record(depth as u64);
                m.per_disk[disk.index()].queue_depth.record(depth as u64);
                m.timeline.sample_depth(disk.index(), now, depth);
            }
            Event::FetchStarted {
                now,
                disk,
                completes,
                ..
            } => {
                m.counters.services_started += 1;
                m.timeline.add_busy(disk.index(), now, completes);
            }
            Event::FetchCompleted {
                disk,
                service,
                response,
                ..
            } => {
                m.counters.services_completed += 1;
                m.fetch_service.record_nanos(service);
                m.fetch_response.record_nanos(response);
                let d = &mut m.per_disk[disk.index()];
                d.service.record_nanos(service);
                d.response.record_nanos(response);
            }
            Event::StallBegin { .. } => m.counters.stalls_begun += 1,
            Event::StallEnd { stalled, .. } => {
                m.counters.stalls_ended += 1;
                m.stall_duration.record_nanos(stalled);
            }
            Event::FaultInjected { .. } => m.counters.faults_injected += 1,
            Event::RetryIssued { .. } => m.counters.retries += 1,
            Event::RequestAbandoned { .. } => m.counters.requests_abandoned += 1,
            // Degraded-window boundaries shape the latency distributions
            // already folded above; the boundaries themselves are audited
            // in `crate::audit`, not counted here.
            Event::DiskDegraded { .. } | Event::DiskRecovered { .. } => {}
        }
    }
}

/// Escapes a string for inclusion in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::StallCause;
    use parcache_types::{BlockId, DiskId};

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        let buckets = h.occupied_buckets();
        // 0 | [1,2) | [2,4) x2 | [4,8) x2 | [8,16) | [512,1024)
        assert_eq!(
            buckets,
            vec![
                (0, 1, 1),
                (1, 2, 1),
                (2, 4, 2),
                (4, 8, 2),
                (8, 16, 1),
                (512, 1024, 1)
            ]
        );
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let (p50, p90, p99) = h.summary();
        // Interpolation within a power-of-two bucket: right order of
        // magnitude and monotone.
        assert!((256..=1000).contains(&p50), "{p50}");
        assert!(p90 >= p50 && p99 >= p90, "{p50} {p90} {p99}");
        assert!((h.mean() - 500.5).abs() < 1e-9);
        // Extreme quantiles stay within a bucket (factor of two) of the
        // true extremes.
        assert!(h.quantile(0.0) >= 1 && h.quantile(0.0) <= 2);
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn quantile_is_monotone_in_q() {
        // Property: for random sample sets, quantile(q) never decreases
        // as q grows, and the extremes stay within the observed range.
        let mut rng = parcache_types::rng::Rng::seed_from_u64(7);
        for case in 0..50u64 {
            let mut h = Histogram::new();
            let n = 1 + (case as usize % 40) * 7;
            for _ in 0..n {
                // Mix magnitudes so many buckets are exercised.
                let v = rng.next_u64() >> (rng.next_u64() % 60);
                h.record(v);
            }
            let mut prev = 0u64;
            for step in 0..=100u64 {
                let q = step as f64 / 100.0;
                let v = h.quantile(q);
                assert!(v >= prev, "case {case}: q={q} gave {v} < {prev}");
                assert!(v <= h.max(), "case {case}: q={q} gave {v} > max");
                prev = v;
            }
            assert!(h.quantile(0.0) >= h.min());
            assert_eq!(h.quantile(1.0), h.max(), "case {case}");
        }
    }

    #[test]
    fn quantile_is_exact_for_single_valued_data() {
        // Every quantile of a constant distribution is that constant —
        // including 0, which the old `max.max(1)` clamp reported as 1.
        for v in [0u64, 1, 2, 3, 5, 1023, 1024, 1_000_000, u64::MAX] {
            let mut h = Histogram::new();
            for _ in 0..17 {
                h.record(v);
            }
            for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
                assert_eq!(h.quantile(q), v, "quantile({q}) of constant {v}");
            }
        }
    }

    #[test]
    fn merge_combines_histograms_exactly() {
        let mut rng = parcache_types::rng::Rng::seed_from_u64(1996);
        for case in 0..20u64 {
            let mut parts: Vec<Histogram> = (0..4).map(|_| Histogram::new()).collect();
            let mut whole = Histogram::new();
            for i in 0..200usize {
                let v = rng.next_u64() >> (rng.next_u64() % 60);
                parts[i % 4].record(v);
                whole.record(v);
            }
            // Fold the shards (one stays empty-ish if case is small) and
            // compare against recording everything into one histogram.
            let mut merged = Histogram::new(); // start from the identity
            for p in &parts {
                merged.merge(p);
            }
            assert_eq!(merged, whole, "case {case}");
            assert_eq!(merged.quantile(1.0), whole.max(), "case {case}");
            assert_eq!(merged.count(), whole.count());
            assert!((merged.mean() - whole.mean()).abs() < 1e-9);
        }
        // Merging an empty histogram is the identity in both directions.
        let mut h = Histogram::new();
        h.record(42);
        let snapshot = h.clone();
        h.merge(&Histogram::new());
        assert_eq!(h, snapshot);
        let mut e = Histogram::new();
        e.merge(&snapshot);
        assert_eq!(e, snapshot);
    }

    #[test]
    fn run_metrics_merge_folds_counters_and_timelines() {
        let mut a = RunMetrics::new(2, Nanos::from_millis(10));
        let mut b = RunMetrics::new(2, Nanos::from_millis(10));
        a.counters.fetches_issued = 3;
        b.counters.fetches_issued = 4;
        a.fetch_service.record(100);
        b.fetch_service.record(300);
        a.per_disk[0].service.record(100);
        b.per_disk[1].service.record(300);
        a.timeline.add_busy(0, Nanos::ZERO, Nanos::from_millis(5));
        b.timeline
            .add_busy(0, Nanos::from_millis(5), Nanos::from_millis(10));
        b.timeline.sample_depth(1, Nanos::ZERO, 7);
        a.merge(&b);
        assert_eq!(a.counters.fetches_issued, 7);
        assert_eq!(a.fetch_service.count(), 2);
        assert_eq!(a.fetch_service.max(), 300);
        assert_eq!(a.per_disk[0].service.count(), 1);
        assert_eq!(a.per_disk[1].service.count(), 1);
        let rows = a.timeline.rows();
        assert!((rows[0].1[0] - 1.0).abs() < 1e-9, "{rows:?}");
        assert_eq!(rows[0].2[1], 7);
    }

    #[test]
    #[should_panic(expected = "different sizes")]
    fn run_metrics_merge_rejects_shape_mismatch() {
        let mut a = RunMetrics::new(2, Nanos::from_millis(10));
        let b = RunMetrics::new(3, Nanos::from_millis(10));
        a.merge(&b);
    }

    #[test]
    fn empty_histogram_is_calm() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.summary(), (0, 0, 0));
        assert_eq!(h.mean(), 0.0);
        assert!(h.to_json().contains(r#""count":0"#));
    }

    #[test]
    fn timeline_splits_busy_across_slices() {
        let mut t = Timeline::new(2, Nanos::from_millis(10));
        // 15ms of busy on disk 0 spanning 25ms..40ms: slices 2, 3.
        t.add_busy(0, Nanos::from_millis(25), Nanos::from_millis(40));
        t.sample_depth(1, Nanos::from_millis(5), 4);
        let rows = t.rows();
        assert_eq!(rows.len(), 4);
        assert!((rows[2].1[0] - 0.5).abs() < 1e-9, "{:?}", rows[2]);
        assert!((rows[3].1[0] - 1.0).abs() < 1e-9, "{:?}", rows[3]);
        assert_eq!(rows[0].2[1], 4);
        assert_eq!(rows[0].1[1], 0.0);
    }

    #[test]
    fn metrics_probe_folds_events() {
        let mut p = MetricsProbe::new(2, Nanos::from_millis(10));
        let now = Nanos::from_millis(1);
        p.on_event(&Event::PolicyDecision { now, cursor: 0 });
        p.on_event(&Event::CacheMiss {
            now,
            block: BlockId(1),
        });
        p.on_event(&Event::FetchIssued {
            now,
            block: BlockId(1),
            disk: DiskId(1),
            demand: true,
            evicted: Some(BlockId(9)),
        });
        p.on_event(&Event::Eviction {
            now,
            block: BlockId(9),
        });
        p.on_event(&Event::QueueDepth {
            now,
            disk: DiskId(1),
            depth: 1,
        });
        p.on_event(&Event::FetchStarted {
            now,
            block: BlockId(1),
            disk: DiskId(1),
            write: false,
            head_cylinder: 3,
            completes: Nanos::from_millis(6),
        });
        p.on_event(&Event::FetchCompleted {
            now: Nanos::from_millis(6),
            block: BlockId(1),
            disk: DiskId(1),
            write: false,
            service: Nanos::from_millis(5),
            response: Nanos::from_millis(5),
            head_cylinder: 3,
            depth: 0,
            faulted: false,
        });
        p.on_event(&Event::StallBegin {
            now,
            block: BlockId(1),
        });
        p.on_event(&Event::StallEnd {
            now: Nanos::from_millis(6),
            block: BlockId(1),
            stalled: Nanos::from_millis(5),
            cause: StallCause::NoPrefetch,
            charged: Nanos::from_millis(5),
        });
        let m = p.finish();
        assert_eq!(m.counters.decisions, 1);
        assert_eq!(m.counters.cache_misses, 1);
        assert_eq!(m.counters.fetches_issued, 1);
        assert_eq!(m.counters.demand_fetches, 1);
        assert_eq!(m.counters.evictions, 1);
        assert_eq!(m.counters.stalls_begun, m.counters.stalls_ended);
        assert_eq!(m.fetch_service.count(), 1);
        assert_eq!(m.per_disk[1].service.count(), 1);
        assert_eq!(m.per_disk[0].service.count(), 0);
        assert_eq!(m.queue_depth.count(), 1);
        assert_eq!(m.stall_duration.count(), 1);
        // Busy 1ms..6ms lands half in slice 0, half in slice 1... actually
        // 9ms of slice 0 covers 1..10: all 5ms of busy is in slice 0.
        let rows = m.timeline.rows();
        assert!((rows[0].1[1] - 0.5).abs() < 1e-9);
        let json = m.to_json();
        assert!(json.contains(r#""counters""#), "{json}");
        assert!(json.contains(r#""timeline""#), "{json}");
    }

    #[test]
    fn fault_counters_fold_and_stay_out_of_healthy_json() {
        use crate::probe::FaultCause;
        let healthy = Counters::default().to_json();
        assert!(!healthy.contains("fault"), "{healthy}");
        assert!(!healthy.contains("retries"), "{healthy}");
        assert!(!healthy.contains("abandoned"), "{healthy}");
        let mut p = MetricsProbe::new(1, Nanos::from_millis(10));
        let now = Nanos::from_millis(1);
        p.on_event(&Event::FaultInjected {
            now,
            block: BlockId(1),
            disk: DiskId(0),
            write: false,
            cause: FaultCause::MediaError,
            attempt: 1,
        });
        p.on_event(&Event::RetryIssued {
            now,
            block: BlockId(1),
            disk: DiskId(0),
            attempt: 1,
        });
        p.on_event(&Event::RequestAbandoned {
            now,
            block: BlockId(1),
            disk: DiskId(0),
            write: false,
            attempts: 2,
        });
        p.on_event(&Event::DiskDegraded {
            now,
            disk: DiskId(0),
        });
        p.on_event(&Event::DiskRecovered {
            now,
            disk: DiskId(0),
        });
        let mut m = p.finish();
        let other = Counters {
            retries: 2,
            ..Default::default()
        };
        m.counters.merge(&other);
        assert_eq!(m.counters.faults_injected, 1);
        assert_eq!(m.counters.retries, 3);
        assert_eq!(m.counters.requests_abandoned, 1);
        let json = m.counters.to_json();
        assert!(json.contains(r#""faults_injected":1"#), "{json}");
        assert!(json.contains(r#""retries":3"#), "{json}");
        assert!(json.contains(r#""requests_abandoned":1"#), "{json}");
    }

    #[test]
    fn ascii_rendering_has_bars() {
        let mut h = Histogram::new();
        for v in [1_000_000u64, 2_000_000, 2_500_000, 9_000_000] {
            h.record(v);
        }
        let s = h.render_ascii("service", Unit::Millis);
        assert!(s.starts_with("service: n=4"), "{s}");
        assert!(s.contains('#'), "{s}");
        assert!(s.contains("ms"), "{s}");
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(json_escape("x\ny"), r#"x\ny"#);
        assert_eq!(json_escape("plain"), "plain");
    }
}
