//! Online conservation auditing of the simulation event stream.
//!
//! The paper's argument rests on the simulator's accounting being exact:
//! §2.1's elapsed = compute + driver + stall identity and §3's disk-model
//! validation. [`AuditProbe`] rides the [`Probe`] event stream and checks
//! conservation laws *while the simulation runs* — monotone event time,
//! every fetch issue matched by exactly one completion, stall begin/end
//! balance, cache frame conservation (`resident + inflight <= K`, no
//! eviction of non-resident or stalled-on blocks), and per-disk
//! queue-depth conservation — then reconciles the final [`Report`]
//! against its independently folded totals with *checked* (never
//! saturating) arithmetic.
//!
//! Violations are collected, not panicked on, so a differential fuzzer
//! can run thousands of configurations and report every broken law; use
//! [`AuditOutcome::assert_clean`] where a panic is the right response.

use crate::config::{DiskModelKind, SimConfig};
use crate::engine::Report;
use crate::policy::PolicyKind;
use crate::probe::{Event, FaultCause, Probe, StallCause};
use crate::theory::uniform_elapsed_lower_bound;
use parcache_trace::Trace;
use parcache_types::{BlockId, Nanos};
use std::collections::HashSet;

/// How many violations are recorded verbatim before further ones are
/// only counted: one broken invariant tends to cascade, and the first
/// few messages carry all the signal.
const MAX_RECORDED: usize = 64;

/// One broken invariant, stamped with when it was observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditViolation {
    /// Simulated time of the offending event (or the report's elapsed
    /// time for end-of-run reconciliation failures).
    pub time: Nanos,
    /// Which conservation law broke.
    pub rule: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.time, self.rule, self.detail)
    }
}

/// The verdict of an audited run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditOutcome {
    /// Events observed.
    pub events: u64,
    /// Violations recorded (capped at an internal limit).
    pub violations: Vec<AuditViolation>,
    /// Violations beyond the recording cap, counted but not kept.
    pub suppressed: u64,
}

impl AuditOutcome {
    /// True when every invariant held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.suppressed == 0
    }

    /// Panics with every recorded violation unless the run was clean.
    pub fn assert_clean(&self) {
        if !self.is_clean() {
            let mut msg = format!(
                "audit failed: {} violation(s) over {} events",
                self.violations.len() as u64 + self.suppressed,
                self.events
            );
            for v in &self.violations {
                msg.push_str("\n  ");
                msg.push_str(&v.to_string());
            }
            panic!("{msg}");
        }
    }
}

/// A request a drive has begun servicing, as seen by the audit.
#[derive(Debug, Clone, Copy)]
struct InService {
    block: BlockId,
    completes: Nanos,
}

/// A [`Probe`] that enforces conservation invariants over the event
/// stream and reconciles the end-of-run [`Report`] (see the module
/// docs). Construct per run, feed to [`crate::engine::simulate_probed`],
/// then call [`AuditProbe::finish`].
#[derive(Debug)]
pub struct AuditProbe {
    capacity: usize,
    disk_model: DiskModelKind,
    faulted_plan: bool,
    last_time: Nanos,
    resident: HashSet<BlockId>,
    inflight: HashSet<BlockId>,
    queue_depth: Vec<usize>,
    in_service: Vec<Option<InService>>,
    stalled: Option<(BlockId, Nanos)>,
    stalls_begun: u64,
    stalls_ended: u64,
    total_stall_window: Nanos,
    /// Charged stall folded per cause from [`Event::StallEnd`], indexed
    /// by [`StallCause::index`]; reconciled against the report's
    /// breakdown and its `stall` total at finish.
    stall_charged: [Nanos; 5],
    fetches_issued: u64,
    writes_issued: u64,
    reads_completed: u64,
    writes_completed: u64,
    faults_injected: u64,
    retries_issued: u64,
    abandoned_reads: u64,
    abandoned_writes: u64,
    media_errors: Vec<u64>,
    degraded_since: Vec<Option<Nanos>>,
    degraded_observed: Vec<Nanos>,
    events: u64,
    violations: Vec<AuditViolation>,
    suppressed: u64,
}

impl AuditProbe {
    /// An audit for one run under `config`.
    pub fn new(config: &SimConfig) -> AuditProbe {
        AuditProbe {
            capacity: config.cache_blocks,
            disk_model: config.disk_model,
            faulted_plan: !config.faults.is_empty(),
            last_time: Nanos::ZERO,
            resident: HashSet::new(),
            inflight: HashSet::new(),
            queue_depth: vec![0; config.disks],
            in_service: vec![None; config.disks],
            stalled: None,
            stalls_begun: 0,
            stalls_ended: 0,
            total_stall_window: Nanos::ZERO,
            stall_charged: [Nanos::ZERO; 5],
            fetches_issued: 0,
            writes_issued: 0,
            reads_completed: 0,
            writes_completed: 0,
            faults_injected: 0,
            retries_issued: 0,
            abandoned_reads: 0,
            abandoned_writes: 0,
            media_errors: vec![0; config.disks],
            degraded_since: vec![None; config.disks],
            degraded_observed: vec![Nanos::ZERO; config.disks],
            events: 0,
            violations: Vec::new(),
            suppressed: 0,
        }
    }

    /// Events observed so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Violations recorded so far.
    pub fn violations(&self) -> &[AuditViolation] {
        &self.violations
    }

    fn violate(&mut self, time: Nanos, rule: &'static str, detail: String) {
        if self.violations.len() < MAX_RECORDED {
            self.violations.push(AuditViolation { time, rule, detail });
        } else {
            self.suppressed += 1;
        }
    }

    /// Consumes the audit, reconciling the engine's [`Report`] against
    /// the independently folded event totals.
    pub fn finish(mut self, report: &Report) -> AuditOutcome {
        let t = report.elapsed;

        // Every issued read must have completed: a referenced block holds
        // the application until it arrives, so nothing readable can be in
        // flight when the last reference has been consumed.
        if !self.inflight.is_empty() {
            let mut left: Vec<u64> = self.inflight.iter().map(|b| b.raw()).collect();
            left.sort_unstable();
            self.violate(
                t,
                "fetch-completion",
                format!(
                    "{} fetch(es) still in flight at end of run: {left:?}",
                    left.len()
                ),
            );
        }
        // Every issued fetch resolves exactly once: a successful read
        // completion or an abandonment after the retry budget is spent.
        if self.reads_completed + self.abandoned_reads != self.fetches_issued {
            self.violate(
                t,
                "fetch-completion",
                format!(
                    "{} fetches issued but {} read completions + {} abandonments observed",
                    self.fetches_issued, self.reads_completed, self.abandoned_reads
                ),
            );
        }
        if self.writes_completed + self.abandoned_writes > self.writes_issued {
            self.violate(
                t,
                "write-completion",
                format!(
                    "{} writes issued but {} completions + {} abandonments observed",
                    self.writes_issued, self.writes_completed, self.abandoned_writes
                ),
            );
        }
        if self.stalls_begun != self.stalls_ended || self.stalled.is_some() {
            self.violate(
                t,
                "stall-balance",
                format!(
                    "{} stalls begun, {} ended, open stall: {:?}",
                    self.stalls_begun, self.stalls_ended, self.stalled
                ),
            );
        }
        if self.last_time > t {
            self.violate(
                t,
                "event-horizon",
                format!(
                    "events observed at {} past the reported elapsed time {t}",
                    self.last_time
                ),
            );
        }

        // The breakdown identity, with checked arithmetic: a saturating
        // subtraction in the engine clamping a component would surface
        // here as a sum mismatch, never as a silent zero.
        match report
            .compute
            .checked_add(report.driver)
            .and_then(|s| s.checked_add(report.stall))
        {
            Some(sum) if sum == report.elapsed => {}
            sum => self.violate(
                t,
                "breakdown-identity",
                format!(
                    "elapsed {} != compute {} + driver {} + stall {} (sum {sum:?})",
                    report.elapsed, report.compute, report.driver, report.stall
                ),
            ),
        }
        // Stall windows cover every instant outside the CPU timeline, so
        // the report's stall component can never exceed their sum.
        if report.stall > self.total_stall_window {
            self.violate(
                t,
                "stall-cover",
                format!(
                    "reported stall {} exceeds total observed stall windows {}",
                    report.stall, self.total_stall_window
                ),
            );
        }
        // Stall provenance conservation: the per-cause charges folded
        // from the event stream sum to the reported stall exactly — no
        // stall nanosecond unattributed, none double-counted — and match
        // the report's own breakdown cause for cause.
        let charged_sum = self
            .stall_charged
            .iter()
            .try_fold(Nanos::ZERO, |acc, &c| acc.checked_add(c));
        match charged_sum {
            Some(sum) if sum == report.stall => {}
            sum => self.violate(
                t,
                "stall-attribution",
                format!(
                    "per-cause stall charges sum to {sum:?}, report says stall {}",
                    report.stall
                ),
            ),
        }
        for &cause in &StallCause::ALL {
            let observed = self.stall_charged[cause.index()];
            let reported = report.stall_by_cause.get(cause);
            if observed != reported {
                self.violate(
                    t,
                    "stall-attribution",
                    format!(
                        "event stream charged {observed} to {}, report says {reported}",
                        cause.name()
                    ),
                );
            }
        }

        if report.fetches != self.fetches_issued {
            self.violate(
                t,
                "fetch-count",
                format!(
                    "report says {} fetches, event stream saw {}",
                    report.fetches, self.fetches_issued
                ),
            );
        }
        if report.writes != self.writes_issued {
            self.violate(
                t,
                "write-count",
                format!(
                    "report says {} writes, event stream saw {}",
                    report.writes, self.writes_issued
                ),
            );
        }
        // Disk-side conservation: every *successfully* served request was
        // either a completed read fetch or a completed write-behind
        // flush. Faulted attempts add busy time but never count as
        // served, so the identity holds under fault injection too.
        let served: u64 = report.per_disk.iter().map(|d| d.served).sum();
        if served != self.reads_completed + self.writes_completed {
            self.violate(
                t,
                "served-conservation",
                format!(
                    "disks served {served} != completed reads {} + completed writes {}",
                    self.reads_completed, self.writes_completed
                ),
            );
        }
        for (i, d) in report.per_disk.iter().enumerate() {
            if d.busy > report.elapsed {
                self.violate(
                    t,
                    "busy-bound",
                    format!("disk {i} busy {} > elapsed {}", d.busy, report.elapsed),
                );
            }
        }
        self.reconcile_faults(report);

        // Theory cross-check: under the uniform model the elapsed time
        // and per-disk busy times have exact lower bounds (§2.1).
        if let DiskModelKind::Uniform(f) = self.disk_model {
            let bound = uniform_elapsed_lower_bound(report, f);
            if report.elapsed < bound {
                self.violate(
                    t,
                    "uniform-lower-bound",
                    format!("elapsed {} below theoretical bound {bound}", report.elapsed),
                );
            }
            for (i, d) in report.per_disk.iter().enumerate() {
                match f.checked_mul(d.served) {
                    Some(min_busy) if d.busy >= min_busy => {}
                    min_busy => self.violate(
                        t,
                        "uniform-busy",
                        format!("disk {i} busy {} below served x F ({min_busy:?})", d.busy),
                    ),
                }
            }
        }

        AuditOutcome {
            events: self.events,
            violations: self.violations,
            suppressed: self.suppressed,
        }
    }

    /// End-of-run fault accounting: the event stream's fault, retry,
    /// abandonment, and degraded-window totals must agree with each
    /// other and with the report's [`crate::engine::FaultSummary`].
    fn reconcile_faults(&mut self, report: &Report) {
        let t = report.elapsed;
        let abandoned = self.abandoned_reads + self.abandoned_writes;
        // Every injected fault is answered by exactly one retry or one
        // abandonment.
        if self.faults_injected != self.retries_issued + abandoned {
            self.violate(
                t,
                "fault-balance",
                format!(
                    "{} faults injected != {} retries + {abandoned} abandonments",
                    self.faults_injected, self.retries_issued
                ),
            );
        }
        // Each drive's failed counter is exactly its media-error faults:
        // outage rejections never reach the platters.
        for (i, d) in report.per_disk.iter().enumerate() {
            let seen = self.media_errors.get(i).copied().unwrap_or(0);
            if d.failed != seen {
                self.violate(
                    t,
                    "failed-count",
                    format!(
                        "disk {i} reports {} failed services, event stream saw {seen} media errors",
                        d.failed
                    ),
                );
            }
        }
        // Integrate degraded windows still open at end of run, clipped
        // to the reported elapsed time like the engine's summary.
        for i in 0..self.degraded_since.len() {
            if let Some(since) = self.degraded_since[i].take() {
                if since <= t {
                    self.degraded_observed[i] += t - since;
                }
            }
        }
        match &report.fault {
            None => {
                let degraded: Nanos = self.degraded_observed.iter().copied().sum();
                if self.faulted_plan || self.faults_injected > 0 || degraded > Nanos::ZERO {
                    self.violate(
                        t,
                        "fault-report",
                        format!(
                            "fault activity observed ({} faults, {degraded} degraded) \
                             but the report carries no fault summary",
                            self.faults_injected
                        ),
                    );
                }
            }
            Some(f) => {
                if !self.faulted_plan {
                    self.violate(
                        t,
                        "fault-report",
                        "report carries a fault summary but the config declares no fault plan"
                            .to_string(),
                    );
                }
                if f.faults_injected != self.faults_injected
                    || f.retries != self.retries_issued
                    || f.abandoned != abandoned
                {
                    self.violate(
                        t,
                        "fault-count",
                        format!(
                            "report says {}/{}/{} faults/retries/abandoned, \
                             event stream saw {}/{}/{abandoned}",
                            f.faults_injected,
                            f.retries,
                            f.abandoned,
                            self.faults_injected,
                            self.retries_issued
                        ),
                    );
                }
                if f.per_disk_degraded != self.degraded_observed {
                    self.violate(
                        t,
                        "degraded-time",
                        format!(
                            "report degraded {:?} != event-integrated {:?}",
                            f.per_disk_degraded, self.degraded_observed
                        ),
                    );
                }
                let total: Nanos = f.per_disk_degraded.iter().copied().sum();
                let expect = if t == Nanos::ZERO {
                    1.0
                } else {
                    1.0 - total.as_nanos() as f64 / (t.as_nanos() as f64 * report.disks as f64)
                };
                if (f.availability - expect).abs() > 1e-9 {
                    self.violate(
                        t,
                        "availability",
                        format!(
                            "report availability {} != {expect} recomputed from degraded time",
                            f.availability
                        ),
                    );
                }
            }
        }
    }
}

impl Probe for AuditProbe {
    fn on_event(&mut self, event: &Event) {
        self.events += 1;
        let now = event.time();
        if now < self.last_time {
            self.violate(
                now,
                "monotone-time",
                format!("event {} at {now} before {}", event.kind(), self.last_time),
            );
        }
        self.last_time = self.last_time.max(now);

        match *event {
            Event::PolicyDecision { .. } => {}
            Event::CacheHit { block, .. } => {
                if !self.resident.contains(&block) {
                    self.violate(
                        now,
                        "hit-residency",
                        format!("hit on non-resident block {}", block.raw()),
                    );
                }
            }
            Event::CacheMiss { block, .. } => {
                if self.resident.contains(&block) {
                    self.violate(
                        now,
                        "miss-residency",
                        format!("miss on resident block {}", block.raw()),
                    );
                }
            }
            Event::Eviction { block, .. } => {
                if let Some((stalled_on, _)) = self.stalled {
                    if stalled_on == block {
                        self.violate(
                            now,
                            "evict-pinned",
                            format!(
                                "evicted block {} while the application stalls on it",
                                block.raw()
                            ),
                        );
                    }
                }
                if !self.resident.remove(&block) {
                    self.violate(
                        now,
                        "evict-resident",
                        format!("evicted non-resident block {}", block.raw()),
                    );
                }
            }
            Event::FetchIssued { block, .. } => {
                self.fetches_issued += 1;
                if self.resident.contains(&block) {
                    self.violate(
                        now,
                        "fetch-resident",
                        format!("fetch issued for resident block {}", block.raw()),
                    );
                }
                if !self.inflight.insert(block) {
                    self.violate(
                        now,
                        "fetch-duplicate",
                        format!("fetch issued for already-in-flight block {}", block.raw()),
                    );
                }
                if self.resident.len() + self.inflight.len() > self.capacity {
                    self.violate(
                        now,
                        "frame-conservation",
                        format!(
                            "{} resident + {} in flight exceeds {} frames",
                            self.resident.len(),
                            self.inflight.len(),
                            self.capacity
                        ),
                    );
                }
            }
            Event::WriteIssued { .. } => {
                self.writes_issued += 1;
            }
            Event::QueueDepth { disk, depth, .. } => {
                let d = disk.index();
                self.queue_depth[d] += 1;
                if self.queue_depth[d] != depth {
                    self.violate(
                        now,
                        "queue-depth",
                        format!(
                            "disk {d} arrival depth {depth} but audit tracks {}",
                            self.queue_depth[d]
                        ),
                    );
                    self.queue_depth[d] = depth; // resync to limit cascades
                }
            }
            Event::FetchStarted {
                block,
                disk,
                completes,
                ..
            } => {
                let d = disk.index();
                if completes < now {
                    self.violate(
                        now,
                        "service-causality",
                        format!("disk {d} service completes at {completes}, before it starts"),
                    );
                }
                if let Some(prev) = self.in_service[d] {
                    self.violate(
                        now,
                        "single-service",
                        format!(
                            "disk {d} started block {} while block {} is in service",
                            block.raw(),
                            prev.block.raw()
                        ),
                    );
                }
                self.in_service[d] = Some(InService { block, completes });
            }
            Event::FetchCompleted {
                block,
                disk,
                write,
                service,
                response,
                depth,
                faulted,
                ..
            } => {
                let d = disk.index();
                match self.in_service[d].take() {
                    Some(s) if s.block == block => {
                        if s.completes != now {
                            self.violate(
                                now,
                                "service-schedule",
                                format!(
                                    "disk {d} block {} completed at {now}, scheduled for {}",
                                    block.raw(),
                                    s.completes
                                ),
                            );
                        }
                    }
                    other => {
                        self.violate(
                            now,
                            "single-service",
                            format!(
                                "disk {d} completed block {} but audit tracks {other:?}",
                                block.raw()
                            ),
                        );
                    }
                }
                if response < service {
                    self.violate(
                        now,
                        "response-bound",
                        format!("disk {d} response {response} shorter than service {service}"),
                    );
                }
                if self.queue_depth[d] == 0 {
                    self.violate(
                        now,
                        "queue-depth",
                        format!("disk {d} completion with audit depth already zero"),
                    );
                } else {
                    self.queue_depth[d] -= 1;
                }
                if self.queue_depth[d] != depth {
                    self.violate(
                        now,
                        "queue-depth",
                        format!(
                            "disk {d} completion depth {depth} but audit tracks {}",
                            self.queue_depth[d]
                        ),
                    );
                    self.queue_depth[d] = depth;
                }
                if write {
                    // A faulted flush is abandoned, not served: only
                    // clean completions count toward the write total.
                    if !faulted {
                        self.writes_completed += 1;
                    }
                } else if faulted {
                    // A media error keeps the fetch in flight — the
                    // frame stays reserved until the driver retries or
                    // abandons the request.
                    if !self.inflight.contains(&block) {
                        self.violate(
                            now,
                            "fetch-completion",
                            format!(
                                "faulted completion of block {} that was never issued",
                                block.raw()
                            ),
                        );
                    }
                } else {
                    self.reads_completed += 1;
                    if !self.inflight.remove(&block) {
                        self.violate(
                            now,
                            "fetch-completion",
                            format!("completion of block {} that was never issued", block.raw()),
                        );
                    }
                    if !self.resident.insert(block) {
                        self.violate(
                            now,
                            "frame-conservation",
                            format!("completed block {} was already resident", block.raw()),
                        );
                    }
                }
            }
            Event::StallBegin { block, .. } => {
                self.stalls_begun += 1;
                if let Some((open, since)) = self.stalled {
                    self.violate(
                        now,
                        "stall-balance",
                        format!(
                            "stall on block {} begins while stall on {} (since {since}) is open",
                            block.raw(),
                            open.raw()
                        ),
                    );
                }
                if self.resident.contains(&block) {
                    self.violate(
                        now,
                        "stall-residency",
                        format!("stall began on resident block {}", block.raw()),
                    );
                }
                self.stalled = Some((block, now));
            }
            Event::StallEnd {
                block,
                stalled,
                cause,
                charged,
                ..
            } => {
                self.stalls_ended += 1;
                // The charged part of a stall is the window minus driver
                // work issued inside it — it can never exceed the window.
                if charged > stalled {
                    self.violate(
                        now,
                        "stall-attribution",
                        format!(
                            "stall on block {} charged {charged} to {} but its window was only {stalled}",
                            block.raw(),
                            cause.name()
                        ),
                    );
                }
                self.stall_charged[cause.index()] += charged;
                match self.stalled.take() {
                    Some((open, since)) if open == block => {
                        let window = now - since;
                        if window != stalled {
                            self.violate(
                                now,
                                "stall-duration",
                                format!(
                                    "stall on block {} reported {stalled}, window was {window}",
                                    block.raw()
                                ),
                            );
                        }
                        self.total_stall_window += window;
                        if !self.resident.contains(&block) {
                            self.violate(
                                now,
                                "stall-residency",
                                format!("stall ended but block {} is not resident", block.raw()),
                            );
                        }
                    }
                    other => {
                        self.violate(
                            now,
                            "stall-balance",
                            format!(
                                "stall end for block {} but audit tracks {other:?}",
                                block.raw()
                            ),
                        );
                    }
                }
            }
            Event::FaultInjected {
                block,
                disk,
                write,
                cause,
                attempt,
                ..
            } => {
                self.faults_injected += 1;
                if matches!(cause, FaultCause::MediaError) {
                    self.media_errors[disk.index()] += 1;
                }
                if attempt == 0 {
                    self.violate(
                        now,
                        "fault-attempt",
                        format!("fault on block {} with a zero attempt count", block.raw()),
                    );
                }
                if !write && !self.inflight.contains(&block) {
                    self.violate(
                        now,
                        "fault-inflight",
                        format!("read fault on block {} that is not in flight", block.raw()),
                    );
                }
            }
            Event::RetryIssued { block, .. } => {
                self.retries_issued += 1;
                if !self.inflight.contains(&block) {
                    self.violate(
                        now,
                        "retry-inflight",
                        format!(
                            "retry issued for block {} that is not in flight",
                            block.raw()
                        ),
                    );
                }
            }
            Event::RequestAbandoned { block, write, .. } => {
                if write {
                    self.abandoned_writes += 1;
                } else {
                    self.abandoned_reads += 1;
                    // Abandonment releases the reserved frame; a later
                    // completion of this block without a fresh issue now
                    // trips "fetch-completion" above.
                    if !self.inflight.remove(&block) {
                        self.violate(
                            now,
                            "abandon-inflight",
                            format!(
                                "abandoned fetch of block {} that is not in flight",
                                block.raw()
                            ),
                        );
                    }
                }
            }
            Event::DiskDegraded { disk, .. } => {
                let d = disk.index();
                if self.degraded_since[d].replace(now).is_some() {
                    self.violate(
                        now,
                        "degraded-balance",
                        format!("disk {d} entered a degraded window it is already in"),
                    );
                }
            }
            Event::DiskRecovered { disk, .. } => {
                let d = disk.index();
                match self.degraded_since[d].take() {
                    Some(since) => self.degraded_observed[d] += now - since,
                    None => self.violate(
                        now,
                        "degraded-balance",
                        format!("disk {d} recovered without entering a degraded window"),
                    ),
                }
            }
        }
    }
}

/// Runs `trace` under `policy` with the audit riding the probe stream;
/// returns the report together with the audit's verdict.
pub fn simulate_audited(
    trace: &Trace,
    policy: PolicyKind,
    config: &SimConfig,
) -> (Report, AuditOutcome) {
    let mut probe = AuditProbe::new(config);
    let report = crate::engine::simulate_probed(trace, policy, config, &mut probe);
    let outcome = probe.finish(&report);
    (report, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theory::{theory_config, unit_trace};
    use parcache_types::DiskId;

    #[test]
    fn clean_run_has_no_violations() {
        let t = unit_trace(&[0, 1, 2, 3, 0, 1, 2, 3], 4);
        for kind in PolicyKind::ALL {
            let cfg = theory_config(2, 3, 4);
            let (report, audit) = simulate_audited(&t, kind, &cfg);
            assert!(audit.is_clean(), "{kind}: {:?}", audit.violations);
            assert!(audit.events > 0, "{kind} produced no events");
            assert_eq!(
                report.elapsed,
                report.compute + report.driver + report.stall
            );
            audit.assert_clean();
        }
    }

    #[test]
    fn audited_run_reports_match_unaudited() {
        let t = unit_trace(&[5, 3, 5, 1, 0, 2, 4, 1, 3], 4);
        for kind in PolicyKind::ALL {
            let cfg = theory_config(3, 4, 2);
            let plain = crate::engine::simulate(&t, kind, &cfg);
            let (audited, audit) = simulate_audited(&t, kind, &cfg);
            assert!(audit.is_clean(), "{kind}: {:?}", audit.violations);
            assert_eq!(plain, audited, "{kind}: audit changed the simulation");
        }
    }

    #[test]
    fn write_behind_runs_audit_clean() {
        let t = unit_trace(&[0, 1, 2, 0, 1, 2, 0, 1], 4);
        let mut cfg = theory_config(2, 4, 3);
        cfg.write_behind_period = Some(3);
        cfg.driver_overhead = Nanos::from_micros(500);
        for kind in PolicyKind::ALL {
            let (report, audit) = simulate_audited(&t, kind, &cfg);
            assert!(audit.is_clean(), "{kind}: {:?}", audit.violations);
            assert!(report.writes > 0, "{kind}");
        }
    }

    /// Synthetic event streams let each law be violated deliberately.
    fn probe_for(disks: usize, cache: usize) -> AuditProbe {
        let mut cfg = SimConfig::new(disks, cache);
        cfg.disk_model = DiskModelKind::Uniform(Nanos::from_millis(1));
        AuditProbe::new(&cfg)
    }

    fn rules(p: &AuditProbe) -> Vec<&'static str> {
        p.violations().iter().map(|v| v.rule).collect()
    }

    #[test]
    fn detects_time_running_backwards() {
        let mut p = probe_for(1, 4);
        p.on_event(&Event::PolicyDecision {
            now: Nanos::from_millis(5),
            cursor: 0,
        });
        p.on_event(&Event::PolicyDecision {
            now: Nanos::from_millis(4),
            cursor: 1,
        });
        assert_eq!(rules(&p), vec!["monotone-time"]);
    }

    #[test]
    fn detects_unmatched_fetch() {
        let mut p = probe_for(1, 4);
        p.on_event(&Event::FetchIssued {
            now: Nanos::ZERO,
            block: BlockId(1),
            disk: DiskId(0),
            demand: true,
            evicted: None,
        });
        let report = Report {
            trace: "t".into(),
            policy: "p".into(),
            disks: 1,
            elapsed: Nanos::ZERO,
            compute: Nanos::ZERO,
            driver: Nanos::ZERO,
            stall: Nanos::ZERO,
            stall_by_cause: crate::engine::StallBreakdown::ZERO,
            fetches: 1,
            writes: 0,
            avg_fetch_time: Nanos::ZERO,
            avg_disk_utilization: 0.0,
            per_disk: vec![Default::default()],
            fault: None,
            hints: None,
        };
        let out = p.finish(&report);
        assert!(!out.is_clean());
        assert!(
            out.violations.iter().any(|v| v.rule == "fetch-completion"),
            "{:?}",
            out.violations
        );
    }

    #[test]
    fn detects_frame_overcommit_and_duplicates() {
        let mut p = probe_for(1, 1);
        for b in 0..2 {
            p.on_event(&Event::FetchIssued {
                now: Nanos::ZERO,
                block: BlockId(b),
                disk: DiskId(0),
                demand: false,
                evicted: None,
            });
        }
        assert!(rules(&p).contains(&"frame-conservation"), "{:?}", rules(&p));
        let mut p = probe_for(1, 4);
        p.on_event(&Event::Eviction {
            now: Nanos::ZERO,
            block: BlockId(9),
        });
        assert_eq!(rules(&p), vec!["evict-resident"]);
    }

    #[test]
    fn detects_queue_depth_drift() {
        let mut p = probe_for(2, 4);
        p.on_event(&Event::QueueDepth {
            now: Nanos::ZERO,
            disk: DiskId(1),
            depth: 3,
        });
        assert_eq!(rules(&p), vec!["queue-depth"]);
    }

    #[test]
    fn detects_doctored_report() {
        let t = unit_trace(&[0, 1, 2, 3], 4);
        let cfg = theory_config(2, 4, 2);
        let mut probe = AuditProbe::new(&cfg);
        let mut report = crate::engine::simulate_probed(&t, PolicyKind::Demand, &cfg, &mut probe);
        // Tamper with the breakdown the way the old saturating
        // subtraction silently did.
        report.stall = Nanos::ZERO;
        let out = probe.finish(&report);
        assert!(
            out.violations
                .iter()
                .any(|v| v.rule == "breakdown-identity"),
            "{:?}",
            out.violations
        );
    }

    #[test]
    fn detects_stall_imbalance() {
        let mut p = probe_for(1, 4);
        p.on_event(&Event::StallEnd {
            now: Nanos::from_millis(1),
            block: BlockId(3),
            stalled: Nanos::from_millis(1),
            cause: StallCause::NoPrefetch,
            charged: Nanos::from_millis(1),
        });
        assert_eq!(rules(&p), vec!["stall-balance"]);
    }

    #[test]
    fn uniform_lower_bound_catches_impossible_elapsed() {
        let t = unit_trace(&[0, 1, 2, 3, 4, 5], 4);
        let cfg = theory_config(1, 4, 5);
        let mut probe = AuditProbe::new(&cfg);
        let mut report = crate::engine::simulate_probed(&t, PolicyKind::Demand, &cfg, &mut probe);
        // Claim the run finished faster than one disk could possibly
        // serve its fetches; keep the breakdown internally consistent.
        report.elapsed = Nanos::from_millis(7);
        report.compute = Nanos::from_millis(6);
        report.driver = Nanos::ZERO;
        report.stall = Nanos::from_millis(1);
        let out = probe.finish(&report);
        assert!(
            out.violations
                .iter()
                .any(|v| v.rule == "uniform-lower-bound"),
            "{:?}",
            out.violations
        );
    }

    fn mixed_fault_config() -> SimConfig {
        use parcache_disk::FaultPlan;
        theory_config(2, 4, 3).with_faults(
            FaultPlan::parse("flaky:*:0.25,slow:0:2:20:2,outage:1:4:12,seed:11")
                .expect("test fault spec parses"),
        )
    }

    #[test]
    fn faulted_runs_audit_clean() {
        // Media errors, a fail-slow window, and an outage together: every
        // conservation law — including the fault/retry/abandonment
        // balance and the event-integrated degraded time — must hold.
        let blocks: Vec<u64> = (0..32).map(|i| i % 9).collect();
        let t = unit_trace(&blocks, 6);
        for kind in PolicyKind::ALL {
            let cfg = mixed_fault_config();
            let (report, audit) = simulate_audited(&t, kind, &cfg);
            assert!(audit.is_clean(), "{kind}: {:?}", audit.violations);
            let f = report.fault.as_ref().expect("faulted plan yields summary");
            assert_eq!(f.faults_injected, f.retries + f.abandoned, "{kind}");
        }
    }

    #[test]
    fn detects_doctored_fault_summary() {
        let t = unit_trace(&[0, 1, 2, 3, 0, 1, 2, 3], 4);
        let cfg = mixed_fault_config();
        let mut probe = AuditProbe::new(&cfg);
        let mut report = crate::engine::simulate_probed(&t, PolicyKind::Demand, &cfg, &mut probe);
        if let Some(f) = report.fault.as_mut() {
            f.retries += 1;
        }
        let out = probe.finish(&report);
        assert!(
            out.violations.iter().any(|v| v.rule == "fault-count"),
            "{:?}",
            out.violations
        );
    }

    #[test]
    fn detects_missing_fault_summary() {
        let t = unit_trace(&[0, 1, 2, 3], 4);
        let cfg = mixed_fault_config();
        let mut probe = AuditProbe::new(&cfg);
        let mut report = crate::engine::simulate_probed(&t, PolicyKind::Demand, &cfg, &mut probe);
        report.fault = None;
        let out = probe.finish(&report);
        assert!(
            out.violations.iter().any(|v| v.rule == "fault-report"),
            "{:?}",
            out.violations
        );
    }

    #[test]
    fn detects_unbalanced_degraded_windows() {
        let mut p = probe_for(2, 4);
        p.on_event(&Event::DiskRecovered {
            now: Nanos::from_millis(1),
            disk: DiskId(1),
        });
        assert_eq!(rules(&p), vec!["degraded-balance"]);
        let mut p = probe_for(2, 4);
        p.on_event(&Event::DiskDegraded {
            now: Nanos::ZERO,
            disk: DiskId(0),
        });
        p.on_event(&Event::DiskDegraded {
            now: Nanos::from_millis(1),
            disk: DiskId(0),
        });
        assert_eq!(rules(&p), vec!["degraded-balance"]);
    }

    #[test]
    fn detects_retry_of_unissued_block() {
        let mut p = probe_for(1, 4);
        p.on_event(&Event::RetryIssued {
            now: Nanos::ZERO,
            block: BlockId(7),
            disk: DiskId(0),
            attempt: 1,
        });
        assert_eq!(rules(&p), vec!["retry-inflight"]);
    }

    #[test]
    fn violation_recording_is_capped() {
        let mut p = probe_for(1, 4);
        for _ in 0..(MAX_RECORDED + 10) {
            p.on_event(&Event::Eviction {
                now: Nanos::ZERO,
                block: BlockId(42),
            });
        }
        assert_eq!(p.violations().len(), MAX_RECORDED);
        let report = Report {
            trace: "t".into(),
            policy: "p".into(),
            disks: 1,
            elapsed: Nanos::ZERO,
            compute: Nanos::ZERO,
            driver: Nanos::ZERO,
            stall: Nanos::ZERO,
            stall_by_cause: crate::engine::StallBreakdown::ZERO,
            fetches: 0,
            writes: 0,
            avg_fetch_time: Nanos::ZERO,
            avg_disk_utilization: 0.0,
            per_disk: vec![Default::default()],
            fault: None,
            hints: None,
        };
        let out = p.finish(&report);
        assert!(out.suppressed >= 10, "{}", out.suppressed);
        assert!(!out.is_clean());
    }
}
