//! Online conservation auditing of the simulation event stream.
//!
//! The paper's argument rests on the simulator's accounting being exact:
//! §2.1's elapsed = compute + driver + stall identity and §3's disk-model
//! validation. [`AuditProbe`] rides the [`Probe`] event stream and checks
//! conservation laws *while the simulation runs* — monotone event time,
//! every fetch issue matched by exactly one completion, stall begin/end
//! balance, cache frame conservation (`resident + inflight <= K`, no
//! eviction of non-resident or stalled-on blocks), and per-disk
//! queue-depth conservation — then reconciles the final [`Report`]
//! against its independently folded totals with *checked* (never
//! saturating) arithmetic.
//!
//! Violations are collected, not panicked on, so a differential fuzzer
//! can run thousands of configurations and report every broken law; use
//! [`AuditOutcome::assert_clean`] where a panic is the right response.

use crate::config::{DiskModelKind, SimConfig};
use crate::engine::Report;
use crate::policy::PolicyKind;
use crate::probe::{Event, Probe};
use crate::theory::uniform_elapsed_lower_bound;
use parcache_trace::Trace;
use parcache_types::{BlockId, Nanos};
use std::collections::HashSet;

/// How many violations are recorded verbatim before further ones are
/// only counted: one broken invariant tends to cascade, and the first
/// few messages carry all the signal.
const MAX_RECORDED: usize = 64;

/// One broken invariant, stamped with when it was observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditViolation {
    /// Simulated time of the offending event (or the report's elapsed
    /// time for end-of-run reconciliation failures).
    pub time: Nanos,
    /// Which conservation law broke.
    pub rule: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.time, self.rule, self.detail)
    }
}

/// The verdict of an audited run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditOutcome {
    /// Events observed.
    pub events: u64,
    /// Violations recorded (capped at an internal limit).
    pub violations: Vec<AuditViolation>,
    /// Violations beyond the recording cap, counted but not kept.
    pub suppressed: u64,
}

impl AuditOutcome {
    /// True when every invariant held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.suppressed == 0
    }

    /// Panics with every recorded violation unless the run was clean.
    pub fn assert_clean(&self) {
        if !self.is_clean() {
            let mut msg = format!(
                "audit failed: {} violation(s) over {} events",
                self.violations.len() as u64 + self.suppressed,
                self.events
            );
            for v in &self.violations {
                msg.push_str("\n  ");
                msg.push_str(&v.to_string());
            }
            panic!("{msg}");
        }
    }
}

/// A request a drive has begun servicing, as seen by the audit.
#[derive(Debug, Clone, Copy)]
struct InService {
    block: BlockId,
    completes: Nanos,
}

/// A [`Probe`] that enforces conservation invariants over the event
/// stream and reconciles the end-of-run [`Report`] (see the module
/// docs). Construct per run, feed to [`crate::engine::simulate_probed`],
/// then call [`AuditProbe::finish`].
#[derive(Debug)]
pub struct AuditProbe {
    capacity: usize,
    disk_model: DiskModelKind,
    last_time: Nanos,
    resident: HashSet<BlockId>,
    inflight: HashSet<BlockId>,
    queue_depth: Vec<usize>,
    in_service: Vec<Option<InService>>,
    stalled: Option<(BlockId, Nanos)>,
    stalls_begun: u64,
    stalls_ended: u64,
    total_stall_window: Nanos,
    fetches_issued: u64,
    writes_issued: u64,
    reads_completed: u64,
    writes_completed: u64,
    events: u64,
    violations: Vec<AuditViolation>,
    suppressed: u64,
}

impl AuditProbe {
    /// An audit for one run under `config`.
    pub fn new(config: &SimConfig) -> AuditProbe {
        AuditProbe {
            capacity: config.cache_blocks,
            disk_model: config.disk_model,
            last_time: Nanos::ZERO,
            resident: HashSet::new(),
            inflight: HashSet::new(),
            queue_depth: vec![0; config.disks],
            in_service: vec![None; config.disks],
            stalled: None,
            stalls_begun: 0,
            stalls_ended: 0,
            total_stall_window: Nanos::ZERO,
            fetches_issued: 0,
            writes_issued: 0,
            reads_completed: 0,
            writes_completed: 0,
            events: 0,
            violations: Vec::new(),
            suppressed: 0,
        }
    }

    /// Events observed so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Violations recorded so far.
    pub fn violations(&self) -> &[AuditViolation] {
        &self.violations
    }

    fn violate(&mut self, time: Nanos, rule: &'static str, detail: String) {
        if self.violations.len() < MAX_RECORDED {
            self.violations.push(AuditViolation { time, rule, detail });
        } else {
            self.suppressed += 1;
        }
    }

    /// Consumes the audit, reconciling the engine's [`Report`] against
    /// the independently folded event totals.
    pub fn finish(mut self, report: &Report) -> AuditOutcome {
        let t = report.elapsed;

        // Every issued read must have completed: a referenced block holds
        // the application until it arrives, so nothing readable can be in
        // flight when the last reference has been consumed.
        if !self.inflight.is_empty() {
            let mut left: Vec<u64> = self.inflight.iter().map(|b| b.raw()).collect();
            left.sort_unstable();
            self.violate(
                t,
                "fetch-completion",
                format!(
                    "{} fetch(es) still in flight at end of run: {left:?}",
                    left.len()
                ),
            );
        }
        if self.reads_completed != self.fetches_issued {
            self.violate(
                t,
                "fetch-completion",
                format!(
                    "{} fetches issued but {} read completions observed",
                    self.fetches_issued, self.reads_completed
                ),
            );
        }
        if self.writes_completed > self.writes_issued {
            self.violate(
                t,
                "write-completion",
                format!(
                    "{} writes issued but {} write completions observed",
                    self.writes_issued, self.writes_completed
                ),
            );
        }
        if self.stalls_begun != self.stalls_ended || self.stalled.is_some() {
            self.violate(
                t,
                "stall-balance",
                format!(
                    "{} stalls begun, {} ended, open stall: {:?}",
                    self.stalls_begun, self.stalls_ended, self.stalled
                ),
            );
        }
        if self.last_time > t {
            self.violate(
                t,
                "event-horizon",
                format!(
                    "events observed at {} past the reported elapsed time {t}",
                    self.last_time
                ),
            );
        }

        // The breakdown identity, with checked arithmetic: a saturating
        // subtraction in the engine clamping a component would surface
        // here as a sum mismatch, never as a silent zero.
        match report
            .compute
            .checked_add(report.driver)
            .and_then(|s| s.checked_add(report.stall))
        {
            Some(sum) if sum == report.elapsed => {}
            sum => self.violate(
                t,
                "breakdown-identity",
                format!(
                    "elapsed {} != compute {} + driver {} + stall {} (sum {sum:?})",
                    report.elapsed, report.compute, report.driver, report.stall
                ),
            ),
        }
        // Stall windows cover every instant outside the CPU timeline, so
        // the report's stall component can never exceed their sum.
        if report.stall > self.total_stall_window {
            self.violate(
                t,
                "stall-cover",
                format!(
                    "reported stall {} exceeds total observed stall windows {}",
                    report.stall, self.total_stall_window
                ),
            );
        }

        if report.fetches != self.fetches_issued {
            self.violate(
                t,
                "fetch-count",
                format!(
                    "report says {} fetches, event stream saw {}",
                    report.fetches, self.fetches_issued
                ),
            );
        }
        if report.writes != self.writes_issued {
            self.violate(
                t,
                "write-count",
                format!(
                    "report says {} writes, event stream saw {}",
                    report.writes, self.writes_issued
                ),
            );
        }
        // Disk-side conservation: every served request was either a read
        // fetch (all complete) or a completed write-behind flush.
        let served: u64 = report.per_disk.iter().map(|d| d.served).sum();
        if served != report.fetches + self.writes_completed {
            self.violate(
                t,
                "served-conservation",
                format!(
                    "disks served {served} != fetches {} + completed writes {}",
                    report.fetches, self.writes_completed
                ),
            );
        }
        for (i, d) in report.per_disk.iter().enumerate() {
            if d.busy > report.elapsed {
                self.violate(
                    t,
                    "busy-bound",
                    format!("disk {i} busy {} > elapsed {}", d.busy, report.elapsed),
                );
            }
        }

        // Theory cross-check: under the uniform model the elapsed time
        // and per-disk busy times have exact lower bounds (§2.1).
        if let DiskModelKind::Uniform(f) = self.disk_model {
            let bound = uniform_elapsed_lower_bound(report, f);
            if report.elapsed < bound {
                self.violate(
                    t,
                    "uniform-lower-bound",
                    format!("elapsed {} below theoretical bound {bound}", report.elapsed),
                );
            }
            for (i, d) in report.per_disk.iter().enumerate() {
                match f.checked_mul(d.served) {
                    Some(min_busy) if d.busy >= min_busy => {}
                    min_busy => self.violate(
                        t,
                        "uniform-busy",
                        format!("disk {i} busy {} below served x F ({min_busy:?})", d.busy),
                    ),
                }
            }
        }

        AuditOutcome {
            events: self.events,
            violations: self.violations,
            suppressed: self.suppressed,
        }
    }
}

impl Probe for AuditProbe {
    fn on_event(&mut self, event: &Event) {
        self.events += 1;
        let now = event.time();
        if now < self.last_time {
            self.violate(
                now,
                "monotone-time",
                format!("event {} at {now} before {}", event.kind(), self.last_time),
            );
        }
        self.last_time = self.last_time.max(now);

        match *event {
            Event::PolicyDecision { .. } => {}
            Event::CacheHit { block, .. } => {
                if !self.resident.contains(&block) {
                    self.violate(
                        now,
                        "hit-residency",
                        format!("hit on non-resident block {}", block.raw()),
                    );
                }
            }
            Event::CacheMiss { block, .. } => {
                if self.resident.contains(&block) {
                    self.violate(
                        now,
                        "miss-residency",
                        format!("miss on resident block {}", block.raw()),
                    );
                }
            }
            Event::Eviction { block, .. } => {
                if let Some((stalled_on, _)) = self.stalled {
                    if stalled_on == block {
                        self.violate(
                            now,
                            "evict-pinned",
                            format!(
                                "evicted block {} while the application stalls on it",
                                block.raw()
                            ),
                        );
                    }
                }
                if !self.resident.remove(&block) {
                    self.violate(
                        now,
                        "evict-resident",
                        format!("evicted non-resident block {}", block.raw()),
                    );
                }
            }
            Event::FetchIssued { block, .. } => {
                self.fetches_issued += 1;
                if self.resident.contains(&block) {
                    self.violate(
                        now,
                        "fetch-resident",
                        format!("fetch issued for resident block {}", block.raw()),
                    );
                }
                if !self.inflight.insert(block) {
                    self.violate(
                        now,
                        "fetch-duplicate",
                        format!("fetch issued for already-in-flight block {}", block.raw()),
                    );
                }
                if self.resident.len() + self.inflight.len() > self.capacity {
                    self.violate(
                        now,
                        "frame-conservation",
                        format!(
                            "{} resident + {} in flight exceeds {} frames",
                            self.resident.len(),
                            self.inflight.len(),
                            self.capacity
                        ),
                    );
                }
            }
            Event::WriteIssued { .. } => {
                self.writes_issued += 1;
            }
            Event::QueueDepth { disk, depth, .. } => {
                let d = disk.index();
                self.queue_depth[d] += 1;
                if self.queue_depth[d] != depth {
                    self.violate(
                        now,
                        "queue-depth",
                        format!(
                            "disk {d} arrival depth {depth} but audit tracks {}",
                            self.queue_depth[d]
                        ),
                    );
                    self.queue_depth[d] = depth; // resync to limit cascades
                }
            }
            Event::FetchStarted {
                block,
                disk,
                completes,
                ..
            } => {
                let d = disk.index();
                if completes < now {
                    self.violate(
                        now,
                        "service-causality",
                        format!("disk {d} service completes at {completes}, before it starts"),
                    );
                }
                if let Some(prev) = self.in_service[d] {
                    self.violate(
                        now,
                        "single-service",
                        format!(
                            "disk {d} started block {} while block {} is in service",
                            block.raw(),
                            prev.block.raw()
                        ),
                    );
                }
                self.in_service[d] = Some(InService { block, completes });
            }
            Event::FetchCompleted {
                block,
                disk,
                write,
                service,
                response,
                depth,
                ..
            } => {
                let d = disk.index();
                match self.in_service[d].take() {
                    Some(s) if s.block == block => {
                        if s.completes != now {
                            self.violate(
                                now,
                                "service-schedule",
                                format!(
                                    "disk {d} block {} completed at {now}, scheduled for {}",
                                    block.raw(),
                                    s.completes
                                ),
                            );
                        }
                    }
                    other => {
                        self.violate(
                            now,
                            "single-service",
                            format!(
                                "disk {d} completed block {} but audit tracks {other:?}",
                                block.raw()
                            ),
                        );
                    }
                }
                if response < service {
                    self.violate(
                        now,
                        "response-bound",
                        format!("disk {d} response {response} shorter than service {service}"),
                    );
                }
                if self.queue_depth[d] == 0 {
                    self.violate(
                        now,
                        "queue-depth",
                        format!("disk {d} completion with audit depth already zero"),
                    );
                } else {
                    self.queue_depth[d] -= 1;
                }
                if self.queue_depth[d] != depth {
                    self.violate(
                        now,
                        "queue-depth",
                        format!(
                            "disk {d} completion depth {depth} but audit tracks {}",
                            self.queue_depth[d]
                        ),
                    );
                    self.queue_depth[d] = depth;
                }
                if write {
                    self.writes_completed += 1;
                } else {
                    self.reads_completed += 1;
                    if !self.inflight.remove(&block) {
                        self.violate(
                            now,
                            "fetch-completion",
                            format!("completion of block {} that was never issued", block.raw()),
                        );
                    }
                    if !self.resident.insert(block) {
                        self.violate(
                            now,
                            "frame-conservation",
                            format!("completed block {} was already resident", block.raw()),
                        );
                    }
                }
            }
            Event::StallBegin { block, .. } => {
                self.stalls_begun += 1;
                if let Some((open, since)) = self.stalled {
                    self.violate(
                        now,
                        "stall-balance",
                        format!(
                            "stall on block {} begins while stall on {} (since {since}) is open",
                            block.raw(),
                            open.raw()
                        ),
                    );
                }
                if self.resident.contains(&block) {
                    self.violate(
                        now,
                        "stall-residency",
                        format!("stall began on resident block {}", block.raw()),
                    );
                }
                self.stalled = Some((block, now));
            }
            Event::StallEnd { block, stalled, .. } => {
                self.stalls_ended += 1;
                match self.stalled.take() {
                    Some((open, since)) if open == block => {
                        let window = now - since;
                        if window != stalled {
                            self.violate(
                                now,
                                "stall-duration",
                                format!(
                                    "stall on block {} reported {stalled}, window was {window}",
                                    block.raw()
                                ),
                            );
                        }
                        self.total_stall_window += window;
                        if !self.resident.contains(&block) {
                            self.violate(
                                now,
                                "stall-residency",
                                format!("stall ended but block {} is not resident", block.raw()),
                            );
                        }
                    }
                    other => {
                        self.violate(
                            now,
                            "stall-balance",
                            format!(
                                "stall end for block {} but audit tracks {other:?}",
                                block.raw()
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// Runs `trace` under `policy` with the audit riding the probe stream;
/// returns the report together with the audit's verdict.
pub fn simulate_audited(
    trace: &Trace,
    policy: PolicyKind,
    config: &SimConfig,
) -> (Report, AuditOutcome) {
    let mut probe = AuditProbe::new(config);
    let report = crate::engine::simulate_probed(trace, policy, config, &mut probe);
    let outcome = probe.finish(&report);
    (report, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theory::{theory_config, unit_trace};
    use parcache_types::DiskId;

    #[test]
    fn clean_run_has_no_violations() {
        let t = unit_trace(&[0, 1, 2, 3, 0, 1, 2, 3], 4);
        for kind in PolicyKind::ALL {
            let cfg = theory_config(2, 3, 4);
            let (report, audit) = simulate_audited(&t, kind, &cfg);
            assert!(audit.is_clean(), "{kind}: {:?}", audit.violations);
            assert!(audit.events > 0, "{kind} produced no events");
            assert_eq!(
                report.elapsed,
                report.compute + report.driver + report.stall
            );
            audit.assert_clean();
        }
    }

    #[test]
    fn audited_run_reports_match_unaudited() {
        let t = unit_trace(&[5, 3, 5, 1, 0, 2, 4, 1, 3], 4);
        for kind in PolicyKind::ALL {
            let cfg = theory_config(3, 4, 2);
            let plain = crate::engine::simulate(&t, kind, &cfg);
            let (audited, audit) = simulate_audited(&t, kind, &cfg);
            assert!(audit.is_clean(), "{kind}: {:?}", audit.violations);
            assert_eq!(plain, audited, "{kind}: audit changed the simulation");
        }
    }

    #[test]
    fn write_behind_runs_audit_clean() {
        let t = unit_trace(&[0, 1, 2, 0, 1, 2, 0, 1], 4);
        let mut cfg = theory_config(2, 4, 3);
        cfg.write_behind_period = Some(3);
        cfg.driver_overhead = Nanos::from_micros(500);
        for kind in PolicyKind::ALL {
            let (report, audit) = simulate_audited(&t, kind, &cfg);
            assert!(audit.is_clean(), "{kind}: {:?}", audit.violations);
            assert!(report.writes > 0, "{kind}");
        }
    }

    /// Synthetic event streams let each law be violated deliberately.
    fn probe_for(disks: usize, cache: usize) -> AuditProbe {
        let mut cfg = SimConfig::new(disks, cache);
        cfg.disk_model = DiskModelKind::Uniform(Nanos::from_millis(1));
        AuditProbe::new(&cfg)
    }

    fn rules(p: &AuditProbe) -> Vec<&'static str> {
        p.violations().iter().map(|v| v.rule).collect()
    }

    #[test]
    fn detects_time_running_backwards() {
        let mut p = probe_for(1, 4);
        p.on_event(&Event::PolicyDecision {
            now: Nanos::from_millis(5),
            cursor: 0,
        });
        p.on_event(&Event::PolicyDecision {
            now: Nanos::from_millis(4),
            cursor: 1,
        });
        assert_eq!(rules(&p), vec!["monotone-time"]);
    }

    #[test]
    fn detects_unmatched_fetch() {
        let mut p = probe_for(1, 4);
        p.on_event(&Event::FetchIssued {
            now: Nanos::ZERO,
            block: BlockId(1),
            disk: DiskId(0),
            demand: true,
            evicted: None,
        });
        let report = Report {
            trace: "t".into(),
            policy: "p".into(),
            disks: 1,
            elapsed: Nanos::ZERO,
            compute: Nanos::ZERO,
            driver: Nanos::ZERO,
            stall: Nanos::ZERO,
            fetches: 1,
            writes: 0,
            avg_fetch_time: Nanos::ZERO,
            avg_disk_utilization: 0.0,
            per_disk: vec![Default::default()],
        };
        let out = p.finish(&report);
        assert!(!out.is_clean());
        assert!(
            out.violations.iter().any(|v| v.rule == "fetch-completion"),
            "{:?}",
            out.violations
        );
    }

    #[test]
    fn detects_frame_overcommit_and_duplicates() {
        let mut p = probe_for(1, 1);
        for b in 0..2 {
            p.on_event(&Event::FetchIssued {
                now: Nanos::ZERO,
                block: BlockId(b),
                disk: DiskId(0),
                demand: false,
                evicted: None,
            });
        }
        assert!(rules(&p).contains(&"frame-conservation"), "{:?}", rules(&p));
        let mut p = probe_for(1, 4);
        p.on_event(&Event::Eviction {
            now: Nanos::ZERO,
            block: BlockId(9),
        });
        assert_eq!(rules(&p), vec!["evict-resident"]);
    }

    #[test]
    fn detects_queue_depth_drift() {
        let mut p = probe_for(2, 4);
        p.on_event(&Event::QueueDepth {
            now: Nanos::ZERO,
            disk: DiskId(1),
            depth: 3,
        });
        assert_eq!(rules(&p), vec!["queue-depth"]);
    }

    #[test]
    fn detects_doctored_report() {
        let t = unit_trace(&[0, 1, 2, 3], 4);
        let cfg = theory_config(2, 4, 2);
        let mut probe = AuditProbe::new(&cfg);
        let mut report = crate::engine::simulate_probed(&t, PolicyKind::Demand, &cfg, &mut probe);
        // Tamper with the breakdown the way the old saturating
        // subtraction silently did.
        report.stall = Nanos::ZERO;
        let out = probe.finish(&report);
        assert!(
            out.violations
                .iter()
                .any(|v| v.rule == "breakdown-identity"),
            "{:?}",
            out.violations
        );
    }

    #[test]
    fn detects_stall_imbalance() {
        let mut p = probe_for(1, 4);
        p.on_event(&Event::StallEnd {
            now: Nanos::from_millis(1),
            block: BlockId(3),
            stalled: Nanos::from_millis(1),
        });
        assert_eq!(rules(&p), vec!["stall-balance"]);
    }

    #[test]
    fn uniform_lower_bound_catches_impossible_elapsed() {
        let t = unit_trace(&[0, 1, 2, 3, 4, 5], 4);
        let cfg = theory_config(1, 4, 5);
        let mut probe = AuditProbe::new(&cfg);
        let mut report = crate::engine::simulate_probed(&t, PolicyKind::Demand, &cfg, &mut probe);
        // Claim the run finished faster than one disk could possibly
        // serve its fetches; keep the breakdown internally consistent.
        report.elapsed = Nanos::from_millis(7);
        report.compute = Nanos::from_millis(6);
        report.driver = Nanos::ZERO;
        report.stall = Nanos::from_millis(1);
        let out = probe.finish(&report);
        assert!(
            out.violations
                .iter()
                .any(|v| v.rule == "uniform-lower-bound"),
            "{:?}",
            out.violations
        );
    }

    #[test]
    fn violation_recording_is_capped() {
        let mut p = probe_for(1, 4);
        for _ in 0..(MAX_RECORDED + 10) {
            p.on_event(&Event::Eviction {
                now: Nanos::ZERO,
                block: BlockId(42),
            });
        }
        assert_eq!(p.violations().len(), MAX_RECORDED);
        let report = Report {
            trace: "t".into(),
            policy: "p".into(),
            disks: 1,
            elapsed: Nanos::ZERO,
            compute: Nanos::ZERO,
            driver: Nanos::ZERO,
            stall: Nanos::ZERO,
            fetches: 0,
            writes: 0,
            avg_fetch_time: Nanos::ZERO,
            avg_disk_utilization: 0.0,
            per_disk: vec![Default::default()],
        };
        let out = p.finish(&report);
        assert!(out.suppressed >= 10, "{}", out.suppressed);
        assert!(!out.is_clean());
    }
}
