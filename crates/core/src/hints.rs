//! Incomplete hints: the paper's §6 extension.
//!
//! The main study assumes the application discloses its *entire* access
//! sequence. Real hinting applications disclose some or all of it
//! (TIP2 explicitly handles partially-hinting processes), and the paper
//! conjectures that fixed horizon — which loads the disks and cache the
//! least — should degrade most gracefully as hints disappear.
//!
//! This module models incomplete disclosure as a *hint mask* over the
//! request sequence: policies see only the hinted references (their
//! oracle, Belady keys, and missing-block index are all built from the
//! disclosed subsequence), while the application of course still issues
//! every request. Unhinted references surface as ordinary demand misses.

use crate::oracle::Oracle;
use parcache_disk::Layout;
use parcache_trace::Trace;
use parcache_types::BlockId;

/// Which references of a trace are disclosed to the policy.
#[derive(Debug, Clone, PartialEq)]
pub enum HintSpec {
    /// Everything is disclosed (the paper's main setting).
    Full,
    /// Each reference is independently disclosed with this probability
    /// (deterministic given the seed). This is the *adversarial* model:
    /// scattering unhinted references through hinted ones poisons the
    /// policy's knowledge maximally, because almost every block retains
    /// some disclosed future reference while losing others.
    Fraction {
        /// Probability that a reference is hinted, in `[0, 1]`.
        fraction: f64,
        /// Sampling seed.
        seed: u64,
    },
    /// Disclosure alternates between hinted and unhinted *runs* of
    /// references — how real applications hint (whole files, loops, or
    /// phases at a time; cf. TIP's per-file hints). Run lengths are
    /// geometric.
    Segments {
        /// Long-run fraction of references disclosed, in `(0, 1)`.
        fraction: f64,
        /// Mean length of a hinted run, in references.
        mean_run: usize,
        /// Sampling seed.
        seed: u64,
    },
    /// Only the first `disclosed` references are hinted; the stream then
    /// stops mid-run. This models a hint source that exhausts itself —
    /// an application that stops hinting, or an online predictor that
    /// goes silent — and pins the engine's end-of-hints bookkeeping: an
    /// exhausted source must *not* be treated as "all future blocks
    /// disclosed".
    Prefix {
        /// Number of leading references disclosed.
        disclosed: usize,
    },
    /// Nothing is disclosed: every policy degenerates to demand fetching
    /// (with no future knowledge, even replacement turns blind).
    None,
}

impl HintSpec {
    /// Materializes the per-reference mask for a trace of length `n`.
    pub fn mask(&self, n: usize) -> Vec<bool> {
        match *self {
            HintSpec::Full => vec![true; n],
            HintSpec::None => vec![false; n],
            HintSpec::Prefix { disclosed } => (0..n).map(|i| i < disclosed).collect(),
            HintSpec::Fraction { fraction, seed } => {
                assert!(
                    (0.0..=1.0).contains(&fraction),
                    "hint fraction must be a probability"
                );
                let mut rng = SplitMix::new(seed);
                (0..n).map(|_| rng.next_f64() <= fraction).collect()
            }
            HintSpec::Segments {
                fraction,
                mean_run,
                seed,
            } => {
                assert!(
                    (0.0..1.0).contains(&fraction) && fraction > 0.0,
                    "segment fraction must be strictly between 0 and 1"
                );
                assert!(mean_run > 0, "mean run must be positive");
                let mut rng = SplitMix::new(seed);
                let hinted_mean = mean_run as f64;
                let unhinted_mean = hinted_mean * (1.0 - fraction) / fraction;
                let mut mask = Vec::with_capacity(n);
                let mut hinted = rng.next_f64() <= fraction;
                while mask.len() < n {
                    let mean = if hinted { hinted_mean } else { unhinted_mean };
                    let u = rng.next_f64().max(f64::MIN_POSITIVE);
                    let run = (-mean * u.ln()).ceil().max(1.0) as usize;
                    for _ in 0..run.min(n - mask.len()) {
                        mask.push(hinted);
                    }
                    hinted = !hinted;
                }
                mask
            }
        }
    }

    /// The fraction of references disclosed (1.0 for `Full`).
    ///
    /// `Prefix` reports 0.0 regardless of its length: the fraction is
    /// length-relative and this method has no access to the trace, so it
    /// stays conservative. Use [`HintSpec::fully_disclosing`] — which
    /// *does* know the trace length — for "is everything disclosed?"
    /// decisions.
    pub fn nominal_fraction(&self) -> f64 {
        match *self {
            HintSpec::Full => 1.0,
            HintSpec::None => 0.0,
            HintSpec::Prefix { .. } => 0.0,
            HintSpec::Fraction { fraction, .. } => fraction,
            HintSpec::Segments { fraction, .. } => fraction,
        }
    }

    /// Whether a trace of `n` references is disclosed in its entirety.
    ///
    /// This is the engine's gate for trusting the oracle as complete
    /// knowledge (e.g. exact Belady replacement instead of the LRU
    /// estimate for undisclosed blocks). It errs on the side of `false`:
    /// `Segments` is never fully disclosing (its fraction is strictly
    /// below 1), and a `Prefix` only qualifies when it covers the whole
    /// trace.
    pub fn fully_disclosing(&self, n: usize) -> bool {
        match *self {
            HintSpec::Full => true,
            HintSpec::None => n == 0,
            HintSpec::Prefix { disclosed } => disclosed >= n,
            HintSpec::Fraction { fraction, .. } => fraction >= 1.0,
            HintSpec::Segments { .. } => false,
        }
    }
}

/// SplitMix64: a tiny deterministic generator so this module needs no
/// dependencies.
struct SplitMix {
    state: u64,
}

impl SplitMix {
    fn new(seed: u64) -> SplitMix {
        SplitMix {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Builds the policy-visible oracle for a trace under a hint mask: only
/// hinted references are indexed. Positions keep their original indices,
/// so cursor arithmetic is unchanged; `next_occurrence` means "next
/// *disclosed* occurrence". Every trace block — disclosed or not — is
/// given a compact index (undisclosed ones with empty occurrence lists),
/// so the engine can resolve demand misses on unhinted references without
/// falling outside the indexed universe.
pub fn hinted_oracle(trace: &Trace, layout: Layout, mask: &[bool]) -> Oracle {
    assert_eq!(mask.len(), trace.requests.len(), "mask length mismatch");
    let masked: Vec<(usize, BlockId)> = trace
        .requests
        .iter()
        .enumerate()
        .filter(|&(i, _)| mask[i])
        .map(|(i, r)| (i, r.block))
        .collect();
    let universe: Vec<BlockId> = trace.requests.iter().map(|r| r.block).collect();
    Oracle::from_positions_with_universe(trace.requests.len(), masked, &universe, layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::NEVER;
    use parcache_trace::Request;
    use parcache_types::Nanos;

    fn trace_of(blocks: &[u64]) -> Trace {
        Trace::new(
            "t",
            blocks
                .iter()
                .map(|&b| Request {
                    block: BlockId(b),
                    compute: Nanos::from_millis(1),
                })
                .collect(),
            4,
        )
    }

    #[test]
    fn full_and_none_masks() {
        assert_eq!(HintSpec::Full.mask(3), vec![true, true, true]);
        assert_eq!(HintSpec::None.mask(2), vec![false, false]);
        assert_eq!(HintSpec::Full.nominal_fraction(), 1.0);
        assert_eq!(HintSpec::None.nominal_fraction(), 0.0);
    }

    #[test]
    fn prefix_masks_and_disclosure_bounds() {
        assert_eq!(
            HintSpec::Prefix { disclosed: 2 }.mask(4),
            vec![true, true, false, false]
        );
        assert_eq!(
            HintSpec::Prefix { disclosed: 0 }.mask(2),
            vec![false, false]
        );
        // A prefix longer than the trace is just full disclosure.
        assert_eq!(HintSpec::Prefix { disclosed: 9 }.mask(3), vec![true; 3]);
        assert_eq!(HintSpec::Prefix { disclosed: 5 }.nominal_fraction(), 0.0);
    }

    #[test]
    fn fully_disclosing_matches_the_materialized_mask() {
        let specs = [
            HintSpec::Full,
            HintSpec::None,
            HintSpec::Prefix { disclosed: 0 },
            HintSpec::Prefix { disclosed: 3 },
            HintSpec::Prefix { disclosed: 8 },
            HintSpec::Fraction {
                fraction: 1.0,
                seed: 7,
            },
            HintSpec::Fraction {
                fraction: 0.4,
                seed: 7,
            },
            HintSpec::Segments {
                fraction: 0.5,
                mean_run: 4,
                seed: 7,
            },
        ];
        for spec in &specs {
            for n in [0usize, 1, 3, 8] {
                let all_true = spec.mask(n).iter().all(|&h| h);
                // `fully_disclosing` may be conservative (false even when
                // a sampled mask happens to be all-true) but must never
                // claim full disclosure that the mask contradicts.
                if spec.fully_disclosing(n) {
                    assert!(all_true, "{spec:?} claimed full disclosure at n={n}");
                }
            }
        }
        // And the claims the engine depends on are exact, not just safe:
        assert!(HintSpec::Full.fully_disclosing(100));
        assert!(HintSpec::Prefix { disclosed: 100 }.fully_disclosing(100));
        assert!(!HintSpec::Prefix { disclosed: 99 }.fully_disclosing(100));
        assert!(HintSpec::Fraction {
            fraction: 1.0,
            seed: 0
        }
        .fully_disclosing(100));
        assert!(!HintSpec::None.fully_disclosing(1));
        assert!(HintSpec::None.fully_disclosing(0));
    }

    #[test]
    fn fraction_mask_is_deterministic_and_calibrated() {
        let spec = HintSpec::Fraction {
            fraction: 0.5,
            seed: 42,
        };
        let a = spec.mask(10_000);
        let b = spec.mask(10_000);
        assert_eq!(a, b);
        let hinted = a.iter().filter(|&&h| h).count();
        assert!((4_500..5_500).contains(&hinted), "{hinted} of 10000");
        assert_eq!(spec.nominal_fraction(), 0.5);
    }

    #[test]
    fn different_seeds_differ() {
        let a = HintSpec::Fraction {
            fraction: 0.5,
            seed: 1,
        }
        .mask(100);
        let b = HintSpec::Fraction {
            fraction: 0.5,
            seed: 2,
        }
        .mask(100);
        assert_ne!(a, b);
    }

    #[test]
    fn extremes_are_exact() {
        let all = HintSpec::Fraction {
            fraction: 1.0,
            seed: 3,
        }
        .mask(500);
        assert!(all.iter().all(|&h| h));
        let none = HintSpec::Fraction {
            fraction: 0.0,
            seed: 3,
        }
        .mask(500);
        assert!(none.iter().all(|&h| !h));
    }

    #[test]
    fn segments_produce_runs_with_the_right_fraction() {
        let spec = HintSpec::Segments {
            fraction: 0.5,
            mean_run: 100,
            seed: 5,
        };
        let mask = spec.mask(50_000);
        assert_eq!(mask, spec.mask(50_000));
        let hinted = mask.iter().filter(|&&h| h).count();
        assert!(
            (20_000..30_000).contains(&hinted),
            "{hinted} hinted of 50000"
        );
        // Runs, not confetti: far fewer transitions than a Bernoulli mask.
        let transitions = mask.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(transitions < 2_000, "{transitions} transitions");
        assert_eq!(spec.nominal_fraction(), 0.5);
    }

    #[test]
    #[should_panic(expected = "strictly between")]
    fn segments_reject_degenerate_fraction() {
        HintSpec::Segments {
            fraction: 1.0,
            mean_run: 10,
            seed: 0,
        }
        .mask(5);
    }

    #[test]
    fn hinted_oracle_sees_only_disclosed_references() {
        let t = trace_of(&[1, 2, 1, 2, 1]);
        let mask = vec![true, false, false, true, true];
        let o = hinted_oracle(&t, Layout::striped(1), &mask);
        assert_eq!(o.len(), 5); // positions keep original indices
                                // Block 2's only hinted occurrence is position 3.
        assert_eq!(o.next_occurrence(BlockId(2), 0), 3);
        assert_eq!(o.next_occurrence(BlockId(2), 4), NEVER);
        // Block 1 hinted at 0 and 4; position 2 is undisclosed.
        assert_eq!(o.next_occurrence(BlockId(1), 1), 4);
    }

    #[test]
    #[should_panic(expected = "mask length")]
    fn mask_length_mismatch_panics() {
        let t = trace_of(&[1]);
        hinted_oracle(&t, Layout::striped(1), &[true, false]);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_fraction_panics() {
        HintSpec::Fraction {
            fraction: 1.5,
            seed: 0,
        }
        .mask(1);
    }
}
