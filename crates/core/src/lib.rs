//! Integrated parallel prefetching and caching: algorithms and engine.
//!
//! This crate is the primary contribution of the reproduction: the five
//! policies of Kimbrel et al. (OSDI 1996) — demand fetching with optimal
//! replacement, fixed horizon, aggressive, reverse aggressive, and
//! forestall — together with the event-driven engine that replays traces
//! against a disk array and accounts elapsed time as compute + driver
//! overhead + stall.
//!
//! # Structure
//!
//! * [`oracle`] — full-advance-knowledge queries (next reference of a
//!   block, per-disk future positions).
//! * [`cache`] — the block cache with Belady eviction and the dynamic
//!   missing-block index.
//! * [`engine`] — the event loop, timing model, and [`engine::Report`].
//! * [`policy`] / [`algs`] — the policy interface and the five algorithms.
//! * [`theory`] — helpers for the paper's uniform fetch-time theoretical
//!   model (§2.1), in which compute steps are unit time.
//! * [`hints`] — incomplete disclosure (the §6 extension): policies see
//!   only a hinted subsequence.
//! * [`predict`] — hint delivery behind the [`predict::HintSource`]
//!   trait: the disclosed-oracle path plus online predictors
//!   (sequential/stride, first-order Markov, MITHRIL-style sporadic
//!   association) that learn the demand stream and feed *predicted*
//!   hints into the same engine.
//! * [`config`] — run parameters with the paper's defaults, plus the
//!   deterministic fault plan and the driver's retry/backoff policy.
//! * [`probe`] / [`metrics`] — the observability layer: a typed event
//!   stream emitted at every decision point, and counters, latency
//!   histograms, and per-disk timelines folded from it. The default
//!   probe is a zero-sized no-op, so uninstrumented runs pay nothing.
//! * [`audit`] — a probe that enforces conservation invariants over the
//!   event stream (frame conservation, fetch/stall balance, monotone
//!   time, queue-depth accounting, fault/retry/abandonment balance) and
//!   reconciles the final report with checked arithmetic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algs;
pub mod audit;
pub mod cache;
pub mod config;
pub mod engine;
pub mod hints;
pub mod metrics;
pub mod oracle;
pub mod policy;
pub mod predict;
pub mod probe;
pub mod theory;

pub use audit::{simulate_audited, AuditOutcome, AuditProbe, AuditViolation};
pub use config::{RetryPolicy, SimConfig};
pub use engine::{
    simulate, simulate_probed, simulate_with, simulate_with_probed, FaultSummary, Report,
};
pub use metrics::{Histogram, MetricsProbe, RunMetrics};
pub use policy::{Policy, PolicyKind};
pub use predict::{HintMode, HintSource, HintStats, PredictorKind};
pub use probe::{Event, FaultCause, NoopProbe, Probe};
