//! The integrated prefetching-and-caching policy abstraction.

use crate::config::SimConfig;
use crate::engine::Ctx;
use parcache_trace::Trace;
use parcache_types::BlockId;

/// An integrated prefetching and caching policy.
///
/// The engine invokes a policy at every decision point — simulation start,
/// after each reference is consumed, and after each fetch completes — and
/// additionally when the application misses. Nothing observable changes
/// between decision points, so this interface is exact.
pub trait Policy {
    /// A short name for reports.
    fn name(&self) -> &'static str;

    /// Decision point: inspect the state and issue any fetches.
    fn decide(&mut self, ctx: &mut Ctx<'_>);

    /// The application is stalled on `block`, which is neither resident
    /// nor in flight. The policy should issue a demand fetch; if it cannot
    /// (no evictable frame), the engine waits for a completion and asks
    /// again.
    fn on_miss(&mut self, ctx: &mut Ctx<'_>, block: BlockId) {
        demand_fetch(ctx, block);
    }
}

/// The default demand-miss reaction: fetch the block now, evicting the
/// resident block whose next reference is furthest in the future.
pub fn demand_fetch(ctx: &mut Ctx<'_>, block: BlockId) {
    let idx = ctx
        .oracle
        .index_of(block)
        .expect("demand-missed block outside the indexed universe");
    if ctx.cache.resident(idx) || ctx.cache.inflight(idx) {
        return;
    }
    if ctx.cache.has_free_frame() {
        ctx.issue_fetch_idx(idx, None);
        return;
    }
    let cursor = ctx.cursor;
    if let Some((victim, _)) = ctx.cache.furthest_resident(cursor, ctx.oracle) {
        ctx.issue_fetch_idx(idx, Some(victim));
    }
    // Otherwise every frame is in flight; the engine retries after the
    // next completion.
}

/// The five policies the paper studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Demand fetching with optimal (offline Belady) replacement — the
    /// baseline of §4.1.
    Demand,
    /// Fixed horizon (TIP2-derived, §2.3).
    FixedHorizon,
    /// Aggressive (multi-disk, batched, §2.4).
    Aggressive,
    /// Reverse aggressive (offline schedule construction, §2.5).
    ReverseAggressive,
    /// Forestall (the paper's new hybrid, §5).
    Forestall,
}

impl PolicyKind {
    /// All five kinds, in the paper's presentation order.
    pub const ALL: [PolicyKind; 5] = [
        PolicyKind::Demand,
        PolicyKind::FixedHorizon,
        PolicyKind::Aggressive,
        PolicyKind::ReverseAggressive,
        PolicyKind::Forestall,
    ];

    /// The four prefetching policies (everything but demand).
    pub const PREFETCHING: [PolicyKind; 4] = [
        PolicyKind::FixedHorizon,
        PolicyKind::Aggressive,
        PolicyKind::ReverseAggressive,
        PolicyKind::Forestall,
    ];

    /// A short display name.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Demand => "demand",
            PolicyKind::FixedHorizon => "fixed-horizon",
            PolicyKind::Aggressive => "aggressive",
            PolicyKind::ReverseAggressive => "reverse-aggressive",
            PolicyKind::Forestall => "forestall",
        }
    }

    /// Instantiates the policy for one simulation run.
    ///
    /// Reverse aggressive constructs its offline schedule here, which for
    /// long traces is the expensive part of the run.
    pub fn build(&self, trace: &Trace, config: &SimConfig) -> Box<dyn Policy> {
        match self {
            PolicyKind::Demand => Box::new(crate::algs::demand::Demand),
            PolicyKind::FixedHorizon => Box::new(crate::algs::fixed_horizon::FixedHorizon::new(
                config.horizon,
            )),
            PolicyKind::Aggressive => {
                Box::new(crate::algs::aggressive::Aggressive::new(config.batch_size))
            }
            PolicyKind::ReverseAggressive => {
                Box::new(crate::algs::reverse::ReverseAggressive::new(trace, config))
            }
            PolicyKind::Forestall => Box::new(crate::algs::forestall::Forestall::new(config)),
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<&str> =
            PolicyKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), PolicyKind::ALL.len());
    }

    #[test]
    fn prefetching_excludes_demand() {
        assert!(!PolicyKind::PREFETCHING.contains(&PolicyKind::Demand));
        assert_eq!(PolicyKind::PREFETCHING.len(), 4);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(PolicyKind::Aggressive.to_string(), "aggressive");
    }
}
