//! The multi-disk aggressive algorithm (§2.4, §2.7).
//!
//! "Whenever a disk D is free, construct a batch of at most batch-size
//! fetches to initiate on D: as long as the first missing block B on disk
//! D precedes the block B' whose next request is furthest in the future,
//! add the fetch/eviction pair B/B' to the batch."
//!
//! When several disks are free simultaneously their missing blocks are
//! considered together in increasing request-index order; each is issued
//! to its disk (with the best possible eviction) while its batch has room
//! and the do-no-harm rule allows it.

use crate::engine::Ctx;
use crate::policy::Policy;

/// The aggressive policy.
#[derive(Debug)]
pub struct Aggressive {
    batch_size: usize,
    scratch: BatchScratch,
}

impl Aggressive {
    /// Creates the policy with the given per-disk batch size (Table 6
    /// gives the paper's defaults by array size).
    pub fn new(batch_size: usize) -> Aggressive {
        assert!(batch_size > 0, "the batch size must be positive");
        Aggressive {
            batch_size,
            scratch: BatchScratch::default(),
        }
    }

    /// The configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }
}

/// Reusable per-disk working vectors for [`fill_free_disk_batches`]. The
/// function runs at every decision point; owning the buffers in the policy
/// keeps the hot path free of per-call allocation.
#[derive(Debug, Default)]
pub(crate) struct BatchScratch {
    /// Remaining batch budget for each free disk.
    budget: Vec<Option<usize>>,
    /// Per-disk scan positions over the missing-block index.
    from: Vec<usize>,
}

/// Builds batches for every currently-free disk: missing blocks are taken
/// in increasing request-index order, each fetch paired with the
/// furthest-future eviction, subject to do-no-harm. Shared with forestall,
/// whose batch construction is identical once it decides to prefetch.
pub(crate) fn fill_free_disk_batches(
    ctx: &mut Ctx<'_>,
    batch_size: usize,
    only_disk: Option<usize>,
    scratch: &mut BatchScratch,
) {
    let cursor = ctx.cursor;
    let disks = ctx.config.disks;
    scratch.budget.clear();
    scratch.budget.extend((0..disks).map(|d| {
        let eligible = only_disk.is_none_or(|o| o == d);
        (eligible && ctx.array.is_free(parcache_types::DiskId(d))).then_some(batch_size)
    }));
    if scratch.budget.iter().all(|b| b.is_none()) {
        return;
    }
    scratch.from.clear();
    scratch.from.resize(disks, cursor);
    loop {
        // The earliest missing block among disks with budget.
        let mut best: Option<(usize, usize)> = None; // (pos, disk)
        for d in 0..disks {
            if scratch.budget[d].is_none_or(|b| b == 0) {
                continue;
            }
            if let Some(p) = ctx.missing.first_missing_on_disk(d, scratch.from[d]) {
                if best.is_none_or(|(bp, _)| p < bp) {
                    best = Some((p, d));
                }
            }
        }
        let Some((pos, disk)) = best else { return };
        let idx = ctx
            .oracle
            .index_at(pos)
            .expect("missing-tracker positions are disclosed");
        debug_assert_eq!(ctx.oracle.disk_of(ctx.oracle.block_of(idx)).index(), disk);

        if ctx.cache.has_free_frame() {
            ctx.issue_fetch_idx(idx, None);
        } else {
            match ctx.cache.furthest_resident(cursor, ctx.oracle) {
                // Do no harm: only evict a block whose next reference is
                // after the fetched block's.
                Some((victim, key)) if key > pos => {
                    ctx.issue_fetch_idx(idx, Some(victim));
                }
                // The rule disallows any further fetch: every remaining
                // candidate's position is even later... no — later
                // candidates have *larger* pos, making the rule strictly
                // harder to satisfy. Stop entirely.
                _ => return,
            }
        }
        *scratch.budget[disk].as_mut().expect("disk had budget") -= 1;
        scratch.from[disk] = pos + 1;
    }
}

impl Policy for Aggressive {
    fn name(&self) -> &'static str {
        "aggressive"
    }

    fn decide(&mut self, ctx: &mut Ctx<'_>) {
        fill_free_disk_batches(ctx, self.batch_size, None, &mut self.scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DiskModelKind, SimConfig};
    use crate::engine::simulate_with;
    use parcache_trace::{Request, Trace};
    use parcache_types::{BlockId, Nanos};

    fn trace_of(blocks: &[u64], cache: usize) -> Trace {
        Trace::new(
            "t",
            blocks
                .iter()
                .map(|&b| Request {
                    block: BlockId(b),
                    compute: Nanos::from_millis(1),
                })
                .collect(),
            cache,
        )
    }

    fn cfg(disks: usize, cache: usize, fetch_ms: u64, batch: usize) -> SimConfig {
        let mut c = SimConfig::new(disks, cache);
        c.disk_model = DiskModelKind::Uniform(Nanos::from_millis(fetch_ms));
        c.driver_overhead = Nanos::ZERO;
        c.batch_size = batch;
        c
    }

    #[test]
    fn prefetches_deeply_when_io_bound() {
        // Sequential scan, fetch 4x the compute time, one disk: aggressive
        // keeps the disk busy continuously; elapsed ~ disk time.
        let blocks: Vec<u64> = (0..30).collect();
        let t = trace_of(&blocks, 8);
        let c = cfg(1, 8, 4, 4);
        let mut p = Aggressive::new(4);
        let r = simulate_with(&t, &mut p, &c);
        // Disk-bound floor: 30 fetches x 4ms = 120ms.
        assert!(r.elapsed >= Nanos::from_millis(120));
        assert!(
            r.elapsed <= Nanos::from_millis(128),
            "elapsed {}",
            r.elapsed
        );
        assert_eq!(r.fetches, 30);
    }

    #[test]
    fn respects_do_no_harm() {
        // Cache of 2 over an alternating hot pair: fetching block 2 early
        // would evict a block needed sooner than 2, so aggressive waits.
        let blocks = vec![0, 1, 0, 1, 0, 1, 2];
        let t = trace_of(&blocks, 2);
        let c = cfg(1, 2, 2, 8);
        let mut p = Aggressive::new(8);
        let r = simulate_with(&t, &mut p, &c);
        // Exactly three fetches: 0, 1, and 2 — do-no-harm prevented any
        // wasteful refetching of 0/1.
        assert_eq!(r.fetches, 3);
    }

    #[test]
    fn uses_parallel_disks() {
        // Blocks striped over 4 disks; aggressive fills all four batches
        // and overlaps fetches, beating the serial lower bound.
        let blocks: Vec<u64> = (0..40).collect();
        let t = trace_of(&blocks, 16);
        let c = cfg(4, 16, 8, 4);
        let mut p = Aggressive::new(4);
        let r = simulate_with(&t, &mut p, &c);
        // Serial would need 40 x 8 = 320ms of fetching; 4-way overlap plus
        // 40ms compute should land well under 160ms.
        assert!(r.elapsed < Nanos::from_millis(160), "elapsed {}", r.elapsed);
    }

    #[test]
    fn batch_size_bounds_outstanding_requests() {
        // With batch 2 on one disk, at most 2 requests are ever queued at
        // once; verified indirectly: aggressive still fetches everything.
        let blocks: Vec<u64> = (0..12).collect();
        let t = trace_of(&blocks, 6);
        let c = cfg(1, 6, 2, 2);
        let mut p = Aggressive::new(2);
        let r = simulate_with(&t, &mut p, &c);
        assert_eq!(r.fetches, 12);
    }

    #[test]
    fn stall_is_charged_to_late_prefetches() {
        // Pinned stall provenance: on an I/O-bound sequential scan over
        // one disk, aggressive has already issued every block's fetch by
        // the time the app catches up, and FCFS serves blocks in
        // reference order — so each stall finds its block's fetch on the
        // platter. The prefetches were late, never absent.
        use crate::probe::StallCause;
        let blocks: Vec<u64> = (0..30).collect();
        let t = trace_of(&blocks, 8);
        let r = simulate_with(&t, &mut Aggressive::new(4), &cfg(1, 8, 4, 4));
        assert!(r.stall > Nanos::ZERO);
        assert_eq!(r.stall_by_cause.get(StallCause::LatePrefetch), r.stall);
        assert_eq!(r.stall_by_cause.total(), r.stall);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_batch_rejected() {
        Aggressive::new(0);
    }

    #[test]
    fn accessor() {
        assert_eq!(Aggressive::new(40).batch_size(), 40);
    }
}
