//! The integrated prefetching-and-caching algorithms of the paper.
//!
//! * [`demand`] — demand fetching with optimal offline replacement (§4.1's
//!   baseline).
//! * [`fixed_horizon`] — the TIP2-derived fixed horizon algorithm (§2.3).
//! * [`aggressive`] — the multi-disk batched aggressive algorithm (§2.4).
//! * [`reverse`] — reverse aggressive: an offline schedule built on the
//!   reversed sequence and replayed forward (§2.5, §2.7).
//! * [`forestall`] — the paper's new hybrid that predicts upcoming stalls
//!   (§5).

pub mod aggressive;
pub mod demand;
pub mod fixed_horizon;
pub mod forestall;
pub mod reverse;
