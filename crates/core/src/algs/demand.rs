//! Demand fetching with optimal (offline) cache replacement.
//!
//! The paper's §4.1 baseline: "whenever a block is fetched, the block in
//! the cache whose next reference is furthest in the future is replaced".
//! No prefetching — every fetch is triggered by a miss — but replacement
//! uses full future knowledge, making the comparison as favorable to
//! demand fetching as possible.

use crate::engine::Ctx;
use crate::policy::Policy;

/// The optimal-replacement demand-fetching baseline.
#[derive(Debug, Default)]
pub struct Demand;

impl Policy for Demand {
    fn name(&self) -> &'static str {
        "demand"
    }

    fn decide(&mut self, _ctx: &mut Ctx<'_>) {
        // Never prefetches; all fetching happens in the default on_miss.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DiskModelKind, SimConfig};
    use crate::engine::simulate_with;
    use parcache_trace::{Request, Trace};
    use parcache_types::{BlockId, Nanos};

    fn trace_of(blocks: &[u64]) -> Trace {
        Trace::new(
            "t",
            blocks
                .iter()
                .map(|&b| Request {
                    block: BlockId(b),
                    compute: Nanos::from_millis(1),
                })
                .collect(),
            3,
        )
    }

    fn cfg(cache: usize) -> SimConfig {
        let mut c = SimConfig::new(1, cache);
        c.disk_model = DiskModelKind::Uniform(Nanos::from_millis(2));
        c.driver_overhead = Nanos::ZERO;
        c
    }

    #[test]
    fn fetch_count_is_belady_optimal() {
        // Classic Belady example: with a 3-block cache over
        // 1 2 3 4 1 2 5 1 2 3 4 5, OPT misses 7 times.
        let t = trace_of(&[1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5]);
        let r = simulate_with(&t, &mut Demand, &cfg(3));
        assert_eq!(r.fetches, 7);
    }

    #[test]
    fn stalls_on_every_miss() {
        let t = trace_of(&[1, 2, 3]);
        let r = simulate_with(&t, &mut Demand, &cfg(3));
        // 3 compute + 3 fetches x 2ms stall each.
        assert_eq!(r.elapsed, Nanos::from_millis(9));
        assert_eq!(r.stall, Nanos::from_millis(6));
    }

    #[test]
    fn never_prefetches() {
        // Re-referencing cached blocks: exactly distinct-many fetches.
        let t = trace_of(&[1, 2, 1, 2, 1, 2, 1, 2]);
        let r = simulate_with(&t, &mut Demand, &cfg(3));
        assert_eq!(r.fetches, 2);
    }

    #[test]
    fn stall_splits_into_first_touch_and_eviction_refetch() {
        // Pinned stall provenance for the no-prefetch policy. Cache of 1
        // over 1 2 1: the first two misses are first touches (no fetch
        // was ever issued for those blocks — `no_prefetch`), while the
        // re-miss of 1 exists only because fetching 2 evicted it
        // (`eviction_refetch`). Each miss stalls the full 2ms fetch.
        use crate::probe::StallCause;
        let t = trace_of(&[1, 2, 1]);
        let r = simulate_with(&t, &mut Demand, &cfg(1));
        assert_eq!(r.stall, Nanos::from_millis(6));
        assert_eq!(
            r.stall_by_cause.get(StallCause::NoPrefetch),
            Nanos::from_millis(4)
        );
        assert_eq!(
            r.stall_by_cause.get(StallCause::EvictionRefetch),
            Nanos::from_millis(2)
        );
        // Demand never issues early fetches, so no stall can be merely
        // "late": the in-flight causes must stay empty.
        assert_eq!(r.stall_by_cause.get(StallCause::LatePrefetch), Nanos::ZERO);
        assert_eq!(
            r.stall_by_cause.get(StallCause::DiskCongestion),
            Nanos::ZERO
        );
        assert_eq!(r.stall_by_cause.total(), r.stall);
    }
}
