//! The reverse aggressive algorithm (§2.5, §2.7).
//!
//! Reverse aggressive is offline: before the run it constructs a complete
//! prefetching schedule, then replays it against the real disk model.
//!
//! **Reverse pass.** Assuming a fixed fetch-time/compute-time ratio F̂, it
//! simulates the batched aggressive algorithm over the *reversed* request
//! sequence in the uniform fetch-time model: whenever a disk is free, it
//! fetches the first missing block on that disk, evicting the resident
//! block not needed for the longest time, provided the eviction's next
//! request falls after the fetched block's (do no harm), in batches.
//!
//! **Transformation.** Each reverse *eviction* of block E at reverse
//! cursor c becomes a forward *fetch* of E, ordered by the forward
//! request index it serves (E's most recent reverse use before c maps to
//! E's next forward use after the fetch point). Each reverse *fetch* of
//! block B serving its use at reverse position r becomes a forward
//! *eviction* of B with release time `n - r` — one past B's last forward
//! use before it is refetched. Blocks still resident at the end of the
//! reverse pass become cold-start forward fetches keyed by their first
//! forward use. Fetches are sorted by request index, evictions by release
//! point, and matched in order (the first K fetches fill cold frames).
//!
//! **Forward replay.** Whenever a disk D is free, the first up to
//! batch-size released pairs whose fetch block lives on D are issued
//! (§2.7). Demand misses consume the block's scheduled pair early; stale
//! evictions are repaired with the current furthest-future resident.

use crate::cache::{Cache, MissingTracker};
use crate::config::SimConfig;
use crate::engine::Ctx;
use crate::oracle::{Oracle, NEVER};
use crate::policy::{demand_fetch, Policy};
use parcache_disk::Layout;
use parcache_trace::Trace;
use parcache_types::{BlockId, DiskId, FastMap};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// One scheduled forward fetch/eviction pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pair {
    /// The block to fetch.
    pub block: BlockId,
    /// Forward position of the fetched block's next use (ordering key).
    pub key: usize,
    /// The block to evict, if the schedule calls for one.
    pub evict: Option<BlockId>,
    /// Earliest cursor position at which the eviction may happen.
    pub release: usize,
}

/// An event recorded during the reverse pass.
#[derive(Debug, Clone, Copy)]
struct RevEvent {
    /// Block fetched in the reverse world.
    fetched: BlockId,
    /// Block evicted in the reverse world, if any.
    evicted: Option<BlockId>,
    /// Reverse cursor at issue time.
    cursor: usize,
    /// Reverse position of the use this fetch serves.
    target: usize,
}

/// Outcome of attempting to issue a scheduled pair.
enum IssueOutcome {
    /// A fetch went out.
    Issued,
    /// The pair was obsolete (block already resident or in flight).
    Skipped,
    /// No frame could be freed; the pair stays pending.
    Blocked,
}

/// The reverse aggressive policy.
pub struct ReverseAggressive {
    /// Pairs sorted by `key`.
    schedule: Vec<Pair>,
    consumed: Vec<bool>,
    /// Pending pair indexes per disk, in key order.
    per_disk: Vec<VecDeque<usize>>,
    /// Pending pair indexes per block (for demand misses), in CSR form:
    /// [`block_slot`](Self::block_slot) maps a block to a slot `s`, and
    /// `by_block_idx[by_block_off[s] .. by_block_off[s + 1]]` lists the
    /// slot's pair indexes in key order. Three flat arrays plus one map
    /// instead of a heap-allocated queue per distinct block — the queues
    /// were the policy's entire ~19k-allocation footprint.
    block_slot: FastMap<BlockId, u32>,
    by_block_off: Vec<u32>,
    by_block_idx: Vec<u32>,
    /// Per slot: consume cursor into its `by_block_idx` range. Entries
    /// behind the cursor are spent (popped by earlier demand misses).
    by_block_head: Vec<u32>,
    batch_size: usize,
    /// Scratch for unreleased pairs pulled during a decide scan; reused
    /// across decision points to avoid a per-disk allocation.
    requeue: Vec<usize>,
    /// Disk each scheduled pair's fetch lives on.
    pair_disk: Vec<u32>,
    /// Per disk: a scan is needed. Cleared when a scan changes nothing,
    /// set again when a pair on the disk is consumed out of band.
    scan_dirty: Vec<bool>,
    /// Per disk: when `scan_dirty` is clear, the earliest cursor at which
    /// a pending pair in the probe window becomes released. Until then a
    /// rescan would observably do nothing, so `decide` skips it.
    next_release: Vec<usize>,
}

impl ReverseAggressive {
    /// Builds the offline schedule for `trace` under `config`.
    ///
    /// The fetch-time estimate F̂ is `config.reverse_fetch_estimate`
    /// compute-steps per fetch; the batch size is
    /// `config.reverse_batch_size`.
    pub fn new(trace: &Trace, config: &SimConfig) -> ReverseAggressive {
        let layout = Layout::striped(config.disks);
        let schedule = build_schedule(
            trace,
            layout,
            config.cache_blocks,
            config.reverse_fetch_estimate,
            config.reverse_batch_size,
            &config.hints,
        );
        assert!(
            schedule.len() <= u32::MAX as usize,
            "schedule too large for u32 pair indexes"
        );
        let mut per_disk: Vec<VecDeque<usize>> = vec![VecDeque::new(); config.disks];
        let mut pair_disk: Vec<u32> = Vec::with_capacity(schedule.len());
        // First pass: assign slots in first-seen order and count each
        // slot's pairs.
        let mut block_slot: FastMap<BlockId, u32> = FastMap::default();
        let mut counts: Vec<u32> = Vec::new();
        for (i, p) in schedule.iter().enumerate() {
            let d = layout.disk_of(p.block).index();
            per_disk[d].push_back(i);
            pair_disk.push(d as u32);
            let next = counts.len() as u32;
            let s = *block_slot.entry(p.block).or_insert(next);
            if s == next {
                counts.push(0);
            }
            counts[s as usize] += 1;
        }
        // Prefix sums, then a second pass scatters the pair indexes into
        // their slot ranges (schedule order is key order, preserved
        // within each slot).
        let mut by_block_off: Vec<u32> = Vec::with_capacity(counts.len() + 1);
        by_block_off.push(0);
        let mut acc = 0u32;
        for &c in &counts {
            acc += c;
            by_block_off.push(acc);
        }
        let by_block_head: Vec<u32> = by_block_off[..counts.len()].to_vec();
        let mut write = by_block_head.clone();
        let mut by_block_idx: Vec<u32> = vec![0; schedule.len()];
        for (i, p) in schedule.iter().enumerate() {
            let s = block_slot[&p.block] as usize;
            by_block_idx[write[s] as usize] = i as u32;
            write[s] += 1;
        }
        ReverseAggressive {
            consumed: vec![false; schedule.len()],
            schedule,
            per_disk,
            block_slot,
            by_block_off,
            by_block_idx,
            by_block_head,
            batch_size: config.reverse_batch_size,
            requeue: Vec::new(),
            pair_disk,
            scan_dirty: vec![true; config.disks],
            next_release: vec![0; config.disks],
        }
    }

    /// The constructed schedule (diagnostics, tests).
    pub fn schedule(&self) -> &[Pair] {
        &self.schedule
    }

    /// Attempts to issue pair `i`, repairing a stale eviction.
    fn issue_pair(&mut self, ctx: &mut Ctx<'_>, i: usize) -> IssueOutcome {
        let pair = self.schedule[i];
        let idx = ctx
            .oracle
            .index_of(pair.block)
            .expect("scheduled block outside the indexed universe");
        if ctx.cache.resident(idx) || ctx.cache.inflight(idx) {
            self.consumed[i] = true; // already handled (e.g. demand fetch)
            return IssueOutcome::Skipped;
        }
        // Deviations from the planned schedule (demand consumption of an
        // earlier pair, eviction repair, an abandoned faulted fetch) can
        // leave a pair pending after the block's last disclosed use has
        // been served from residency. Issuing it then would fetch data
        // nothing will ever reference — wasted bandwidth mid-run, and a
        // fetch that never completes if it happens at the end of the run.
        if ctx.oracle.next_occurrence_idx(idx, ctx.cursor) == NEVER {
            self.consumed[i] = true;
            return IssueOutcome::Skipped;
        }
        // Resolve the eviction: prefer the scheduled victim, fall back to
        // a free frame or the current furthest-future resident.
        let scheduled_evict = pair.evict.and_then(|e| ctx.oracle.index_of(e));
        let evict = match scheduled_evict {
            Some(e) if ctx.cache.resident(e) && Some(e) != ctx.cache.pinned() => Some(e),
            _ if ctx.cache.has_free_frame() => None,
            _ => match ctx.cache.furthest_resident(ctx.cursor, ctx.oracle) {
                Some((victim, _)) => Some(victim),
                // Every frame is in flight; keep the pair for later.
                None => return IssueOutcome::Blocked,
            },
        };
        self.consumed[i] = true;
        ctx.issue_fetch_idx(idx, evict);
        IssueOutcome::Issued
    }
}

impl Policy for ReverseAggressive {
    fn name(&self) -> &'static str {
        "reverse-aggressive"
    }

    fn decide(&mut self, ctx: &mut Ctx<'_>) {
        for d in 0..ctx.config.disks {
            if !ctx.array.is_free(DiskId(d)) {
                continue;
            }
            // A previous scan proved the probe window holds only
            // unreleased pairs; until the cursor reaches the earliest of
            // their releases (or a pair on this disk is consumed out of
            // band, widening the window) a rescan would do nothing.
            if !self.scan_dirty[d] && ctx.cursor < self.next_release[d] {
                continue;
            }
            let mut issued = 0;
            let mut mutated = false;
            let mut min_release = usize::MAX;
            // Scan this disk's pending pairs in key order, issuing the
            // released ones. Releases are near-sorted by construction, so
            // stop at the first pair released well in the future.
            self.requeue.clear();
            while issued < self.batch_size {
                let Some(i) = self.per_disk[d].pop_front() else {
                    break;
                };
                if self.consumed[i] {
                    mutated = true;
                    continue;
                }
                if self.schedule[i].release > ctx.cursor {
                    self.requeue.push(i);
                    min_release = min_release.min(self.schedule[i].release);
                    // Unreleased; deeper pairs release even later in the
                    // common case. Probe a bounded window then stop.
                    if self.requeue.len() > 2 * self.batch_size {
                        break;
                    }
                    continue;
                }
                match self.issue_pair(ctx, i) {
                    IssueOutcome::Issued => {
                        issued += 1;
                        mutated = true;
                    }
                    IssueOutcome::Skipped => mutated = true,
                    IssueOutcome::Blocked => {
                        self.requeue.push(i);
                        mutated = true;
                        break;
                    }
                }
            }
            // Put unreleased pairs back, preserving order.
            for j in (0..self.requeue.len()).rev() {
                let i = self.requeue[j];
                self.per_disk[d].push_front(i);
            }
            if !mutated {
                // Nothing issued, consumed, or blocked: the window is
                // stable until `min_release` or out-of-band consumption.
                self.scan_dirty[d] = false;
                self.next_release[d] = min_release;
            }
        }
    }

    fn on_miss(&mut self, ctx: &mut Ctx<'_>, block: BlockId) {
        // Consume the block's next scheduled pair, if any, then fetch.
        if let Some(&slot) = self.block_slot.get(&block) {
            let s = slot as usize;
            let end = self.by_block_off[s + 1];
            let mut head = self.by_block_head[s];
            while head < end {
                let i = self.by_block_idx[head as usize] as usize;
                head += 1;
                if !self.consumed[i] {
                    self.consumed[i] = true;
                    // Consuming a pair widens another scan's probe
                    // window, so that disk must rescan.
                    self.scan_dirty[self.pair_disk[i] as usize] = true;
                    break;
                }
            }
            self.by_block_head[s] = head;
        }
        demand_fetch(ctx, block);
    }
}

/// Runs the reverse pass and transforms it into the forward schedule.
fn build_schedule(
    trace: &Trace,
    layout: Layout,
    cache_blocks: usize,
    fetch_estimate: u64,
    batch_size: usize,
    hints: &crate::hints::HintSpec,
) -> Vec<Pair> {
    let n = trace.requests.len();
    if n == 0 {
        return Vec::new();
    }
    // The offline pass only knows the disclosed references: reverse the
    // sequence, keeping only hinted positions (reverse index j maps to
    // forward index n-1-j).
    let mask = hints.mask(n);
    let entries: Vec<(usize, BlockId)> = (0..n)
        .filter(|&j| mask[n - 1 - j])
        .map(|j| (j, trace.requests[n - 1 - j].block))
        .collect();
    let rev_oracle = Oracle::from_positions(n, entries, layout);
    let (events, final_cache) = reverse_pass(&rev_oracle, cache_blocks, fetch_estimate, batch_size);

    // Transform reverse events into forward fetches and evictions.
    let mut fetches: Vec<(usize, BlockId)> = Vec::new(); // (key, block)
    let mut evictions: Vec<(usize, BlockId)> = Vec::new(); // (release, block)
    for e in &events {
        // Reverse fetch of `fetched` serving reverse position `target`
        // -> forward eviction with release one past the corresponding
        // forward use.
        let release = n - e.target.min(n - 1);
        evictions.push((release, e.fetched));
        if let Some(ev) = e.evicted {
            // Reverse eviction -> forward fetch keyed by the evicted
            // block's most recent reverse use before the eviction point,
            // which is its next forward use after the fetch.
            if let Some(last_use) = rev_oracle.last_occurrence_before(ev, e.cursor) {
                fetches.push((n - 1 - last_use, ev));
            }
            // No prior reverse use: the fetch would serve no forward
            // reference — drop it (reverse prefetch waste).
        }
    }
    // Blocks resident at reverse end: cold-start forward fetches.
    for b in final_cache {
        let first = rev_oracle.next_occurrence(b, 0);
        if first != NEVER {
            // Last reverse occurrence = first forward occurrence.
            let last = rev_oracle
                .last_occurrence_before(b, rev_oracle.len())
                .expect("resident block was referenced");
            fetches.push((n - 1 - last, b));
        }
    }

    fetches.sort_unstable();
    evictions.sort_unstable();

    // Match fetches to evictions in order; the first `cache_blocks`
    // fetches fill cold frames. Surplus evictions are dropped.
    let mut pairs: Vec<Pair> = Vec::with_capacity(fetches.len());
    let mut ev_iter = evictions.into_iter();
    for (i, (key, block)) in fetches.into_iter().enumerate() {
        let (evict, release) = if i < cache_blocks {
            (None, 0)
        } else {
            match ev_iter.next() {
                Some((release, e)) => (Some(e), release),
                None => (None, 0),
            }
        };
        pairs.push(Pair {
            block,
            key,
            evict,
            release,
        });
    }
    pairs
}

/// Simulates batched aggressive over the reversed sequence in the uniform
/// fetch-time model. Returns the issue events and the final cache
/// contents.
fn reverse_pass(
    oracle: &Oracle,
    cache_blocks: usize,
    fetch_time: u64,
    batch_size: usize,
) -> (Vec<RevEvent>, Vec<BlockId>) {
    /// Sentinel in `completion_of` for "no pending fetch".
    const NO_COMPLETION: u64 = u64::MAX;

    let n = oracle.len();
    let disks = oracle.layout().disks();
    let mut cache = Cache::new(cache_blocks, oracle.num_blocks());
    let mut missing = MissingTracker::new(oracle);
    let mut events: Vec<RevEvent> = Vec::new();

    let mut time: u64 = 0;
    let mut cursor: usize = 0;
    let mut busy_until: Vec<u64> = vec![0; disks];
    // Pending completions: (time, block, index), min-heap. The block id
    // sits in the middle so ties order exactly as they did before the
    // compact index existed; the index rides along for the dense lookups.
    let mut completions: BinaryHeap<Reverse<(u64, BlockId, u32)>> = BinaryHeap::new();
    // Pending completion time per compact index.
    let mut completion_of: Vec<u64> = vec![NO_COMPLETION; oracle.num_blocks()];

    // Applies all completions due by `time`.
    let advance = |time: u64,
                   completions: &mut BinaryHeap<Reverse<(u64, BlockId, u32)>>,
                   completion_of: &mut Vec<u64>,
                   cache: &mut Cache,
                   cursor: usize| {
        while let Some(&Reverse((t, _, idx))) = completions.peek() {
            if t > time {
                break;
            }
            completions.pop();
            completion_of[idx as usize] = NO_COMPLETION;
            cache.complete_fetch(idx, cursor, oracle);
        }
    };

    // Per-disk working vectors for the batch-filling pass, hoisted out of
    // the per-reference loop.
    let mut budget: Vec<usize> = vec![0; disks];
    let mut from: Vec<usize> = vec![0; disks];

    // Fills batches on free disks, aggressive-style.
    #[allow(clippy::too_many_arguments)]
    fn decide(
        oracle: &Oracle,
        cache: &mut Cache,
        missing: &mut MissingTracker,
        events: &mut Vec<RevEvent>,
        busy_until: &mut [u64],
        completions: &mut BinaryHeap<Reverse<(u64, BlockId, u32)>>,
        completion_of: &mut [u64],
        budget: &mut [usize],
        from: &mut [usize],
        time: u64,
        cursor: usize,
        fetch_time: u64,
        batch_size: usize,
    ) {
        let disks = busy_until.len();
        for d in 0..disks {
            budget[d] = if busy_until[d] <= time { batch_size } else { 0 };
            from[d] = cursor;
        }
        loop {
            let mut best: Option<(usize, usize)> = None;
            for d in 0..disks {
                if budget[d] == 0 {
                    continue;
                }
                if let Some(p) = missing.first_missing_on_disk(d, from[d]) {
                    if best.is_none_or(|(bp, _)| p < bp) {
                        best = Some((p, d));
                    }
                }
            }
            let Some((pos, disk)) = best else { return };
            let idx = oracle
                .index_at(pos)
                .expect("missing-tracker positions are disclosed");
            let block = oracle.block_of(idx);
            let evict = if cache.has_free_frame() {
                None
            } else {
                match cache.furthest_resident(cursor, oracle) {
                    Some((victim, key)) if key > pos => Some(victim),
                    _ => return, // do no harm: stop entirely
                }
            };
            cache.start_fetch(idx, evict);
            missing.on_fetch_issued_idx(idx, cursor, oracle);
            if let Some(e) = evict {
                missing.on_evicted_idx(e, cursor, oracle);
            }
            let done = busy_until[disk].max(time) + fetch_time;
            busy_until[disk] = done;
            completions.push(Reverse((done, block, idx)));
            completion_of[idx as usize] = done;
            events.push(RevEvent {
                fetched: block,
                evicted: evict.map(|e| oracle.block_of(e)),
                cursor,
                target: pos,
            });
            budget[disk] -= 1;
            from[disk] = pos + 1;
        }
    }

    for i in 0..n {
        // Undisclosed references are invisible to the offline planner:
        // they cost their compute step but trigger nothing.
        let Some(bi) = oracle.index_at(i) else {
            cursor = i + 1;
            time += 1;
            continue;
        };
        advance(
            time,
            &mut completions,
            &mut completion_of,
            &mut cache,
            cursor,
        );
        decide(
            oracle,
            &mut cache,
            &mut missing,
            &mut events,
            &mut busy_until,
            &mut completions,
            &mut completion_of,
            &mut budget,
            &mut from,
            time,
            cursor,
            fetch_time,
            batch_size,
        );
        if !cache.resident(bi) {
            if !cache.inflight(bi) {
                let b = oracle.block_of(bi);
                // Demand fetch with the best possible eviction.
                let evict = if cache.has_free_frame() {
                    None
                } else {
                    cache
                        .furthest_resident(cursor, oracle)
                        .map(|(victim, _)| victim)
                };
                let disk = oracle.disk_of(b).index();
                cache.start_fetch(bi, evict);
                missing.on_fetch_issued_idx(bi, cursor, oracle);
                if let Some(e) = evict {
                    missing.on_evicted_idx(e, cursor, oracle);
                }
                let done = busy_until[disk].max(time) + fetch_time;
                busy_until[disk] = done;
                completions.push(Reverse((done, b, bi)));
                completion_of[bi as usize] = done;
                events.push(RevEvent {
                    fetched: b,
                    evicted: evict.map(|e| oracle.block_of(e)),
                    cursor,
                    target: i,
                });
            }
            let arrival = completion_of[bi as usize];
            assert_ne!(arrival, NO_COMPLETION, "stalled block has a pending fetch");
            time = time.max(arrival);
            advance(
                time,
                &mut completions,
                &mut completion_of,
                &mut cache,
                cursor,
            );
        }
        cache.on_reference(bi, i, oracle);
        cursor = i + 1;
        time += 1;
    }

    let final_cache: Vec<BlockId> = cache
        .resident_indices()
        .map(|i| oracle.block_of(i))
        .collect();
    (events, final_cache)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DiskModelKind;
    use crate::engine::{simulate, simulate_with};
    use crate::policy::PolicyKind;
    use parcache_trace::Request;
    use parcache_types::Nanos;

    fn trace_of(blocks: &[u64], cache: usize) -> Trace {
        Trace::new(
            "t",
            blocks
                .iter()
                .map(|&b| Request {
                    block: BlockId(b),
                    compute: Nanos::from_millis(1),
                })
                .collect(),
            cache,
        )
    }

    fn cfg(disks: usize, cache: usize, fetch_ms: u64) -> SimConfig {
        let mut c = SimConfig::new(disks, cache);
        c.disk_model = DiskModelKind::Uniform(Nanos::from_millis(fetch_ms));
        c.driver_overhead = Nanos::ZERO;
        c.reverse_fetch_estimate = fetch_ms;
        c.reverse_batch_size = 4;
        c
    }

    #[test]
    fn schedule_covers_every_distinct_block() {
        let blocks: Vec<u64> = (0..20).chain(0..20).collect();
        let t = trace_of(&blocks, 8);
        let c = cfg(2, 8, 3);
        let p = ReverseAggressive::new(&t, &c);
        let scheduled: std::collections::HashSet<BlockId> =
            p.schedule().iter().map(|q| q.block).collect();
        for b in 0..20u64 {
            assert!(scheduled.contains(&BlockId(b)), "block {b} unscheduled");
        }
    }

    #[test]
    fn schedule_keys_are_sorted() {
        let blocks: Vec<u64> = (0..30).chain((0..30).rev()).collect();
        let t = trace_of(&blocks, 10);
        let c = cfg(3, 10, 4);
        let p = ReverseAggressive::new(&t, &c);
        let keys: Vec<usize> = p.schedule().iter().map(|q| q.key).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn replay_serves_everything() {
        let blocks: Vec<u64> = (0..40).map(|i| (i * 7) % 15).collect();
        let t = trace_of(&blocks, 6);
        let c = cfg(2, 6, 5);
        let mut p = ReverseAggressive::new(&t, &c);
        let r = simulate_with(&t, &mut p, &c);
        assert_eq!(r.elapsed, r.compute + r.driver + r.stall);
        assert!(r.fetches >= 15, "fetches {}", r.fetches);
    }

    #[test]
    fn competitive_with_aggressive_on_balanced_load() {
        // On a balanced striped sequential load, reverse aggressive should
        // be in the same league as aggressive (paper: never much better,
        // rarely much worse).
        let blocks: Vec<u64> = (0..60).collect();
        let t = trace_of(&blocks, 16);
        let c = cfg(2, 16, 4);
        let agg = simulate(&t, PolicyKind::Aggressive, &c);
        let rev = simulate(&t, PolicyKind::ReverseAggressive, &c);
        let ratio = rev.elapsed.as_nanos() as f64 / agg.elapsed.as_nanos() as f64;
        assert!(
            ratio < 1.3,
            "reverse {} vs aggressive {}",
            rev.elapsed,
            agg.elapsed
        );
    }

    #[test]
    fn beats_demand_fetching() {
        let blocks: Vec<u64> = (0..50).collect();
        let t = trace_of(&blocks, 10);
        let c = cfg(2, 10, 6);
        let demand = simulate(&t, PolicyKind::Demand, &c);
        let rev = simulate(&t, PolicyKind::ReverseAggressive, &c);
        assert!(rev.elapsed < demand.elapsed);
    }

    #[test]
    fn last_occurrence_before_works() {
        let t = trace_of(&[1, 2, 1, 3, 1], 4);
        let o = Oracle::new(&t, Layout::striped(1));
        assert_eq!(o.last_occurrence_before(BlockId(1), 5), Some(4));
        assert_eq!(o.last_occurrence_before(BlockId(1), 4), Some(2));
        assert_eq!(o.last_occurrence_before(BlockId(1), 1), Some(0));
        assert_eq!(o.last_occurrence_before(BlockId(1), 0), None);
        assert_eq!(o.last_occurrence_before(BlockId(9), 5), None);
    }

    #[test]
    fn last_occurrence_before_matches_naive_scan() {
        // Property test: the binary-searched answer must equal a naive
        // backward scan over fuzzer-style randomized traces.
        let mut rng = parcache_types::rng::Rng::seed_from_u64(0x5eed_1996);
        for case in 0..200 {
            let len = rng.gen_range(1usize..=60);
            let universe = rng.gen_range(1u64..=20);
            let blocks: Vec<u64> = (0..len).map(|_| rng.gen_range(0u64..universe)).collect();
            let t = trace_of(&blocks, 4);
            let o = Oracle::new(&t, Layout::striped(rng.gen_range(1usize..=4)));
            for before in 0..=len {
                for b in 0..universe {
                    let naive = (0..before).rev().find(|&i| blocks[i] == b);
                    assert_eq!(
                        o.last_occurrence_before(BlockId(b), before),
                        naive,
                        "case {case}: block {b} before {before} in {blocks:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_trace_yields_empty_schedule() {
        let t = trace_of(&[], 4);
        let c = cfg(1, 4, 2);
        let p = ReverseAggressive::new(&t, &c);
        assert!(p.schedule().is_empty());
    }

    #[test]
    fn stall_is_charged_to_late_prefetches() {
        // Pinned stall provenance: reverse aggressive's forward replay
        // issues every block's fetch from its precomputed schedule, and
        // on an I/O-bound single-disk scan the app only ever catches up
        // to a fetch already on the platter. All stall is a prefetch
        // that was merely late — none of it a missing or evicted fetch.
        use crate::probe::StallCause;
        let blocks: Vec<u64> = (0..30).collect();
        let t = trace_of(&blocks, 8);
        let c = cfg(1, 8, 4);
        let mut p = ReverseAggressive::new(&t, &c);
        let r = simulate_with(&t, &mut p, &c);
        assert!(r.stall > Nanos::ZERO);
        assert_eq!(r.stall_by_cause.get(StallCause::LatePrefetch), r.stall);
        assert_eq!(r.stall_by_cause.total(), r.stall);
    }
}
