//! The forestall algorithm (§5) — the paper's new hybrid.
//!
//! Forestall behaves like fixed horizon when there is no danger of
//! stalling (late fetches, best replacements) and like aggressive when
//! stalls loom. For each disk it estimates F' — an overestimate of the
//! ratio of fetch time to inter-reference compute time — and predicts a
//! stall whenever the i-th missing block on the disk sits within `i * F'`
//! references of the cursor (`iF' > d_i`): the disk cannot fetch i blocks
//! in less time than the application takes to reach them. When a stall is
//! predicted on a free disk, forestall prefetches there in batches exactly
//! as aggressive does; independently, fixed horizon's rule issues any
//! fetch whose block is within H references.
//!
//! F is estimated per disk from the most recent 100 fetch times and the
//! most recent 100 compute times; the overestimate is F' = F for disks
//! averaging under 5 ms per access (sequential, readahead-served loads)
//! and F' = 4F otherwise, per §5's "practical considerations". A static
//! multiplier can be configured instead (appendix H).

use crate::algs::aggressive::{fill_free_disk_batches, BatchScratch};
use crate::algs::fixed_horizon::FixedHorizon;
use crate::engine::Ctx;
use crate::policy::Policy;
use parcache_types::{DiskId, Nanos};
use std::cmp::Ordering;

/// Disks averaging under this per-access time use the low F' multiplier.
const FAST_DISK_THRESHOLD: Nanos = Nanos::from_millis(5);

/// Lookahead for stall prediction: `2K` references (§5).
const LOOKAHEAD_CACHES: usize = 2;

/// Fallback F when a disk has no fetch history yet: a conservative
/// average response time, as used to derive the prefetch horizon (§2.6).
const DEFAULT_FETCH: Nanos = Nanos::from_millis(15);

/// The forestall policy.
#[derive(Debug)]
pub struct Forestall {
    batch_size: usize,
    horizon_rule: FixedHorizon,
    /// Static F' multiplier; `None` selects the dynamic 1x/4x rule.
    static_multiplier: Option<f64>,
    scratch: BatchScratch,
}

impl Forestall {
    /// Creates the policy from the run configuration.
    pub fn new(config: &crate::config::SimConfig) -> Forestall {
        Forestall {
            batch_size: config.batch_size,
            horizon_rule: FixedHorizon::new(config.horizon),
            static_multiplier: config.forestall_static_f,
            scratch: BatchScratch::default(),
        }
    }

    /// The overestimated fetch/compute ratio F' for `disk`.
    fn f_prime(&self, ctx: &Ctx<'_>, disk: usize) -> f64 {
        let avg_fetch = ctx.history.avg_fetch(disk).unwrap_or(DEFAULT_FETCH);
        let f = ctx.history.fetch_compute_ratio(disk).unwrap_or_else(|| {
            let c = ctx
                .history
                .avg_compute()
                .unwrap_or(Nanos::from_millis(1))
                .as_nanos()
                .max(1) as f64;
            avg_fetch.as_nanos() as f64 / c
        });
        let multiplier = self.static_multiplier.unwrap_or({
            if avg_fetch < FAST_DISK_THRESHOLD {
                1.0
            } else {
                4.0
            }
        });
        (f * multiplier).max(1.0)
    }

    /// True when, at the current cache state, the application will surely
    /// stall on some missing block of `disk`: exists i with `i * F' >= d_i`.
    fn stall_predicted(&self, ctx: &Ctx<'_>, disk: usize) -> bool {
        let f_prime = self.f_prime(ctx, disk);
        let cursor = ctx.cursor;
        let window = LOOKAHEAD_CACHES * ctx.cache.capacity();
        let window_end = cursor.saturating_add(window);
        // `window >= 2`: the cache holds at least one block.
        let far = (window - 1) as u64;
        // Early exit: a later j-th missing block at distance d_j has
        // j <= i + (d_j - d_i) (positions are distinct), so a trigger
        // there needs (i + d_j - d_i) * F' >= d_j. The slack in that
        // inequality is monotone in d_j for F' >= 1, so its value at the
        // window edge d_j = far decides the whole tail: once
        // (i + far - d_i) * F' < far, nothing ahead can trigger and the
        // scan's answer is already false. Both the trigger and the exit
        // compare a count times F' against a distance in exact integer
        // arithmetic (`scaled_cmp`), so distances beyond 2^53 or
        // platform FP differences can never flip a prefetch decision.
        let mut i = 0u64;
        for pos in ctx
            .missing
            .missing_on_disk_in_window(disk, cursor, window_end)
        {
            i += 1;
            let distance = (pos - cursor) as u64;
            if scaled_cmp(u128::from(i), f_prime, distance) != Ordering::Less {
                return true;
            }
            if scaled_cmp(u128::from(i) + u128::from(far - distance), f_prime, far)
                == Ordering::Less
            {
                return false;
            }
        }
        false
    }
}

/// Compares `a * f` with `b` exactly, for finite `f >= 1.0`.
///
/// `f` is decomposed into its IEEE-754 mantissa and exponent (`f = m *
/// 2^e` with `2^52 <= m < 2^53`, and `e >= -52` because `f >= 1`), so
/// the product `a * m` and the power-of-two rescaling are carried out
/// in `u128` with no rounding at any magnitude. Overflow can only mean
/// the left side dwarfs any `u64` right side (`b * 2^-e < 2^116`), so
/// it decides as `Greater`.
fn scaled_cmp(a: u128, f: f64, b: u64) -> Ordering {
    debug_assert!(f.is_finite() && f >= 1.0, "factor must be finite and >= 1");
    let bits = f.to_bits();
    let exp = ((bits >> 52) & 0x7FF) as i32 - 1075;
    let m = u128::from((bits & ((1u64 << 52) - 1)) | (1u64 << 52));
    let lhs = match a.checked_mul(m) {
        Some(l) => l,
        None => return Ordering::Greater,
    };
    if exp >= 0 {
        if lhs == 0 {
            return 0u128.cmp(&u128::from(b));
        }
        if exp as u32 > lhs.leading_zeros() {
            // lhs * 2^exp >= 2^128 > b.
            return Ordering::Greater;
        }
        (lhs << exp).cmp(&u128::from(b))
    } else {
        // -exp <= 52, so b * 2^-exp < 2^116 fits u128.
        lhs.cmp(&(u128::from(b) << (-exp) as u32))
    }
}

impl Policy for Forestall {
    fn name(&self) -> &'static str {
        "forestall"
    }

    fn decide(&mut self, ctx: &mut Ctx<'_>) {
        // Aggressive-style batches on every free disk that would stall.
        for d in 0..ctx.config.disks {
            if ctx.array.is_free(DiskId(d)) && self.stall_predicted(ctx, d) {
                fill_free_disk_batches(ctx, self.batch_size, Some(d), &mut self.scratch);
            }
        }
        // Fixed horizon's rule: never let a block inside H go unfetched
        // (guards against CSCAN reordering stalls, §5).
        self.horizon_rule.decide(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DiskModelKind, SimConfig};
    use crate::engine::simulate_with;
    use crate::policy::PolicyKind;
    use parcache_trace::{Request, Trace};
    use parcache_types::{BlockId, Nanos};

    fn trace_of(blocks: &[u64], compute_ms: u64, cache: usize) -> Trace {
        Trace::new(
            "t",
            blocks
                .iter()
                .map(|&b| Request {
                    block: BlockId(b),
                    compute: Nanos::from_millis(compute_ms),
                })
                .collect(),
            cache,
        )
    }

    fn cfg(disks: usize, cache: usize, fetch_ms: u64) -> SimConfig {
        let mut c = SimConfig::new(disks, cache);
        c.disk_model = DiskModelKind::Uniform(Nanos::from_millis(fetch_ms));
        c.driver_overhead = Nanos::ZERO;
        c.horizon = 4;
        c.batch_size = 4;
        c
    }

    #[test]
    fn io_bound_behaves_like_aggressive() {
        // Compute 1ms, fetch 8ms: heavily I/O bound. Forestall should
        // keep the disk busy like aggressive, not idle like fixed horizon.
        let blocks: Vec<u64> = (0..40).collect();
        let t = trace_of(&blocks, 1, 16);
        let c = cfg(1, 16, 8);
        let agg = crate::engine::simulate(&t, PolicyKind::Aggressive, &c);
        let mut p = Forestall::new(&c);
        let f = simulate_with(&t, &mut p, &c);
        // Within 5% of aggressive's elapsed time.
        let ratio = f.elapsed.as_nanos() as f64 / agg.elapsed.as_nanos() as f64;
        assert!(
            ratio < 1.05,
            "forestall {} vs aggressive {}",
            f.elapsed,
            agg.elapsed
        );
    }

    #[test]
    fn compute_bound_behaves_like_fixed_horizon() {
        // Compute 20ms, fetch 2ms: compute-bound with a hot re-reference
        // pattern. Forestall should not fetch more than fixed horizon.
        let mut blocks: Vec<u64> = Vec::new();
        for _ in 0..10 {
            blocks.extend(0..6u64);
        }
        let t = trace_of(&blocks, 20, 4);
        let c = cfg(1, 4, 2);
        let fh = crate::engine::simulate(&t, PolicyKind::FixedHorizon, &c);
        let mut p = Forestall::new(&c);
        let f = simulate_with(&t, &mut p, &c);
        assert!(
            f.fetches <= fh.fetches + 2,
            "forestall fetched {} vs fixed horizon {}",
            f.fetches,
            fh.fetches
        );
        assert!(f.elapsed <= fh.elapsed + Nanos::from_millis(2));
    }

    #[test]
    fn static_multiplier_is_respected() {
        let blocks: Vec<u64> = (0..20).collect();
        let t = trace_of(&blocks, 1, 8);
        let mut c = cfg(1, 8, 8);
        c.forestall_static_f = Some(8.0);
        let mut p = Forestall::new(&c);
        assert_eq!(p.static_multiplier, Some(8.0));
        let r = simulate_with(&t, &mut p, &c);
        assert_eq!(r.fetches, 20);
    }

    #[test]
    fn serves_all_references() {
        let blocks: Vec<u64> = (0..50).map(|i| i % 10).collect();
        let t = trace_of(&blocks, 2, 4);
        let c = cfg(2, 4, 5);
        let mut p = Forestall::new(&c);
        let r = simulate_with(&t, &mut p, &c);
        assert_eq!(r.elapsed, r.compute + r.driver + r.stall);
        assert!(r.fetches >= 10);
    }

    #[test]
    fn scaled_cmp_is_exact_where_f64_rounding_flips_the_decision() {
        // Boundary regression for the old `i as f64 * f_prime >=
        // distance as f64` trigger: 2^53 + 3 is not representable in
        // f64 and rounds *up* to 2^53 + 4 (ties-to-even), so the f64
        // comparison claims i * 1.0 >= d — a phantom stall prediction.
        let a = (1u128 << 53) + 3;
        let b = (1u64 << 53) + 4;
        assert!(
            (((1u64 << 53) + 3) as f64) >= (b as f64),
            "the f64 path really does flip at this boundary"
        );
        assert_eq!(scaled_cmp(a, 1.0, b), Ordering::Less);
        // And one ulp the other way: 2^53 + 5 rounds down to 2^53 + 4.
        assert!((((1u64 << 53) + 5) as f64) <= (b as f64 + 0.0));
        assert_eq!(scaled_cmp((1u128 << 53) + 5, 1.0, b), Ordering::Greater);
    }

    #[test]
    fn scaled_cmp_matches_exact_rational_arithmetic() {
        // Every factor here is dyadic (num / 2^k exactly representable
        // in f64), so cross-multiplication in u128 is the ground truth.
        let factors: &[(f64, u128, u128)] = &[
            (1.0, 1, 1),
            (1.25, 5, 4),
            (1.5, 3, 2),
            (2.0, 2, 1),
            (3.0, 3, 1),
            (4.5, 9, 2),
            (1.0 + f64::EPSILON, (1 << 52) + 1, 1 << 52),
        ];
        let values: &[u64] = &[
            0,
            1,
            2,
            3,
            7,
            62,
            1 << 30,
            (1 << 53) - 1,
            1 << 53,
            (1 << 53) + 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &(f, num, den) in factors {
            for &a in values {
                for &b in values {
                    let exact = (u128::from(a) * num).cmp(&(u128::from(b) * den));
                    assert_eq!(scaled_cmp(u128::from(a), f, b), exact, "{a} * {f} vs {b}");
                }
            }
        }
    }

    #[test]
    fn scaled_cmp_survives_extreme_magnitudes() {
        // Huge factors overflow the u128 product path and must decide
        // Greater (the true product dwarfs any u64), except when a = 0.
        assert_eq!(scaled_cmp(1, 1e300, u64::MAX), Ordering::Greater);
        assert_eq!(scaled_cmp(u128::MAX, 4.0, u64::MAX), Ordering::Greater);
        assert_eq!(scaled_cmp(0, 1e300, 5), Ordering::Less);
        assert_eq!(scaled_cmp(0, 1e300, 0), Ordering::Equal);
        assert_eq!(scaled_cmp(0, 1.0, 0), Ordering::Equal);
        // Large exponent against a large a: 2^64 * 2^64 overflows into
        // the checked_mul arm.
        assert_eq!(scaled_cmp(1u128 << 100, 2.0, u64::MAX), Ordering::Greater);
    }

    #[test]
    fn outage_stalls_are_charged_to_fault_retries() {
        // Pinned stall provenance: a hard outage covering the start of
        // the run rejects every early fetch, so the driver retries with
        // backoff while the app stalls on the first blocks. A stall that
        // sees a fault on its block (or begins with a retry pending)
        // charges to `retry`, taking precedence over the in-flight and
        // demand-miss causes.
        use crate::probe::StallCause;
        use parcache_disk::FaultPlan;
        let blocks: Vec<u64> = (0..20).collect();
        let t = trace_of(&blocks, 1, 8);
        let c =
            cfg(1, 8, 2).with_faults(FaultPlan::parse("outage:0:0:50").expect("valid fault plan"));
        let mut p = Forestall::new(&c);
        let r = simulate_with(&t, &mut p, &c);
        assert!(r.stall > Nanos::ZERO);
        assert!(r.stall_by_cause.get(StallCause::FaultRetry) > Nanos::ZERO);
        assert_eq!(r.stall_by_cause.total(), r.stall);
    }
}
