//! The forestall algorithm (§5) — the paper's new hybrid.
//!
//! Forestall behaves like fixed horizon when there is no danger of
//! stalling (late fetches, best replacements) and like aggressive when
//! stalls loom. For each disk it estimates F' — an overestimate of the
//! ratio of fetch time to inter-reference compute time — and predicts a
//! stall whenever the i-th missing block on the disk sits within `i * F'`
//! references of the cursor (`iF' > d_i`): the disk cannot fetch i blocks
//! in less time than the application takes to reach them. When a stall is
//! predicted on a free disk, forestall prefetches there in batches exactly
//! as aggressive does; independently, fixed horizon's rule issues any
//! fetch whose block is within H references.
//!
//! F is estimated per disk from the most recent 100 fetch times and the
//! most recent 100 compute times; the overestimate is F' = F for disks
//! averaging under 5 ms per access (sequential, readahead-served loads)
//! and F' = 4F otherwise, per §5's "practical considerations". A static
//! multiplier can be configured instead (appendix H).

use crate::algs::aggressive::{fill_free_disk_batches, BatchScratch};
use crate::algs::fixed_horizon::FixedHorizon;
use crate::engine::Ctx;
use crate::policy::Policy;
use parcache_types::{DiskId, Nanos};
use std::cmp::Ordering;

/// Disks averaging under this per-access time use the low F' multiplier.
const FAST_DISK_THRESHOLD: Nanos = Nanos::from_millis(5);

/// Lookahead for stall prediction: `2K` references (§5).
const LOOKAHEAD_CACHES: usize = 2;

/// Fallback F when a disk has no fetch history yet: a conservative
/// average response time, as used to derive the prefetch horizon (§2.6).
const DEFAULT_FETCH: Nanos = Nanos::from_millis(15);

/// Floor on the compute average in the cold-start F fallback. Without a
/// floor the fallback divides the 15 ms [`DEFAULT_FETCH`] by whatever
/// compute average happens to be in the window — microsecond computes
/// made a history-less disk report F' in the tens of thousands, and the
/// first decision issued a phantom prefetch storm across the whole
/// window. Flooring the divisor at the same 1 ms the absent-history
/// default uses caps the cold-start ratio at `avg_fetch / 1 ms` (15 for
/// a disk with no fetch history at all).
const COLD_COMPUTE_FLOOR: Nanos = Nanos::from_millis(1);

/// Dyadic headroom folded into the F' bound a cached FALSE verdict is
/// certified against (see [`scan_certified`]). F' moves a little on
/// every reference (the compute window slides), so certifying against
/// exactly today's F' would invalidate the verdict on the next call;
/// certifying against `F' * 17/16` keeps it valid through small upward
/// drift at the cost of slightly smaller cursor slack.
const F_CAP_MARGIN: f64 = 1.0625;

/// Relative safety margin for the conservative float bounds the
/// certificate is built from ([`floor_upper_bound`] and
/// [`quota_lower_bound`]). The certificate only needs *valid* bounds,
/// not tight ones — under-claiming slack merely causes a rescan — so the
/// hot path uses one f64 multiply or divide nudged by this margin instead
/// of an exact `u128` division (~10x cheaper on the scan path). The
/// margin dwarfs the few-ulp rounding error of the float computation
/// (`~4 * 2^-53 < 1e-15`) while costing only a part in 10^12 of slack.
const FLOAT_SLOP: f64 = 1e-12;

/// A cached stall-prediction verdict for one disk, carrying the
/// certificate that re-validates it in O(1) against everything that can
/// move between decisions: the cursor, F', and the disk's missing set.
///
/// The two variants are invalidated by *opposite* halves of the missing
/// set's churn, which is what makes the cache survive the steady state:
///
/// * A TRUE verdict is insensitive to insertions — more missing blocks
///   only strengthen a stall (the trigger entry's rank can only grow,
///   and `rank * F' >= d` holds a fortiori). It is keyed on the disk's
///   *removal* epoch alone.
/// * A FALSE verdict is insensitive to removals — for any subset of the
///   scanned entries every rank can only shrink, so `rank * F' < d`
///   keeps holding, and both tail arguments (the position-count bound
///   and the first-entry-past-the-window bound) are monotone the right
///   way. It is keyed on the disk's *insertion* epoch, and even then an
///   insertion at or beyond `guard` (past every window the certificate
///   covers) is provably harmless — the tracker's recent-insert ring
///   lets the verdict survive those too.
#[derive(Debug, Clone, Copy)]
enum Verdict {
    /// The scan found a trigger: the `index`-th missing entry in the
    /// window sits at position `pos`. With no removals since, no entry
    /// at or below `pos` was consumed, so `pos >= cursor`, the entry's
    /// rank is at least `index`, and the exact trigger test re-runs in
    /// O(1) against the current cursor and F'.
    True { index: u64, pos: usize },
    /// The scan proved no trigger exists at cursor `cursor`, and the
    /// proof survives a cursor advance of `delta_scan` for any
    /// `F' <= f_scan` (the F' the scan ran under), or `delta_cap` for
    /// any `F' <= f_cap` (a slightly larger cap absorbing upward F'
    /// drift; `f_cap == f_scan` when the capped bounds degenerated).
    /// Insertions at or beyond `guard` cannot reach any covered window
    /// and leave the certificate intact.
    False {
        cursor: usize,
        f_scan: f64,
        delta_scan: u64,
        f_cap: f64,
        delta_cap: u64,
        guard: usize,
    },
}

/// A [`Verdict`] tied to the missing-set epoch it was derived from:
/// the disk's removal epoch for TRUE, insertion epoch for FALSE (see
/// [`Verdict`] for why each direction is the harmless one).
#[derive(Debug, Clone, Copy)]
struct CachedPrediction {
    epoch: u64,
    verdict: Verdict,
}

/// The forestall policy.
#[derive(Debug)]
pub struct Forestall {
    batch_size: usize,
    horizon_rule: FixedHorizon,
    /// Static F' multiplier; `None` selects the dynamic 1x/4x rule.
    static_multiplier: Option<f64>,
    scratch: BatchScratch,
    /// Per-disk cached stall verdicts (the incremental predictor).
    preds: Vec<Option<CachedPrediction>>,
    /// Force the naive full-rescan predictor (differential fuzzing).
    naive: bool,
}

impl Forestall {
    /// Creates the policy from the run configuration.
    pub fn new(config: &crate::config::SimConfig) -> Forestall {
        Forestall {
            batch_size: config.batch_size,
            horizon_rule: FixedHorizon::new(config.horizon),
            static_multiplier: config.forestall_static_f,
            scratch: BatchScratch::default(),
            preds: vec![None; config.disks],
            naive: config.forestall_naive_scan,
        }
    }

    /// The overestimated fetch/compute ratio F' for `disk`.
    fn f_prime(&self, ctx: &Ctx<'_>, disk: usize) -> f64 {
        let avg_fetch = ctx.history.avg_fetch(disk).unwrap_or(DEFAULT_FETCH);
        let f = ctx
            .history
            .fetch_compute_ratio(disk)
            .unwrap_or_else(|| cold_start_ratio(avg_fetch, ctx.history.avg_compute()));
        let multiplier = self.static_multiplier.unwrap_or({
            if avg_fetch < FAST_DISK_THRESHOLD {
                1.0
            } else {
                4.0
            }
        });
        (f * multiplier).max(1.0)
    }

    /// True when, at the current cache state, the application will surely
    /// stall on some missing block of `disk`: exists i with `i * F' >= d_i`.
    ///
    /// Incremental: the verdict of the last full scan is cached per disk
    /// with a certificate ([`Verdict`]) and an epoch of the disk's
    /// missing set. A call first tries to re-validate the cached verdict
    /// in O(1); only when the certificate no longer covers the current
    /// (cursor, F') — or the missing set mutated — does the full
    /// [`scan_certified`] rescan run. Byte-identity with the naive scan
    /// holds by construction (each certificate implies the naive scan's
    /// answer exactly) and is re-checked here by a `debug_assert!`
    /// oracle on every cache-served verdict.
    fn stall_predicted(&mut self, ctx: &Ctx<'_>, disk: usize) -> bool {
        let f_prime = self.f_prime(ctx, disk);
        if self.naive {
            return naive_scan(ctx, disk, f_prime);
        }
        let cursor = ctx.cursor;
        if let Some(p) = self.preds[disk].as_mut() {
            match p.verdict {
                Verdict::True { index, pos } => {
                    if ctx.missing.rem_epoch(disk) == p.epoch {
                        // No removal means the entry was not consumed
                        // (the cursor reaching it would have fetched it),
                        // so `pos >= cursor`, and insertions since can
                        // only have grown its rank past `index`.
                        debug_assert!(pos >= cursor, "missing entry behind the cursor");
                        if scaled_cmp(u128::from(index), f_prime, (pos - cursor) as u64)
                            != Ordering::Less
                        {
                            debug_assert!(naive_scan(ctx, disk, f_prime));
                            return true;
                        }
                    }
                }
                Verdict::False {
                    cursor: c0,
                    f_scan,
                    delta_scan,
                    f_cap,
                    delta_cap,
                    guard,
                } => {
                    debug_assert!(cursor >= c0, "cursor moved backwards");
                    let delta = (cursor - c0) as u64;
                    let covered = if f_prime <= f_scan {
                        delta <= delta_scan
                    } else if f_prime <= f_cap {
                        delta <= delta_cap
                    } else {
                        false
                    };
                    if covered {
                        let ins_now = ctx.missing.ins_epoch(disk);
                        if ins_now == p.epoch
                            || ctx.missing.inserts_all_at_or_beyond(disk, p.epoch, guard)
                                == Some(true)
                        {
                            // Every insertion since the scan landed past
                            // all covered windows; re-arm the epoch so
                            // the ring only ever needs to cover the
                            // insertions since the *previous* call.
                            p.epoch = ins_now;
                            debug_assert!(!naive_scan(ctx, disk, f_prime));
                            return false;
                        }
                    }
                }
            }
        }
        let rem_epoch = ctx.missing.rem_epoch(disk);
        let ins_epoch = ctx.missing.ins_epoch(disk);
        let (predicted, verdict) = scan_certified(ctx, disk, f_prime);
        let epoch = match verdict {
            Verdict::True { .. } => rem_epoch,
            Verdict::False { .. } => ins_epoch,
        };
        self.preds[disk] = Some(CachedPrediction { epoch, verdict });
        predicted
    }
}

/// The cold-start F fallback: `avg_fetch` over the floored compute
/// average (see [`COLD_COMPUTE_FLOOR`]).
fn cold_start_ratio(avg_fetch: Nanos, avg_compute: Option<Nanos>) -> f64 {
    let c = avg_compute.map_or(COLD_COMPUTE_FLOOR, |c| c.max(COLD_COMPUTE_FLOOR));
    avg_fetch.as_nanos() as f64 / c.as_nanos() as f64
}

/// The naive stall predictor: a full rescan of the window, exactly the
/// pre-incremental implementation. Kept as the differential oracle — the
/// `debug_assert!`s in [`Forestall::stall_predicted`] check every
/// cache-served verdict against it, and the fuzzer's differential mode
/// runs whole simulations on it via `SimConfig::forestall_naive_scan`.
fn naive_scan(ctx: &Ctx<'_>, disk: usize, f_prime: f64) -> bool {
    let cursor = ctx.cursor;
    let window = LOOKAHEAD_CACHES * ctx.cache.capacity();
    let window_end = cursor.saturating_add(window);
    // `window >= 2`: the cache holds at least one block.
    let far = (window - 1) as u64;
    // Early exit: a later j-th missing block at distance d_j has
    // j <= i + (d_j - d_i) (positions are distinct), so a trigger
    // there needs (i + d_j - d_i) * F' >= d_j. The slack in that
    // inequality is monotone in d_j for F' >= 1, so its value at the
    // window edge d_j = far decides the whole tail: once
    // (i + far - d_i) * F' < far, nothing ahead can trigger and the
    // scan's answer is already false. Both the trigger and the exit
    // compare a count times F' against a distance in exact integer
    // arithmetic (`scaled_cmp`), so distances beyond 2^53 or
    // platform FP differences can never flip a prefetch decision.
    let mut i = 0u64;
    for pos in ctx
        .missing
        .missing_on_disk_in_window(disk, cursor, window_end)
    {
        i += 1;
        let distance = (pos - cursor) as u64;
        if scaled_cmp(u128::from(i), f_prime, distance) != Ordering::Less {
            return true;
        }
        if scaled_cmp(u128::from(i) + u128::from(far - distance), f_prime, far) == Ordering::Less {
            return false;
        }
    }
    false
}

/// The full scan, additionally deriving the [`Verdict`] certificate the
/// incremental cache stores. The returned bool is byte-identical to
/// [`naive_scan`]: the trigger tests are the same `scaled_cmp` calls on
/// the same entries in the same order, and the one place the control
/// flow differs — naive's early exit — is itself a proof that no later
/// entry can trigger, so scanning past it can never flip the verdict.
/// Scanning the whole window is deliberate: anchoring the tail bound at
/// the *last* real entry instead of the early-exit entry is what gives
/// the FALSE certificate a useful advance slack (the early-exit anchor
/// assumes a densely packed tail and its slack degenerates to ~0).
///
/// Certificate soundness, with the disk's missing set fixed (enforced by
/// the epoch) and `delta` the cursor advance since the scan:
///
/// * Positions only leave the window by being consumed, which mutates
///   the set — so the scanned entries keep both their positions and
///   their 1-based indexes, and new entries appear only past the old
///   window's far edge.
/// * *Prefix*: for a scanned entry `i` at distance `d_i`, the no-trigger
///   condition at the advanced cursor is `i * F' < d_i - delta`. Since
///   `floor(x) <= N - 1  <=>  x < N` for integer `N`, this holds for
///   every `F' <= f_bound` exactly while
///   `delta <= d_i - 1 - floor(i * f_bound)` ([`floor_upper_bound`] is
///   conservative).
/// * *Tail*: entries past the scanned prefix all sit at or beyond `p*`,
///   the first missing position at or past the old window edge. One at
///   advanced-window distance `d` has rank `j <= (R + 1) + (d + delta -
///   (p* - cursor))` with `R` the scanned count (positions are
///   distinct), and the no-trigger slack of that claim is worst at the
///   edge `d = far`, so the whole tail is trigger-free for every
///   `F' <= f_bound` while `delta <= t - a*`, with `t` the largest
///   integer with `t * f_bound < far` ([`quota_lower_bound`] is
///   conservative) and `a* = (R + 1) - ((p* - cursor) - far)` (clamped
///   at zero — a negative anchor only adds slack). Independently, no
///   tail entry even enters the window while `delta <= p* - window_end`;
///   both arguments are valid, so the tail slack is their max. With no
///   `p*` the tail is empty and the certificate is cursor-unbounded.
///
/// When any bound degenerates (the capped F' already violates a prefix
/// slack, or `f_cap` overflows), the stored FALSE verdict falls back to
/// `(f_cap = F', delta_max = 0)`, which is sound from monotonicity
/// alone: the predicate is monotone non-decreasing in F', so the scan's
/// FALSE at F' covers any smaller F' at the same cursor.
fn scan_certified(ctx: &Ctx<'_>, disk: usize, f_prime: f64) -> (bool, Verdict) {
    let cursor = ctx.cursor;
    let window = LOOKAHEAD_CACHES * ctx.cache.capacity();
    let window_end = cursor.saturating_add(window);
    let far = (window - 1) as u64;
    let f_cap = f_prime * F_CAP_MARGIN;
    let mut cap_dead = !f_cap.is_finite();
    // Running minima of the per-entry advance slacks, under the scan's
    // own F' and under the drift cap.
    let mut d_scan = u64::MAX;
    let mut d_cap = u64::MAX;
    let mut rank = 0u64;
    // First missing position at or past the window edge: the tail anchor.
    let mut p_star = None;
    for pos in ctx.missing.missing_on_disk_from(disk, cursor) {
        if pos >= window_end {
            p_star = Some(pos);
            break;
        }
        rank += 1;
        let distance = (pos - cursor) as u64;
        // The paper's trigger, byte-identical to [`naive_scan`]'s.
        if scaled_cmp(u128::from(rank), f_prime, distance) != Ordering::Less {
            debug_assert!(naive_scan(ctx, disk, f_prime));
            return (true, Verdict::True { index: rank, pos });
        }
        // This entry's advance slack: `rank * f < distance - delta`
        // holds while `delta <= distance - 1 - floor(rank * f)`,
        // saturating at zero rather than wrapping.
        let lhs = u128::from(distance - 1);
        let s = lhs.saturating_sub(floor_upper_bound(u128::from(rank), f_prime));
        d_scan = d_scan.min(u64::try_from(s).unwrap_or(u64::MAX));
        if !cap_dead {
            let fl = floor_upper_bound(u128::from(rank), f_cap);
            if fl > lhs {
                cap_dead = true;
            } else {
                d_cap = d_cap.min(u64::try_from(lhs - fl).unwrap_or(u64::MAX));
            }
        }
    }
    if let Some(p) = p_star {
        // Tail slack, the max of the two independent arguments in the
        // doc comment: the count bound anchored at `p*`, and the gap
        // until anything enters the window at all.
        let enter = (p - window_end) as u64;
        let a = (rank + 1).saturating_sub((p - cursor) as u64 - far);
        d_scan = d_scan.min(quota_lower_bound(f_prime, far).saturating_sub(a).max(enter));
        if !cap_dead {
            d_cap = d_cap.min(quota_lower_bound(f_cap, far).saturating_sub(a).max(enter));
        }
    }
    debug_assert!(!naive_scan(ctx, disk, f_prime));
    (
        false,
        finish(cursor, window, f_prime, d_scan, f_cap, d_cap, cap_dead),
    )
}

/// Assembles the FALSE verdict from the folded advance slacks: the
/// degenerate cap collapses onto the scan bound, and the guard marks the
/// first position no covered window can reach
/// (`cursor + window + delta_scan`).
fn finish(
    cursor: usize,
    window: usize,
    f_scan: f64,
    delta_scan: u64,
    f_cap: f64,
    delta_cap: u64,
    cap_dead: bool,
) -> Verdict {
    let (f_cap, delta_cap) = if cap_dead {
        (f_scan, delta_scan)
    } else {
        (f_cap, delta_cap)
    };
    let guard = cursor
        .saturating_add(window)
        .saturating_add(usize::try_from(delta_scan).unwrap_or(usize::MAX));
    Verdict::False {
        cursor,
        f_scan,
        delta_scan,
        f_cap,
        delta_cap,
        guard,
    }
}

/// An upper bound on `floor(a * f)` from one float multiply nudged up by
/// [`FLOAT_SLOP`] (saturating at `u128::MAX`), checked against the exact
/// [`scaled_floor`] in debug builds. Used only for certificate slack,
/// where over-estimating the floor merely shrinks the covered advance.
#[inline]
fn floor_upper_bound(a: u128, f: f64) -> u128 {
    let ub = (a as f64) * f * (1.0 + FLOAT_SLOP);
    let ub = ub as u128;
    debug_assert!(scaled_floor(a, f).is_none_or(|fl| ub >= fl));
    ub
}

/// A lower bound on the largest `t` with `t * f < b`, from one float
/// divide nudged down by [`FLOAT_SLOP`], checked against the exact
/// [`scaled_quota`] in debug builds. Under-estimating the quota only
/// shrinks the certificate's covered advance.
#[inline]
fn quota_lower_bound(f: f64, b: u64) -> u64 {
    let lb = (b as f64) / f * (1.0 - FLOAT_SLOP);
    let lb = lb as u64;
    debug_assert!(lb <= scaled_quota(f, b));
    lb
}

/// Compares `a * f` with `b` exactly, for finite `f >= 1.0`.
///
/// `f` is decomposed into its IEEE-754 mantissa and exponent (`f = m *
/// 2^e` with `2^52 <= m < 2^53`, and `e >= -52` because `f >= 1`), so
/// the product `a * m` and the power-of-two rescaling are carried out
/// in `u128` with no rounding at any magnitude. Overflow can only mean
/// the left side dwarfs any `u64` right side (`b * 2^-e < 2^116`), so
/// it decides as `Greater`.
fn scaled_cmp(a: u128, f: f64, b: u64) -> Ordering {
    debug_assert!(f.is_finite() && f >= 1.0, "factor must be finite and >= 1");
    let bits = f.to_bits();
    let exp = ((bits >> 52) & 0x7FF) as i32 - 1075;
    let m = u128::from((bits & ((1u64 << 52) - 1)) | (1u64 << 52));
    let lhs = match a.checked_mul(m) {
        Some(l) => l,
        None => return Ordering::Greater,
    };
    if exp >= 0 {
        if lhs == 0 {
            return 0u128.cmp(&u128::from(b));
        }
        if exp as u32 > lhs.leading_zeros() {
            // lhs * 2^exp >= 2^128 > b.
            return Ordering::Greater;
        }
        (lhs << exp).cmp(&u128::from(b))
    } else {
        // -exp <= 52, so b * 2^-exp < 2^116 fits u128.
        lhs.cmp(&(u128::from(b) << (-exp) as u32))
    }
}

/// Exact `floor(a * f)` for finite `f >= 1.0`, or `None` when the
/// product exceeds `u128` (the true product then dwarfs any window
/// distance, so callers treat it as an unusable bound).
///
/// Same IEEE-754 decomposition as [`scaled_cmp`]: `f = m * 2^e` with
/// `2^52 <= m < 2^53`, so `a * f = (a * m) * 2^e` and the floor is a
/// single shift of the exact `u128` product.
fn scaled_floor(a: u128, f: f64) -> Option<u128> {
    debug_assert!(f.is_finite() && f >= 1.0, "factor must be finite and >= 1");
    let bits = f.to_bits();
    let exp = ((bits >> 52) & 0x7FF) as i32 - 1075;
    let m = u128::from((bits & ((1u64 << 52) - 1)) | (1u64 << 52));
    let prod = a.checked_mul(m)?;
    if exp >= 0 {
        if prod == 0 {
            return Some(0);
        }
        if exp as u32 > prod.leading_zeros() {
            return None;
        }
        Some(prod << exp)
    } else {
        // -exp <= 52 because f >= 1.
        Some(prod >> (-exp) as u32)
    }
}

/// The largest integer `t` with `t * f < b`, exactly, for finite
/// `f >= 1.0` and `b >= 1` (so `t` exists and `t <= b - 1` fits `u64`).
///
/// With `f = m * 2^e` as in [`scaled_cmp`]: for `e < 0` the condition is
/// `t * m < b * 2^-e`, giving `t = (b * 2^-e - 1) / m`; for `e >= 0` it
/// is `t * (m * 2^e) < b`, giving `t = (b - 1) / (m * 2^e)` (zero when
/// the shifted mantissa already exceeds `b`). All intermediates fit
/// `u128` (`b * 2^-e < 2^116`, `m * 2^e` only needed while `e < 64`).
fn scaled_quota(f: f64, b: u64) -> u64 {
    debug_assert!(f.is_finite() && f >= 1.0, "factor must be finite and >= 1");
    debug_assert!(b >= 1, "bound must be positive");
    let bits = f.to_bits();
    let exp = ((bits >> 52) & 0x7FF) as i32 - 1075;
    let m = u128::from((bits & ((1u64 << 52) - 1)) | (1u64 << 52));
    if exp >= 0 {
        if exp >= 64 {
            return 0;
        }
        (u128::from(b - 1) / (m << exp)) as u64
    } else {
        let scaled = u128::from(b) << (-exp) as u32;
        ((scaled - 1) / m) as u64
    }
}

impl Policy for Forestall {
    fn name(&self) -> &'static str {
        "forestall"
    }

    fn decide(&mut self, ctx: &mut Ctx<'_>) {
        // Aggressive-style batches on every free disk that would stall.
        for d in 0..ctx.config.disks {
            if ctx.array.is_free(DiskId(d)) && self.stall_predicted(ctx, d) {
                fill_free_disk_batches(ctx, self.batch_size, Some(d), &mut self.scratch);
            }
        }
        // Fixed horizon's rule: never let a block inside H go unfetched
        // (guards against CSCAN reordering stalls, §5).
        self.horizon_rule.decide(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DiskModelKind, SimConfig};
    use crate::engine::simulate_with;
    use crate::policy::PolicyKind;
    use parcache_trace::{Request, Trace};
    use parcache_types::{BlockId, Nanos};

    fn trace_of(blocks: &[u64], compute_ms: u64, cache: usize) -> Trace {
        Trace::new(
            "t",
            blocks
                .iter()
                .map(|&b| Request {
                    block: BlockId(b),
                    compute: Nanos::from_millis(compute_ms),
                })
                .collect(),
            cache,
        )
    }

    fn cfg(disks: usize, cache: usize, fetch_ms: u64) -> SimConfig {
        let mut c = SimConfig::new(disks, cache);
        c.disk_model = DiskModelKind::Uniform(Nanos::from_millis(fetch_ms));
        c.driver_overhead = Nanos::ZERO;
        c.horizon = 4;
        c.batch_size = 4;
        c
    }

    #[test]
    fn io_bound_behaves_like_aggressive() {
        // Compute 1ms, fetch 8ms: heavily I/O bound. Forestall should
        // keep the disk busy like aggressive, not idle like fixed horizon.
        let blocks: Vec<u64> = (0..40).collect();
        let t = trace_of(&blocks, 1, 16);
        let c = cfg(1, 16, 8);
        let agg = crate::engine::simulate(&t, PolicyKind::Aggressive, &c);
        let mut p = Forestall::new(&c);
        let f = simulate_with(&t, &mut p, &c);
        // Within 5% of aggressive's elapsed time.
        let ratio = f.elapsed.as_nanos() as f64 / agg.elapsed.as_nanos() as f64;
        assert!(
            ratio < 1.05,
            "forestall {} vs aggressive {}",
            f.elapsed,
            agg.elapsed
        );
    }

    #[test]
    fn compute_bound_behaves_like_fixed_horizon() {
        // Compute 20ms, fetch 2ms: compute-bound with a hot re-reference
        // pattern. Forestall should not fetch more than fixed horizon.
        let mut blocks: Vec<u64> = Vec::new();
        for _ in 0..10 {
            blocks.extend(0..6u64);
        }
        let t = trace_of(&blocks, 20, 4);
        let c = cfg(1, 4, 2);
        let fh = crate::engine::simulate(&t, PolicyKind::FixedHorizon, &c);
        let mut p = Forestall::new(&c);
        let f = simulate_with(&t, &mut p, &c);
        assert!(
            f.fetches <= fh.fetches + 2,
            "forestall fetched {} vs fixed horizon {}",
            f.fetches,
            fh.fetches
        );
        assert!(f.elapsed <= fh.elapsed + Nanos::from_millis(2));
    }

    #[test]
    fn static_multiplier_is_respected() {
        let blocks: Vec<u64> = (0..20).collect();
        let t = trace_of(&blocks, 1, 8);
        let mut c = cfg(1, 8, 8);
        c.forestall_static_f = Some(8.0);
        let mut p = Forestall::new(&c);
        assert_eq!(p.static_multiplier, Some(8.0));
        let r = simulate_with(&t, &mut p, &c);
        assert_eq!(r.fetches, 20);
    }

    #[test]
    fn serves_all_references() {
        let blocks: Vec<u64> = (0..50).map(|i| i % 10).collect();
        let t = trace_of(&blocks, 2, 4);
        let c = cfg(2, 4, 5);
        let mut p = Forestall::new(&c);
        let r = simulate_with(&t, &mut p, &c);
        assert_eq!(r.elapsed, r.compute + r.driver + r.stall);
        assert!(r.fetches >= 10);
    }

    #[test]
    fn scaled_cmp_is_exact_where_f64_rounding_flips_the_decision() {
        // Boundary regression for the old `i as f64 * f_prime >=
        // distance as f64` trigger: 2^53 + 3 is not representable in
        // f64 and rounds *up* to 2^53 + 4 (ties-to-even), so the f64
        // comparison claims i * 1.0 >= d — a phantom stall prediction.
        let a = (1u128 << 53) + 3;
        let b = (1u64 << 53) + 4;
        assert!(
            (((1u64 << 53) + 3) as f64) >= (b as f64),
            "the f64 path really does flip at this boundary"
        );
        assert_eq!(scaled_cmp(a, 1.0, b), Ordering::Less);
        // And one ulp the other way: 2^53 + 5 rounds down to 2^53 + 4.
        assert!((((1u64 << 53) + 5) as f64) <= (b as f64 + 0.0));
        assert_eq!(scaled_cmp((1u128 << 53) + 5, 1.0, b), Ordering::Greater);
    }

    #[test]
    fn scaled_cmp_matches_exact_rational_arithmetic() {
        // Every factor here is dyadic (num / 2^k exactly representable
        // in f64), so cross-multiplication in u128 is the ground truth.
        let factors: &[(f64, u128, u128)] = &[
            (1.0, 1, 1),
            (1.25, 5, 4),
            (1.5, 3, 2),
            (2.0, 2, 1),
            (3.0, 3, 1),
            (4.5, 9, 2),
            (1.0 + f64::EPSILON, (1 << 52) + 1, 1 << 52),
        ];
        let values: &[u64] = &[
            0,
            1,
            2,
            3,
            7,
            62,
            1 << 30,
            (1 << 53) - 1,
            1 << 53,
            (1 << 53) + 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &(f, num, den) in factors {
            for &a in values {
                for &b in values {
                    let exact = (u128::from(a) * num).cmp(&(u128::from(b) * den));
                    assert_eq!(scaled_cmp(u128::from(a), f, b), exact, "{a} * {f} vs {b}");
                }
            }
        }
    }

    #[test]
    fn scaled_cmp_survives_extreme_magnitudes() {
        // Huge factors overflow the u128 product path and must decide
        // Greater (the true product dwarfs any u64), except when a = 0.
        assert_eq!(scaled_cmp(1, 1e300, u64::MAX), Ordering::Greater);
        assert_eq!(scaled_cmp(u128::MAX, 4.0, u64::MAX), Ordering::Greater);
        assert_eq!(scaled_cmp(0, 1e300, 5), Ordering::Less);
        assert_eq!(scaled_cmp(0, 1e300, 0), Ordering::Equal);
        assert_eq!(scaled_cmp(0, 1.0, 0), Ordering::Equal);
        // Large exponent against a large a: 2^64 * 2^64 overflows into
        // the checked_mul arm.
        assert_eq!(scaled_cmp(1u128 << 100, 2.0, u64::MAX), Ordering::Greater);
    }

    #[test]
    fn scaled_floor_and_quota_match_exact_rational_arithmetic() {
        // Dyadic factors (num / 2^k) are exactly representable in f64,
        // so plain u128 rational arithmetic is the ground truth.
        let factors: &[(f64, u128, u128)] = &[
            (1.0, 1, 1),
            (1.0625, 17, 16),
            (1.25, 5, 4),
            (1.5, 3, 2),
            (2.0, 2, 1),
            (3.0, 3, 1),
            (4.5, 9, 2),
            (1.0 + f64::EPSILON, (1 << 52) + 1, 1 << 52),
        ];
        let values: &[u64] = &[
            1,
            2,
            3,
            7,
            62,
            1 << 30,
            (1 << 53) - 1,
            1 << 53,
            (1 << 53) + 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &(f, num, den) in factors {
            for &a in values {
                let exact = u128::from(a) * num / den;
                assert_eq!(scaled_floor(u128::from(a), f), Some(exact), "floor {a}*{f}");
            }
            assert_eq!(scaled_floor(0, f), Some(0));
            for &b in values {
                // Largest t with t * num / den < b, i.e. t * num < b * den.
                let exact = ((u128::from(b) * den - 1) / num) as u64;
                assert_eq!(scaled_quota(f, b), exact, "quota {f} under {b}");
            }
        }
        // Overflowing products report None rather than a wrapped floor.
        assert_eq!(scaled_floor(u128::MAX, 2.0), None);
        assert_eq!(scaled_floor(1u128 << 120, 1e30), None);
        // Huge factors can never fit even once below the bound.
        assert_eq!(scaled_quota(1e300, u64::MAX), 0);
    }

    #[test]
    fn quota_and_floor_agree_with_scaled_cmp_at_the_boundary() {
        // scaled_quota's defining property, checked against the
        // independent scaled_cmp implementation: t * f < b <= (t+1) * f.
        let factors = [1.0, 1.0625, 1.17, 3.5, 15.0, 60.0, 1234.567];
        let bounds = [1u64, 2, 31, 2559, 1 << 33, u64::MAX];
        for f in factors {
            for b in bounds {
                let t = scaled_quota(f, b);
                assert_eq!(scaled_cmp(u128::from(t), f, b), Ordering::Less, "{f} {b}");
                assert_ne!(
                    scaled_cmp(u128::from(t) + 1, f, b),
                    Ordering::Less,
                    "{f} {b}"
                );
                // And floor is consistent: floor(t * f) < b.
                let fl = scaled_floor(u128::from(t), f).expect("small product");
                assert!(fl < u128::from(b));
            }
        }
    }

    #[test]
    fn cold_start_ratio_is_clamped() {
        // A microsecond compute average must not blow the cold-start F
        // up to 15000x: the divisor floors at 1 ms, capping the
        // history-less ratio at DEFAULT_FETCH / 1 ms = 15.
        assert_eq!(
            cold_start_ratio(DEFAULT_FETCH, Some(Nanos::from_micros(1))),
            15.0
        );
        assert_eq!(cold_start_ratio(DEFAULT_FETCH, None), 15.0);
        assert_eq!(
            cold_start_ratio(DEFAULT_FETCH, Some(Nanos::from_millis(1))),
            15.0
        );
        // Above the floor the observed average is used as-is.
        assert_eq!(
            cold_start_ratio(DEFAULT_FETCH, Some(Nanos::from_millis(2))),
            7.5
        );
        assert_eq!(
            cold_start_ratio(DEFAULT_FETCH, Some(Nanos::from_millis(30))),
            0.5
        );
    }

    #[test]
    fn cold_start_does_not_storm_prefetch_across_the_window() {
        // Regression for the F' = 15000x phantom storm: after the first
        // reference the compute window holds a 1 us sample while disk 1
        // still has no fetch history, so its F' falls back to
        // DEFAULT_FETCH over the compute average. Unclamped that made
        // the very first decision predict a stall on a block ~100
        // references ahead and prefetch it at t ~ 0; clamped (F' = 60)
        // the fetch waits until the block is genuinely close.
        use crate::probe::{Event, Probe};
        struct FirstIssue {
            block: BlockId,
            at: Option<Nanos>,
        }
        impl Probe for FirstIssue {
            fn on_event(&mut self, event: &Event) {
                if let Event::FetchIssued { now, block, .. } = event {
                    if *block == self.block && self.at.is_none() {
                        self.at = Some(*now);
                    }
                }
            }
        }
        // Striped layout: even blocks on disk 0, block 1 on disk 1. The
        // lone disk-1 reference sits ~100 references out, well past the
        // clamped F' = 4 * 15 = 60 but inside an unclamped 15000.
        let mut blocks: Vec<u64> = (0..100).map(|i| i * 2).collect();
        blocks.push(1);
        let t = Trace::new(
            "cold",
            blocks
                .iter()
                .map(|&b| Request {
                    block: BlockId(b),
                    compute: Nanos::from_micros(1),
                })
                .collect(),
            100,
        );
        let c = cfg(2, 100, 15);
        let mut p = Forestall::new(&c);
        let mut probe = FirstIssue {
            block: BlockId(1),
            at: None,
        };
        let r = crate::engine::simulate_with_probed(&t, &mut p, &c, &mut probe);
        assert_eq!(r.elapsed, r.compute + r.driver + r.stall);
        let at = probe.at.expect("block 1 is eventually fetched");
        // The first demand fetch alone takes 15 ms; a sane predictor
        // cannot want block 1 before that completes. The storm issued it
        // within the first millisecond.
        assert!(
            at >= Nanos::from_millis(5),
            "block 1 prefetched during cold start at {at}"
        );
    }

    #[test]
    fn incremental_predictor_matches_naive_simulation_reports() {
        // Differential pin: the cached-verdict predictor must be
        // byte-identical to the naive full-rescan predictor on whole
        // runs — randomized multi-disk traces with re-references, plus
        // a faulted run. (In debug builds every cache-served verdict is
        // additionally oracle-checked inside stall_predicted.)
        use parcache_disk::FaultPlan;
        let mut rng = parcache_types::rng::Rng::seed_from_u64(0xf0e5_7a11);
        for case in 0..12 {
            let disks = 1 + (case % 4);
            let cache = 3 + (case % 5) * 7;
            let universe = 4 + (case % 3) * 30;
            let n = 60 + (case % 4) * 45;
            let blocks: Vec<u64> = (0..n).map(|_| rng.gen_range(0..universe as u64)).collect();
            let compute_ms = 1 + (case as u64 % 3) * 6;
            let t = trace_of(&blocks, compute_ms, cache);
            let mut c = cfg(disks, cache, 1 + (case as u64 % 4) * 5);
            if case % 3 == 0 {
                c = c.with_faults(FaultPlan::parse("outage:0:5:20").expect("valid fault plan"));
            }
            let mut naive_cfg = c.clone();
            naive_cfg.forestall_naive_scan = true;
            let mut fast = Forestall::new(&c);
            let mut slow = Forestall::new(&naive_cfg);
            let fast_report = simulate_with(&t, &mut fast, &c);
            let slow_report = simulate_with(&t, &mut slow, &naive_cfg);
            assert_eq!(fast_report, slow_report, "case {case} diverged");
        }
    }

    #[test]
    fn outage_stalls_are_charged_to_fault_retries() {
        // Pinned stall provenance: a hard outage covering the start of
        // the run rejects every early fetch, so the driver retries with
        // backoff while the app stalls on the first blocks. A stall that
        // sees a fault on its block (or begins with a retry pending)
        // charges to `retry`, taking precedence over the in-flight and
        // demand-miss causes.
        use crate::probe::StallCause;
        use parcache_disk::FaultPlan;
        let blocks: Vec<u64> = (0..20).collect();
        let t = trace_of(&blocks, 1, 8);
        let c =
            cfg(1, 8, 2).with_faults(FaultPlan::parse("outage:0:0:50").expect("valid fault plan"));
        let mut p = Forestall::new(&c);
        let r = simulate_with(&t, &mut p, &c);
        assert!(r.stall > Nanos::ZERO);
        assert!(r.stall_by_cause.get(StallCause::FaultRetry) > Nanos::ZERO);
        assert_eq!(r.stall_by_cause.total(), r.stall);
    }
}
