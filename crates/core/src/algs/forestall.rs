//! The forestall algorithm (§5) — the paper's new hybrid.
//!
//! Forestall behaves like fixed horizon when there is no danger of
//! stalling (late fetches, best replacements) and like aggressive when
//! stalls loom. For each disk it estimates F' — an overestimate of the
//! ratio of fetch time to inter-reference compute time — and predicts a
//! stall whenever the i-th missing block on the disk sits within `i * F'`
//! references of the cursor (`iF' > d_i`): the disk cannot fetch i blocks
//! in less time than the application takes to reach them. When a stall is
//! predicted on a free disk, forestall prefetches there in batches exactly
//! as aggressive does; independently, fixed horizon's rule issues any
//! fetch whose block is within H references.
//!
//! F is estimated per disk from the most recent 100 fetch times and the
//! most recent 100 compute times; the overestimate is F' = F for disks
//! averaging under 5 ms per access (sequential, readahead-served loads)
//! and F' = 4F otherwise, per §5's "practical considerations". A static
//! multiplier can be configured instead (appendix H).

use crate::algs::aggressive::{fill_free_disk_batches, BatchScratch};
use crate::algs::fixed_horizon::FixedHorizon;
use crate::engine::Ctx;
use crate::policy::Policy;
use parcache_types::{DiskId, Nanos};

/// Disks averaging under this per-access time use the low F' multiplier.
const FAST_DISK_THRESHOLD: Nanos = Nanos::from_millis(5);

/// Lookahead for stall prediction: `2K` references (§5).
const LOOKAHEAD_CACHES: usize = 2;

/// Fallback F when a disk has no fetch history yet: a conservative
/// average response time, as used to derive the prefetch horizon (§2.6).
const DEFAULT_FETCH: Nanos = Nanos::from_millis(15);

/// The forestall policy.
#[derive(Debug)]
pub struct Forestall {
    batch_size: usize,
    horizon_rule: FixedHorizon,
    /// Static F' multiplier; `None` selects the dynamic 1x/4x rule.
    static_multiplier: Option<f64>,
    scratch: BatchScratch,
}

impl Forestall {
    /// Creates the policy from the run configuration.
    pub fn new(config: &crate::config::SimConfig) -> Forestall {
        Forestall {
            batch_size: config.batch_size,
            horizon_rule: FixedHorizon::new(config.horizon),
            static_multiplier: config.forestall_static_f,
            scratch: BatchScratch::default(),
        }
    }

    /// The overestimated fetch/compute ratio F' for `disk`.
    fn f_prime(&self, ctx: &Ctx<'_>, disk: usize) -> f64 {
        let avg_fetch = ctx.history.avg_fetch(disk).unwrap_or(DEFAULT_FETCH);
        let f = ctx.history.fetch_compute_ratio(disk).unwrap_or_else(|| {
            let c = ctx
                .history
                .avg_compute()
                .unwrap_or(Nanos::from_millis(1))
                .as_nanos()
                .max(1) as f64;
            avg_fetch.as_nanos() as f64 / c
        });
        let multiplier = self.static_multiplier.unwrap_or({
            if avg_fetch < FAST_DISK_THRESHOLD {
                1.0
            } else {
                4.0
            }
        });
        (f * multiplier).max(1.0)
    }

    /// True when, at the current cache state, the application will surely
    /// stall on some missing block of `disk`: exists i with `i * F' >= d_i`.
    fn stall_predicted(&self, ctx: &Ctx<'_>, disk: usize) -> bool {
        let f_prime = self.f_prime(ctx, disk);
        let cursor = ctx.cursor;
        let window = LOOKAHEAD_CACHES * ctx.cache.capacity();
        let window_end = cursor.saturating_add(window);
        let far = window.saturating_sub(1) as f64;
        // Early-exit gap: a later j-th missing block at distance d_j has
        // j <= i + (d_j - d_i) (positions are distinct), so a trigger
        // needs (i + d_j - d_i) * F' >= d_j, i.e. d_i - i <= d_j (1 -
        // 1/F') <= far (1 - 1/F'). Once the running gap d_i - i exceeds
        // that bound, nothing in the window can trigger and the scan's
        // answer is already false. The +1 margin keeps the exit sound
        // against the division's rounding; where the exit fires affects
        // only scan cost, never the returned value.
        let exit_gap = far - far / f_prime + 1.0;
        let mut i = 0u64;
        for pos in ctx
            .missing
            .missing_on_disk_in_window(disk, cursor, window_end)
        {
            i += 1;
            let distance = (pos - cursor) as f64;
            if i as f64 * f_prime >= distance {
                return true;
            }
            if distance - i as f64 > exit_gap {
                return false;
            }
        }
        false
    }
}

impl Policy for Forestall {
    fn name(&self) -> &'static str {
        "forestall"
    }

    fn decide(&mut self, ctx: &mut Ctx<'_>) {
        // Aggressive-style batches on every free disk that would stall.
        for d in 0..ctx.config.disks {
            if ctx.array.is_free(DiskId(d)) && self.stall_predicted(ctx, d) {
                fill_free_disk_batches(ctx, self.batch_size, Some(d), &mut self.scratch);
            }
        }
        // Fixed horizon's rule: never let a block inside H go unfetched
        // (guards against CSCAN reordering stalls, §5).
        self.horizon_rule.decide(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DiskModelKind, SimConfig};
    use crate::engine::simulate_with;
    use crate::policy::PolicyKind;
    use parcache_trace::{Request, Trace};
    use parcache_types::{BlockId, Nanos};

    fn trace_of(blocks: &[u64], compute_ms: u64, cache: usize) -> Trace {
        Trace::new(
            "t",
            blocks
                .iter()
                .map(|&b| Request {
                    block: BlockId(b),
                    compute: Nanos::from_millis(compute_ms),
                })
                .collect(),
            cache,
        )
    }

    fn cfg(disks: usize, cache: usize, fetch_ms: u64) -> SimConfig {
        let mut c = SimConfig::new(disks, cache);
        c.disk_model = DiskModelKind::Uniform(Nanos::from_millis(fetch_ms));
        c.driver_overhead = Nanos::ZERO;
        c.horizon = 4;
        c.batch_size = 4;
        c
    }

    #[test]
    fn io_bound_behaves_like_aggressive() {
        // Compute 1ms, fetch 8ms: heavily I/O bound. Forestall should
        // keep the disk busy like aggressive, not idle like fixed horizon.
        let blocks: Vec<u64> = (0..40).collect();
        let t = trace_of(&blocks, 1, 16);
        let c = cfg(1, 16, 8);
        let agg = crate::engine::simulate(&t, PolicyKind::Aggressive, &c);
        let mut p = Forestall::new(&c);
        let f = simulate_with(&t, &mut p, &c);
        // Within 5% of aggressive's elapsed time.
        let ratio = f.elapsed.as_nanos() as f64 / agg.elapsed.as_nanos() as f64;
        assert!(
            ratio < 1.05,
            "forestall {} vs aggressive {}",
            f.elapsed,
            agg.elapsed
        );
    }

    #[test]
    fn compute_bound_behaves_like_fixed_horizon() {
        // Compute 20ms, fetch 2ms: compute-bound with a hot re-reference
        // pattern. Forestall should not fetch more than fixed horizon.
        let mut blocks: Vec<u64> = Vec::new();
        for _ in 0..10 {
            blocks.extend(0..6u64);
        }
        let t = trace_of(&blocks, 20, 4);
        let c = cfg(1, 4, 2);
        let fh = crate::engine::simulate(&t, PolicyKind::FixedHorizon, &c);
        let mut p = Forestall::new(&c);
        let f = simulate_with(&t, &mut p, &c);
        assert!(
            f.fetches <= fh.fetches + 2,
            "forestall fetched {} vs fixed horizon {}",
            f.fetches,
            fh.fetches
        );
        assert!(f.elapsed <= fh.elapsed + Nanos::from_millis(2));
    }

    #[test]
    fn static_multiplier_is_respected() {
        let blocks: Vec<u64> = (0..20).collect();
        let t = trace_of(&blocks, 1, 8);
        let mut c = cfg(1, 8, 8);
        c.forestall_static_f = Some(8.0);
        let mut p = Forestall::new(&c);
        assert_eq!(p.static_multiplier, Some(8.0));
        let r = simulate_with(&t, &mut p, &c);
        assert_eq!(r.fetches, 20);
    }

    #[test]
    fn serves_all_references() {
        let blocks: Vec<u64> = (0..50).map(|i| i % 10).collect();
        let t = trace_of(&blocks, 2, 4);
        let c = cfg(2, 4, 5);
        let mut p = Forestall::new(&c);
        let r = simulate_with(&t, &mut p, &c);
        assert_eq!(r.elapsed, r.compute + r.driver + r.stall);
        assert!(r.fetches >= 10);
    }

    #[test]
    fn outage_stalls_are_charged_to_fault_retries() {
        // Pinned stall provenance: a hard outage covering the start of
        // the run rejects every early fetch, so the driver retries with
        // backoff while the app stalls on the first blocks. A stall that
        // sees a fault on its block (or begins with a retry pending)
        // charges to `retry`, taking precedence over the in-flight and
        // demand-miss causes.
        use crate::probe::StallCause;
        use parcache_disk::FaultPlan;
        let blocks: Vec<u64> = (0..20).collect();
        let t = trace_of(&blocks, 1, 8);
        let c =
            cfg(1, 8, 2).with_faults(FaultPlan::parse("outage:0:0:50").expect("valid fault plan"));
        let mut p = Forestall::new(&c);
        let r = simulate_with(&t, &mut p, &c);
        assert!(r.stall > Nanos::ZERO);
        assert!(r.stall_by_cause.get(StallCause::FaultRetry) > Nanos::ZERO);
        assert_eq!(r.stall_by_cause.total(), r.stall);
    }
}
