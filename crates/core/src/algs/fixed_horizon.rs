//! The fixed horizon algorithm (§2.3, §2.7).
//!
//! "Whenever there is a missing block at most H references away, issue a
//! fetch for that block, replacing the block whose next reference is
//! furthest in the future", provided that replacement's next reference is
//! beyond the horizon. Fetches are issued as soon as a missing block
//! enters the horizon, so a disk may hold up to H outstanding requests —
//! which is what gives the head scheduler its reordering opportunities.

use crate::engine::Ctx;
use crate::oracle::NEVER;
use crate::policy::Policy;

/// The fixed horizon policy.
#[derive(Debug)]
pub struct FixedHorizon {
    horizon: usize,
}

impl FixedHorizon {
    /// Creates the policy with prefetch horizon `horizon` (the paper uses
    /// H = 62 by default).
    pub fn new(horizon: usize) -> FixedHorizon {
        assert!(horizon > 0, "the horizon must be positive");
        FixedHorizon { horizon }
    }

    /// The configured horizon.
    pub fn horizon(&self) -> usize {
        self.horizon
    }
}

impl Policy for FixedHorizon {
    fn name(&self) -> &'static str {
        "fixed-horizon"
    }

    fn decide(&mut self, ctx: &mut Ctx<'_>) {
        let cursor = ctx.cursor;
        let end = cursor.saturating_add(self.horizon);
        loop {
            // The earliest missing block within the horizon window.
            let Some(pos) = ctx.missing.first_missing(cursor) else {
                return;
            };
            if pos >= end {
                return;
            }
            let idx = ctx
                .oracle
                .index_at(pos)
                .expect("missing-tracker positions are disclosed");
            if ctx.cache.has_free_frame() {
                ctx.issue_fetch_idx(idx, None);
                continue;
            }
            match ctx.cache.furthest_resident(cursor, ctx.oracle) {
                // Replace only a block not needed within the horizon.
                Some((victim, key)) if key == NEVER || key > end => {
                    ctx.issue_fetch_idx(idx, Some(victim));
                }
                _ => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DiskModelKind, SimConfig};
    use crate::engine::simulate_with;
    use parcache_trace::{Request, Trace};
    use parcache_types::{BlockId, Nanos};

    fn trace_of(blocks: &[u64], cache: usize) -> Trace {
        Trace::new(
            "t",
            blocks
                .iter()
                .map(|&b| Request {
                    block: BlockId(b),
                    compute: Nanos::from_millis(1),
                })
                .collect(),
            cache,
        )
    }

    fn cfg(disks: usize, cache: usize, fetch_ms: u64, horizon: usize) -> SimConfig {
        let mut c = SimConfig::new(disks, cache);
        c.disk_model = DiskModelKind::Uniform(Nanos::from_millis(fetch_ms));
        c.driver_overhead = Nanos::ZERO;
        c.horizon = horizon;
        c
    }

    #[test]
    fn prefetches_within_horizon_eliminate_stall() {
        // Fetch time = 2 compute steps; horizon 4 >= 2 suffices to hide
        // all latency on one disk for a sequential scan after warmup.
        let blocks: Vec<u64> = (0..20).collect();
        let t = trace_of(&blocks, 8);
        let c = cfg(1, 8, 2, 4);
        let mut p = FixedHorizon::new(c.horizon);
        let r = simulate_with(&t, &mut p, &c);
        // First block must stall (2ms); afterwards prefetching hides the
        // 2ms fetches behind 1ms computes only partially on one disk:
        // the disk needs 40ms total, compute is 20ms, so elapsed ~ 40ms.
        assert!(r.elapsed <= Nanos::from_millis(43), "elapsed {}", r.elapsed);
        assert_eq!(r.fetches, 20);
    }

    #[test]
    fn does_not_fetch_beyond_horizon() {
        // Block 5 is referenced last, far beyond the horizon from t=0.
        // With a long compute gap, fixed horizon leaves the disk idle
        // instead of fetching early.
        let t = Trace::new(
            "t",
            vec![
                Request {
                    block: BlockId(0),
                    compute: Nanos::from_millis(50),
                },
                Request {
                    block: BlockId(1),
                    compute: Nanos::from_millis(1),
                },
                Request {
                    block: BlockId(2),
                    compute: Nanos::from_millis(1),
                },
                Request {
                    block: BlockId(3),
                    compute: Nanos::from_millis(1),
                },
                Request {
                    block: BlockId(4),
                    compute: Nanos::from_millis(1),
                },
                Request {
                    block: BlockId(5),
                    compute: Nanos::from_millis(1),
                },
            ],
            8,
        );
        let c = cfg(1, 8, 2, 2);
        let mut p = FixedHorizon::new(2);
        let r = simulate_with(&t, &mut p, &c);
        // All six blocks are eventually fetched exactly once (no waste).
        assert_eq!(r.fetches, 6);
    }

    #[test]
    fn replacement_respects_horizon_guard() {
        // Cache of 2. Sequence: 0 1 0 1 ... 2. Blocks 0 and 1 are always
        // within the horizon; fetching 2 would require evicting one of
        // them, so fixed horizon must wait (and demand-fetch 2 at its
        // reference, evicting whichever is no longer needed).
        let blocks = vec![0, 1, 0, 1, 0, 1, 2];
        let t = trace_of(&blocks, 2);
        let c = cfg(1, 2, 2, 4);
        let mut p = FixedHorizon::new(4);
        let r = simulate_with(&t, &mut p, &c);
        assert_eq!(r.fetches, 3);
        // The fetch of 2 happened on demand (stall >= fetch time minus
        // overlap): there must be some stall.
        assert!(r.stall > Nanos::ZERO);
    }

    #[test]
    fn degraded_drive_stalls_are_congestion_not_late_prefetch() {
        // Pinned stall provenance: a fail-slow window covering the whole
        // run degrades the only drive. Stalls still begin with the
        // block's fetch in flight, but a degraded drive is contention by
        // the provenance rules (the prefetch was issued in time; the
        // drive could not keep up), so the stall charges to
        // `congestion`, not `late_prefetch`. Fail-slow injects no media
        // errors, so nothing can classify as a fault retry.
        use crate::probe::StallCause;
        use parcache_disk::FaultPlan;
        let blocks: Vec<u64> = (0..20).collect();
        let t = trace_of(&blocks, 8);
        let c = cfg(1, 8, 2, 4)
            .with_faults(FaultPlan::parse("slow:0:0:10000:3").expect("valid fault plan"));
        let mut p = FixedHorizon::new(c.horizon);
        let r = simulate_with(&t, &mut p, &c);
        assert!(r.stall > Nanos::ZERO);
        assert!(r.stall_by_cause.get(StallCause::DiskCongestion) > Nanos::ZERO);
        assert_eq!(r.stall_by_cause.get(StallCause::LatePrefetch), Nanos::ZERO);
        assert_eq!(r.stall_by_cause.get(StallCause::FaultRetry), Nanos::ZERO);
        assert_eq!(r.stall_by_cause.total(), r.stall);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_horizon_rejected() {
        FixedHorizon::new(0);
    }

    #[test]
    fn horizon_accessor() {
        assert_eq!(FixedHorizon::new(62).horizon(), 62);
    }
}
