//! Simulation configuration: the paper's fixed parameters and knobs.

use parcache_disk::fault::FaultPlan;
use parcache_disk::sched::Discipline;
use parcache_trace::Trace;
use parcache_types::Nanos;

/// Which drive model the array uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskModelKind {
    /// The detailed HP 97560 model (the paper's UW simulator).
    Hp97560,
    /// The HP 97560 with its readahead cache disabled (ablation).
    Hp97560NoReadahead,
    /// The coarse Lightning-like model (the CMU cross-validation analog).
    Coarse,
    /// The uniform fetch-time model of the theoretical framework, with the
    /// given constant access time.
    Uniform(Nanos),
}

/// A structurally invalid [`SimConfig`], rejected at construction.
///
/// The sizes these variants guard are load-bearing well past the
/// constructor: forestall's stall-prediction window is `2 * cache_blocks`
/// and its scan subtracts one from it (`window - 1`), so a zero-capacity
/// cache would underflow deep inside a decision point; a zero-disk array
/// has no layout to stripe over. A typed error lets embedders surface the
/// problem to their own users instead of catching a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `disks == 0`: an array needs at least one disk.
    ZeroDisks,
    /// `cache_blocks == 0`: the cache must hold at least one block.
    ZeroCache,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroDisks => write!(f, "an array needs at least one disk"),
            ConfigError::ZeroCache => write!(f, "cache must hold at least one block"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// The paper's default aggressive/forestall batch sizes by array size
/// (Table 6): 80, 40, 40, 16, 16, 8, 8, then 4 beyond seven disks.
pub fn default_batch_size(disks: usize) -> usize {
    match disks {
        0 => panic!("an array needs at least one disk"),
        1 => 80,
        2 | 3 => 40,
        4 | 5 => 16,
        6 | 7 => 8,
        _ => 4,
    }
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of drives in the array.
    pub disks: usize,
    /// Cache capacity in 8 KB blocks.
    pub cache_blocks: usize,
    /// Head-scheduling discipline (the paper defaults to CSCAN).
    pub discipline: Discipline,
    /// Drive model.
    pub disk_model: DiskModelKind,
    /// CPU overhead charged per disk I/O (0.5 ms on the DECstation).
    pub driver_overhead: Nanos,
    /// Fixed horizon's prefetch horizon H (the paper uses 62; 124 for the
    /// double-speed-CPU experiment).
    pub horizon: usize,
    /// Batch size for aggressive and forestall.
    pub batch_size: usize,
    /// Reverse aggressive's fixed fetch-time estimate F̂, expressed as a
    /// multiple of the trace's mean inter-reference compute time.
    pub reverse_fetch_estimate: u64,
    /// Reverse aggressive's batch size (reverse pass and forward replay).
    pub reverse_batch_size: usize,
    /// Forestall's static overestimate F' = `forestall_static_f * F`; when
    /// `None` the dynamic rule of §5 is used (F' = F for fast disks, 4F
    /// for slow ones).
    pub forestall_static_f: Option<f64>,
    /// Forces forestall's stall predictor onto the naive full-window
    /// rescan instead of the incremental cached-verdict path. The two are
    /// byte-identical by construction; this switch exists so the
    /// differential fuzzer (and anyone bisecting a suspected divergence)
    /// can run both sides in release builds, where the `debug_assert!`
    /// oracle is compiled out.
    pub forestall_naive_scan: bool,
    /// How much of the access sequence the application disclosed (the
    /// paper's main setting is full disclosure; see `crate::hints`).
    pub hints: crate::hints::HintSpec,
    /// Where hints come from: the application's disclosed sequence (the
    /// paper's setting) or an online predictor that learns the demand
    /// stream as it arrives (see `crate::predict`). Under a predicted
    /// mode the disclosure spec in `hints` is ignored — there is no
    /// disclosed sequence to mask, only the predictor's own output.
    pub hint_mode: crate::predict::HintMode,
    /// Write-behind load (the §6 writes extension): one flush of the
    /// just-consumed block every `n` reads; `None` (the paper's setting)
    /// means a read-only run.
    pub write_behind_period: Option<usize>,
    /// Deterministic disk fault schedule. Empty (the default, and the
    /// paper's setting) means a healthy array: no drive is wrapped, and
    /// runs are byte-identical to a build without fault support.
    pub faults: FaultPlan,
    /// How the driver retries faulted fetches; irrelevant while `faults`
    /// is empty.
    pub retry: RetryPolicy,
}

/// Driver-level retry behavior for faulted reads (writes are best-effort
/// and never retried).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Faults tolerated per fetch before it is abandoned. A demand miss
    /// whose fetch is abandoned simply re-issues (the application cannot
    /// make progress without the block), so the run still terminates.
    /// Must be at least 1: a zero-retry driver would abandon and re-issue
    /// a rejected demand fetch in a zero-time loop during an outage,
    /// while one backed-off retry per cycle guarantees the clock moves.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    /// Must be positive so a drive mid-outage is not hammered in a
    /// zero-time loop.
    pub backoff: Nanos,
    /// Upper bound on the exponential backoff.
    pub backoff_cap: Nanos,
    /// Overall per-request deadline, measured from the request's first
    /// fault: when exceeded, the next fault abandons instead of retrying.
    /// `None` (the default) bounds retries by count alone.
    pub timeout: Option<Nanos>,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 4,
            backoff: Nanos::from_millis(1),
            backoff_cap: Nanos::from_millis(64),
            timeout: None,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `attempt` (1-based): exponential
    /// doubling from `backoff`, saturating at `backoff_cap`.
    pub fn backoff_for(&self, attempt: u32) -> Nanos {
        let doublings = attempt.saturating_sub(1).min(63);
        match self.backoff.checked_mul(1u64 << doublings) {
            Some(b) => b.min(self.backoff_cap),
            None => self.backoff_cap,
        }
    }

    /// Panics on parameters that could stall the simulation (a
    /// non-positive backoff or a zero retry budget allows zero-time
    /// retry loops during an outage).
    pub fn validate(&self) {
        assert!(self.backoff > Nanos::ZERO, "retry backoff must be positive");
        assert!(
            self.backoff_cap >= self.backoff,
            "backoff cap below the base backoff"
        );
        assert!(
            self.max_retries >= 1,
            "at least one retry is required for forward progress"
        );
    }
}

impl SimConfig {
    /// A configuration with the paper's defaults for a given array size
    /// and cache capacity.
    ///
    /// # Panics
    ///
    /// Panics on a structurally invalid size; use [`SimConfig::try_new`]
    /// to get a [`ConfigError`] instead.
    pub fn new(disks: usize, cache_blocks: usize) -> SimConfig {
        SimConfig::try_new(disks, cache_blocks).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: rejects zero disks and a zero-block cache
    /// with a typed [`ConfigError`] rather than a panic.
    pub fn try_new(disks: usize, cache_blocks: usize) -> Result<SimConfig, ConfigError> {
        if disks == 0 {
            return Err(ConfigError::ZeroDisks);
        }
        if cache_blocks == 0 {
            return Err(ConfigError::ZeroCache);
        }
        Ok(SimConfig {
            disks,
            cache_blocks,
            discipline: Discipline::Cscan,
            disk_model: DiskModelKind::Hp97560,
            driver_overhead: Nanos::from_micros(500),
            horizon: 62,
            batch_size: default_batch_size(disks),
            reverse_fetch_estimate: 16,
            reverse_batch_size: default_batch_size(disks),
            forestall_static_f: None,
            forestall_naive_scan: false,
            hints: crate::hints::HintSpec::Full,
            hint_mode: crate::predict::HintMode::Oracle,
            write_behind_period: None,
            faults: FaultPlan::default(),
            retry: RetryPolicy::default(),
        })
    }

    /// A configuration using the trace's paper-specified cache size.
    pub fn for_trace(disks: usize, trace: &Trace) -> SimConfig {
        SimConfig::new(disks, trace.cache_blocks)
    }

    /// Replaces the cache size with the trace's paper default.
    pub fn with_trace_defaults(mut self, trace: &Trace) -> SimConfig {
        self.cache_blocks = trace.cache_blocks;
        self
    }

    /// Sets the head-scheduling discipline.
    pub fn with_discipline(mut self, discipline: Discipline) -> SimConfig {
        self.discipline = discipline;
        self
    }

    /// Sets the drive model.
    pub fn with_disk_model(mut self, model: DiskModelKind) -> SimConfig {
        self.disk_model = model;
        self
    }

    /// Sets fixed horizon's H.
    pub fn with_horizon(mut self, horizon: usize) -> SimConfig {
        assert!(horizon > 0, "the horizon must be positive");
        self.horizon = horizon;
        self
    }

    /// Sets aggressive/forestall's batch size.
    pub fn with_batch_size(mut self, batch: usize) -> SimConfig {
        assert!(batch > 0, "the batch size must be positive");
        self.batch_size = batch;
        self
    }

    /// Sets reverse aggressive's parameters.
    pub fn with_reverse_params(mut self, fetch_estimate: u64, batch: usize) -> SimConfig {
        assert!(fetch_estimate > 0 && batch > 0);
        self.reverse_fetch_estimate = fetch_estimate;
        self.reverse_batch_size = batch;
        self
    }

    /// Sets forestall's static F' multiplier (disables dynamic estimation).
    pub fn with_forestall_static_f(mut self, f: f64) -> SimConfig {
        assert!(f > 0.0);
        self.forestall_static_f = Some(f);
        self
    }

    /// Sets the hint disclosure (defaults to full disclosure).
    pub fn with_hints(mut self, hints: crate::hints::HintSpec) -> SimConfig {
        self.hints = hints;
        self
    }

    /// Sets the hint source (defaults to the disclosed oracle).
    pub fn with_hint_mode(mut self, mode: crate::predict::HintMode) -> SimConfig {
        self.hint_mode = mode;
        self
    }

    /// Enables write-behind: one flush per `period` reads.
    pub fn with_write_behind(mut self, period: usize) -> SimConfig {
        assert!(period > 0, "the write period must be positive");
        self.write_behind_period = Some(period);
        self
    }

    /// Sets the fault schedule (validated: a bad plan panics here rather
    /// than deep inside the event loop).
    pub fn with_faults(mut self, faults: FaultPlan) -> SimConfig {
        faults.validate().expect("invalid fault plan");
        self.faults = faults;
        self
    }

    /// Sets the driver retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> SimConfig {
        retry.validate();
        self.retry = retry;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_table_matches_table_6() {
        let expected = [
            (1, 80),
            (2, 40),
            (3, 40),
            (4, 16),
            (5, 16),
            (6, 8),
            (7, 8),
            (8, 4),
            (10, 4),
            (12, 4),
            (16, 4),
        ];
        for (d, b) in expected {
            assert_eq!(default_batch_size(d), b, "{d} disks");
        }
    }

    #[test]
    fn config_types_cross_threads() {
        // The sweep runner shares configurations and reports across
        // worker threads; keep these auto-traits from silently vanishing
        // (e.g. by adding an Rc or raw pointer field).
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimConfig>();
        assert_send_sync::<DiskModelKind>();
        assert_send_sync::<RetryPolicy>();
        assert_send_sync::<FaultPlan>();
        assert_send_sync::<crate::policy::PolicyKind>();
        assert_send_sync::<crate::engine::Report>();
        assert_send_sync::<crate::metrics::RunMetrics>();
    }

    #[test]
    fn defaults_follow_the_paper() {
        let c = SimConfig::new(3, 1280);
        assert_eq!(c.horizon, 62);
        assert_eq!(c.driver_overhead, Nanos::from_micros(500));
        assert_eq!(c.batch_size, 40);
        assert_eq!(c.discipline, Discipline::Cscan);
        assert_eq!(c.disk_model, DiskModelKind::Hp97560);
        assert!(c.forestall_static_f.is_none());
    }

    #[test]
    fn builders_apply() {
        let c = SimConfig::new(1, 512)
            .with_horizon(124)
            .with_batch_size(160)
            .with_discipline(Discipline::Fcfs)
            .with_reverse_params(32, 8)
            .with_forestall_static_f(4.0);
        assert_eq!(c.horizon, 124);
        assert_eq!(c.batch_size, 160);
        assert_eq!(c.discipline, Discipline::Fcfs);
        assert_eq!((c.reverse_fetch_estimate, c.reverse_batch_size), (32, 8));
        assert_eq!(c.forestall_static_f, Some(4.0));
    }

    #[test]
    #[should_panic(expected = "at least one disk")]
    fn zero_disks_rejected() {
        SimConfig::new(0, 512);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_cache_rejected() {
        SimConfig::new(1, 0);
    }

    #[test]
    fn try_new_returns_typed_errors() {
        // The fallible constructor rejects the sizes whose downstream
        // effect would otherwise be a `window - 1` underflow inside
        // forestall's stall predictor (window = 2 * cache_blocks) or a
        // diskless layout — with a typed error, not a panic.
        assert_eq!(SimConfig::try_new(0, 512), Err(ConfigError::ZeroDisks));
        assert_eq!(SimConfig::try_new(1, 0), Err(ConfigError::ZeroCache));
        assert_eq!(SimConfig::try_new(0, 0), Err(ConfigError::ZeroDisks));
        let ok = SimConfig::try_new(2, 64).expect("valid sizes construct");
        assert_eq!((ok.disks, ok.cache_blocks), (2, 64));
        assert_eq!(ok, SimConfig::new(2, 64));
        // The panicking constructor reuses the typed error's message.
        assert_eq!(
            ConfigError::ZeroDisks.to_string(),
            "an array needs at least one disk"
        );
        assert_eq!(
            ConfigError::ZeroCache.to_string(),
            "cache must hold at least one block"
        );
    }

    #[test]
    fn defaults_declare_no_faults() {
        let c = SimConfig::new(2, 512);
        assert!(c.faults.is_empty());
        assert_eq!(c.retry, RetryPolicy::default());
        c.retry.validate();
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let r = RetryPolicy {
            max_retries: 10,
            backoff: Nanos::from_millis(1),
            backoff_cap: Nanos::from_millis(5),
            timeout: None,
        };
        assert_eq!(r.backoff_for(1), Nanos::from_millis(1));
        assert_eq!(r.backoff_for(2), Nanos::from_millis(2));
        assert_eq!(r.backoff_for(3), Nanos::from_millis(4));
        assert_eq!(r.backoff_for(4), Nanos::from_millis(5)); // capped
        assert_eq!(r.backoff_for(100), Nanos::from_millis(5)); // no overflow
    }

    #[test]
    #[should_panic(expected = "backoff must be positive")]
    fn zero_backoff_rejected() {
        SimConfig::new(1, 4).with_retry(RetryPolicy {
            backoff: Nanos::ZERO,
            ..RetryPolicy::default()
        });
    }

    #[test]
    #[should_panic(expected = "at least one retry")]
    fn zero_retry_budget_rejected() {
        SimConfig::new(1, 4).with_retry(RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        });
    }
}
