//! The next-reference oracle.
//!
//! All four prefetching algorithms assume full advance knowledge of the
//! request sequence (§1). The oracle answers the two queries they need in
//! logarithmic time: *when is block B next referenced at or after position
//! p?* (for Belady replacement and the do-no-harm rule), and *which
//! positions reference blocks on disk D?* (for per-disk prefetch
//! candidates).

use parcache_disk::layout::Layout;
use parcache_trace::Trace;
use parcache_types::{BlockId, DiskId};
use std::collections::HashMap;

/// Sentinel position for "never referenced again" — compares greater than
/// every real position, which is exactly what Belady comparisons want.
pub const NEVER: usize = usize::MAX;

/// Reserved block id returned by [`Oracle::block_at`] for undisclosed
/// positions (see [`Oracle::from_positions`]). Never equals a real block.
pub const UNKNOWN_BLOCK: BlockId = BlockId(u64::MAX);

/// Precomputed full-knowledge index of one trace under one disk layout.
#[derive(Debug)]
pub struct Oracle {
    /// The reference sequence, by position.
    sequence: Vec<BlockId>,
    /// Every position at which each block is referenced, ascending.
    occurrences: HashMap<BlockId, Vec<usize>>,
    /// Positions whose block lives on each disk, ascending.
    disk_positions: Vec<Vec<usize>>,
    /// Disk of each block (cached from the layout).
    layout: Layout,
}

impl Oracle {
    /// Builds the oracle for `trace` under `layout`.
    pub fn new(trace: &Trace, layout: Layout) -> Oracle {
        let sequence: Vec<BlockId> = trace.requests.iter().map(|r| r.block).collect();
        Oracle::from_sequence(sequence, layout)
    }

    /// Builds the oracle from a bare block sequence (used by the reverse
    /// aggressive pass, which indexes the *reversed* sequence).
    pub fn from_sequence(sequence: Vec<BlockId>, layout: Layout) -> Oracle {
        let entries: Vec<(usize, BlockId)> = sequence.iter().copied().enumerate().collect();
        Oracle::from_positions(sequence.len(), entries, layout)
    }

    /// Builds the oracle from explicit `(position, block)` entries over a
    /// sequence of length `len`. Positions absent from `entries` are
    /// *undisclosed*: they have no occurrences and [`block_at`] returns a
    /// reserved unknown block for them. This is how incomplete hints
    /// (`crate::hints`) restrict a policy's knowledge.
    ///
    /// [`block_at`]: Oracle::block_at
    pub fn from_positions(len: usize, entries: Vec<(usize, BlockId)>, layout: Layout) -> Oracle {
        let mut sequence = vec![UNKNOWN_BLOCK; len];
        let mut occurrences: HashMap<BlockId, Vec<usize>> = HashMap::new();
        let mut disk_positions: Vec<Vec<usize>> = vec![Vec::new(); layout.disks()];
        for &(pos, block) in &entries {
            assert!(pos < len, "entry position {pos} out of range");
            sequence[pos] = block;
            occurrences.entry(block).or_default().push(pos);
            disk_positions[layout.disk_of(block).index()].push(pos);
        }
        for occ in occurrences.values_mut() {
            occ.sort_unstable();
        }
        for dp in &mut disk_positions {
            dp.sort_unstable();
        }
        Oracle {
            sequence,
            occurrences,
            disk_positions,
            layout,
        }
    }

    /// Number of references in the sequence.
    pub fn len(&self) -> usize {
        self.sequence.len()
    }

    /// True for an empty sequence.
    pub fn is_empty(&self) -> bool {
        self.sequence.is_empty()
    }

    /// The block referenced at `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    pub fn block_at(&self, pos: usize) -> BlockId {
        self.sequence[pos]
    }

    /// The layout used to build this oracle.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// The disk holding `block`.
    pub fn disk_of(&self, block: BlockId) -> DiskId {
        self.layout.disk_of(block)
    }

    /// The first position `>= at` referencing `block`, or [`NEVER`].
    ///
    /// Blocks that never appear in the trace return [`NEVER`].
    pub fn next_occurrence(&self, block: BlockId, at: usize) -> usize {
        match self.occurrences.get(&block) {
            None => NEVER,
            Some(occ) => {
                let i = occ.partition_point(|&p| p < at);
                occ.get(i).copied().unwrap_or(NEVER)
            }
        }
    }

    /// All positions referencing blocks on `disk`, ascending.
    pub fn positions_on_disk(&self, disk: DiskId) -> &[usize] {
        &self.disk_positions[disk.index()]
    }

    /// The distinct *disclosed* blocks of the sequence, in
    /// first-appearance order. Undisclosed positions are skipped.
    pub fn distinct_blocks(&self) -> Vec<BlockId> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for &b in &self.sequence {
            if b != UNKNOWN_BLOCK && seen.insert(b) {
                out.push(b);
            }
        }
        out
    }

    /// First occurrence position of every distinct block.
    pub fn first_occurrences(&self) -> Vec<(BlockId, usize)> {
        self.distinct_blocks()
            .into_iter()
            .map(|b| (b, self.next_occurrence(b, 0)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcache_trace::Request;
    use parcache_types::Nanos;

    fn trace_of(blocks: &[u64]) -> Trace {
        Trace::new(
            "t",
            blocks
                .iter()
                .map(|&b| Request {
                    block: BlockId(b),
                    compute: Nanos::from_millis(1),
                })
                .collect(),
            4,
        )
    }

    #[test]
    fn next_occurrence_binary_search() {
        let t = trace_of(&[1, 2, 1, 3, 1]);
        let o = Oracle::new(&t, Layout::striped(1));
        assert_eq!(o.next_occurrence(BlockId(1), 0), 0);
        assert_eq!(o.next_occurrence(BlockId(1), 1), 2);
        assert_eq!(o.next_occurrence(BlockId(1), 3), 4);
        assert_eq!(o.next_occurrence(BlockId(1), 5), NEVER);
        assert_eq!(o.next_occurrence(BlockId(3), 0), 3);
        assert_eq!(o.next_occurrence(BlockId(99), 0), NEVER);
    }

    #[test]
    fn disk_positions_follow_striping() {
        let t = trace_of(&[0, 1, 2, 3, 4, 5]);
        let o = Oracle::new(&t, Layout::striped(2));
        // Even blocks on disk 0 sit at positions 0, 2, 4.
        assert_eq!(o.positions_on_disk(DiskId(0)), &[0, 2, 4]);
        assert_eq!(o.positions_on_disk(DiskId(1)), &[1, 3, 5]);
    }

    #[test]
    fn distinct_blocks_in_first_appearance_order() {
        let t = trace_of(&[5, 3, 5, 7, 3]);
        let o = Oracle::new(&t, Layout::striped(1));
        assert_eq!(
            o.distinct_blocks(),
            vec![BlockId(5), BlockId(3), BlockId(7)]
        );
        assert_eq!(
            o.first_occurrences(),
            vec![(BlockId(5), 0), (BlockId(3), 1), (BlockId(7), 3)]
        );
    }

    #[test]
    fn block_at_and_len() {
        let t = trace_of(&[9, 8]);
        let o = Oracle::new(&t, Layout::striped(1));
        assert_eq!(o.len(), 2);
        assert!(!o.is_empty());
        assert_eq!(o.block_at(1), BlockId(8));
    }

    #[test]
    fn never_sentinel_orders_after_everything() {
        const { assert!(NEVER > 1_000_000_000) };
    }
}
