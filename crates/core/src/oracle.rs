//! The next-reference oracle.
//!
//! All four prefetching algorithms assume full advance knowledge of the
//! request sequence (§1). The oracle answers the two queries they need —
//! *when is block B next referenced at or after position p?* (for Belady
//! replacement and the do-no-harm rule), and *which positions reference
//! blocks on disk D?* (for per-disk prefetch candidates).
//!
//! Internally every block is assigned a dense **compact index** (`u32`),
//! so the hot paths work over plain arrays instead of hash maps: occurrence
//! lists are indexed by compact index, cursor advances follow a
//! precomputed next-pointer array in O(1), and the cache keys its bitsets
//! and slot arrays by the same index. The only hash lookup left is the
//! cold [`Oracle::index_of`] boundary used to enter the dense world.

use parcache_disk::layout::Layout;
use parcache_trace::Trace;
use parcache_types::{BlockId, DiskId, FastMap};

/// Sentinel position for "never referenced again" — compares greater than
/// every real position, which is exactly what Belady comparisons want.
pub const NEVER: usize = usize::MAX;

/// Reserved block id returned by [`Oracle::block_at`] for undisclosed
/// positions (see [`Oracle::from_positions`]). Never equals a real block.
pub const UNKNOWN_BLOCK: BlockId = BlockId(u64::MAX);

/// Internal sentinel for "no compact index" / "no next occurrence" in the
/// `u32`-packed arrays.
const NONE32: u32 = u32::MAX;

/// Compact row storage: all rows concatenated into one flat allocation,
/// sliced by an offsets table. The oracle's occurrence and disk-position
/// lists used to be one `Vec` per block; at hundreds to thousands of
/// blocks per trace that dominated the per-simulation allocation count
/// (and, in the multi-threaded sweep, the allocator contention). Two
/// counted passes build the same lists in exactly two allocations.
#[derive(Debug)]
struct Rows<T> {
    /// `offsets[i]..offsets[i + 1]` delimits row `i` in `data`.
    offsets: Vec<u32>,
    /// All rows, concatenated.
    data: Vec<T>,
}

impl<T: Copy + Default> Rows<T> {
    /// An all-default store with row `i` sized to `counts[i]`, ready to
    /// be filled in place.
    fn from_counts(counts: &[u32]) -> Rows<T> {
        let total: usize = counts.iter().map(|&c| c as usize).sum();
        assert!(total < u32::MAX as usize, "row data must fit u32 offsets");
        let mut offsets = Vec::with_capacity(counts.len() + 1);
        let mut at = 0u32;
        offsets.push(0);
        for &c in counts {
            at += c;
            offsets.push(at);
        }
        Rows {
            offsets,
            data: vec![T::default(); total],
        }
    }

    /// Row `i` as a slice.
    #[inline]
    fn row(&self, i: usize) -> &[T] {
        &self.data[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

/// Precomputed full-knowledge index of one trace under one disk layout.
#[derive(Debug)]
pub struct Oracle {
    /// The reference sequence, by position.
    sequence: Vec<BlockId>,
    /// Compact index of the block at each position (`NONE32` for
    /// undisclosed positions).
    seq_idx: Vec<u32>,
    /// Next position strictly after `p` referencing the same block as
    /// `p`, or `NONE32` — the O(1) cursor-advance next pointer.
    next_same: Vec<u32>,
    /// Compact index assignment. Disclosed blocks come first, in
    /// first-appearance order; universe-only blocks (known to exist but
    /// never disclosed) follow.
    index: FastMap<BlockId, u32>,
    /// Inverse of `index`.
    blocks: Vec<BlockId>,
    /// Number of leading entries of `blocks` that actually occur in the
    /// disclosed sequence.
    disclosed: usize,
    /// Every position at which each block is referenced, ascending, by
    /// compact index. Universe-only blocks have empty rows.
    occurrences: Rows<u32>,
    /// Positions whose block lives on each disk, ascending.
    disk_positions: Rows<usize>,
    /// Disk of each block (cached from the layout).
    layout: Layout,
}

impl Oracle {
    /// Builds the oracle for `trace` under `layout`.
    pub fn new(trace: &Trace, layout: Layout) -> Oracle {
        let sequence: Vec<BlockId> = trace.requests.iter().map(|r| r.block).collect();
        Oracle::from_sequence(sequence, layout)
    }

    /// Builds the oracle from a bare block sequence (used by the reverse
    /// aggressive pass, which indexes the *reversed* sequence).
    pub fn from_sequence(sequence: Vec<BlockId>, layout: Layout) -> Oracle {
        let entries: Vec<(usize, BlockId)> = sequence.iter().copied().enumerate().collect();
        Oracle::from_positions(sequence.len(), entries, layout)
    }

    /// Builds the oracle from explicit `(position, block)` entries over a
    /// sequence of length `len`. Positions absent from `entries` are
    /// *undisclosed*: they have no occurrences and [`block_at`] returns a
    /// reserved unknown block for them. This is how incomplete hints
    /// (`crate::hints`) restrict a policy's knowledge.
    ///
    /// [`block_at`]: Oracle::block_at
    pub fn from_positions(len: usize, entries: Vec<(usize, BlockId)>, layout: Layout) -> Oracle {
        Oracle::from_positions_with_universe(len, entries, &[], layout)
    }

    /// [`Oracle::from_positions`], additionally assigning compact indices
    /// to every block of `universe` (deduplicated against the disclosed
    /// blocks). The engine uses this so blocks the application references
    /// without disclosing them still live in the dense index space: their
    /// cache state can then be tracked by bitset like any other block,
    /// while their (empty) occurrence lists keep them invisible to
    /// policies.
    pub fn from_positions_with_universe(
        len: usize,
        mut entries: Vec<(usize, BlockId)>,
        universe: &[BlockId],
        layout: Layout,
    ) -> Oracle {
        assert!(
            len < NONE32 as usize,
            "sequence length must fit the u32 position encoding"
        );
        if !entries.is_sorted_by_key(|&(pos, _)| pos) {
            entries.sort_by_key(|&(pos, _)| pos);
        }
        let mut sequence = vec![UNKNOWN_BLOCK; len];
        let mut seq_idx = vec![NONE32; len];
        let mut next_same = vec![NONE32; len];
        let mut index: FastMap<BlockId, u32> =
            FastMap::with_capacity_and_hasher(entries.len(), Default::default());
        let mut blocks: Vec<BlockId> = Vec::new();
        // Pass 1: assign compact indices and count each block's and each
        // disk's entries, so the occurrence and disk-position lists can
        // be laid out flat (one allocation each) instead of one growing
        // `Vec` per block.
        let mut counts: Vec<u32> = Vec::new();
        let mut disk_counts: Vec<u32> = vec![0; layout.disks()];
        let mut entry_idx: Vec<u32> = Vec::with_capacity(entries.len());
        for &(pos, block) in &entries {
            assert!(pos < len, "entry position {pos} out of range");
            sequence[pos] = block;
            let idx = *index.entry(block).or_insert_with(|| {
                blocks.push(block);
                counts.push(0);
                (blocks.len() - 1) as u32
            });
            seq_idx[pos] = idx;
            entry_idx.push(idx);
            counts[idx as usize] += 1;
            disk_counts[layout.disk_of(block).index()] += 1;
        }
        let disclosed = blocks.len();
        for &block in universe {
            index.entry(block).or_insert_with(|| {
                blocks.push(block);
                counts.push(0);
                (blocks.len() - 1) as u32
            });
        }
        // Pass 2: fill the flat stores in place. Entries are ascending by
        // position, so each row fills in ascending order, and the next
        // pointer of a block's previous occurrence is the slot just
        // written before the cursor.
        let mut occurrences = Rows::<u32>::from_counts(&counts);
        let mut disk_positions = Rows::<usize>::from_counts(&disk_counts);
        let mut occ_cursor: Vec<u32> = occurrences.offsets[..counts.len()].to_vec();
        let mut disk_cursor: Vec<u32> = disk_positions.offsets[..disk_counts.len()].to_vec();
        for (&(pos, block), &idx) in entries.iter().zip(&entry_idx) {
            let at = occ_cursor[idx as usize] as usize;
            if at > occurrences.offsets[idx as usize] as usize {
                let prev = occurrences.data[at - 1];
                next_same[prev as usize] = pos as u32;
            }
            occurrences.data[at] = pos as u32;
            occ_cursor[idx as usize] += 1;
            let disk = layout.disk_of(block).index();
            let d_at = disk_cursor[disk] as usize;
            disk_positions.data[d_at] = pos;
            disk_cursor[disk] += 1;
        }
        Oracle {
            sequence,
            seq_idx,
            next_same,
            index,
            blocks,
            disclosed,
            occurrences,
            disk_positions,
            layout,
        }
    }

    /// Number of references in the sequence.
    pub fn len(&self) -> usize {
        self.sequence.len()
    }

    /// True for an empty sequence.
    pub fn is_empty(&self) -> bool {
        self.sequence.is_empty()
    }

    /// Number of blocks holding a compact index (disclosed plus
    /// universe-only). This is the capacity the cache sizes its dense
    /// structures to.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The block referenced at `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    pub fn block_at(&self, pos: usize) -> BlockId {
        self.sequence[pos]
    }

    /// The compact index of the (disclosed) block at `pos`, or `None`
    /// for an undisclosed position. O(1).
    #[inline]
    pub fn index_at(&self, pos: usize) -> Option<u32> {
        let i = self.seq_idx[pos];
        (i != NONE32).then_some(i)
    }

    /// The compact index of `block`, if it has one. This is the single
    /// remaining hash lookup; hot paths resolve it once per block and
    /// stay in index space afterwards.
    pub fn index_of(&self, block: BlockId) -> Option<u32> {
        self.index.get(&block).copied()
    }

    /// The block holding compact index `idx`. O(1).
    #[inline]
    pub fn block_of(&self, idx: u32) -> BlockId {
        self.blocks[idx as usize]
    }

    /// The layout used to build this oracle.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// The disk holding `block`.
    pub fn disk_of(&self, block: BlockId) -> DiskId {
        self.layout.disk_of(block)
    }

    /// The first position `>= at` referencing `block`, or [`NEVER`].
    ///
    /// Blocks that never appear in the trace return [`NEVER`].
    pub fn next_occurrence(&self, block: BlockId, at: usize) -> usize {
        match self.index_of(block) {
            None => NEVER,
            Some(idx) => self.next_occurrence_idx(idx, at),
        }
    }

    /// [`Oracle::next_occurrence`] by compact index: binary search over
    /// the block's dense occurrence list, no hashing.
    pub fn next_occurrence_idx(&self, idx: u32, at: usize) -> usize {
        let occ = self.occurrences.row(idx as usize);
        let i = occ.partition_point(|&p| (p as usize) < at);
        occ.get(i).map_or(NEVER, |&p| p as usize)
    }

    /// The first position strictly after `pos` referencing block `idx`.
    ///
    /// When `pos` itself references block `idx` — the cursor-advance
    /// pattern: the application just consumed the block at `pos` — the
    /// answer comes from the precomputed next-pointer array in O(1).
    #[inline]
    pub fn next_after_idx(&self, idx: u32, pos: usize) -> usize {
        if pos < self.seq_idx.len() && self.seq_idx[pos] == idx {
            let n = self.next_same[pos];
            if n == NONE32 {
                NEVER
            } else {
                n as usize
            }
        } else {
            self.next_occurrence_idx(idx, pos + 1)
        }
    }

    /// The last position `< before` referencing `block`, or `None` —
    /// binary search over the block's sorted occurrence list.
    pub fn last_occurrence_before(&self, block: BlockId, before: usize) -> Option<usize> {
        let idx = self.index_of(block)?;
        let occ = self.occurrences.row(idx as usize);
        let i = occ.partition_point(|&p| (p as usize) < before);
        i.checked_sub(1).map(|i| occ[i] as usize)
    }

    /// All positions referencing blocks on `disk`, ascending.
    pub fn positions_on_disk(&self, disk: DiskId) -> &[usize] {
        self.disk_positions.row(disk.index())
    }

    /// The distinct *disclosed* blocks of the sequence, in
    /// first-appearance order. Undisclosed positions are skipped.
    pub fn distinct_blocks(&self) -> Vec<BlockId> {
        self.blocks[..self.disclosed].to_vec()
    }

    /// First occurrence position of every distinct block.
    pub fn first_occurrences(&self) -> Vec<(BlockId, usize)> {
        (0..self.disclosed)
            .map(|i| (self.blocks[i], self.occurrences.row(i)[0] as usize))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcache_trace::Request;
    use parcache_types::Nanos;

    fn trace_of(blocks: &[u64]) -> Trace {
        Trace::new(
            "t",
            blocks
                .iter()
                .map(|&b| Request {
                    block: BlockId(b),
                    compute: Nanos::from_millis(1),
                })
                .collect(),
            4,
        )
    }

    #[test]
    fn next_occurrence_binary_search() {
        let t = trace_of(&[1, 2, 1, 3, 1]);
        let o = Oracle::new(&t, Layout::striped(1));
        assert_eq!(o.next_occurrence(BlockId(1), 0), 0);
        assert_eq!(o.next_occurrence(BlockId(1), 1), 2);
        assert_eq!(o.next_occurrence(BlockId(1), 3), 4);
        assert_eq!(o.next_occurrence(BlockId(1), 5), NEVER);
        assert_eq!(o.next_occurrence(BlockId(3), 0), 3);
        assert_eq!(o.next_occurrence(BlockId(99), 0), NEVER);
    }

    #[test]
    fn disk_positions_follow_striping() {
        let t = trace_of(&[0, 1, 2, 3, 4, 5]);
        let o = Oracle::new(&t, Layout::striped(2));
        // Even blocks on disk 0 sit at positions 0, 2, 4.
        assert_eq!(o.positions_on_disk(DiskId(0)), &[0, 2, 4]);
        assert_eq!(o.positions_on_disk(DiskId(1)), &[1, 3, 5]);
    }

    #[test]
    fn distinct_blocks_in_first_appearance_order() {
        let t = trace_of(&[5, 3, 5, 7, 3]);
        let o = Oracle::new(&t, Layout::striped(1));
        assert_eq!(
            o.distinct_blocks(),
            vec![BlockId(5), BlockId(3), BlockId(7)]
        );
        assert_eq!(
            o.first_occurrences(),
            vec![(BlockId(5), 0), (BlockId(3), 1), (BlockId(7), 3)]
        );
    }

    #[test]
    fn block_at_and_len() {
        let t = trace_of(&[9, 8]);
        let o = Oracle::new(&t, Layout::striped(1));
        assert_eq!(o.len(), 2);
        assert!(!o.is_empty());
        assert_eq!(o.block_at(1), BlockId(8));
    }

    #[test]
    fn never_sentinel_orders_after_everything() {
        const { assert!(NEVER > 1_000_000_000) };
    }

    #[test]
    fn compact_indices_cover_the_sequence() {
        let t = trace_of(&[5, 3, 5, 7, 3]);
        let o = Oracle::new(&t, Layout::striped(2));
        assert_eq!(o.num_blocks(), 3);
        for pos in 0..o.len() {
            let idx = o.index_at(pos).expect("fully disclosed");
            assert_eq!(o.block_of(idx), o.block_at(pos));
            assert_eq!(o.index_of(o.block_at(pos)), Some(idx));
        }
        assert_eq!(o.index_of(BlockId(99)), None);
    }

    #[test]
    fn next_after_idx_matches_binary_search() {
        let t = trace_of(&[1, 2, 1, 3, 1, 2]);
        let o = Oracle::new(&t, Layout::striped(1));
        for pos in 0..o.len() {
            let idx = o.index_at(pos).unwrap();
            assert_eq!(
                o.next_after_idx(idx, pos),
                o.next_occurrence_idx(idx, pos + 1),
                "pos {pos}"
            );
        }
        // Off-position queries fall back to the search.
        let idx1 = o.index_of(BlockId(1)).unwrap();
        assert_eq!(o.next_after_idx(idx1, 1), 2);
        assert_eq!(o.next_after_idx(idx1, 4), NEVER);
    }

    #[test]
    fn universe_blocks_get_indices_without_occurrences() {
        let entries = vec![(0, BlockId(4)), (2, BlockId(6))];
        let o = Oracle::from_positions_with_universe(
            3,
            entries,
            &[BlockId(6), BlockId(9)],
            Layout::striped(1),
        );
        assert_eq!(o.num_blocks(), 3, "6 deduplicates, 9 appended");
        let nine = o.index_of(BlockId(9)).expect("universe block indexed");
        assert_eq!(o.next_occurrence_idx(nine, 0), NEVER);
        assert_eq!(o.block_of(nine), BlockId(9));
        // Universe-only blocks stay invisible to disclosed-world queries.
        assert_eq!(o.distinct_blocks(), vec![BlockId(4), BlockId(6)]);
        assert_eq!(o.block_at(1), UNKNOWN_BLOCK);
        assert_eq!(o.index_at(1), None);
    }

    #[test]
    fn unsorted_entries_are_normalized() {
        let entries = vec![(3, BlockId(1)), (0, BlockId(1)), (2, BlockId(5))];
        let o = Oracle::from_positions(4, entries, Layout::striped(1));
        assert_eq!(o.next_occurrence(BlockId(1), 0), 0);
        assert_eq!(o.next_occurrence(BlockId(1), 1), 3);
        assert_eq!(o.distinct_blocks(), vec![BlockId(1), BlockId(5)]);
        let idx = o.index_of(BlockId(1)).unwrap();
        assert_eq!(o.next_after_idx(idx, 0), 3);
    }

    #[test]
    fn last_occurrence_before_binary_search() {
        let t = trace_of(&[1, 2, 1, 3, 1]);
        let o = Oracle::new(&t, Layout::striped(1));
        assert_eq!(o.last_occurrence_before(BlockId(1), 5), Some(4));
        assert_eq!(o.last_occurrence_before(BlockId(1), 4), Some(2));
        assert_eq!(o.last_occurrence_before(BlockId(1), 1), Some(0));
        assert_eq!(o.last_occurrence_before(BlockId(1), 0), None);
        assert_eq!(o.last_occurrence_before(BlockId(9), 5), None);
        assert_eq!(o.last_occurrence_before(BlockId(3), NEVER), Some(3));
    }
}
