//! The theoretical model of §2.1 as a configuration of the real engine.
//!
//! In the theoretical model every inter-reference compute time is one
//! unit, every fetch takes exactly F units, there is no driver overhead,
//! and fetches on one disk are serialized while different disks proceed
//! in parallel. All of that is expressible with the real engine: a trace
//! with unit compute times, the uniform disk model, and zero overhead —
//! so the theory and the practical simulator share one code path, and the
//! worked example of the paper's Figure 1 can be tested directly.

use crate::config::{DiskModelKind, SimConfig};
use parcache_trace::{Request, Trace};
use parcache_types::{BlockId, Nanos};

/// One "time unit" of the theoretical model, as simulated time.
pub const UNIT: Nanos = Nanos::from_millis(1);

/// Builds a theoretical-model trace: unit compute time per reference.
pub fn unit_trace(blocks: &[u64], cache_blocks: usize) -> Trace {
    Trace::new(
        "theory",
        blocks
            .iter()
            .map(|&b| Request {
                block: BlockId(b),
                compute: UNIT,
            })
            .collect(),
        cache_blocks,
    )
}

/// A theoretical-model configuration: `d` disks, cache of `k` blocks,
/// fetch time `f` units, no driver overhead, FCFS heads (scheduling is
/// irrelevant under uniform fetch times).
pub fn theory_config(d: usize, k: usize, f: u64) -> SimConfig {
    let mut c = SimConfig::new(d, k);
    c.disk_model = DiskModelKind::Uniform(UNIT * f);
    c.driver_overhead = Nanos::ZERO;
    c.discipline = parcache_disk::sched::Discipline::Fcfs;
    // In the theoretical model there is no benefit to batching; H = F.
    c.horizon = f as usize;
    c.batch_size = 1;
    c.reverse_fetch_estimate = f;
    c.reverse_batch_size = 1;
    c
}

/// Elapsed time of a run, in theoretical time units.
pub fn elapsed_units(report: &crate::engine::Report) -> u64 {
    report.elapsed.as_nanos() / UNIT.as_nanos()
}

/// A hard lower bound on the elapsed time of a run under the uniform
/// model with fetch time `f` (§2.1): the CPU timeline (compute +
/// driver) is serial, any fetch at all takes a full `f` that cannot
/// finish before the run does, and each drive serializes its requests
/// at `f` apiece. Reporting less than this is impossible physics, so
/// the audit layer treats it as an accounting violation.
pub fn uniform_elapsed_lower_bound(report: &crate::engine::Report, f: Nanos) -> Nanos {
    let mut bound = report.compute + report.driver;
    if report.fetches > 0 {
        bound = bound.max(f);
    }
    for d in &report.per_disk {
        bound = bound.max(f.checked_mul(d.served).unwrap_or(Nanos::MAX));
    }
    bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::policy::PolicyKind;

    /// The Figure 1 scenario: cache k=4, fetch F=2, two disks. One disk
    /// holds A, C, E, F; the other holds b, d. The cache initially holds
    /// A, b, d, F and the program references A b C d E F.
    ///
    /// Figure 1(a): the straightforward greedy schedule takes 7 units.
    /// Figure 1(b): offloading an early eviction to the idle disk takes 6.
    ///
    /// Block numbering places A,C,E,F on disk 0 (even) and b,d on disk 1
    /// (odd): A=0, C=2, E=4, F=6, b=1, d=3.
    fn figure1_trace() -> Trace {
        // Warm the cache with A, b, d, F through a prefix the policies
        // cannot avoid (references to each), then measure the suffix...
        // The paper assumes a pre-warmed cache; our engine starts cold, so
        // we emulate the full sequence including the warmup and compare
        // policies to each other rather than to the absolute 6/7 numbers.
        unit_trace(&[0, 1, 3, 6, /* warm A,b,d,F */ 0, 1, 2, 3, 4, 6], 4)
    }

    #[test]
    fn figure1_policies_complete_and_agree_on_breakdown() {
        let t = figure1_trace();
        let c = theory_config(2, 4, 2);
        for kind in PolicyKind::ALL {
            let r = simulate(&t, kind, &c);
            assert_eq!(r.elapsed, r.compute + r.driver + r.stall, "{kind}");
            // 10 references, 1 unit each.
            assert_eq!(r.compute, UNIT * 10, "{kind}");
        }
    }

    #[test]
    fn figure1_prefetchers_beat_demand() {
        let t = figure1_trace();
        let c = theory_config(2, 4, 2);
        let demand = simulate(&t, PolicyKind::Demand, &c);
        for kind in PolicyKind::PREFETCHING {
            let r = simulate(&t, kind, &c);
            assert!(
                r.elapsed <= demand.elapsed,
                "{kind}: {} > demand {}",
                r.elapsed,
                demand.elapsed
            );
        }
    }

    #[test]
    fn single_disk_aggressive_matches_known_optimum() {
        // Single disk, F=2, k=2, sequence 0 1 0 1 2: aggressive fetches
        // 0 and 1 (4 units of disk time overlapped with compute), then 2
        // when do-no-harm allows.
        let t = unit_trace(&[0, 1, 0, 1, 2], 2);
        let c = theory_config(1, 2, 2);
        let r = simulate(&t, PolicyKind::Aggressive, &c);
        // Lower bound: 5 compute units + first-fetch stall 2.
        assert!(elapsed_units(&r) >= 7);
        assert!(elapsed_units(&r) <= 11, "{} units", elapsed_units(&r));
    }

    #[test]
    fn fixed_horizon_is_optimal_with_enough_disks() {
        // With one disk per distinct block and H >= F, fixed horizon
        // serves a sequential scan with only the cold-start stall.
        let t = unit_trace(&[0, 1, 2, 3, 0, 1, 2, 3], 4);
        let c = theory_config(4, 4, 2);
        let r = simulate(&t, PolicyKind::FixedHorizon, &c);
        // 8 compute + at most F cold stall.
        assert!(elapsed_units(&r) <= 11, "{} units", elapsed_units(&r));
    }

    #[test]
    fn uniform_lower_bound_is_respected_by_real_runs() {
        let t = unit_trace(&[0, 1, 2, 3, 0, 1, 2, 3], 4);
        let f = 3u64;
        for kind in PolicyKind::ALL {
            let c = theory_config(2, 3, f);
            let r = simulate(&t, kind, &c);
            let bound = uniform_elapsed_lower_bound(&r, UNIT * f);
            assert!(
                r.elapsed >= bound,
                "{kind}: elapsed {} below bound {bound}",
                r.elapsed
            );
            // The bound is not vacuous: it at least covers compute and
            // one full fetch.
            assert!(bound >= r.compute.max(UNIT * f));
        }
    }

    #[test]
    fn unit_trace_shape() {
        let t = unit_trace(&[1, 2, 3], 8);
        assert_eq!(t.len(), 3);
        assert_eq!(t.cache_blocks, 8);
        assert!(t.requests.iter().all(|r| r.compute == UNIT));
    }
}
